"""Adaptive re-optimization benchmark (thin wrapper).

Like ``bench_wallclock.py`` this is a plain script, but the times it
reports are *simulated* seconds from the priced traces — deterministic,
so ``--check`` gates on exact invariants: every scenario's adaptive run
must switch, stay oracle-identical, and land strictly between the
correct-pick and mispicked static plans::

    PYTHONPATH=src python benchmarks/bench_adaptive.py \
        --out benchmarks/results/BENCH_adaptive.json

    # CI smoke: one scenario, gate on the checked-in baseline
    PYTHONPATH=src python benchmarks/bench_adaptive.py --quick \
        --check benchmarks/results/BENCH_adaptive.json

See :mod:`repro.bench.adaptive` for what is measured.
"""

import sys

from repro.bench.adaptive import main

if __name__ == "__main__":
    sys.exit(main())
