"""Benchmark: reproduce the paper's Figure 11 — DB-side join with vs without a Bloom filter.

Run with `pytest benchmarks/bench_fig11.py --benchmark-only`; the
paper-style report lands in `benchmarks/results/fig11.txt`.
"""

from benchmarks.conftest import run_experiment


def test_fig11(benchmark, experiment_cache, results_dir):
    run_experiment(benchmark, experiment_cache, results_dir, "fig11")
