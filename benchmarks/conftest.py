"""Shared fixtures for the benchmark suite.

Every benchmark runs one paper experiment end to end (data plane plus
time plane) and writes its paper-style report to
``benchmarks/results/<experiment>.txt`` so the numbers survive the run.
The warehouse cache is session-scoped: sweeps share loaded warehouses.
"""

from __future__ import annotations

import pathlib

import pytest

from repro.bench.harness import WarehouseCache

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def experiment_cache():
    """One warehouse cache shared by every benchmark."""
    return WarehouseCache()


@pytest.fixture(scope="session")
def results_dir():
    """Directory the benchmark reports are written to."""
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


def run_experiment(benchmark, cache, results_dir, experiment_id):
    """Benchmark one experiment once and persist its report."""
    from repro.bench.experiments import experiment_by_id

    experiment = experiment_by_id(experiment_id)
    result = benchmark.pedantic(
        lambda: experiment.run(cache), rounds=1, iterations=1,
    )
    report = result.to_report()
    (results_dir / f"{experiment_id}.txt").write_text(report + "\n")
    print()
    print(report)
    assert result.all_passed(), report
    return result
