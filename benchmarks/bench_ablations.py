"""Ablation benchmarks for the design choices DESIGN.md calls out:

* Bloom filter size / hash count (the paper's Section 5 parameter pick);
* JEN pipelining vs a materialising engine (Section 4.4);
* locality-aware block assignment (Section 4.2);
* broadcast transfer scheme, direct vs relay (Section 4.3);
* Bloom filters vs exact semijoin / PERF-join baselines (Section 6).
"""

from benchmarks.conftest import run_experiment


def test_ablation_bf_params(benchmark, experiment_cache, results_dir):
    run_experiment(benchmark, experiment_cache, results_dir,
                   "ablation_bf_params")


def test_ablation_pipelining(benchmark, experiment_cache, results_dir):
    run_experiment(benchmark, experiment_cache, results_dir,
                   "ablation_pipelining")


def test_ablation_locality(benchmark, experiment_cache, results_dir):
    run_experiment(benchmark, experiment_cache, results_dir,
                   "ablation_locality")


def test_ablation_broadcast_scheme(benchmark, experiment_cache,
                                   results_dir):
    run_experiment(benchmark, experiment_cache, results_dir,
                   "ablation_broadcast_scheme")


def test_ablation_exact_filters(benchmark, experiment_cache, results_dir):
    run_experiment(benchmark, experiment_cache, results_dir,
                   "ablation_exact_filters")


def test_ablation_spill(benchmark, experiment_cache, results_dir):
    run_experiment(benchmark, experiment_cache, results_dir,
                   "ablation_spill")


def test_ablation_process_thread(benchmark, experiment_cache, results_dir):
    run_experiment(benchmark, experiment_cache, results_dir,
                   "ablation_process_thread")


def test_ext_cluster_scaling(benchmark, experiment_cache, results_dir):
    run_experiment(benchmark, experiment_cache, results_dir,
                   "ext_cluster_scaling")


def test_ablation_zigzag_site(benchmark, experiment_cache, results_dir):
    run_experiment(benchmark, experiment_cache, results_dir,
                   "ablation_zigzag_site")


def test_ext_skew(benchmark, experiment_cache, results_dir):
    run_experiment(benchmark, experiment_cache, results_dir, "ext_skew")
