"""Benchmark: reproduce the paper's Figure 10 — broadcast join vs repartition join across sigma_T and sigma_L.

Run with `pytest benchmarks/bench_fig10.py --benchmark-only`; the
paper-style report lands in `benchmarks/results/fig10.txt`.
"""

from benchmarks.conftest import run_experiment


def test_fig10(benchmark, experiment_cache, results_dir):
    run_experiment(benchmark, experiment_cache, results_dir, "fig10")
