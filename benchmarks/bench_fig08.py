"""Benchmark: reproduce the paper's Figure 8 — zigzag vs repartition joins, execution time across sigma_L and S_T'.

Run with `pytest benchmarks/bench_fig08.py --benchmark-only`; the
paper-style report lands in `benchmarks/results/fig8.txt`.
"""

from benchmarks.conftest import run_experiment


def test_fig8(benchmark, experiment_cache, results_dir):
    run_experiment(benchmark, experiment_cache, results_dir, "fig8")
