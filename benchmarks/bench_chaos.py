"""Chaos benchmarks: recovery latency vs the fault-free makespan.

Runs representative join algorithms under each fault class of the
chaos suite and reports, per (algorithm, fault) cell, the fault-free
simulated makespan, the faulted makespan, the absolute and relative
recovery overhead, and the recovery actions charged on the trace.
Results must stay bit-identical to the fault-free run — this benchmark
measures the *cost* of surviving, not whether we survive (the chaos
battery in tests/test_chaos.py owns that).

Reports are persisted to ``benchmarks/results/chaos_<algorithm>.txt``.
"""

from __future__ import annotations

import pytest

from repro import (
    HybridWarehouse,
    WorkloadSpec,
    algorithm_by_name,
    build_paper_query,
    default_config,
    generate_workload,
)
from repro.faults import FaultPlan

#: Same materialised scale as the test suite: 1/50,000 of the paper.
SCALE = 1.0 / 50_000.0

#: The fault grid: one entry per recovery path the engine implements.
FAULT_SPECS = (
    ("crash-scan", "crash:w7@scan"),
    ("crash-shuffle", "crash:w3@shuffle"),
    ("straggler", "slow:w5x4"),
    ("lossy-shuffle", "drop:shuffle:0.05"),
    ("lossy-transfer", "drop:transfer:0.1"),
    ("combo", "crash:w7@scan,slow:w5x4,drop:shuffle:0.02"),
)

ALGORITHMS = ("zigzag", "repartition(BF)", "db(BF)", "broadcast")


@pytest.fixture(scope="module")
def chaos_setup():
    workload = generate_workload(WorkloadSpec(
        sigma_t=0.1, sigma_l=0.4, s_t=0.2, s_l=0.1,
        t_rows=32_000, l_rows=300_000, n_keys=320, n_urls=120, seed=42,
    ))
    warehouse = HybridWarehouse(default_config(scale=SCALE))
    warehouse.load_db_table("T", workload.t_table, distribute_on="uniqKey")
    warehouse.database.create_index("T", "idx_pred",
                                    ["corPred", "indPred"])
    warehouse.database.create_index(
        "T", "idx_bloom", ["corPred", "indPred", "joinKey"]
    )
    warehouse.load_hdfs_table("L", workload.l_table, "parquet")
    return warehouse, build_paper_query(workload)


def _run_grid(warehouse, query, algorithm):
    """One algorithm through the whole fault grid."""
    baseline = algorithm_by_name(algorithm).run(warehouse, query)
    cells = []
    for fault_name, spec in FAULT_SPECS:
        injector = warehouse.arm_faults(FaultPlan.from_spec(spec))
        try:
            faulted = algorithm_by_name(algorithm).run(warehouse, query)
        finally:
            warehouse.disarm_faults()
        recovery = [p for p in faulted.trace if p.kind == "recovery"]
        cells.append({
            "fault": fault_name,
            "spec": spec,
            "identical": faulted.result.to_rows()
            == baseline.result.to_rows(),
            "seconds": faulted.total_seconds,
            "recovery_phases": len(recovery),
            "recovery_work": sum(p.seconds for p in recovery),
            "counters": {name: value
                         for name, value in injector.counters().items()
                         if value},
        })
    return baseline, cells


def _report_lines(algorithm, baseline, cells):
    lines = [
        f"chaos recovery overhead: {algorithm} "
        f"(fault-free {baseline.total_seconds:.1f}s)",
        f"  {'fault':<16s} {'makespan':>9s} {'overhead':>9s} "
        f"{'rel':>7s} {'phases':>7s} {'work':>7s}",
    ]
    for cell in cells:
        overhead = cell["seconds"] - baseline.total_seconds
        relative = overhead / baseline.total_seconds
        lines.append(
            f"  {cell['fault']:<16s} {cell['seconds']:>8.1f}s "
            f"{overhead:>+8.1f}s {relative:>+6.1%} "
            f"{cell['recovery_phases']:>7d} "
            f"{cell['recovery_work']:>6.1f}s"
        )
        if cell["counters"]:
            lines.append("    " + ", ".join(
                f"{name}={value}"
                for name, value in sorted(cell["counters"].items())
            ))
    return lines


@pytest.mark.parametrize("algorithm", ALGORITHMS)
def test_recovery_overhead(benchmark, chaos_setup, results_dir,
                           algorithm):
    warehouse, query = chaos_setup
    baseline, cells = benchmark.pedantic(
        lambda: _run_grid(warehouse, query, algorithm),
        rounds=1, iterations=1,
    )
    safe_name = algorithm.replace("(", "_").replace(")", "")
    report = "\n".join(_report_lines(algorithm, baseline, cells))
    (results_dir / f"chaos_{safe_name}.txt").write_text(report + "\n")
    print()
    print(report)

    for cell in cells:
        assert cell["identical"], (algorithm, cell["fault"])
        # Recovery never makes the query faster than fault-free.
        assert cell["seconds"] >= baseline.total_seconds - 1e-9
    # At least one fault class must charge visible recovery work
    # (some hide entirely under the other plane's critical path).
    assert any(cell["recovery_work"] > 0 for cell in cells), algorithm
