"""Approximate-join benchmark (thin wrapper).

Times are *simulated* seconds from the priced traces — deterministic,
so ``--check`` gates on exact numbers: every reported confidence
interval must contain the reference answer, the rate-1.0 cell must be
bit-exact, and every sample rate at or below 25% must be no slower
than exact repartition (on the scan-dominated workload it is several
times faster)::

    PYTHONPATH=src python benchmarks/bench_approx.py \
        --out benchmarks/results/BENCH_approx.json

    # CI smoke: the 25% cell only, gated on the checked-in baseline
    PYTHONPATH=src python benchmarks/bench_approx.py --quick \
        --check benchmarks/results/BENCH_approx.json

See :mod:`repro.bench.approx` for what is measured.
"""

import sys

from repro.bench.approx import main

if __name__ == "__main__":
    sys.exit(main())
