"""Micro-benchmarks of the data-plane kernels.

These measure the *library's* own throughput (wall clock of the numpy
kernels), not simulated cluster time — useful for keeping the data plane
fast enough that full figure sweeps stay interactive.
"""

import numpy as np
import pytest

from repro.core.bloom import BloomFilter
from repro.edw.partitioner import agreed_hash_partition
from repro.relational.aggregates import AggregateSpec, group_by_aggregate
from repro.relational.operators import hash_join_indices
from repro.relational.schema import Column, DataType, Schema
from repro.relational.table import Table

N = 500_000


@pytest.fixture(scope="module")
def keys():
    rng = np.random.default_rng(1)
    return rng.integers(0, 50_000, N).astype(np.int64)


def test_bloom_add(benchmark, keys):
    def run():
        bloom = BloomFilter(1 << 20, num_hashes=2)
        bloom.add(keys)
        return bloom

    assert benchmark(run).num_added == N


def test_bloom_probe(benchmark, keys):
    bloom = BloomFilter(1 << 20, num_hashes=2)
    bloom.add(keys[: N // 2])
    mask = benchmark(bloom.contains, keys)
    assert mask[: N // 2].all()


def test_hash_join_kernel(benchmark, keys):
    probe = keys[::3]
    build_idx, probe_idx = benchmark(hash_join_indices, keys, probe)
    assert len(build_idx) == len(probe_idx) > 0


def test_agreed_hash_partition(benchmark, keys):
    parts = benchmark(agreed_hash_partition, keys, 30)
    assert parts.max() < 30


def test_group_by_aggregate(benchmark, keys):
    schema = Schema([Column("k", DataType.INT64),
                     Column("v", DataType.INT64)])
    table = Table(schema, {"k": keys, "v": np.ones(N, dtype=np.int64)})
    result = benchmark(
        group_by_aggregate, table, ["k"],
        [AggregateSpec("count"), AggregateSpec("sum", "v")],
    )
    assert int(result.column("count").sum()) == N


def test_full_zigzag_data_plane(benchmark):
    """End-to-end wall clock of one zigzag run at benchmark scale."""
    from repro.bench.harness import WarehouseCache
    from repro.core.joins import ZigzagJoin

    cache = WarehouseCache()
    setup = cache.setup(0.1, 0.4, s_t=0.2, s_l=0.1)

    def run():
        return ZigzagJoin().run(setup.warehouse, setup.query)

    result = benchmark.pedantic(run, rounds=3, iterations=1)
    assert result.result.num_rows > 0
