"""Benchmark: reproduce the paper's Table 1 — tuples shuffled and DB tuples sent for the repartition joins and the zigzag join.

Run with `pytest benchmarks/bench_table1.py --benchmark-only`; the
paper-style report lands in `benchmarks/results/table1.txt`.
"""

from benchmarks.conftest import run_experiment


def test_table1(benchmark, experiment_cache, results_dir):
    run_experiment(benchmark, experiment_cache, results_dir, "table1")
