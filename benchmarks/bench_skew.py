"""Skew-resistant shuffle benchmark (thin wrapper).

Like ``bench_adaptive.py`` the reported times are *simulated* seconds
from the priced traces — deterministic, so ``--check`` gates on exact
ratios: every cell must stay oracle-identical, and at ``key_skew=1.8``
the hybrid shuffle must cut the p99/p50 worker-finish spread by at
least 2x versus hash-only routing::

    PYTHONPATH=src python benchmarks/bench_skew.py \
        --out benchmarks/results/BENCH_skew.json

    # CI smoke: heaviest skew cell only, gate on the checked-in baseline
    PYTHONPATH=src python benchmarks/bench_skew.py --quick \
        --check benchmarks/results/BENCH_skew.json

See :mod:`repro.bench.skew` for what is measured.
"""

import sys

from repro.bench.skew import main

if __name__ == "__main__":
    sys.exit(main())
