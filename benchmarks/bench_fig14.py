"""Benchmark: reproduce the paper's Figure 14 — Parquet vs text storage format.

Run with `pytest benchmarks/bench_fig14.py --benchmark-only`; the
paper-style report lands in `benchmarks/results/fig14.txt`.
"""

from benchmarks.conftest import run_experiment


def test_fig14(benchmark, experiment_cache, results_dir):
    run_experiment(benchmark, experiment_cache, results_dir, "fig14")


def test_ext_formats(benchmark, experiment_cache, results_dir):
    run_experiment(benchmark, experiment_cache, results_dir,
                   "ext_formats")
