"""Benchmark: reproduce the paper's Figure 9 — effect of the join-key selectivities S_L' and S_T' on the zigzag join.

Run with `pytest benchmarks/bench_fig09.py --benchmark-only`; the
paper-style report lands in `benchmarks/results/fig9.txt`.
"""

from benchmarks.conftest import run_experiment


def test_fig9(benchmark, experiment_cache, results_dir):
    run_experiment(benchmark, experiment_cache, results_dir, "fig9")
