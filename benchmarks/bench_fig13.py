"""Benchmark: reproduce the paper's Figure 13 — DB-side vs HDFS-side joins with Bloom filters.

Run with `pytest benchmarks/bench_fig13.py --benchmark-only`; the
paper-style report lands in `benchmarks/results/fig13.txt`.
"""

from benchmarks.conftest import run_experiment


def test_fig13(benchmark, experiment_cache, results_dir):
    run_experiment(benchmark, experiment_cache, results_dir, "fig13")
