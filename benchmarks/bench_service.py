"""Service-plane benchmarks: throughput and tail latency vs concurrency.

Replays the same repeated-template query stream through the
:class:`~repro.service.server.QueryService` at increasing admission
concurrency and reports, per setting:

* completed queries per simulated minute (throughput);
* p50/p95/p99 submission-to-answer latency (simulated seconds);
* Bloom-filter and result cache hit rates.

The stream is replayed twice per setting — the second pass answers
from the result cache, which is exactly the repeated-dashboard
workload semantic caching exists for.  Reports are persisted to
``benchmarks/results/service_slots<N>.txt``.
"""

from __future__ import annotations

import pytest

from repro import (
    HybridWarehouse,
    WorkloadSpec,
    default_config,
    generate_workload,
)
from repro.service import (
    AdmissionConfig,
    QueryService,
    ServiceConfig,
    StreamSpec,
    generate_query_stream,
)

#: Same materialised scale as the test suite: 1/50,000 of the paper.
SCALE = 1.0 / 50_000.0
STREAM = StreamSpec(num_queries=12, templates=3, arrival_gap=5.0,
                    tenants=2, seed=7, best_effort_fraction=0.0)


@pytest.fixture(scope="module")
def service_setup():
    workload = generate_workload(WorkloadSpec(
        sigma_t=0.1, sigma_l=0.4, s_t=0.2, s_l=0.1,
        t_rows=32_000, l_rows=300_000, n_keys=320, n_urls=120, seed=42,
    ))
    warehouse = HybridWarehouse(default_config(scale=SCALE))
    warehouse.load_db_table("T", workload.t_table, distribute_on="uniqKey")
    warehouse.database.create_index("T", "idx_pred",
                                    ["corPred", "indPred"])
    warehouse.database.create_index(
        "T", "idx_bloom", ["corPred", "indPred", "joinKey"]
    )
    warehouse.load_hdfs_table("L", workload.l_table, "parquet")
    return warehouse, workload


def _submit_stream(service, workload):
    for item in generate_query_stream(workload, STREAM):
        service.submit(item.query, tenant=item.tenant, at=item.at,
                       priority=item.priority)


def _replay(warehouse, workload, slots):
    """Two passes of the stream: cold data plane, then warm caches."""
    service = QueryService(warehouse, ServiceConfig(
        admission=AdmissionConfig(slots=slots, max_queue=64,
                                  queue_timeout=1e6, shed_fraction=None),
    ))
    _submit_stream(service, workload)
    cold = service.drain()
    _submit_stream(service, workload)
    warm = service.drain()
    return service, cold, warm


def _report_lines(slots, service, cold, warm):
    latency = cold.metrics.get("service.latency_seconds")
    return [
        f"service stream: {STREAM.num_queries} queries, "
        f"{STREAM.templates} templates, {STREAM.tenants} tenants, "
        f"slots={slots}",
        f"  cold pass: {len(cold.completed())} completed, "
        f"{len(cold.rejected())} rejected in {cold.makespan:.1f}s "
        f"(throughput {cold.throughput() * 60:.2f} q/min; "
        f"serial sum {cold.serial_seconds():.1f}s)",
        f"  latency:   p50={latency.p50:.1f}s p95={latency.p95:.1f}s "
        f"p99={latency.p99:.1f}s",
        f"  warm pass: {len(warm.completed())} completed in "
        f"{warm.makespan:.1f}s (result cache)",
        f"  caches:    result hit rate "
        f"{service.result_cache.hit_rate():.2f}, bloom hit rate "
        f"{service.bloom_builder.cache.hit_rate():.2f}",
        f"  feedback:  {service.feedback.observations} observations, "
        f"{service.feedback.known_plans()} known plans",
    ]


@pytest.mark.parametrize("slots", [1, 4, 8])
def test_stream_vs_concurrency(benchmark, service_setup, results_dir,
                               slots):
    warehouse, workload = service_setup
    service, cold, warm = benchmark.pedantic(
        lambda: _replay(warehouse, workload, slots),
        rounds=1, iterations=1,
    )
    report = "\n".join(_report_lines(slots, service, cold, warm))
    (results_dir / f"service_slots{slots}.txt").write_text(report + "\n")
    print()
    print(report)

    assert len(cold.completed()) == STREAM.num_queries
    assert len(warm.completed()) == STREAM.num_queries
    latency = cold.metrics.get("service.latency_seconds")
    assert latency.p99 >= latency.p95 >= latency.p50 > 0
    # The repeated-template stream must actually hit both caches.
    assert service.result_cache.hit_rate() > 0
    assert service.bloom_builder.cache.hit_rate() > 0
    if slots > 1:
        # Concurrency must genuinely overlap resource classes.
        assert cold.makespan < cold.serial_seconds()
