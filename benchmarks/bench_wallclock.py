"""Wall-clock kernel benchmarks (thin wrapper).

Unlike the other ``bench_*`` modules, which measure *simulated* seconds
under ``pytest-benchmark``, this one measures real host wall clock for
the vectorised kernel layer and is a plain script::

    PYTHONPATH=src python benchmarks/bench_wallclock.py \
        --out benchmarks/results/BENCH_wallclock.json

    # CI smoke: reduced sizes, gate on the checked-in baseline
    PYTHONPATH=src python benchmarks/bench_wallclock.py --quick \
        --skip-e2e --check benchmarks/results/BENCH_wallclock.json

Equivalent to ``python -m repro bench``; see
:mod:`repro.bench.wallclock` for what is measured.
"""

import sys

from repro.bench.wallclock import main

if __name__ == "__main__":
    sys.exit(main())
