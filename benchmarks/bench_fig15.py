"""Benchmark: reproduce the paper's Figure 15 — Bloom filter effect on the text format.

Run with `pytest benchmarks/bench_fig15.py --benchmark-only`; the
paper-style report lands in `benchmarks/results/fig15.txt`.
"""

from benchmarks.conftest import run_experiment


def test_fig15(benchmark, experiment_cache, results_dir):
    run_experiment(benchmark, experiment_cache, results_dir, "fig15")
