"""Late-materialization benchmark (thin wrapper).

Like ``bench_skew.py`` the reported times are *simulated* seconds from
the priced traces — deterministic, so ``--check`` gates on exact
ratios: both modes of every cell must stay oracle-identical, the
canonical ``db`` join on the wide-selective cell must ship at least
1.5x fewer cross-cluster bytes *and* win end-to-end time with late
materialization on, and the advisor must accept the selective shape
while declining the low-selectivity counter-workload::

    PYTHONPATH=src python benchmarks/bench_latemat.py \
        --out benchmarks/results/BENCH_latemat.json

    # CI smoke: the gated db cell + advisor decisions only
    PYTHONPATH=src python benchmarks/bench_latemat.py --quick \
        --check benchmarks/results/BENCH_latemat.json

See :mod:`repro.bench.latemat` for what is measured.
"""

import sys

from repro.bench.latemat import main

if __name__ == "__main__":
    sys.exit(main())
