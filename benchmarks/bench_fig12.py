"""Benchmark: reproduce the paper's Figure 12 — DB-side vs best HDFS-side join without Bloom filters.

Run with `pytest benchmarks/bench_fig12.py --benchmark-only`; the
paper-style report lands in `benchmarks/results/fig12.txt`.
"""

from benchmarks.conftest import run_experiment


def test_fig12(benchmark, experiment_cache, results_dir):
    run_experiment(benchmark, experiment_cache, results_dir, "fig12")
