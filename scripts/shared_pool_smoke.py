#!/usr/bin/env python
"""CI smoke for the shared multi-query process pool.

Usage:  PYTHONPATH=src python scripts/shared_pool_smoke.py
            [--pool-workers 2] [--streams 2] [--queries 2]

Runs ``--streams`` tenants concurrently (one thread each), each
submitting ``--queries`` end-to-end joins through one installed
:class:`~repro.parallel.sharedpool.SharedProcessPool`, so worker slots
are genuinely shared and stolen across queries.  Every query's result
is verified against the single-node oracle, and the session's
shared-memory prefix must hold no leaked segment afterwards.

Exit codes: 0 all streams row-identical and no leaks, 1 otherwise.
"""

from __future__ import annotations

import argparse
import sys
import threading

from repro import parallel
from repro.parallel.shm import SESSION_PREFIX
from repro.testkit import generator, oracle

ALGORITHMS = ("repartition", "zigzag", "repartition(BF)", "semijoin")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--pool-workers", type=int, default=2,
                        help="shared process-pool size (default: 2)")
    parser.add_argument("--streams", type=int, default=2,
                        help="concurrent tenant streams (default: 2)")
    parser.add_argument("--queries", type=int, default=2,
                        help="queries per stream (default: 2)")
    parser.add_argument("--seed", type=int, default=2015,
                        help="data-case seed")
    args = parser.parse_args(argv)

    failures = []
    pool = parallel.SharedProcessPool(workers=args.pool_workers)
    previous_installed = parallel.install_backend(pool)
    previous_backend = parallel.set_execution_backend(
        "process", workers=args.pool_workers)

    def run_stream(index: int) -> None:
        case = generator.generate_data_case(args.seed + index)
        warehouse = generator.build_cell_warehouse(case, 4, "parquet")
        with parallel.task_origin(f"tenant{index}", f"s{index}"):
            for query_number in range(args.queries):
                algorithm = ALGORITHMS[
                    (index + query_number) % len(ALGORITHMS)]
                try:
                    from repro import algorithm_by_name

                    run = algorithm_by_name(algorithm).run(
                        warehouse, case.query)
                    diff = oracle.compare_tables(
                        run.result, case.oracle_rows(),
                        label=f"tenant{index} q{query_number} "
                              f"({algorithm})")
                except Exception as exc:  # noqa: BLE001 - reported
                    diff = (f"tenant{index} q{query_number} "
                            f"({algorithm}) raised: {exc!r}")
                if diff is not None:
                    failures.append(diff)
                else:
                    print(f"  tenant{index} q{query_number} "
                          f"{algorithm:<18s} ok")

    try:
        threads = [threading.Thread(target=run_stream, args=(index,))
                   for index in range(args.streams)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
    finally:
        parallel.set_execution_backend(previous_backend)
        parallel.install_backend(previous_installed)
        stats = pool.stats_snapshot()
        pool.shutdown()

    leaks = parallel.leaked_segments(SESSION_PREFIX)
    if leaks:
        failures.append(f"leaked shared-memory segments: {leaks}")
    for failure in failures:
        print(failure, file=sys.stderr)
    if not failures:
        print(f"shared-pool smoke passed: {args.streams} streams x "
              f"{args.queries} queries on {args.pool_workers} workers, "
              f"all row-identical to the oracle, no segment leaks "
              f"(segments created={stats.get('created', 0)} "
              f"reused={stats.get('reused', 0)} "
              f"banked={stats.get('banked', 0)})")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
