#!/usr/bin/env python
"""CI smoke for the multicore execution backend.

Usage:  PYTHONPATH=src python scripts/parallel_smoke.py [--pool-workers 2]

Runs one end-to-end join per algorithm on the process-pool backend,
verifies every result against the single-node oracle, and then asserts
that no ``reproshm*`` shared-memory segment is left behind in
``/dev/shm`` — the leak gate the :mod:`repro.parallel` registry must
pass even across pool start-up, result adoption and shutdown.

Exit codes: 0 all algorithms row-identical and no leaks, 1 otherwise.
"""

from __future__ import annotations

import argparse
import sys

from repro import parallel
from repro.core.joins.base import valid_algorithm_names
from repro.parallel.shm import SESSION_PREFIX
from repro.testkit import generator, oracle


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--pool-workers", type=int, default=2,
                        help="process-pool size (default: 2)")
    parser.add_argument("--seed", type=int, default=2015,
                        help="data-case seed")
    args = parser.parse_args(argv)

    case = generator.generate_data_case(args.seed)
    failures = []
    # run_cell owns the backend toggle (and restores it afterwards);
    # the module constant is the pool size it selects for process cells.
    generator._CELL_POOL_WORKERS = args.pool_workers
    try:
        for algorithm in valid_algorithm_names():
            result = generator.run_cell(
                case, generator.ConfigCell(
                    algorithm, workers=4, backend="process"))
            diff = oracle.compare_tables(
                result, case.oracle_rows(),
                label=f"{algorithm} (process backend)")
            status = "ok" if diff is None else "DIVERGED"
            print(f"  {algorithm:<18s} {status}")
            if diff is not None:
                failures.append(diff)
    finally:
        parallel.shutdown_backend()

    # Scoped to this process's session prefix so a concurrently
    # running repro process cannot trip the gate.
    leaks = parallel.leaked_segments(SESSION_PREFIX)
    if leaks:
        failures.append(f"leaked shared-memory segments: {leaks}")
    for failure in failures:
        print(failure, file=sys.stderr)
    if not failures:
        print(f"parallel smoke passed: "
              f"{len(valid_algorithm_names())} algorithms row-identical "
              f"to the oracle on {args.pool_workers} pool workers, "
              f"no segment leaks")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
