#!/usr/bin/env python
"""Regenerate EXPERIMENTS.md from live experiment runs.

Usage:  python scripts/generate_experiments_md.py [--scale 25000]

Runs every registered experiment, embeds its measured table and shape
checks, and writes EXPERIMENTS.md at the repository root.  The prose
notes comparing against the paper live in PAPER_NOTES below.
"""

from __future__ import annotations

import argparse
import io
import pathlib
import sys

from repro.bench import EXPERIMENTS, WarehouseCache

ROOT = pathlib.Path(__file__).resolve().parent.parent

#: Presentation order: paper artifacts first, then ablations/extensions.
ORDER = [
    "table1", "fig8", "fig9", "fig10", "fig11", "fig12", "fig13",
    "fig14", "fig15",
    "ablation_bf_params", "ablation_pipelining", "ablation_locality",
    "ablation_broadcast_scheme", "ablation_exact_filters",
    "ablation_spill", "ablation_process_thread", "ablation_zigzag_site",
    "ext_cluster_scaling", "ext_skew", "ext_formats",
]

PAPER_NOTES = {
    "table1": (
        "Paper values: repartition 5,854 M shuffled / 165 M sent; "
        "repartition(BF) 591 M / 165 M; zigzag 591 M / 30 M.  Measured "
        "values land within ~5% on every cell (the residual is the "
        "generator's integer key-region rounding plus Bloom false "
        "positives)."
    ),
    "fig8": (
        "Paper: zigzag is the fastest at every point, up to 2.1x over "
        "repartition and 1.8x over repartition(BF).  Measured: same "
        "ordering everywhere; zigzag's speedup vs repartition reaches "
        "~2.3x at sigma_L=0.4 and ~1.9x vs repartition(BF)."
    ),
    "fig9": (
        "Paper: zigzag improves as S_L' or S_T' decreases.  Measured: "
        "both trends hold (the S_T' panel strongly; the S_L' panel "
        "flattens once the smaller shuffle hides completely under the "
        "scan, so points differ only by sampling noise <=5%)."
    ),
    "fig10": (
        "Paper: broadcast preferable only when sigma_T <= 0.001, and "
        "even then 'the advantage is not dramatic'; repartition robust.  "
        "Measured: broadcast ties or wins at sigma_T=0.001 and loses by "
        ">2x at sigma_T=0.01."
    ),
    "fig11": (
        "Paper: the Bloom filter helps in most cases, benefit grows "
        "with |L'|; for very selective sigma_L <= 0.001 the BF overhead "
        "can cancel or outweigh the gain.  Measured: identical shape, "
        ">2x gain at sigma_L=0.2, slight net overhead at 0.001."
    ),
    "fig12": (
        "Paper: without Bloom filters the DB-side join wins only when "
        "sigma_L <= 0.01 and then deteriorates steeply; repartition is "
        "robust.  Measured: crossover in the same place; db "
        "deteriorates >5x from sigma_L=0.001 to 0.2 while hdfs-best "
        "grows ~2x."
    ),
    "fig13": (
        "Paper: with Bloom filters the same crossover remains and "
        "zigzag's time 'increases only slightly' with sigma_L.  "
        "Measured: db(BF) wins at sigma_L <= 0.01, zigzag wins by "
        "sigma_L=0.2 and stays within ~1.4x of its sigma_L=0.001 time."
    ),
    "fig14": (
        "Paper: both algorithms run 'significantly faster' on Parquet "
        "(the 1 TB text table exceeds aggregate memory; scans are 240 s "
        "vs 38 s).  Measured: 2-4x advantage for Parquet at every point."
    ),
    "fig15": (
        "Paper: on text the BF improvement is 'less dramatic' and can "
        "even be negative for repartition and DB-side joins, but zigzag "
        "with its second filter 'is always robustly better'.  Measured: "
        "BF gain on text drops to ~1.0x while zigzag still edges out "
        "repartition(BF) at every sigma_L of panel (a)."
    ),
    "ablation_zigzag_site": (
        "The paper rejects a DB-side zigzag variant without measuring "
        "it (\"scanning the HDFS table twice, without the help of "
        "indexes, is expected to introduce significant overhead\", "
        "Section 3.4).  We built the variant: it returns identical "
        "results, moves exactly as little data, and loses by the cost "
        "of the second scan — ~2x on Parquet, over 200 s on text."
    ),
    "ext_cluster_scaling": (
        "Not a paper figure: an extension quantifying the Section 1 "
        "motivation (growing Hadoop capacity vs a fixed, fully-utilised "
        "EDW)."
    ),
    "ext_formats": (
        "Not a paper figure: Fig. 14's text-vs-Parquet comparison "
        "extended with an ORC-like format (the paper cites ORC alongside "
        "Parquet as the column-store options of the era)."
    ),
    "ext_skew": (
        "Not a paper figure: the paper's values are uniform; this "
        "extension draws join keys from a Zipf distribution and applies "
        "the analytic hottest-worker factor at paper-scale key counts "
        "(see docs/calibration.md).  A noteworthy emergent effect: "
        "because the joinable key region sits at the head of the "
        "popularity ranking, the same key-level S_L' admits far more "
        "tuples under skew."
    ),
}

HEADER = """# EXPERIMENTS — paper vs. measured

Every table and figure of the paper's Section 5 is regenerated by this
repository, plus eight ablations/extensions for the design choices the
paper calls out.  Regenerate everything (including this file) with:

```bash
python -m repro.bench                       # all experiments, printed
pytest benchmarks/ --benchmark-only         # same, as pytest-benchmark runs
python scripts/generate_experiments_md.py   # rewrite EXPERIMENTS.md
```

Reading guide:

* **Counts** (tuples shuffled, DB tuples sent, filter bytes) come from the
  real data plane — rows genuinely move between the simulated engines —
  scaled back to the paper's table sizes.  These match the paper almost
  exactly.
* **Seconds** come from the calibrated time plane (a discrete-event replay
  of the measured execution trace).  Absolute values are anchored on the
  two scan numbers the paper reports (1 TB text ~240 s, projected Parquet
  ~38 s) and land in the paper's 50-700 s band; what the reproduction
  *asserts* are the qualitative claims — who wins, where crossovers fall,
  which trends are monotone — listed as PASS/FAIL checks under each table.
* Every experiment below currently passes all of its shape checks
  (`python -m repro.bench` exits 0).

Known deviations are noted inline; the main ones are:

1. The Fig. 9b point (sigma_T=0.1, sigma_L=0.4, S_T'=0.2, S_L'=0.4) is
   mathematically infeasible with disjoint uniform key regions
   (|JK(T') U JK(L')| = 1.04 * 16M keys), so the generator clamps it to
   the feasibility boundary; the paper's own measured selectivities must
   have been approximate there too.
2. In Fig. 9a the zigzag bars flatten below S_L'=0.4 because the reduced
   shuffle hides entirely under the scan — differences between those
   points are sampling noise (<=5%), which the shape check tolerates.
3. Our simulated DB-side crossover (Fig. 13) falls between sigma_L=0.01
   and 0.1-0.2 depending on the panel, slightly later than the paper's;
   the direction and steepness match.

"""


def main(argv=None) -> int:
    parser = argparse.ArgumentParser()
    parser.add_argument("--scale", type=float, default=25_000)
    args = parser.parse_args(argv)

    missing = set(EXPERIMENTS) - set(ORDER)
    if missing:
        raise SystemExit(f"experiments missing from ORDER: {missing}")

    out = io.StringIO()
    out.write(HEADER)
    cache = WarehouseCache(scale=1.0 / args.scale)
    failures = 0
    for experiment_id in ORDER:
        experiment = EXPERIMENTS[experiment_id]
        result = experiment.run(cache)
        out.write(f"## {experiment.title}\n\n")
        out.write(f"*Paper reference*: {experiment.paper_ref}\n\n")
        note = PAPER_NOTES.get(experiment_id)
        if note:
            out.write(note + "\n\n")
        out.write("```\n" + result.to_report() + "\n```\n\n")
        if result.all_passed():
            out.write("Status: **all checks PASS**\n\n")
        else:
            out.write("Status: **CHECKS FAILING**\n\n")
            failures += 1

    (ROOT / "EXPERIMENTS.md").write_text(out.getvalue())
    print(f"EXPERIMENTS.md written "
          f"({len(out.getvalue().splitlines())} lines, "
          f"{failures} failing experiments)")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
