#!/usr/bin/env python
"""Operational drill: worker failures and memory pressure.

Two things a production engine must survive that the paper only sketches
(the coordinator "is responsible for managing the JEN workers and their
state", Section 4.1; spilling is stated future work, Section 4.4):

1. JEN workers die mid-campaign — the coordinator re-plans block
   assignments over the survivors (replication keeps most reads local)
   and the join still returns the exact answer;
2. the build side stops fitting in worker memory — Grace-hash spilling
   fragments the join, costing disk I/O but never correctness.

Run:  python examples/failure_drill.py
"""

from dataclasses import replace

from repro import (
    HybridWarehouse,
    WorkloadSpec,
    algorithm_by_name,
    build_paper_query,
    default_config,
    generate_workload,
    reference_join,
)
from repro.sim.gantt import render_gantt

SCALE = 1 / 25_000


def build(workload, config):
    warehouse = HybridWarehouse(config)
    warehouse.load_db_table("T", workload.t_table, distribute_on="uniqKey")
    warehouse.database.create_index(
        "T", "idx_bloom", ["corPred", "indPred", "joinKey"]
    )
    warehouse.load_hdfs_table("L", workload.l_table, "parquet")
    return warehouse


def main():
    workload = generate_workload(WorkloadSpec(
        sigma_t=0.1, sigma_l=0.4, s_t=0.2, s_l=0.1,
        t_rows=64_000, l_rows=600_000, n_keys=640,
    ))
    query = build_paper_query(workload)
    truth = reference_join(workload.t_table, workload.l_table, query)
    config = default_config(scale=SCALE)

    # ------------------------------------------------------------------
    print("=== drill 1: JEN workers failing ===")
    warehouse = build(workload, config)
    baseline = algorithm_by_name("zigzag").run(warehouse, query)
    plan = warehouse.jen.coordinator.plan_scan("L")
    print(f"healthy:  30 workers, locality "
          f"{plan.locality_fraction():.0%}, "
          f"{baseline.total_seconds:.1f}s simulated")

    for victim in (3, 11, 27):
        warehouse.jen.fail_worker(victim)
    degraded = algorithm_by_name("zigzag").run(warehouse, query)
    plan = warehouse.jen.coordinator.plan_scan("L")
    correct = degraded.result.to_rows() == truth.to_rows()
    print(f"3 dead:   {warehouse.jen.num_workers} workers, locality "
          f"{plan.locality_fraction():.0%}, "
          f"{degraded.total_seconds:.1f}s simulated, "
          f"result correct: {correct}")

    # ------------------------------------------------------------------
    print("\n=== drill 2: memory pressure (Grace-hash spilling) ===")
    for budget, label in ((0.0, "unlimited"), (5e6, "5M rows/worker")):
        constrained = build(
            workload, replace(config, jen_memory_budget_rows=budget)
        )
        result = algorithm_by_name("repartition").run(constrained, query)
        correct = result.result.to_rows() == truth.to_rows()
        spilled = result.paper_stats().spilled_tuples / 1e6
        print(f"budget {label:<16s} spilled {spilled:8.1f} M tuples, "
              f"{result.total_seconds:6.1f}s, correct: {correct}")

    # ------------------------------------------------------------------
    print("\n=== the degraded zigzag schedule, as a Gantt chart ===")
    print(render_gantt(degraded.timing, width=52))
    print("\ncritical path:", " -> ".join(degraded.critical_path()))


if __name__ == "__main__":
    main()
