#!/usr/bin/env python
"""Storage-format study: text vs Parquet (paper Section 5.4).

Shows the stored sizes of the click log in each format, the scan cost
asymmetry, and how the format changes each algorithm's execution time —
including the paper's observation that Bloom-filter gains are largely
masked by the expensive text scan.

Run:  python examples/format_study.py
"""

from repro import algorithm_by_name
from repro.bench.harness import WarehouseCache
from repro.hdfs.formats import format_by_name
from repro.workload.scenario import log_schema


def main():
    schema = log_schema()
    paper_rows = 15_000_000_000
    print("click log L at paper scale (15 B rows):")
    for name in ("text", "parquet"):
        fmt = format_by_name(name)
        stored = fmt.table_stored_bytes(schema, paper_rows)
        projected = fmt.scan_bytes_per_row(
            schema, ["joinKey", "predAfterJoin", "groupByExtractCol"]
        ) * paper_rows
        print(f"  {name:<8s} stored {stored / 1e12:6.2f} TB   "
              f"scan (projected) {projected / 1e12:6.2f} TB   "
              f"pushdown={fmt.supports_projection_pushdown}")
    print("  (paper: ~1 TB text, 421 GB Parquet, warm scans ~240 s vs "
          "~38 s)\n")

    cache = WarehouseCache()
    algorithms = ["repartition", "repartition(BF)", "zigzag", "db(BF)"]
    print(f"{'algorithm':<18s} {'text':>9s} {'parquet':>9s} {'speedup':>9s}")
    for name in algorithms:
        seconds = {}
        for format_name in ("text", "parquet"):
            setup = cache.setup(0.1, 0.2, s_t=0.1, s_l=0.1,
                                format_name=format_name)
            seconds[format_name] = algorithm_by_name(name).run(
                setup.warehouse, setup.query
            ).total_seconds
        print(f"{name:<18s} {seconds['text']:8.1f}s "
              f"{seconds['parquet']:8.1f}s "
              f"{seconds['text'] / seconds['parquet']:8.2f}x")

    # The paper's Fig. 15 point: on text, the one-way Bloom filter buys
    # little because the shuffle it saves was hidden under the scan.
    print("\nBloom filter gain (repartition -> repartition(BF)) at "
          "sigma_L=0.4:")
    for format_name in ("parquet", "text"):
        setup = cache.setup(0.1, 0.4, s_t=0.2, s_l=0.1,
                            format_name=format_name)
        plain = algorithm_by_name("repartition").run(
            setup.warehouse, setup.query
        ).total_seconds
        bloomed = algorithm_by_name("repartition(BF)").run(
            setup.warehouse, setup.query
        ).total_seconds
        print(f"  {format_name:<8s} {plain:7.1f}s -> {bloomed:7.1f}s "
              f"({plain / bloomed:4.2f}x)")


if __name__ == "__main__":
    main()
