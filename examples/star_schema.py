#!/usr/bin/env python
"""Multi-table queries: star-schema pre-joins in the database.

The paper's scope is the two-way hybrid join; for queries over more
tables it notes (Section 2) that "we need to rely on the query optimizer
in the database to decide on the right join orders, since queries are
issued at the database side".  This example shows that pattern: a fact
table and a product dimension both live in the EDW, the dimension join
runs entirely in the database (ParallelDatabase.join_local), and the
hybrid zigzag join then correlates the *enriched* facts with the HDFS
click log.

Query, in SQL terms::

    SELECT extract_group(L.groupByExtractCol), COUNT(*)
    FROM   F JOIN P ON F.product_id = P.product_id   -- in the EDW
         , L                                          -- on HDFS
    WHERE  P.category <= 2
      AND  F.joinKey = L.joinKey
      AND  days(F.date) - days(L.date) BETWEEN 0 AND 1
    GROUP BY extract_group(L.groupByExtractCol)

Run:  python examples/star_schema.py
"""

from dataclasses import replace

import numpy as np

from repro import (
    HybridWarehouse,
    WorkloadSpec,
    algorithm_by_name,
    build_paper_query,
    default_config,
    generate_workload,
)
from repro.relational.expressions import TruePredicate, compare
from repro.relational.schema import Column, DataType, Schema
from repro.relational.table import Table

NUM_PRODUCTS = 500


def main():
    workload = generate_workload(WorkloadSpec(
        sigma_t=0.3, sigma_l=0.3, s_t=0.3, s_l=0.15,
        t_rows=64_000, l_rows=600_000, n_keys=640,
    ))

    # The fact table: generated transactions plus a product foreign key.
    fact = workload.t_table.with_column(
        Column("product_id", DataType.INT32),
        (workload.t_table.column("dummy2") % NUM_PRODUCTS).astype(np.int32),
    )
    # The dimension: products with categories, 0..19.
    dimension = Table(
        Schema([Column("product_id", DataType.INT32),
                Column("category", DataType.INT32)]),
        {
            "product_id": np.arange(NUM_PRODUCTS, dtype=np.int32),
            "category": (np.arange(NUM_PRODUCTS) % 20).astype(np.int32),
        },
    )

    warehouse = HybridWarehouse(default_config(scale=1 / 25_000))
    warehouse.load_db_table("F", fact, distribute_on="uniqKey")
    warehouse.load_db_table("P", dimension, distribute_on="product_id")
    warehouse.load_hdfs_table("L", workload.l_table, "parquet")

    # Step 1: the dimension join, entirely inside the EDW.
    meta, stats = warehouse.database.join_local(
        "F", "P", "product_id", "product_id",
        result_name="F_enriched",
        right_predicate=compare("category", "<=", 2),
        left_projection=["joinKey", "predAfterJoin"],
        right_projection=["category"],
    )
    print("in-database dimension join:")
    print(f"  {stats.probe_tuples} facts x {stats.build_tuples} "
          f"filtered dimension rows -> {meta.num_rows} enriched facts "
          f"({meta.num_rows / fact.num_rows:.1%} of F)\n")

    # Step 2: the hybrid join against the click log, on the derived fact.
    query = replace(
        build_paper_query(workload),
        db_table="F_enriched",
        db_predicate=TruePredicate(),   # the dimension filter already ran
    )
    print(f"{'algorithm':<18s} {'sim time':>9s}  groups")
    baseline = None
    for name in ("db(BF)", "zigzag"):
        result = algorithm_by_name(name).run(warehouse, query)
        rows = sorted(result.result.to_rows())
        if baseline is None:
            baseline = rows
        status = "identical" if rows == baseline else "MISMATCH"
        print(f"{name:<18s} {result.total_seconds:8.1f}s  "
              f"{result.result.num_rows} ({status})")

    result = algorithm_by_name("zigzag").run(warehouse, query)
    print("\ntop url prefixes for category <= 2 purchases:")
    for prefix, views in sorted(result.result.to_rows(),
                                key=lambda r: -r[1])[:5]:
        print(f"  {prefix:<36s} {views:>8d}")


if __name__ == "__main__":
    main()
