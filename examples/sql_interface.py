#!/usr/bin/env python
"""The paper's SQL interface (Section 4.1.1), reproduced.

The paper drives every join algorithm from a single SQL statement
submitted to DB2 — UDFs compute Bloom filters, contact the JEN
coordinator and stream HDFS data.  This example submits the same query
through the reproduction's SQL front end: once per algorithm, then in
"auto" mode where the advisor picks.

Run:  python examples/sql_interface.py
"""

from repro import (
    HybridWarehouse,
    WorkloadSpec,
    default_config,
    generate_workload,
)
from repro.sql import SqlSession


def main():
    workload = generate_workload(WorkloadSpec(
        sigma_t=0.1, sigma_l=0.4, s_t=0.2, s_l=0.1,
        t_rows=64_000, l_rows=600_000, n_keys=640,
    ))
    warehouse = HybridWarehouse(default_config(scale=1 / 25_000))
    warehouse.load_db_table("T", workload.t_table, distribute_on="uniqKey")
    warehouse.database.create_index(
        "T", "idx_bloom", ["corPred", "indPred", "joinKey"]
    )
    warehouse.load_hdfs_table("L", workload.l_table, "parquet")
    session = SqlSession(warehouse)

    tt, lt = workload.t_thresholds, workload.l_thresholds
    sql = f"""
        SELECT extract_group(L.groupByExtractCol) AS url_prefix,
               COUNT(*) AS views
        FROM T, L
        WHERE T.corPred <= {tt.cor_threshold}
          AND T.indPred <= {tt.ind_threshold}
          AND L.corPred <= {lt.cor_threshold}
          AND L.indPred <= {lt.ind_threshold}
          AND T.joinKey = L.joinKey
          AND days(T.predAfterJoin) - days(L.predAfterJoin) >= 0
          AND days(T.predAfterJoin) - days(L.predAfterJoin) <= 1
        GROUP BY extract_group(L.groupByExtractCol)
    """
    print("query (the paper's Section 5 benchmark statement):")
    print(sql)

    # What does the binder make of it?
    translation = session.explain(sql)
    query = translation.query
    print("translated plan:")
    print(f"  database side: {query.db_table}  "
          f"projection={query.db_projection}")
    print(f"  HDFS side:     {query.hdfs_table}  "
          f"projection={query.hdfs_projection}")
    print(f"  join:          {query.db_join_key} = {query.hdfs_join_key}")
    print(f"  derived:       {[d.name for d in query.hdfs_derived]}")
    print(f"  group by:      {query.group_by}\n")

    print(f"{'algorithm':<18s} {'sim time':>9s}  result")
    baseline = None
    for name in ("db(BF)", "repartition(BF)", "zigzag"):
        result = session.execute(sql, algorithm=name)
        rows = sorted(result.rows())
        if baseline is None:
            baseline = rows
        agreement = "identical" if rows == baseline else "MISMATCH"
        print(f"{name:<18s} {result.simulated_seconds:8.1f}s  "
              f"{result.table.num_rows} groups ({agreement})")

    auto = session.execute(sql)
    print(f"\nauto mode picked {auto.algorithm!r}: "
          f"{auto.advisor_rationale}")
    print("\ntop URL prefixes:")
    for prefix, views in sorted(auto.rows(), key=lambda r: -r[1])[:5]:
        print(f"  {prefix:<36s} {views:>8d}")


if __name__ == "__main__":
    main()
