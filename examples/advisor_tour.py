#!/usr/bin/env python
"""A tour of the paper's Section 5.5 conclusions, as executable output.

Sweeps the local-predicate selectivities and shows which algorithm wins
where — the broadcast region (tiny T'), the DB-side region (tiny L'),
and the wide zigzag region in between — first with the analytic advisor,
then validated against the full simulation at a few points.

Run:  python examples/advisor_tour.py
"""

from repro import JoinAdvisor, WorkloadEstimate, algorithm_by_name
from repro.bench.harness import WarehouseCache


def shorten(name: str) -> str:
    return {
        "repartition(BF)": "repart(BF)",
        "repartition": "repart",
        "broadcast": "bcast",
    }.get(name, name)


def main():
    advisor = JoinAdvisor()
    sigma_ts = [0.0005, 0.001, 0.01, 0.05, 0.1, 0.2]
    sigma_ls = [0.001, 0.01, 0.05, 0.1, 0.2, 0.4]

    print("Winner by (sigma_T, sigma_L) — advisor estimates "
          "(S_T'=0.2, S_L'=0.1, Parquet)\n")
    header = "sigma_T \\ sigma_L" + "".join(
        f"{sigma_l:>12g}" for sigma_l in sigma_ls
    )
    print(header)
    for sigma_t in sigma_ts:
        cells = []
        for sigma_l in sigma_ls:
            decision = advisor.decide(WorkloadEstimate(
                t_rows=1.6e9, l_rows=15e9,
                sigma_t=sigma_t, sigma_l=sigma_l, s_t=0.2, s_l=0.1,
            ))
            cells.append(f"{shorten(decision.best):>12s}")
        print(f"{sigma_t:>17g}" + "".join(cells))

    print("\nThe paper's reading (Section 5.5): broadcast only for very "
          "selective\npredicates on T; DB-side only for very selective "
          "predicates on L;\nzigzag everywhere else.\n")

    # Validate three representative cells against the full simulation.
    print("validation against full simulation:")
    cache = WarehouseCache()
    points = [
        (0.001, 0.1, "broadcast region"),
        (0.1, 0.001, "DB-side region"),
        (0.1, 0.2, "zigzag region"),
    ]
    candidates = ["db(BF)", "broadcast", "repartition(BF)", "zigzag"]
    for sigma_t, sigma_l, label in points:
        setup = cache.setup(sigma_t, sigma_l, s_l=0.1)
        times = {
            name: algorithm_by_name(name).run(
                setup.warehouse, setup.query
            ).total_seconds
            for name in candidates
        }
        winner = min(times, key=times.get)
        listing = ", ".join(
            f"{shorten(n)}={t:.0f}s" for n, t in sorted(
                times.items(), key=lambda kv: kv[1]
            )
        )
        print(f"  sigma_T={sigma_t:g} sigma_L={sigma_l:g} ({label}): "
              f"winner={shorten(winner)}  [{listing}]")


if __name__ == "__main__":
    main()
