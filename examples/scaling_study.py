#!/usr/bin/env python
"""The paper's headline claim: as the HDFS data grows, execute the join
on the HDFS side.

Grows the filtered click log (by sweeping sigma_L) and compares the
classic DB-side strategy every commercial system used against the
HDFS-side zigzag join.  The DB-side join deteriorates steeply because it
ships the big side *into* the constrained warehouse; the zigzag join
stays nearly flat because only join-participating records cross the
network — "it is better to move the smaller table to the side of the
bigger table" (Section 7).

Run:  python examples/scaling_study.py
"""

from repro import algorithm_by_name
from repro.bench.harness import WarehouseCache


def bar(seconds: float, scale: float = 0.15) -> str:
    return "#" * max(1, int(seconds * scale))


def main():
    cache = WarehouseCache()
    sigma_ls = [0.001, 0.01, 0.05, 0.1, 0.2, 0.4]
    print("filtered HDFS rows grow left to right "
          "(sigma_L from 0.001 to 0.4; sigma_T=0.1)\n")
    print(f"{'sigma_L':>8s} {'L-rows':>9s} {'db(BF)':>9s} {'zigzag':>9s}")
    rows = []
    for sigma_l in sigma_ls:
        setup = cache.setup(0.1, sigma_l, s_l=0.1)
        db = algorithm_by_name("db(BF)").run(
            setup.warehouse, setup.query
        )
        zigzag = algorithm_by_name("zigzag").run(
            setup.warehouse, setup.query
        )
        l_rows = db.paper_stats().hdfs_rows_after_predicates
        rows.append((sigma_l, l_rows, db.total_seconds,
                     zigzag.total_seconds))
        print(f"{sigma_l:>8g} {l_rows / 1e9:8.2f}B "
              f"{db.total_seconds:8.1f}s {zigzag.total_seconds:8.1f}s")

    print("\ndb(BF)  " + " | ".join(bar(r[2]) for r in rows))
    print("zigzag  " + " | ".join(bar(r[3]) for r in rows))

    crossover = next(
        (sigma_l for sigma_l, _rows, db, zz in rows if db > zz), None
    )
    print(f"\ncrossover: HDFS-side wins from sigma_L ~ {crossover:g} "
          "(the paper places it between 0.01 and 0.1)")


if __name__ == "__main__":
    main()
