#!/usr/bin/env python
"""Quickstart: build a hybrid warehouse and run every join algorithm.

Generates the paper's synthetic workload at a small data-plane scale,
loads the transaction table into the parallel database and the click log
into simulated HDFS, runs all five join algorithms (plus the two
exact-filter baselines), checks they agree, and prints execution times
and data movement at paper scale.

Run:  python examples/quickstart.py
"""

from repro import (
    HybridWarehouse,
    WorkloadSpec,
    algorithm_by_name,
    build_paper_query,
    default_config,
    generate_workload,
    measure_selectivities,
    reference_join,
)


def main():
    # ------------------------------------------------------------------
    # 1. Generate the paper's workload (Table 1 parameter point):
    #    sigma_T=0.1, sigma_L=0.4, S_T'=0.2, S_L'=0.1.
    # ------------------------------------------------------------------
    spec = WorkloadSpec(
        sigma_t=0.1, sigma_l=0.4, s_t=0.2, s_l=0.1,
        t_rows=64_000, l_rows=600_000, n_keys=640,
    )
    workload = generate_workload(spec)
    query = build_paper_query(workload)
    report = measure_selectivities(
        workload.t_table, workload.l_table, query
    )
    print("workload:", report.describe())

    # ------------------------------------------------------------------
    # 2. Stand up the hybrid warehouse: 30 DB2-style workers + 30 HDFS
    #    DataNodes running JEN workers, joined by a 20 Gbit switch.
    # ------------------------------------------------------------------
    warehouse = HybridWarehouse(default_config(scale=1 / 25_000))
    warehouse.load_db_table("T", workload.t_table, distribute_on="uniqKey")
    warehouse.database.create_index("T", "idx_pred", ["corPred", "indPred"])
    warehouse.database.create_index(
        "T", "idx_bloom", ["corPred", "indPred", "joinKey"]
    )
    warehouse.load_hdfs_table("L", workload.l_table, "parquet")

    # ------------------------------------------------------------------
    # 3. Run every algorithm and compare with the single-node reference.
    # ------------------------------------------------------------------
    reference = reference_join(workload.t_table, workload.l_table, query)
    print(f"\nreference result: {reference.num_rows} groups, "
          f"{int(reference.column('count').sum())} joined pairs\n")

    print(f"{'algorithm':<18s} {'sim time':>9s} {'shuffled':>11s} "
          f"{'DB sent':>9s}  correct")
    for name in ("db", "db(BF)", "broadcast", "repartition",
                 "repartition(BF)", "zigzag", "semijoin", "perf"):
        result = algorithm_by_name(name).run(warehouse, query)
        stats = result.paper_stats()
        correct = result.result.to_rows() == reference.to_rows()
        print(f"{name:<18s} {result.total_seconds:8.1f}s "
              f"{stats.hdfs_tuples_shuffled / 1e6:9.0f} M "
              f"{stats.db_tuples_sent / 1e6:7.1f} M  {correct}")

    # ------------------------------------------------------------------
    # 4. Look inside one run: the zigzag join's phase schedule.
    # ------------------------------------------------------------------
    zigzag = algorithm_by_name("zigzag").run(warehouse, query)
    print("\n" + zigzag.timing.breakdown())


if __name__ == "__main__":
    main()
