#!/usr/bin/env python
"""The paper's Section 2 scenario, end to end.

A retailer stores sales transactions in its EDW and click logs in HDFS,
and asks: *how many views did each URL prefix get from East-Coast
customers who bought Canon cameras within one day of their visit?*

This example builds that query explicitly — local predicates on both
tables (including a scalar region() UDF on the click log), the uid
equi-join, the one-day date window and the per-URL-prefix count — lets
the advisor pick an algorithm, runs it, and prints the top URL prefixes.

Run:  python examples/ad_campaign.py
"""

import numpy as np

from repro import (
    HybridWarehouse,
    JoinAdvisor,
    WorkloadEstimate,
    WorkloadSpec,
    algorithm_by_name,
    default_config,
    generate_workload,
)
from repro.edw.udf import _extract_group
from repro.query.query import DerivedColumn, HybridQuery
from repro.relational.aggregates import AggregateSpec
from repro.relational.expressions import BetweenDayDiff, UdfPredicate, compare


def region_is_east_coast(ip_codes: np.ndarray) -> np.ndarray:
    """The paper's region(L.ip) = 'East Coast' UDF.

    We reuse the log's independent predicate column as an encoded IP
    octet; "East Coast" is a contiguous range of it.
    """
    return ip_codes < 400_000


def main():
    # Transactions in the database; click logs on HDFS.  The generated
    # corPred column plays the product category ("Canon Camera" is a
    # range of category codes) and indPred the encoded client IP.
    workload = generate_workload(WorkloadSpec(
        sigma_t=0.08, sigma_l=0.35, s_t=0.25, s_l=0.12,
        t_rows=64_000, l_rows=600_000, n_keys=640,
    ))

    warehouse = HybridWarehouse(default_config(scale=1 / 25_000))
    warehouse.load_db_table("transactions", workload.t_table,
                            distribute_on="uniqKey")
    warehouse.database.create_index(
        "transactions", "idx_bloom", ["corPred", "indPred", "joinKey"]
    )
    warehouse.load_hdfs_table("clicks", workload.l_table, "parquet")

    query = HybridQuery(
        db_table="transactions",
        hdfs_table="clicks",
        db_join_key="joinKey",        # T.uid
        hdfs_join_key="joinKey",      # L.uid
        db_projection=("joinKey", "predAfterJoin"),
        hdfs_projection=("joinKey", "predAfterJoin", "groupByExtractCol",
                         "indPred"),
        db_predicate=(
            # category = 'Canon Camera' plus a store-level filter.
            compare("corPred", "<=", workload.t_thresholds.cor_threshold)
            & compare("indPred", "<=", workload.t_thresholds.ind_threshold)
        ),
        hdfs_predicate=(
            compare("corPred", "<=", workload.l_thresholds.cor_threshold)
            & UdfPredicate("region_east_coast", "indPred",
                           region_is_east_coast)
        ),
        hdfs_derived=(
            DerivedColumn(
                name="urlPrefix",
                source="groupByExtractCol",
                udf_name="extract_group",
                function=_extract_group,
            ),
        ),
        post_join_predicate=BetweenDayDiff(
            "t_predAfterJoin", "l_predAfterJoin", low=0, high=1
        ),
        group_by=("l_urlPrefix",),
        aggregates=(AggregateSpec("count"),),
    )

    # Let the advisor choose where the join should run.
    advisor = JoinAdvisor(warehouse.config)
    decision = advisor.decide(WorkloadEstimate(
        t_rows=1.6e9, l_rows=15e9,
        sigma_t=0.08, sigma_l=0.35 * 0.4,  # region() cuts L' further
        s_t=0.25, s_l=0.12,
    ))
    print(f"advisor picks: {decision.best}  ({decision.rationale})")
    for name, estimate in decision.ranking():
        print(f"  est {name:<16s} {estimate:8.1f}s")

    result = algorithm_by_name(decision.best).run(warehouse, query)
    print(f"\nsimulated execution: {result.total_seconds:.1f}s "
          f"at paper scale\n")

    # Top URL prefixes by correlated views.
    rows = sorted(result.result.to_rows(), key=lambda r: -r[1])[:10]
    print(f"{'url_prefix':<34s} {'views':>8s}")
    for prefix, views in rows:
        print(f"{prefix:<34s} {views:>8d}")


if __name__ == "__main__":
    main()
