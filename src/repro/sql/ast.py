"""Abstract syntax tree for the SQL dialect."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple


@dataclass(frozen=True)
class ColumnRef:
    """``table.column`` or a bare ``column`` (resolved by the binder)."""

    table: Optional[str]
    column: str

    def display(self) -> str:
        """Source-style rendering."""
        return f"{self.table}.{self.column}" if self.table else self.column


@dataclass(frozen=True)
class Literal:
    """A number or string constant."""

    value: object


@dataclass(frozen=True)
class FuncCall:
    """A scalar UDF application, e.g. ``extract_group(L.col)``."""

    name: str
    argument: "Expression"

    def display(self) -> str:
        """Source-style rendering."""
        inner = (self.argument.display()
                 if hasattr(self.argument, "display")
                 else repr(self.argument))
        return f"{self.name}({inner})"


@dataclass(frozen=True)
class BinaryOp:
    """An arithmetic expression, currently ``-`` and ``+``."""

    op: str
    left: "Expression"
    right: "Expression"


#: Anything usable as a comparison operand.
Expression = object


@dataclass(frozen=True)
class InList:
    """``expr IN (literal, ...)`` in the WHERE clause."""

    expression: "Expression"
    values: Tuple


@dataclass(frozen=True)
class Comparison:
    """``left <op> right`` in the WHERE clause."""

    op: str
    left: Expression
    right: Expression


@dataclass(frozen=True)
class Aggregate:
    """``COUNT(*)`` / ``SUM(col)`` / ... in the select list."""

    function: str
    argument: Optional[Expression]
    alias: Optional[str] = None


@dataclass(frozen=True)
class SelectItem:
    """One select-list entry: grouping expression or aggregate."""

    expression: Expression
    alias: Optional[str] = None


@dataclass(frozen=True)
class TableRef:
    """A FROM-clause table with an optional alias."""

    name: str
    alias: Optional[str] = None

    def binding_name(self) -> str:
        """The name columns are qualified with."""
        return self.alias or self.name


@dataclass(frozen=True)
class OrderItem:
    """One ORDER BY entry."""

    expression: Expression
    descending: bool = False


@dataclass(frozen=True)
class SelectStatement:
    """A parsed query in the paper's template."""

    select_items: Tuple[SelectItem, ...]
    tables: Tuple[TableRef, ...]
    where: Tuple[Comparison, ...]
    group_by: Tuple[Expression, ...]
    order_by: Tuple[OrderItem, ...] = ()
    limit: Optional[int] = None
