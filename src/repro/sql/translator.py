"""Binding and translation: SQL AST → :class:`HybridQuery`.

The translator resolves the FROM tables against the warehouse catalogs —
exactly one must live in HDFS, and one *or more* in the database (the
paper's Section 2 position: multi-table queries resolve their database
joins inside the EDW, whose optimizer owns join ordering).  It then
classifies the WHERE conjuncts into

* local predicates on each database table,
* local predicates on the HDFS table,
* in-database equi-joins (star-schema dimension joins, executed by
  :meth:`repro.edw.database.ParallelDatabase.join_local` before the
  hybrid join),
* exactly one cross-system equi-join condition, and
* post-join predicates over both sides (including the paper's
  ``days(a) - days(b) BETWEEN`` window),

derives the minimal projections each side must ship, turns grouping UDFs
into scan-time derived columns, and assembles the
:class:`~repro.query.query.HybridQuery` the join algorithms execute.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

import numpy as np

from repro.errors import UdfError
from repro.query.query import DerivedColumn, HybridQuery
from repro.relational.aggregates import AggregateSpec
from repro.relational.expressions import (
    BetweenDayDiff,
    InSetPredicate,
    ColumnPairPredicate,
    ColumnPredicate,
    CompareOp,
    Predicate,
    TruePredicate,
    UdfPredicate,
    conjunction_of,
)
from repro.sql.ast import (
    Aggregate,
    InList,
    BinaryOp,
    ColumnRef,
    FuncCall,
    Literal,
    SelectStatement,
)
from repro.sql.lexer import SqlError

#: Functions treated as the identity over date columns (dates are stored
#: as day numbers, so ``days(x)`` is x).
DATE_IDENTITY_FUNCS = {"days", "day"}

#: Sentinel db_table value while pre-joins have not materialised yet.
PREJOIN_PLACEHOLDER = "__prejoined_fact__"


@dataclass(frozen=True)
class BoundColumn:
    """A column resolved to one table on one side of the hybrid join."""

    side: str        # "db" or "hdfs"
    column: str
    binding: str = ""

    def prefixed(self, query_db_prefix="t_", query_hdfs_prefix="l_") -> str:
        """Name on the joined (prefixed) schema."""
        prefix = query_db_prefix if self.side == "db" else query_hdfs_prefix
        return f"{prefix}{self.column}"


@dataclass(frozen=True)
class PrejoinStep:
    """One in-database dimension join of the star pre-join chain."""

    right_table: str          # real catalog name of the dimension
    right_binding: str        # FROM-clause binding (for error messages)
    left_key: str             # key column on the accumulated fact side
    right_key: str            # key column on the dimension
    right_predicate: Predicate
    right_projection: Tuple[str, ...]


@dataclass
class Translation:
    """A translated statement plus presentation metadata."""

    query: HybridQuery
    #: Result column names in select order (post-rename).
    output_names: List[str]
    #: Mapping applied to the algorithm result (internal -> display).
    renames: Dict[str, str]
    #: AVG aggregates that were decomposed into SUM + COUNT; maps the
    #: display name to its (sum_name, count_name) internals.
    avg_decompositions: Dict[str, Tuple[str, str]]
    #: Final presentation ordering: (output column, descending) pairs.
    ordering: List[Tuple[str, bool]] = field(default_factory=list)
    #: Row limit applied after ordering (None = all rows).
    limit: Optional[int] = None
    #: In-database pre-joins to run before the hybrid join (star schema).
    prejoins: List[PrejoinStep] = field(default_factory=list)
    #: The fact table (real name), its predicate and projection for the
    #: first pre-join step.  Unused when ``prejoins`` is empty.
    fact_table: str = ""
    fact_predicate: Predicate = field(default_factory=TruePredicate)
    fact_projection: Tuple[str, ...] = ()

    def needs_prejoin(self) -> bool:
        """True when the statement joins dimensions inside the EDW."""
        return bool(self.prejoins)


class _Binder:
    def __init__(self, statement: SelectStatement, warehouse):
        self.statement = statement
        self.warehouse = warehouse
        self.udfs = warehouse.udfs
        #: binding name -> (side, schema, real table name)
        self.sides: Dict[str, Tuple[str, object, str]] = {}
        #: database binding names in FROM order
        self.db_bindings: List[str] = []
        self._bind_tables()

    # ------------------------------------------------------------------
    def _bind_tables(self) -> None:
        if len(self.statement.tables) < 2:
            raise SqlError(
                "hybrid queries join at least two tables (one in the "
                "database, one in HDFS)"
            )
        hdfs_tables = []
        for table in self.statement.tables:
            in_db = self._db_has(table.name)
            in_hdfs = self._hdfs_has(table.name)
            binding = table.binding_name()
            if binding in self.sides:
                raise SqlError(f"duplicate table binding {binding!r}")
            if in_db and in_hdfs:
                raise SqlError(
                    f"table {table.name!r} exists on both sides; "
                    "qualify your intent by renaming one"
                )
            if in_db:
                schema = self.warehouse.database.table_meta(
                    table.name
                ).schema
                self.sides[binding] = ("db", schema, table.name)
                self.db_bindings.append(binding)
            elif in_hdfs:
                schema = self.warehouse.hdfs.table_meta(table.name).schema
                self.sides[binding] = ("hdfs", schema, table.name)
                hdfs_tables.append(table)
            else:
                raise SqlError(f"unknown table {table.name!r}")
        if len(hdfs_tables) != 1:
            raise SqlError(
                "exactly one FROM table must live in HDFS "
                f"(found {len(hdfs_tables)}); all others must be "
                "database tables"
            )
        if not self.db_bindings:
            raise SqlError(
                "at least one FROM table must live in the database"
            )
        self.hdfs_binding = hdfs_tables[0].binding_name()
        self.hdfs_name = hdfs_tables[0].name
        self.hdfs_schema = self.sides[self.hdfs_binding][1]

    def _db_has(self, name: str) -> bool:
        try:
            self.warehouse.database.table_meta(name)
            return True
        except Exception:
            return False

    def _hdfs_has(self, name: str) -> bool:
        try:
            self.warehouse.hdfs.table_meta(name)
            return True
        except Exception:
            return False

    # ------------------------------------------------------------------
    def bind_column(self, ref: ColumnRef) -> BoundColumn:
        """Resolve a (possibly unqualified) column reference."""
        if ref.table is not None:
            if ref.table not in self.sides:
                raise SqlError(f"unknown table qualifier {ref.table!r}")
            side, schema, _name = self.sides[ref.table]
            if not schema.has_column(ref.column):
                raise SqlError(
                    f"table {ref.table!r} has no column {ref.column!r}"
                )
            return BoundColumn(side, ref.column, ref.table)
        hits = []
        for binding, (side, schema, _name) in self.sides.items():
            if schema.has_column(ref.column):
                hits.append(BoundColumn(side, ref.column, binding))
        if not hits:
            raise SqlError(f"unknown column {ref.column!r}")
        if len(hits) > 1:
            raise SqlError(
                f"ambiguous column {ref.column!r}: qualify it with a "
                "table name"
            )
        return hits[0]

    def vectorized_udf(self, name: str):
        """A vectorised form of a registered scalar UDF."""
        if name not in self.udfs.names():
            raise SqlError(
                f"unknown UDF {name!r}; register it on the warehouse first"
            )

        def apply(values: np.ndarray) -> np.ndarray:
            if values.size == 0:
                return np.empty(0)
            vector = np.vectorize(lambda v: self.udfs.call(name, v))
            return vector(values)
        return apply


def _strip_date_identity(expression):
    """Unwrap ``days(x)`` to ``x``."""
    if isinstance(expression, FuncCall) and \
            expression.name.lower() in DATE_IDENTITY_FUNCS:
        return expression.argument
    return expression


def translate(statement: SelectStatement, warehouse) -> Translation:
    """Translate a parsed statement against the warehouse catalogs."""
    binder = _Binder(statement, warehouse)

    db_predicates: Dict[str, List[Predicate]] = {
        binding: [] for binding in binder.db_bindings
    }
    hdfs_predicates: List[Predicate] = []
    cross_joins: List[Tuple[BoundColumn, BoundColumn]] = []
    db_joins: List[Tuple[BoundColumn, BoundColumn]] = []
    post_lower: Dict[Tuple[str, str], int] = {}
    post_upper: Dict[Tuple[str, str], int] = {}
    post_other: List[Predicate] = []
    post_columns: Set[BoundColumn] = set()

    for comparison in statement.where:
        if isinstance(comparison, InList):
            _classify_in_list(comparison, binder, db_predicates,
                              hdfs_predicates)
            continue
        _classify(comparison, binder, db_predicates, hdfs_predicates,
                  cross_joins, db_joins, post_lower, post_upper,
                  post_other, post_columns)

    if len(cross_joins) != 1:
        raise SqlError(
            f"expected exactly one cross-system equi-join condition, "
            f"found {len(cross_joins)}"
        )
    db_side, hdfs_side = cross_joins[0]

    post_predicates = list(post_other)
    for (left, right) in set(post_lower) | set(post_upper):
        low = post_lower.get((left, right))
        high = post_upper.get((left, right))
        post_predicates.append(BetweenDayDiff(
            left, right,
            low=low if low is not None else -(2**31),
            high=high if high is not None else 2**31,
        ))

    # ------------------------------------------------------------------
    # Select list: group expressions and aggregates.
    # ------------------------------------------------------------------
    group_exprs = [_strip_date_identity(e) for e in statement.group_by]
    derived: List[DerivedColumn] = []
    group_names: List[str] = []
    #: columns each table must contribute downstream.
    needed: Dict[str, Set[str]] = {
        binding: set() for binding in binder.sides
    }

    def note_needed(bound: BoundColumn) -> None:
        needed[bound.binding].add(bound.column)

    for expression in group_exprs:
        name, _display = _bind_group_expression(
            expression, binder, derived, note_needed,
        )
        group_names.append(name)

    aggregates: List[AggregateSpec] = []
    output_names: List[str] = []
    renames: Dict[str, str] = {}
    avg_decompositions: Dict[str, Tuple[str, str]] = {}
    aggregate_signatures: List[Tuple[str, Optional[str], str]] = []
    seen_groups = 0

    for item in statement.select_items:
        if isinstance(item.expression, Aggregate):
            _bind_aggregate(
                item.expression, item.alias, binder, aggregates,
                output_names, renames, avg_decompositions, note_needed,
                aggregate_signatures,
            )
            continue
        expression = _strip_date_identity(item.expression)
        name, display = _bind_group_expression(
            expression, binder, derived, note_needed,
        )
        if name not in group_names:
            raise SqlError(
                f"select expression {display!r} is not in GROUP BY"
            )
        seen_groups += 1
        final = item.alias or display
        renames[name] = final
        output_names.append(final)

    if not group_names:
        raise SqlError(
            "the paper's query template always groups and aggregates; "
            "add a GROUP BY"
        )
    if seen_groups != len(group_names):
        raise SqlError("every GROUP BY expression must appear in SELECT")
    if not aggregates:
        raise SqlError("at least one aggregate is required")

    for bound in post_columns:
        note_needed(bound)

    # ------------------------------------------------------------------
    # Star pre-join plan (multiple database tables).  The hybrid join's
    # projection is fixed *before* planning: the pre-join key columns the
    # planner adds are consumed inside the database and never shipped.
    # ------------------------------------------------------------------
    db_needed_all: Set[str] = set()
    for binding in binder.db_bindings:
        db_needed_all |= needed[binding]

    prejoins: List[PrejoinStep] = []
    fact_binding = db_side.binding
    if len(binder.db_bindings) > 1:
        prejoins = _plan_prejoins(binder, fact_binding, db_joins,
                                  db_predicates, needed)
    elif db_joins:
        raise SqlError(
            "in-database join conditions require more than one database "
            "table in FROM"
        )

    # ------------------------------------------------------------------
    # Projections: join keys + post-join columns + grouping/aggregates.
    # ------------------------------------------------------------------
    db_projection = [db_side.column] + sorted(
        db_needed_all - {db_side.column}
    )
    hdfs_needed = needed[binder.hdfs_binding]
    hdfs_projection = [hdfs_side.column] + sorted(
        hdfs_needed - {hdfs_side.column}
    )

    if prejoins:
        db_table_name = PREJOIN_PLACEHOLDER
        db_predicate: Predicate = TruePredicate()
        fact_projection = tuple(
            sorted(needed[fact_binding] | {db_side.column})
        )
        fact_predicate = conjunction_of(db_predicates[fact_binding])
        fact_table = binder.sides[fact_binding][2]
    else:
        db_table_name = binder.sides[fact_binding][2]
        db_predicate = conjunction_of(db_predicates[fact_binding])
        fact_projection = ()
        fact_predicate = TruePredicate()
        fact_table = ""

    query = HybridQuery(
        db_table=db_table_name,
        hdfs_table=binder.hdfs_name,
        db_join_key=db_side.column,
        hdfs_join_key=hdfs_side.column,
        db_projection=tuple(db_projection),
        hdfs_projection=tuple(hdfs_projection),
        db_predicate=db_predicate,
        hdfs_predicate=conjunction_of(hdfs_predicates),
        hdfs_derived=tuple(derived),
        post_join_predicate=(
            conjunction_of(post_predicates) if post_predicates else None
        ),
        group_by=tuple(group_names),
        aggregates=tuple(aggregates),
    )
    ordering = [
        (_resolve_order_target(item.expression, binder, output_names,
                               renames, derived, aggregate_signatures),
         item.descending)
        for item in statement.order_by
    ]
    return Translation(
        query=query,
        output_names=output_names,
        renames=renames,
        avg_decompositions=avg_decompositions,
        ordering=ordering,
        limit=statement.limit,
        prejoins=prejoins,
        fact_table=fact_table,
        fact_predicate=fact_predicate,
        fact_projection=fact_projection,
    )


def _resolve_order_target(expression, binder, output_names, renames,
                          derived, aggregate_signatures) -> str:
    """Map an ORDER BY expression to an output column name."""
    expression = _strip_date_identity(expression)
    # A bare name may simply be a select alias / output column.
    if isinstance(expression, ColumnRef) and expression.table is None \
            and expression.column in output_names:
        return expression.column
    if isinstance(expression, Aggregate):
        argument = expression.argument
        if argument is None:
            signature = (expression.function, None)
        else:
            argument = _strip_date_identity(argument)
            display = getattr(argument, "display", lambda: "?")()
            signature = (expression.function, display)
        for function, arg_display, output in aggregate_signatures:
            if (function, arg_display) == signature:
                return output
        raise SqlError(
            "ORDER BY aggregates must appear in SELECT "
            f"(could not match {expression.function.upper()})"
        )
    if isinstance(expression, (ColumnRef, FuncCall)):
        internal, display = _bind_group_expression(
            expression, binder, list(derived), lambda bound: None,
        )
        final = renames.get(internal)
        if final in output_names:
            return final
        if display in output_names:
            return display
        raise SqlError(
            f"ORDER BY expression {display!r} must appear in SELECT"
        )
    raise SqlError(f"unsupported ORDER BY expression: {expression!r}")


def _plan_prejoins(binder, fact_binding, db_joins, db_predicates,
                   needed) -> List[PrejoinStep]:
    """Left-deep dimension-join chain rooted at the fact table."""
    steps: List[PrejoinStep] = []
    joined = {fact_binding}
    remaining = [binding for binding in binder.db_bindings
                 if binding != fact_binding]
    conditions = list(db_joins)
    while remaining:
        progressed = False
        for condition in list(conditions):
            left, right = condition
            if left.binding in joined and right.binding in remaining:
                inner, outer = left, right
            elif right.binding in joined and left.binding in remaining:
                inner, outer = right, left
            else:
                continue
            # The joined set's key column must survive the chain so far.
            needed[inner.binding].add(inner.column)
            steps.append(PrejoinStep(
                right_table=binder.sides[outer.binding][2],
                right_binding=outer.binding,
                left_key=inner.column,
                right_key=outer.column,
                right_predicate=conjunction_of(
                    db_predicates[outer.binding]
                ),
                right_projection=tuple(sorted(needed[outer.binding])),
            ))
            joined.add(outer.binding)
            remaining.remove(outer.binding)
            conditions.remove(condition)
            progressed = True
            break
        if not progressed:
            raise SqlError(
                "database tables "
                f"{remaining!r} have no join condition connecting them "
                "to the fact table"
            )
    if conditions:
        raise SqlError(
            "redundant in-database join conditions are not supported "
            "(each dimension joins the fact chain exactly once)"
        )
    return steps


# ---------------------------------------------------------------------------
# WHERE classification
# ---------------------------------------------------------------------------
def _classify_in_list(condition, binder, db_predicates, hdfs_predicates):
    """``col IN (...)`` is a local predicate on whichever side owns it."""
    expression = _strip_date_identity(condition.expression)
    if not isinstance(expression, ColumnRef):
        raise SqlError("IN applies to a single column")
    bound = binder.bind_column(expression)
    predicate = InSetPredicate(bound.column, tuple(condition.values))
    if bound.side == "db":
        db_predicates[bound.binding].append(predicate)
    else:
        hdfs_predicates.append(predicate)



def _classify(comparison, binder, db_predicates, hdfs_predicates,
              cross_joins, db_joins, post_lower, post_upper, post_other,
              post_columns):
    left = _strip_date_identity(comparison.left)
    right = _strip_date_identity(comparison.right)

    # literal on the left: normalise to the right.
    if isinstance(left, Literal) and not isinstance(right, Literal):
        flipped = {"<": ">", "<=": ">=", ">": "<", ">=": "<=",
                   "==": "==", "!=": "!="}
        _classify(
            type(comparison)(flipped[comparison.op], right, left),
            binder, db_predicates, hdfs_predicates, cross_joins,
            db_joins, post_lower, post_upper, post_other, post_columns,
        )
        return

    # col = col : join condition or post-join comparison.
    if isinstance(left, ColumnRef) and isinstance(right, ColumnRef):
        bound_left = binder.bind_column(left)
        bound_right = binder.bind_column(right)
        if bound_left.side == bound_right.side:
            if bound_left.side == "db" and \
                    bound_left.binding != bound_right.binding and \
                    comparison.op == "==":
                db_joins.append((bound_left, bound_right))
                return
            raise SqlError(
                "single-table column-to-column predicates are not part "
                "of the paper's query template"
            )
        if comparison.op == "==":
            if bound_left.side == "db":
                cross_joins.append((bound_left, bound_right))
            else:
                cross_joins.append((bound_right, bound_left))
            return
        post_other.append(ColumnPairPredicate(
            bound_left.prefixed(), CompareOp(comparison.op),
            bound_right.prefixed(),
        ))
        post_columns.update((bound_left, bound_right))
        return

    # (a - b) op literal : post-join window.
    if isinstance(left, BinaryOp) and isinstance(right, Literal):
        _classify_window(left, comparison.op, right.value, binder,
                         post_lower, post_upper, post_columns)
        return

    # udf(col) op literal, or col op literal: local predicate.
    if isinstance(right, Literal):
        if isinstance(left, FuncCall):
            inner = left.argument
            if not isinstance(inner, ColumnRef):
                raise SqlError(
                    f"unsupported UDF argument in {left.name}(...)"
                )
            bound = binder.bind_column(inner)
            literal = right.value
            op = CompareOp(comparison.op)
            vector = binder.vectorized_udf(left.name)

            def mask(values, vector=vector, op=op, literal=literal):
                return op.apply(vector(values), literal)

            predicate = UdfPredicate(left.name, bound.column, mask)
        elif isinstance(left, ColumnRef):
            bound = binder.bind_column(left)
            predicate = ColumnPredicate(
                bound.column, CompareOp(comparison.op), right.value
            )
        else:
            raise SqlError(f"unsupported predicate shape: {comparison}")
        if bound.side == "db":
            db_predicates[bound.binding].append(predicate)
        else:
            hdfs_predicates.append(predicate)
        return

    raise SqlError(f"unsupported predicate shape: {comparison}")


def _classify_window(binary, op, literal, binder, post_lower, post_upper,
                     post_columns):
    if binary.op != "-":
        raise SqlError(
            "only differences are supported in post-join windows "
            "(days(a) - days(b))"
        )
    left = _strip_date_identity(binary.left)
    right = _strip_date_identity(binary.right)
    if not (isinstance(left, ColumnRef) and isinstance(right, ColumnRef)):
        raise SqlError("post-join windows must compare two date columns")
    bound_left = binder.bind_column(left)
    bound_right = binder.bind_column(right)
    if bound_left.side == bound_right.side:
        raise SqlError(
            "post-join windows must span both sides of the join"
        )
    post_columns.update((bound_left, bound_right))
    key = (bound_left.prefixed(), bound_right.prefixed())
    literal = int(literal)
    if op in (">=", ">"):
        bound_value = literal if op == ">=" else literal + 1
        post_lower[key] = max(post_lower.get(key, bound_value), bound_value)
    elif op in ("<=", "<"):
        bound_value = literal if op == "<=" else literal - 1
        post_upper[key] = min(post_upper.get(key, bound_value), bound_value)
    elif op == "==":
        post_lower[key] = literal
        post_upper[key] = literal
    else:
        raise SqlError(f"unsupported window comparison {op!r}")


# ---------------------------------------------------------------------------
# SELECT binding
# ---------------------------------------------------------------------------
def _bind_group_expression(expression, binder, derived, note_needed):
    """Returns (internal prefixed name, display string)."""
    if isinstance(expression, ColumnRef):
        bound = binder.bind_column(expression)
        note_needed(bound)
        return bound.prefixed(), expression.display()
    if isinstance(expression, FuncCall):
        inner = expression.argument
        if not isinstance(inner, ColumnRef):
            raise SqlError("grouping UDFs must take a single column")
        bound = binder.bind_column(inner)
        if bound.side != "hdfs":
            raise SqlError(
                "grouping UDFs run in the JEN scan pipeline and must "
                "reference the HDFS table"
            )
        note_needed(bound)
        derived_name = f"{expression.name}_{bound.column}"
        if derived_name not in [d.name for d in derived]:
            try:
                function = _scalar_udf(binder, expression.name)
            except UdfError:
                raise SqlError(
                    f"unknown UDF {expression.name!r}; register it on the "
                    "warehouse first"
                ) from None
            derived.append(DerivedColumn(
                name=derived_name,
                source=bound.column,
                udf_name=expression.name,
                function=function,
            ))
        return f"l_{derived_name}", expression.display()
    raise SqlError(f"unsupported group expression: {expression!r}")


def _scalar_udf(binder, name: str):
    registry = binder.udfs
    if name not in registry.names():
        raise UdfError(f"unknown UDF {name!r}")
    return lambda value: registry.call(name, value)


def _bind_aggregate(aggregate, alias, binder, aggregates, output_names,
                    renames, avg_decompositions, note_needed,
                    aggregate_signatures):
    if aggregate.function == "count" and aggregate.argument is None:
        spec = AggregateSpec("count", alias=alias or "count")
        aggregates.append(spec)
        output_names.append(spec.output_name())
        aggregate_signatures.append(("count", None, spec.output_name()))
        return
    argument = _strip_date_identity(aggregate.argument)
    if not isinstance(argument, ColumnRef):
        raise SqlError(
            f"aggregate {aggregate.function.upper()} takes a single column"
        )
    bound = binder.bind_column(argument)
    note_needed(bound)
    internal_column = bound.prefixed()
    display = alias or (
        f"{aggregate.function}_{argument.display().replace('.', '_')}"
    )
    arg_display = argument.display()
    if aggregate.function == "avg":
        # Decompose into SUM + COUNT; the SQL engine divides at the end.
        sum_name = f"__avg_sum_{internal_column}"
        count_name = f"__avg_cnt_{internal_column}"
        aggregates.append(AggregateSpec("sum", internal_column,
                                        alias=sum_name))
        aggregates.append(AggregateSpec("count", alias=count_name))
        avg_decompositions[display] = (sum_name, count_name)
        output_names.append(display)
        aggregate_signatures.append(("avg", arg_display, display))
        return
    if aggregate.function == "count":
        spec = AggregateSpec("count", alias=alias or display)
    else:
        spec = AggregateSpec(aggregate.function, internal_column,
                             alias=display)
    aggregates.append(spec)
    output_names.append(spec.output_name())
    aggregate_signatures.append(
        (aggregate.function, arg_display, spec.output_name())
    )
