"""SQL front end for the hybrid warehouse.

The paper drives every join algorithm from a single SQL statement
submitted to the database (Section 4.1.1).  This package reproduces that
interface: a small SQL dialect covering exactly the paper's query class —

.. code-block:: sql

    SELECT extract_group(L.groupByExtractCol), COUNT(*)
    FROM T, L
    WHERE T.corPred <= 17 AND T.indPred <= 42000
      AND L.corPred <= 99 AND L.indPred <= 310000
      AND T.joinKey = L.joinKey
      AND days(T.predAfterJoin) - days(L.predAfterJoin) >= 0
      AND days(T.predAfterJoin) - days(L.predAfterJoin) <= 1
    GROUP BY extract_group(L.groupByExtractCol)

— is lexed, parsed, bound against the warehouse catalogs (one table must
live in the database, the other in HDFS), classified into local
predicates / the equi-join / post-join predicates, and translated into a
:class:`~repro.query.query.HybridQuery`.  :class:`~repro.sql.engine.SqlSession`
then executes it with any join algorithm, or lets the advisor choose.
"""

from repro.sql.lexer import Token, TokenType, tokenize
from repro.sql.parser import parse_select
from repro.sql.translator import translate
from repro.sql.engine import SqlResult, SqlSession
from repro.sql.predicates import predicate_from_sql

__all__ = [
    "SqlResult",
    "SqlSession",
    "Token",
    "TokenType",
    "parse_select",
    "predicate_from_sql",
    "tokenize",
    "translate",
]
