"""Standalone parsing of predicate fragments.

The paper's ``read_hdfs`` table UDF receives the HDFS-side predicates as
a SQL *string* (``'region(ip) = ''East Coast'''``, Section 4.1.1) and the
JEN workers evaluate it during the scan.  :func:`predicate_from_sql`
reproduces that: it parses a conjunctive WHERE fragment against one
table's schema and returns an executable
:class:`~repro.relational.expressions.Predicate`.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.relational.expressions import (
    ColumnPredicate,
    CompareOp,
    Predicate,
    TruePredicate,
    UdfPredicate,
    conjunction_of,
)
from repro.relational.schema import Schema
from repro.sql.ast import ColumnRef, Comparison, FuncCall, Literal
from repro.sql.lexer import SqlError, TokenType, tokenize
from repro.sql.parser import _Parser


def _parse_conjuncts(text: str) -> List[Comparison]:
    parser = _Parser(tokenize(text))
    conjuncts = [parser.comparison()]
    while parser.accept_keyword("AND"):
        conjuncts.append(parser.comparison())
    trailing = parser.peek()
    if trailing.type is not TokenType.END:
        raise SqlError(
            f"unexpected trailing input in predicate fragment at "
            f"position {trailing.position}: {trailing.value!r}"
        )
    return conjuncts


def predicate_from_sql(text: str, schema: Schema,
                       udfs=None) -> Predicate:
    """Parse a conjunctive predicate fragment over one table.

    Supports ``column <op> literal``, ``literal <op> column`` and
    ``udf(column) <op> literal`` conjuncts; UDFs are resolved against
    ``udfs`` (a :class:`~repro.edw.udf.UdfRegistry`).  An empty or
    whitespace fragment yields :class:`TruePredicate`.
    """
    if not text or not text.strip():
        return TruePredicate()
    predicates: List[Predicate] = []
    for comparison in _parse_conjuncts(text):
        predicates.append(_to_predicate(comparison, schema, udfs))
    return conjunction_of(predicates)


def _to_predicate(comparison: Comparison, schema: Schema,
                  udfs) -> Predicate:
    left, right = comparison.left, comparison.right
    op = comparison.op
    if isinstance(left, Literal) and not isinstance(right, Literal):
        flipped = {"<": ">", "<=": ">=", ">": "<", ">=": "<=",
                   "==": "==", "!=": "!="}
        left, right, op = right, left, flipped[op]
    if not isinstance(right, Literal):
        raise SqlError(
            "predicate fragments compare one column (or UDF of one "
            f"column) against a literal; got {comparison!r}"
        )
    if isinstance(left, ColumnRef):
        _check_column(left, schema)
        return ColumnPredicate(left.column, CompareOp(op), right.value)
    if isinstance(left, FuncCall):
        inner = left.argument
        if not isinstance(inner, ColumnRef):
            raise SqlError(
                f"UDF predicates take a single column: {left.name}(...)"
            )
        _check_column(inner, schema)
        if udfs is None or left.name not in udfs.names():
            raise SqlError(f"unknown UDF {left.name!r} in predicate")
        literal = right.value
        operator = CompareOp(op)
        name = left.name

        def mask(values: np.ndarray, udfs=udfs, name=name,
                 operator=operator, literal=literal) -> np.ndarray:
            if values.size == 0:
                return np.empty(0, dtype=bool)
            vector = np.vectorize(lambda v: udfs.call(name, v))
            return operator.apply(vector(values), literal)

        return UdfPredicate(name, inner.column, mask)
    raise SqlError(f"unsupported predicate fragment: {comparison!r}")


def _check_column(ref: ColumnRef, schema: Schema) -> None:
    if not schema.has_column(ref.column):
        raise SqlError(
            f"unknown column {ref.column!r} in predicate fragment"
        )
