"""The SQL session: parse, translate, choose an algorithm, execute.

Mirrors the paper's user experience — the query is submitted "at the
parallel database side" as one SQL statement, everything else happens
behind the scenes.  With ``algorithm="auto"`` the session samples the
loaded tables to estimate selectivities and lets the advisor pick the
join strategy, otherwise any registered algorithm name works.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional

import numpy as np

from repro.core.advisor import AdvisorDecision, JoinAdvisor, WorkloadEstimate
from repro.core.joins import JoinResult, algorithm_by_name
from repro.query.query import HybridQuery
from repro.relational.schema import Column, DataType
from repro.relational.table import Table
from repro.sql.lexer import SqlError
from repro.sql.parser import parse_select
from repro.sql.translator import Translation, translate

#: Rows sampled from each side for selectivity estimation in auto mode.
SAMPLE_ROWS = 20_000


@dataclass
class SqlResult:
    """Outcome of one SQL execution."""

    table: Table
    join_result: JoinResult
    query: HybridQuery
    algorithm: str
    advisor_rationale: str = ""

    @property
    def simulated_seconds(self) -> float:
        """Paper-scale execution time of the chosen algorithm."""
        return self.join_result.total_seconds

    def rows(self) -> List[tuple]:
        """Result rows as Python tuples."""
        return self.table.to_rows()


class SqlSession:
    """Executes SQL statements against one hybrid warehouse.

    ``estimate_refiner`` is an optional hook called as
    ``refiner(query, estimate) -> estimate`` after sampling and before
    advising — the seam the service plane's execution feedback loop
    plugs into so observed statistics from completed queries sharpen
    later advice.
    """

    def __init__(self, warehouse,
                 estimate_refiner: Optional[
                     Callable[[HybridQuery, WorkloadEstimate],
                              WorkloadEstimate]] = None):
        self.warehouse = warehouse
        self.advisor = JoinAdvisor(warehouse.config)
        self.estimate_refiner = estimate_refiner

    # ------------------------------------------------------------------
    def explain(self, sql: str) -> Translation:
        """Parse and translate without executing."""
        return translate(parse_select(sql), self.warehouse)

    def explain_text(self, sql: str) -> str:
        """A human-readable plan, in the spirit of a database EXPLAIN."""
        translation = self.explain(sql)
        query = translation.query
        lines = ["HYBRID QUERY PLAN", "================="]
        if translation.needs_prejoin():
            lines.append("in-database pre-joins (star schema):")
            current = translation.fact_table
            lines.append(
                f"  fact {current}: predicate on "
                f"{list(translation.fact_predicate.columns()) or 'none'}, "
                f"project {list(translation.fact_projection)}"
            )
            for step in translation.prejoins:
                lines.append(
                    f"  join {current} -> {step.right_table} on "
                    f"{step.left_key} = {step.right_key}, project "
                    f"{list(step.right_projection)}"
                )
                current = f"({current} x {step.right_table})"
            lines.append("")
        db_label = (translation.fact_table or query.db_table)
        lines.append(f"database side:  {db_label}")
        lines.append(
            f"  predicate columns: "
            f"{list(query.db_predicate.columns()) or '(none)'}"
        )
        lines.append(f"  ships: {list(query.db_projection)}")
        lines.append(f"HDFS side:      {query.hdfs_table}")
        lines.append(
            f"  predicate columns: "
            f"{list(query.hdfs_predicate.columns()) or '(none)'}"
        )
        if query.hdfs_derived:
            lines.append(
                "  scan-time UDFs: "
                + ", ".join(
                    f"{d.udf_name}({d.source}) -> {d.name}"
                    for d in query.hdfs_derived
                )
            )
        lines.append(f"  ships: {list(query.hdfs_wire_columns())}")
        lines.append(
            f"equi-join:      {query.db_join_key} = {query.hdfs_join_key}"
        )
        if query.post_join_predicate is not None:
            lines.append(
                "post-join:      over "
                f"{list(query.post_join_predicate.columns())}"
            )
        lines.append(f"group by:       {list(query.group_by)}")
        lines.append(
            "aggregates:     "
            + ", ".join(spec.output_name() for spec in query.aggregates)
        )
        if translation.ordering:
            rendered = ", ".join(
                f"{name} {'DESC' if desc else 'ASC'}"
                for name, desc in translation.ordering
            )
            lines.append(f"order by:       {rendered}")
        if translation.limit is not None:
            lines.append(f"limit:          {translation.limit}")
        return "\n".join(lines)

    def execute(self, sql: str, algorithm: str = "auto") -> SqlResult:
        """Run ``sql`` end to end with the given (or advised) algorithm.

        Star-schema statements first run their dimension joins inside
        the database (the paper's Section 2 position on multi-table
        queries), then the hybrid join operates on the derived fact.
        """
        translation = self.explain(sql)
        query = translation.query
        if translation.needs_prejoin():
            derived_name = self._run_prejoins(translation)
            from dataclasses import replace

            query = replace(query, db_table=derived_name)
        rationale = ""
        if algorithm == "auto":
            algorithm, rationale = self._advise(query)
        join_result = algorithm_by_name(algorithm).run(
            self.warehouse, query
        )
        table = self._present(join_result.result, translation)
        return SqlResult(
            table=table,
            join_result=join_result,
            query=query,
            algorithm=algorithm,
            advisor_rationale=rationale,
        )

    def _run_prejoins(self, translation) -> str:
        """Execute the in-database dimension-join chain; returns the
        derived fact table's name."""
        database = self.warehouse.database
        current = translation.fact_table
        for index, step in enumerate(translation.prejoins):
            result_name = self._fresh_table_name(
                f"__sql_pre_{translation.fact_table}_{index}"
            )
            first = index == 0
            database.join_local(
                current,
                step.right_table,
                step.left_key,
                step.right_key,
                result_name=result_name,
                left_predicate=(
                    translation.fact_predicate if first else None
                ),
                right_predicate=step.right_predicate,
                left_projection=(
                    list(translation.fact_projection) if first else None
                ),
                right_projection=list(step.right_projection),
            )
            current = result_name
        return current

    def _fresh_table_name(self, base: str) -> str:
        """A catalog name not yet in use (repeat executions re-derive)."""
        candidate = base
        suffix = 0
        while True:
            try:
                self.warehouse.database.table_meta(candidate)
            except Exception:
                return candidate
            suffix += 1
            candidate = f"{base}_{suffix}"

    # ------------------------------------------------------------------
    def _advise(self, query: HybridQuery):
        decision = self.advise(query)
        return decision.best, decision.rationale

    def advise(self, query: HybridQuery) -> AdvisorDecision:
        """Rank the algorithms for ``query`` from the refined estimate."""
        return self.advisor.decide(self.estimate(query))

    def estimate(self, query: HybridQuery) -> WorkloadEstimate:
        """The sampled estimate, passed through the refiner hook."""
        estimate = self.sample_estimate(query)
        if self.estimate_refiner is not None:
            estimate = self.estimate_refiner(query, estimate)
        return estimate

    def sample_estimate(self, query: HybridQuery) -> WorkloadEstimate:
        """Sample-based selectivity estimation for the advisor.

        Delegates to :func:`repro.query.stats.sample_workload_estimate`
        (shared with the adaptive plane).
        """
        from repro.query.stats import sample_workload_estimate

        return sample_workload_estimate(
            self.warehouse, query, sample_rows=SAMPLE_ROWS
        )

    # ------------------------------------------------------------------
    def _present(self, result: Table, translation: Translation) -> Table:
        """Apply AVG decompositions, renames and select-order projection."""
        if translation.avg_decompositions:
            for display, (sum_name, count_name) in \
                    translation.avg_decompositions.items():
                sums = result.column(sum_name).astype(np.float64)
                counts = np.maximum(
                    result.column(count_name).astype(np.float64), 1.0
                )
                result = result.with_column(
                    Column(display, DataType.FLOAT64), sums / counts
                )
        renamed = result.rename(translation.renames)
        missing = [name for name in translation.output_names
                   if not renamed.schema.has_column(name)]
        if missing:
            raise SqlError(
                f"internal error: result lacks columns {missing}"
            )
        projected = renamed.project(translation.output_names)
        if translation.ordering:
            projected = _order_rows(projected, translation.ordering)
        if translation.limit is not None:
            projected = projected.slice(
                0, min(translation.limit, projected.num_rows)
            )
        return projected


def _order_rows(table: Table, ordering) -> Table:
    """Stable multi-key sort honouring per-key direction."""
    from repro.relational.schema import DataType

    order = np.arange(table.num_rows)
    for name, descending in reversed(list(ordering)):
        column = table.schema.column(name)
        if column.dtype is DataType.DICT_STRING:
            values = table.strings(name)[order]
        else:
            values = table.column(name)[order]
        # Rank-based keys give a stable descending sort for any dtype.
        _, inverse = np.unique(values, return_inverse=True)
        keys = -inverse if descending else inverse
        order = order[np.argsort(keys, kind="stable")]
    return table.take(order)
