"""Tokenizer for the hybrid-warehouse SQL dialect."""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List

from repro.errors import ReproError


class SqlError(ReproError):
    """Lexing, parsing or binding of a SQL statement failed."""


class TokenType(enum.Enum):
    """Token categories."""

    KEYWORD = "keyword"
    IDENT = "ident"
    NUMBER = "number"
    STRING = "string"
    OPERATOR = "operator"
    COMMA = ","
    DOT = "."
    LPAREN = "("
    RPAREN = ")"
    STAR = "*"
    END = "end"


#: Reserved words (matched case-insensitively, stored upper-case).
KEYWORDS = {
    "SELECT", "FROM", "WHERE", "GROUP", "BY", "AS", "AND", "OR", "NOT",
    "COUNT", "SUM", "MIN", "MAX", "AVG", "BETWEEN", "ORDER", "LIMIT",
    "ASC", "DESC", "IN",
}

#: Multi-character operators first so "<=" never lexes as "<" then "=".
OPERATORS = ["<=", ">=", "<>", "!=", "=", "<", ">", "-", "+"]


@dataclass(frozen=True)
class Token:
    """One lexed token with its source position (for error messages)."""

    type: TokenType
    value: str
    position: int

    def is_keyword(self, word: str) -> bool:
        """True if this token is the given keyword."""
        return self.type is TokenType.KEYWORD and self.value == word


def tokenize(sql: str) -> List[Token]:
    """Lex ``sql`` into tokens, ending with an END sentinel."""
    tokens: List[Token] = []
    index = 0
    length = len(sql)
    while index < length:
        char = sql[index]
        if char.isspace():
            index += 1
            continue
        if char == "'":
            end = sql.find("'", index + 1)
            if end < 0:
                raise SqlError(
                    f"unterminated string literal at position {index}"
                )
            tokens.append(Token(TokenType.STRING, sql[index + 1:end], index))
            index = end + 1
            continue
        if char.isdigit():
            end = index
            while end < length and (sql[end].isdigit() or sql[end] == "."):
                end += 1
            tokens.append(Token(TokenType.NUMBER, sql[index:end], index))
            index = end
            continue
        if char.isalpha() or char == "_":
            end = index
            while end < length and (sql[end].isalnum() or sql[end] == "_"):
                end += 1
            word = sql[index:end]
            if word.upper() in KEYWORDS:
                tokens.append(
                    Token(TokenType.KEYWORD, word.upper(), index)
                )
            else:
                tokens.append(Token(TokenType.IDENT, word, index))
            index = end
            continue
        matched_operator = None
        for operator in OPERATORS:
            if sql.startswith(operator, index):
                matched_operator = operator
                break
        if matched_operator:
            tokens.append(
                Token(TokenType.OPERATOR, matched_operator, index)
            )
            index += len(matched_operator)
            continue
        simple = {
            ",": TokenType.COMMA,
            ".": TokenType.DOT,
            "(": TokenType.LPAREN,
            ")": TokenType.RPAREN,
            "*": TokenType.STAR,
            ";": None,
        }
        if char in simple:
            if simple[char] is not None:
                tokens.append(Token(simple[char], char, index))
            index += 1
            continue
        raise SqlError(f"unexpected character {char!r} at position {index}")
    tokens.append(Token(TokenType.END, "", length))
    return tokens
