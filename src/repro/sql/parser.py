"""Recursive-descent parser for the hybrid-warehouse SQL dialect.

Grammar (the paper's query class)::

    select      := SELECT item ("," item)*
                   FROM table ("," table)*
                   WHERE comparison (AND comparison)*
                   GROUP BY expr ("," expr)*
    item        := aggregate [AS ident] | expr [AS ident]
    aggregate   := COUNT "(" "*" ")" | (SUM|MIN|MAX|AVG) "(" expr ")"
    table       := ident [ [AS] ident ]
    comparison  := additive op additive
    additive    := primary (("-"|"+") primary)*
    primary     := number | string | ident "(" additive ")"
                 | ident ["." ident] | "(" additive ")"

OR and NOT are recognised by the lexer but rejected with a clear message:
the paper's algorithms push down *conjunctive* local predicates, and so
does this reproduction.
"""

from __future__ import annotations

from typing import List, Optional

from repro.sql.ast import (
    Aggregate,
    InList,
    BinaryOp,
    ColumnRef,
    Comparison,
    FuncCall,
    Literal,
    OrderItem,
    SelectItem,
    SelectStatement,
    TableRef,
)
from repro.sql.lexer import SqlError, Token, TokenType, tokenize

AGGREGATE_KEYWORDS = ("COUNT", "SUM", "MIN", "MAX", "AVG")
COMPARISON_OPERATORS = ("=", "!=", "<>", "<", "<=", ">", ">=")


class _Parser:
    def __init__(self, tokens: List[Token]):
        self.tokens = tokens
        self.index = 0

    # -- token plumbing -------------------------------------------------
    def peek(self) -> Token:
        return self.tokens[self.index]

    def advance(self) -> Token:
        token = self.tokens[self.index]
        self.index += 1
        return token

    def expect_keyword(self, word: str) -> Token:
        token = self.advance()
        if not token.is_keyword(word):
            raise SqlError(
                f"expected {word} at position {token.position}, "
                f"got {token.value!r}"
            )
        return token

    def expect_type(self, token_type: TokenType) -> Token:
        token = self.advance()
        if token.type is not token_type:
            raise SqlError(
                f"expected {token_type.value} at position "
                f"{token.position}, got {token.value!r}"
            )
        return token

    def accept_keyword(self, word: str) -> bool:
        if self.peek().is_keyword(word):
            self.advance()
            return True
        return False

    def accept_type(self, token_type: TokenType) -> Optional[Token]:
        if self.peek().type is token_type:
            return self.advance()
        return None

    # -- grammar ----------------------------------------------------------
    def parse(self) -> SelectStatement:
        self.expect_keyword("SELECT")
        items = [self.select_item()]
        while self.accept_type(TokenType.COMMA):
            items.append(self.select_item())

        self.expect_keyword("FROM")
        tables = [self.table_ref()]
        while self.accept_type(TokenType.COMMA):
            tables.append(self.table_ref())

        where: List[Comparison] = []
        if self.accept_keyword("WHERE"):
            where.append(self.comparison())
            while True:
                if self.accept_keyword("AND"):
                    where.append(self.comparison())
                elif self.peek().is_keyword("OR"):
                    raise SqlError(
                        "OR is not supported: the hybrid join algorithms "
                        "push down conjunctive predicates only"
                    )
                else:
                    break

        group_by: List[object] = []
        if self.accept_keyword("GROUP"):
            self.expect_keyword("BY")
            group_by.append(self.additive())
            while self.accept_type(TokenType.COMMA):
                group_by.append(self.additive())

        order_by: List[OrderItem] = []
        if self.accept_keyword("ORDER"):
            self.expect_keyword("BY")
            order_by.append(self.order_item())
            while self.accept_type(TokenType.COMMA):
                order_by.append(self.order_item())

        limit: Optional[int] = None
        if self.accept_keyword("LIMIT"):
            token = self.expect_type(TokenType.NUMBER)
            if "." in token.value:
                raise SqlError("LIMIT takes an integer")
            limit = int(token.value)
            if limit < 0:
                raise SqlError("LIMIT must be non-negative")

        token = self.peek()
        if token.type is not TokenType.END:
            raise SqlError(
                f"unexpected trailing input at position {token.position}: "
                f"{token.value!r}"
            )
        return SelectStatement(
            select_items=tuple(items),
            tables=tuple(tables),
            where=tuple(where),
            group_by=tuple(group_by),
            order_by=tuple(order_by),
            limit=limit,
        )

    def order_item(self) -> "OrderItem":
        token = self.peek()
        if token.type is TokenType.KEYWORD and \
                token.value in AGGREGATE_KEYWORDS:
            expression = self.aggregate()
        else:
            expression = self.additive()
        descending = False
        if self.accept_keyword("DESC"):
            descending = True
        else:
            self.accept_keyword("ASC")
        return OrderItem(expression=expression, descending=descending)

    def select_item(self) -> SelectItem:
        token = self.peek()
        if token.type is TokenType.KEYWORD and \
                token.value in AGGREGATE_KEYWORDS:
            aggregate = self.aggregate()
            alias = self.optional_alias()
            return SelectItem(aggregate, alias)
        expression = self.additive()
        return SelectItem(expression, self.optional_alias())

    def optional_alias(self) -> Optional[str]:
        if self.accept_keyword("AS"):
            return self.expect_type(TokenType.IDENT).value
        return None

    def aggregate(self) -> Aggregate:
        function = self.advance().value  # COUNT/SUM/MIN/MAX/AVG
        self.expect_type(TokenType.LPAREN)
        if function == "COUNT":
            if self.accept_type(TokenType.STAR):
                self.expect_type(TokenType.RPAREN)
                return Aggregate("count", None)
            argument = self.additive()
            self.expect_type(TokenType.RPAREN)
            return Aggregate("count", argument)
        argument = self.additive()
        self.expect_type(TokenType.RPAREN)
        return Aggregate(function.lower(), argument)

    def table_ref(self) -> TableRef:
        name = self.expect_type(TokenType.IDENT).value
        if self.accept_keyword("AS"):
            return TableRef(name, self.expect_type(TokenType.IDENT).value)
        alias_token = self.accept_type(TokenType.IDENT)
        if alias_token:
            return TableRef(name, alias_token.value)
        return TableRef(name)

    def comparison(self):
        left = self.additive()
        if self.accept_keyword("IN"):
            self.expect_type(TokenType.LPAREN)
            values = [self.literal_value()]
            while self.accept_type(TokenType.COMMA):
                values.append(self.literal_value())
            self.expect_type(TokenType.RPAREN)
            return InList(expression=left, values=tuple(values))
        operator = self.peek()
        if operator.type is not TokenType.OPERATOR or \
                operator.value not in COMPARISON_OPERATORS:
            raise SqlError(
                f"expected a comparison operator at position "
                f"{operator.position}, got {operator.value!r}"
            )
        self.advance()
        right = self.additive()
        op = "!=" if operator.value == "<>" else operator.value
        op = "==" if op == "=" else op
        return Comparison(op=op, left=left, right=right)

    def _number(self, token):
        """Convert a NUMBER token, rejecting malformed spellings.

        The lexer accepts greedy digit/dot runs, so strings like
        ``1..2`` reach the parser; they must surface as
        :class:`~repro.errors.SqlError`, never ``ValueError``.
        """
        try:
            return float(token.value) if "." in token.value \
                else int(token.value)
        except ValueError:
            raise SqlError(
                f"malformed number {token.value!r} at position "
                f"{token.position}"
            ) from None

    def literal_value(self):
        token = self.advance()
        if token.type is TokenType.NUMBER:
            return self._number(token)
        if token.type is TokenType.STRING:
            return token.value
        raise SqlError(
            f"IN lists hold literals; got {token.value!r} at position "
            f"{token.position}"
        )

    def additive(self):
        left = self.primary()
        while True:
            token = self.peek()
            if token.type is TokenType.OPERATOR and \
                    token.value in ("-", "+"):
                self.advance()
                left = BinaryOp(token.value, left, self.primary())
            else:
                return left

    def primary(self):
        token = self.advance()
        if token.type is TokenType.NUMBER:
            return Literal(self._number(token))
        if token.type is TokenType.STRING:
            return Literal(token.value)
        if token.type is TokenType.LPAREN:
            inner = self.additive()
            self.expect_type(TokenType.RPAREN)
            return inner
        if token.type is TokenType.IDENT:
            if self.peek().type is TokenType.LPAREN:
                self.advance()
                argument = self.additive()
                self.expect_type(TokenType.RPAREN)
                return FuncCall(token.value, argument)
            if self.peek().type is TokenType.DOT:
                self.advance()
                column = self.expect_type(TokenType.IDENT).value
                return ColumnRef(token.value, column)
            return ColumnRef(None, token.value)
        if token.is_keyword("NOT"):
            raise SqlError(
                "NOT is not supported in the pushed-down predicate class"
            )
        raise SqlError(
            f"unexpected token {token.value!r} at position {token.position}"
        )


def parse_select(sql: str) -> SelectStatement:
    """Parse one SELECT statement of the paper's query class."""
    return _Parser(tokenize(sql)).parse()
