"""The statistical oracle contract for the approximate tier.

An approximate join's promise is not a value but a *rate*: across many
seeded runs at confidence ``c``, the exact answer (from
:mod:`repro.testkit.oracle`) must fall inside the reported interval in
at least a fraction ``c`` of trials.  One trial is one
``(seed, group, aggregate)`` interval; a group the sample never saw
counts as a miss (the estimator reported "no such group", which the
exact answer refutes).

Checking a rate with a finite number of trials needs its own
statistics, otherwise the test suite is flaky by construction.  The
acceptance rule is a **binomial lower confidence bound**: the battery
passes when the Wilson score lower bound of the observed coverage rate
is at least ``min_lower_bound`` (the ISSUE's 0.90 against a stated 0.95
coverage).  Because the bound concedes sampling noise, a correctly
calibrated estimator fails only when the observed rate is improbably
far below its true coverage — :func:`CoverageVerdict.
false_failure_probability` reports exactly how improbable, computed
from the exact binomial tail (pure ``math.lgamma``, no scipy), so the
suite is deterministic-in-expectation with a known false-failure rate.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterable, Optional, Tuple

#: Two-sided normal critical values for the Wilson score interval.
_Z_TABLE = {0.90: 1.645, 0.95: 1.960, 0.99: 2.576}


def wilson_lower_bound(hits: int, trials: int,
                       z_confidence: float = 0.95) -> float:
    """Wilson score lower confidence bound on a binomial proportion.

    Preferred over the normal approximation because it never leaves
    [0, 1] and behaves at rates near 1 — exactly where coverage checks
    live.
    """
    if trials <= 0:
        return 0.0
    try:
        z = _Z_TABLE[z_confidence]
    except KeyError:
        raise ValueError(
            f"z_confidence must be one of {sorted(_Z_TABLE)}"
        ) from None
    rate = hits / trials
    denominator = 1.0 + z * z / trials
    centre = rate + z * z / (2.0 * trials)
    margin = z * math.sqrt(
        rate * (1.0 - rate) / trials + z * z / (4.0 * trials * trials)
    )
    return max(0.0, (centre - margin) / denominator)


def _log_binomial_pmf(k: int, n: int, p: float) -> float:
    log_choose = (
        math.lgamma(n + 1) - math.lgamma(k + 1) - math.lgamma(n - k + 1)
    )
    return (
        log_choose
        + k * math.log(p)
        + (n - k) * math.log1p(-p)
    )


def binomial_cdf(k: int, n: int, p: float) -> float:
    """Exact P[X <= k] for X ~ Binomial(n, p), via log-space summation."""
    if k < 0:
        return 0.0
    if k >= n:
        return 1.0
    if p <= 0.0:
        return 1.0
    if p >= 1.0:
        return 0.0
    total = 0.0
    for i in range(k + 1):
        total += math.exp(_log_binomial_pmf(i, n, p))
    return min(1.0, total)


@dataclass(frozen=True)
class CoverageVerdict:
    """The outcome of one coverage battery."""

    trials: int
    hits: int
    #: The coverage rate the estimator *stated* (its confidence level).
    stated_coverage: float
    #: Acceptance threshold on the Wilson lower bound.
    min_lower_bound: float
    observed_rate: float
    lower_bound: float
    passed: bool
    #: P[battery fails | true coverage == stated_coverage] — the known
    #: false-failure probability of this exact acceptance rule at this
    #: trial count.
    false_failure_probability: float

    def describe(self) -> str:
        return (
            f"coverage {self.hits}/{self.trials} = "
            f"{self.observed_rate:.4f} (stated {self.stated_coverage}), "
            f"Wilson lower bound {self.lower_bound:.4f} vs required "
            f"{self.min_lower_bound} -> "
            f"{'PASS' if self.passed else 'FAIL'} "
            f"(false-failure p = {self.false_failure_probability:.2e})"
        )


def check_coverage(hits: int, trials: int, stated_coverage: float,
                   min_lower_bound: float = 0.90,
                   z_confidence: float = 0.95) -> CoverageVerdict:
    """Apply the binomial acceptance rule to a battery's tally.

    The rule: pass iff ``wilson_lower_bound(hits, trials) >=
    min_lower_bound``.  The verdict carries the rule's exact
    false-failure probability — the binomial tail mass of all tallies
    that would fail, assuming the estimator truly covers at
    ``stated_coverage``.
    """
    if trials <= 0:
        raise ValueError("coverage check needs at least one trial")
    lower = wilson_lower_bound(hits, trials, z_confidence)
    passed = lower >= min_lower_bound

    # Largest hit count that still fails the rule; everything at or
    # below it is the false-failure region under the stated coverage.
    failing = -1
    for k in range(trials, -1, -1):
        if wilson_lower_bound(k, trials, z_confidence) < min_lower_bound:
            failing = k
            break
    false_failure = binomial_cdf(failing, trials, stated_coverage)
    return CoverageVerdict(
        trials=trials,
        hits=hits,
        stated_coverage=stated_coverage,
        min_lower_bound=min_lower_bound,
        observed_rate=hits / trials,
        lower_bound=lower,
        passed=passed,
        false_failure_probability=false_failure,
    )


class CoverageTracker:
    """Tallies interval-contains-truth trials across seeded runs."""

    def __init__(self, stated_coverage: float):
        self.stated_coverage = stated_coverage
        self.trials = 0
        self.hits = 0
        self.misses: list = []

    def record(self, hit: bool, context=None) -> None:
        self.trials += 1
        if hit:
            self.hits += 1
        elif context is not None and len(self.misses) < 20:
            self.misses.append(context)

    def record_cells(self, cells: Dict[Tuple[Tuple, str], "object"],
                     exact_cells: Dict[Tuple[Tuple, str], float],
                     supported: Optional[Iterable[str]] = None) -> None:
        """One run's trials: every supported exact cell vs its interval.

        ``cells`` maps ``(group, aggregate_name)`` to objects with a
        ``contains(value)`` method (:class:`repro.approx.estimator.
        CellEstimate`); ``exact_cells`` is the oracle's map of true
        values.  Exact cells with no reported interval are misses.
        """
        supported_set = set(supported) if supported is not None else None
        for key, truth in exact_cells.items():
            if supported_set is not None and key[1] not in supported_set:
                continue
            cell = cells.get(key)
            if cell is None:
                self.record(False, context=("missing-group", key, truth))
            else:
                self.record(
                    cell.contains(truth),
                    context=(key, truth, cell.lower, cell.upper),
                )

    def verdict(self, min_lower_bound: float = 0.90,
                z_confidence: float = 0.95) -> CoverageVerdict:
        return check_coverage(
            self.hits, self.trials, self.stated_coverage,
            min_lower_bound=min_lower_bound, z_confidence=z_confidence,
        )
