"""Seeded data/query/config generation for the differential harness.

A *data case* is (T table, L table, hybrid query) plus the provenance
expression that rebuilds it; a *config cell* is one point on the
metamorphic axes — algorithm, worker count, HDFS storage format,
kernels on/off, fault plan, cache cold/warm.  Every (case, cell) pair
must produce exactly the row multiset of
:func:`repro.testkit.oracle.oracle_execute` on the same case.

:func:`generate_data_case` draws a random workload/query from a seed
(Zipf-skewed keys, dtype mixes in the aggregates, selectivity-
controlled predicates); :func:`edge_cases` pins the extremes random
sampling rarely hits (empty filtered sides, a single all-duplicate
join key, empty results, wide dtype aggregation).  The data model has
no SQL NULLs; the closest analogue — join keys that match nothing —
is covered by the disjoint-key-region construction of the workload
generator and the zero-selectivity edge case.

:func:`run_cell` executes one cell end to end, restoring all global
toggles afterwards, and :func:`default_grid` builds the seeded
cross-axis grid the tier-1 differential test sweeps.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro import HybridWarehouse, algorithm_by_name, default_config
from repro.config import ClusterConfig
from repro.errors import ServiceError, WorkloadError
from repro.faults import FaultPlan
from repro.kernels import set_kernels_enabled
from repro.query.query import HybridQuery
from repro.relational.aggregates import AggregateSpec
from repro.relational.expressions import BetweenDayDiff, compare
from repro.relational.table import Table
from repro.workload import WorkloadSpec, build_paper_query, generate_workload

#: Every registered join algorithm, including the exact baselines and
#: the mid-query re-optimizing wrapper.
ALL_ALGORITHMS = (
    "db", "db(BF)", "broadcast", "repartition", "repartition(BF)",
    "zigzag", "zigzag-db", "semijoin", "perf", "adaptive",
)
#: The metamorphic worker-count axis (1 = fully degenerate cluster).
WORKER_AXIS = (1, 4, 30)
#: HDFS storage-format axis.
FORMAT_AXIS = ("parquet", "text", "orc")
#: Fault-plan axis: one spec per recovery mechanism (crash re-scan,
#: straggler speculation, lossy links with dedup, spill pressure).
FAULT_AXIS = (
    "crash:w2@scan",
    "slow:w1x4",
    "drop:shuffle:0.05,dup:shuffle:0.05",
    "spill:x0.5",
)
#: db_servers per worker count (mirrors the paper's 6-per-server shape).
_DB_SERVERS = {1: 1, 4: 2, 30: 5}
#: Execution-backend axis: single-process engines vs the real
#: multiprocessing pool of :mod:`repro.parallel`.
BACKEND_AXIS = ("sequential", "process")
#: Pool size for process-backend cells; two workers exercises real
#: cross-process transport even on a single-core CI runner.
_CELL_POOL_WORKERS = 2
#: Estimate-error axis for adaptive cells: seeded ``(sigma_t_factor,
#: sigma_l_factor)`` pairs scaling the initial estimate.  ``(1.0, 0.1)``
#: is the paper-style 10x sigma_L underestimate that makes the advisor
#: mispick a DB-side plan and forces a mid-scan switch.
ESTIMATE_ERROR_AXIS = (
    (1.0, 0.1), (0.1, 1.0), (1.0, 10.0), (10.0, 1.0),
)
#: The algorithms whose plan shuffles L' with the agreed hash — the
#: only ones the skew-handling axis can change.
SHUFFLE_ALGORITHMS = (
    "repartition", "repartition(BF)", "semijoin", "perf", "zigzag",
)
#: Zipf exponents the skew axis pins (0.0 = uniform control).
KEY_SKEW_AXIS = (0.0, 1.2, 1.8)


@dataclass(frozen=True)
class ConfigCell:
    """One point on the config axes; defaults are the cheapest cell."""

    algorithm: str
    workers: int = 4
    format_name: str = "parquet"
    kernels: bool = True
    fault_spec: Optional[str] = None
    cache_warm: bool = False
    backend: str = "sequential"
    #: ``(sigma_t_factor, sigma_l_factor)`` injected into the adaptive
    #: wrapper's initial estimate (only meaningful for ``"adaptive"``).
    estimate_error: Optional[Tuple[float, float]] = None
    #: Heavy-hitter detection + hybrid shuffle + work stealing
    #: (:mod:`repro.skew`); only shuffle-using algorithms react.
    skew_handling: bool = False
    #: Block-sampling rate for the approximate tier (only meaningful
    #: for ``"approx"``/``"approx(BF)"`` cells).  ``1.0`` scans every
    #: block, so the cell must be row-identical to the oracle; rates
    #: below 1.0 carry interval semantics and are checked by the
    #: statistical battery instead of the differential grid.
    approx: Optional[float] = None
    #: Thin-row shipping + batched payload stitch (:mod:`repro.latemat`);
    #: results must stay row-identical whatever side defers its payload.
    late_materialization: bool = False

    def label(self) -> str:
        """Compact cell id for test parametrisation and repro output."""
        parts = [self.algorithm, f"w{self.workers}", self.format_name,
                 "kern" if self.kernels else "naive"]
        if self.fault_spec:
            parts.append(f"faults[{self.fault_spec}]")
        if self.cache_warm:
            parts.append("warm")
        if self.backend != "sequential":
            parts.append("proc")
        if self.estimate_error is not None:
            parts.append(
                f"esterr[{self.estimate_error[0]:g}x,"
                f"{self.estimate_error[1]:g}x]"
            )
        if self.skew_handling:
            parts.append("skew")
        if self.approx is not None:
            parts.append(f"approx{self.approx:g}")
        if self.late_materialization:
            parts.append("latemat")
        return "/".join(parts)


@dataclass(frozen=True)
class DataCase:
    """Tables plus query plus the expression that rebuilds them."""

    name: str
    t_table: Table
    l_table: Table
    query: HybridQuery
    provenance: str

    def oracle_rows(self) -> List[Tuple]:
        """The trusted answer for this case, as canonical rows."""
        from repro.testkit import oracle

        return oracle.canonical_rows(
            oracle.oracle_execute(self.t_table, self.l_table, self.query)
        )


# ----------------------------------------------------------------------
# Data cases
# ----------------------------------------------------------------------
def generate_data_case(seed: int, t_rows: int = 1_500,
                       l_rows: int = 6_000) -> DataCase:
    """A random small workload/query, deterministic in ``seed``.

    Randomised: selectivities, join-key skew (uniform or Zipf), the
    aggregate list (count / int32 and int64 sums, mins, maxes) and
    whether the post-join predicate applies.  Infeasible selectivity
    draws fall back to the next derived seed, so every seed yields a
    case.
    """
    rng = np.random.default_rng(seed)
    for attempt in range(16):
        spec = WorkloadSpec(
            sigma_t=float(rng.choice([0.05, 0.1, 0.3, 0.8])),
            sigma_l=float(rng.choice([0.05, 0.2, 0.5])),
            s_l=float(rng.choice([0.1, 0.3, 0.7])),
            t_rows=t_rows, l_rows=l_rows,
            n_keys=int(rng.choice([8, 64, 200])),
            n_urls=40,
            seed=seed * 16 + attempt,
            key_skew=float(rng.choice([0.0, 0.0, 1.2, 1.8])),
        )
        try:
            workload = generate_workload(spec)
        except WorkloadError:
            continue
        break
    else:  # pragma: no cover - the fallback grid above always succeeds
        raise WorkloadError(f"no feasible workload for seed {seed}")

    query = build_paper_query(workload)
    # Dtype-mixing aggregates over the joined wire columns: int32 date
    # and key columns plus the int64 uniqKey when projected.
    aggregate_menu: List[Tuple[AggregateSpec, ...]] = [
        (AggregateSpec("count"),),
        (AggregateSpec("count"), AggregateSpec("sum", "l_predAfterJoin")),
        (AggregateSpec("count"), AggregateSpec("min", "t_predAfterJoin"),
         AggregateSpec("max", "l_joinKey")),
    ]
    replacements: Dict[str, object] = {
        "aggregates": aggregate_menu[int(rng.integers(len(aggregate_menu)))],
    }
    if rng.random() < 0.25:
        replacements["post_join_predicate"] = None
    if rng.random() < 0.25:
        replacements["group_by"] = ("l_joinKey",)
    query = dataclasses.replace(query, **replacements)
    return DataCase(
        name=f"seed{seed}",
        t_table=workload.t_table,
        l_table=workload.l_table,
        query=query,
        provenance=f"generator.generate_data_case(seed={seed})",
    )


def _edge_case_builders() -> Dict[str, "callable"]:
    def _paper(seed, **overrides):
        settings = dict(
            sigma_t=0.2, sigma_l=0.3, s_l=0.3, t_rows=600, l_rows=2_400,
            n_keys=48, n_urls=24, seed=seed,
        )
        settings.update(overrides)
        workload = generate_workload(WorkloadSpec(**settings))
        return workload, build_paper_query(workload)

    def empty_t_prime():
        """T's predicate selects nothing: the join input is empty."""
        workload, query = _paper(101)
        return workload, dataclasses.replace(
            query, db_predicate=compare("corPred", "<=", -1)
        )

    def all_duplicate_keys():
        """A single join key: every row collides on one hash bucket."""
        spec = WorkloadSpec(
            sigma_t=0.5, sigma_l=0.5, s_t=1.0, s_l=1.0,
            t_rows=300, l_rows=900, n_keys=1, n_urls=12, seed=102,
        )
        workload = generate_workload(spec)
        return workload, build_paper_query(workload)

    def zipf_skew():
        """Heavily skewed keys: one worker owns most of the shuffle."""
        workload, query = _paper(103, key_skew=1.4, sigma_t=0.5,
                                 sigma_l=0.5, s_l=0.5)
        return workload, query

    def empty_result():
        """Post-join window no date pair can satisfy: empty output."""
        workload, query = _paper(104)
        return workload, dataclasses.replace(
            query,
            post_join_predicate=BetweenDayDiff(
                "t_predAfterJoin", "l_predAfterJoin", low=50, high=60
            ),
        )

    def wide_dtypes():
        """int64 projection plus min/max/sum over mixed-width columns."""
        workload, query = _paper(105)
        return workload, dataclasses.replace(
            query,
            db_projection=("joinKey", "uniqKey", "predAfterJoin"),
            aggregates=(
                AggregateSpec("count"),
                AggregateSpec("max", "t_uniqKey"),
                AggregateSpec("sum", "l_predAfterJoin"),
                AggregateSpec("min", "t_predAfterJoin"),
            ),
        )

    return {
        "empty-t-prime": empty_t_prime,
        "all-duplicate-keys": all_duplicate_keys,
        "zipf-skew": zipf_skew,
        "empty-result": empty_result,
        "wide-dtypes": wide_dtypes,
    }


def skewed_case(key_skew: float, seed: int = 7) -> DataCase:
    """A pinned heavily Zipf-skewed case for the skew-handling axis.

    Selectivities are kept moderate so the hot keys survive both
    predicates and dominate the shuffle; infeasible draws (high skew
    can starve a correlated key region of probability mass) retry on
    the next derived seed.
    """
    for attempt in range(16):
        spec = WorkloadSpec(
            sigma_t=0.5, sigma_l=0.5, s_l=0.5,
            t_rows=900, l_rows=3_600, n_keys=64, n_urls=24,
            seed=seed * 16 + attempt, key_skew=key_skew,
        )
        try:
            workload = generate_workload(spec)
        except WorkloadError:
            continue
        break
    else:
        raise WorkloadError(
            f"no feasible skewed workload for key_skew={key_skew}"
        )
    return DataCase(
        name=f"skew{key_skew:g}",
        t_table=workload.t_table,
        l_table=workload.l_table,
        query=build_paper_query(workload),
        provenance=(
            f"generator.skewed_case({key_skew!r}, seed={seed})"
        ),
    )


#: One pinned seed per aggregate mix the approximate tier estimates.
#: ``count`` and ``sum`` get closed-form interval totals, ``avg`` rides
#: the ratio estimator, ``minmax`` folds extremes without intervals —
#: each kind exercises a different estimator path, so the grids and the
#: statistical battery sweep all of them.
APPROX_KINDS = ("count", "sum", "avg", "minmax")
_APPROX_KIND_SEEDS = {"count": 12, "sum": 5, "avg": 5, "minmax": 7}


def approx_case(kind: str, seed: Optional[int] = None) -> DataCase:
    """A pinned case whose query exercises one aggregate kind.

    The generated aggregate menu never draws ``avg``, so that kind is
    built by replacing the pinned sum case's aggregates with an
    ``avg`` over the same wire column (plus the count the ratio
    estimator decomposes it into anyway).
    """
    if kind not in APPROX_KINDS:
        raise KeyError(
            f"unknown approx kind {kind!r}; have {list(APPROX_KINDS)}"
        )
    case = generate_data_case(
        _APPROX_KIND_SEEDS[kind] if seed is None else seed)
    query = case.query
    if kind == "avg":
        query = dataclasses.replace(query, aggregates=(
            AggregateSpec("count"),
            AggregateSpec("avg", "l_predAfterJoin"),
        ))
    return DataCase(
        name=f"approx-{kind}" if seed is None else f"approx-{kind}{seed}",
        t_table=case.t_table,
        l_table=case.l_table,
        query=query,
        provenance=f"generator.approx_case({kind!r}, seed={seed!r})",
    )


def edge_case(name: str) -> DataCase:
    """One named extreme (see :func:`edge_cases` for the full set)."""
    builders = _edge_case_builders()
    if name not in builders:
        raise KeyError(
            f"unknown edge case {name!r}; have {sorted(builders)}"
        )
    workload, query = builders[name]()
    return DataCase(
        name=name,
        t_table=workload.t_table,
        l_table=workload.l_table,
        query=query,
        provenance=f"generator.edge_case({name!r})",
    )


def edge_cases() -> List[DataCase]:
    """The pinned extremes every grid should visit."""
    return [edge_case(name) for name in _edge_case_builders()]


def with_rows(case: DataCase, t_rows: Sequence[int],
              l_rows: Sequence[int]) -> DataCase:
    """The same case restricted to the given row indices (shrinking)."""
    t_idx = np.asarray(list(t_rows), dtype=np.int64)
    l_idx = np.asarray(list(l_rows), dtype=np.int64)
    return DataCase(
        name=f"{case.name}[{len(t_idx)}x{len(l_idx)}]",
        t_table=case.t_table.take(t_idx),
        l_table=case.l_table.take(l_idx),
        query=case.query,
        provenance=(
            f"generator.with_rows({case.provenance}, "
            f"t_rows={t_idx.tolist()!r}, l_rows={l_idx.tolist()!r})"
        ),
    )


# ----------------------------------------------------------------------
# Cell execution
# ----------------------------------------------------------------------
def build_cell_warehouse(case: DataCase, workers: int,
                         format_name: str) -> HybridWarehouse:
    """A loaded warehouse sized to one cell's worker axis."""
    config = dataclasses.replace(
        default_config(scale=1.0 / 50_000.0),
        cluster=ClusterConfig(
            hdfs_nodes=workers,
            db_workers=workers,
            db_servers=_DB_SERVERS.get(workers, max(1, workers // 6)),
            hdfs_replication=min(2, workers),
        ),
    )
    warehouse = HybridWarehouse(config)
    warehouse.load_db_table("T", case.t_table, distribute_on="uniqKey")
    warehouse.database.create_index("T", "idx_pred",
                                    ["corPred", "indPred"])
    warehouse.database.create_index(
        "T", "idx_bloom", ["corPred", "indPred", "joinKey"]
    )
    warehouse.load_hdfs_table("L", case.l_table, format_name)
    return warehouse


def _run_via_service(warehouse, case: DataCase, algorithm: str) -> Table:
    """Cold run then warm run through the semantic caches."""
    from repro.service import QueryService, ServiceConfig

    service = QueryService(warehouse, ServiceConfig(
        enable_result_cache=False,  # a result-cache hit would be trivial
        enable_feedback=False,
        enable_bloom_cache=True,
        enable_join_index_cache=True,
    ))
    service.execute(case.query, algorithm=algorithm)
    warm = service.execute(case.query, algorithm=algorithm)
    if warm.status != "ok":
        raise ServiceError(
            f"warm-cache run failed: {warm.status} {warm.error}"
        )
    return warm.result


def run_cell(case: DataCase, cell: ConfigCell,
             warehouse: Optional[HybridWarehouse] = None) -> Table:
    """Execute one (case, cell) pair and return the result table.

    Global state (the kernel toggle, armed fault plans) is restored on
    every exit path, so grid sweeps cannot leak configuration between
    cells.  Pass a ``warehouse`` (matching the cell's worker count and
    format) to amortise loading across cells.
    """
    if warehouse is None:
        warehouse = build_cell_warehouse(
            case, cell.workers, cell.format_name
        )
    from repro.latemat import set_late_materialization_enabled
    from repro.parallel import set_execution_backend
    from repro.skew import set_skew_handling_enabled

    previous_kernels = set_kernels_enabled(cell.kernels)
    previous_skew = set_skew_handling_enabled(cell.skew_handling)
    previous_latemat = set_late_materialization_enabled(
        cell.late_materialization)
    previous_backend = set_execution_backend(
        cell.backend,
        workers=_CELL_POOL_WORKERS if cell.backend == "process" else None,
    )
    algorithm_kwargs = {}
    if cell.estimate_error is not None:
        algorithm_kwargs["estimate_errors"] = cell.estimate_error
    if cell.approx is not None:
        algorithm_kwargs["sample_rate"] = cell.approx
    try:
        if cell.cache_warm:
            return _run_via_service(warehouse, case, cell.algorithm)
        if cell.fault_spec:
            warehouse.arm_faults(FaultPlan.from_spec(cell.fault_spec))
            try:
                result = algorithm_by_name(
                    cell.algorithm, **algorithm_kwargs
                ).run(warehouse, case.query)
            finally:
                warehouse.disarm_faults()
            return result.result
        return algorithm_by_name(cell.algorithm, **algorithm_kwargs).run(
            warehouse, case.query
        ).result
    finally:
        set_kernels_enabled(previous_kernels)
        set_skew_handling_enabled(previous_skew)
        set_late_materialization_enabled(previous_latemat)
        set_execution_backend(previous_backend)


class WarehouseCache:
    """Memoises loaded warehouses per (case, workers, format).

    Cells only ever read the loaded tables, so one warehouse can back
    every cell that shares a data case, worker count and format.
    """

    def __init__(self):
        self._entries: Dict[Tuple[str, int, str], HybridWarehouse] = {}

    def get(self, case: DataCase, cell: ConfigCell) -> HybridWarehouse:
        key = (case.name, cell.workers, cell.format_name)
        if key not in self._entries:
            self._entries[key] = build_cell_warehouse(
                case, cell.workers, cell.format_name
            )
        return self._entries[key]


# ----------------------------------------------------------------------
# Grids
# ----------------------------------------------------------------------
def default_grid(seed: int = 2015) -> List[Tuple[DataCase, ConfigCell]]:
    """The seeded tier-1 grid: >= 200 cells across every axis.

    The first seeded case sweeps the full cross of algorithms x worker
    counts x kernel toggle, plus the format, fault and warm-cache axes;
    a second seeded case and every pinned edge case sweep all
    algorithms with kernels on and off.
    """
    base = generate_data_case(seed)
    grid: List[Tuple[DataCase, ConfigCell]] = []
    for algorithm in ALL_ALGORITHMS:
        for workers in WORKER_AXIS:
            for kernels in (True, False):
                grid.append((base, ConfigCell(
                    algorithm, workers=workers, kernels=kernels,
                )))
        for format_name in ("text", "orc"):
            grid.append((base, ConfigCell(
                algorithm, workers=4, format_name=format_name,
            )))
        for fault_spec in FAULT_AXIS:
            grid.append((base, ConfigCell(
                algorithm, workers=30, fault_spec=fault_spec,
            )))
        grid.append((base, ConfigCell(
            algorithm, workers=4, cache_warm=True,
        )))
        grid.append((base, ConfigCell(
            algorithm, workers=4, backend="process",
        )))
    # Adaptive x injected estimate errors: each pair makes the initial
    # advice wrong in a different direction; the result must still be
    # the oracle's, wherever (or whether) the switch lands.
    for estimate_error in ESTIMATE_ERROR_AXIS:
        grid.append((base, ConfigCell(
            "adaptive", workers=4, estimate_error=estimate_error,
        )))
    extra_cases = [generate_data_case(seed + 1)] + edge_cases()
    for case in extra_cases:
        for algorithm in ALL_ALGORITHMS:
            for kernels in (True, False):
                grid.append((case, ConfigCell(
                    algorithm, workers=4, kernels=kernels,
                )))
    # Skew axis: every shuffle-using algorithm, hybrid shuffle on and
    # off, on the pinned heavily skewed case — plus every fault plan
    # with skew handling armed (detection, broadcast split and work
    # stealing must all survive crashes, stragglers, lossy links and
    # spill pressure without changing a row).
    hot = skewed_case(1.8)
    for algorithm in SHUFFLE_ALGORITHMS:
        for skew_handling in (False, True):
            grid.append((hot, ConfigCell(
                algorithm, workers=4, skew_handling=skew_handling,
            )))
        for fault_spec in FAULT_AXIS:
            grid.append((hot, ConfigCell(
                algorithm, workers=30, fault_spec=fault_spec,
                skew_handling=True,
            )))
    # Late-materialization axis: thin-row shipping + payload stitch
    # must be row-identical everywhere it can activate — every
    # algorithm on a wide-payload case (where both stores engage),
    # across formats, with skew handling on the hot case, under a
    # fault plan, and on the real process pool.
    wide = edge_case("wide-dtypes")
    for algorithm in ALL_ALGORITHMS:
        grid.append((wide, ConfigCell(
            algorithm, workers=4, late_materialization=True,
        )))
    for format_name in ("text", "orc"):
        grid.append((wide, ConfigCell(
            "repartition", workers=4, format_name=format_name,
            late_materialization=True,
        )))
    for algorithm in ("repartition(BF)", "zigzag"):
        grid.append((hot, ConfigCell(
            algorithm, workers=4, skew_handling=True,
            late_materialization=True,
        )))
    grid.append((wide, ConfigCell(
        "zigzag", workers=30, fault_spec=FAULT_AXIS[0],
        late_materialization=True,
    )))
    grid.append((wide, ConfigCell(
        "repartition", workers=30, fault_spec=FAULT_AXIS[3],
        late_materialization=True,
    )))
    for algorithm in ("repartition", "broadcast", "db"):
        grid.append((wide, ConfigCell(
            algorithm, workers=4, backend="process",
            late_materialization=True,
        )))
    # Approx axis at rate 1.0: sampling every block must reproduce the
    # exact answer bit-for-bit on every aggregate kind, with and
    # without the Bloom filter — the degenerate end of the statistical
    # contract, checked with the same differential machinery as every
    # exact cell.
    for kind in APPROX_KINDS:
        case = approx_case(kind)
        for algorithm in ("approx", "approx(BF)"):
            grid.append((case, ConfigCell(
                algorithm, workers=4, approx=1.0,
            )))
    return grid


@dataclass(frozen=True)
class SharedPoolStream:
    """One concurrent query stream of a shared-pool grid block."""

    tenant: str
    priority: int
    case: DataCase
    cell: ConfigCell

    def label(self) -> str:
        return f"{self.tenant}:{self.case.name}:{self.cell.label()}"


def shared_pool_grid(seed: int = 2015
                     ) -> List[Tuple[str, List[SharedPoolStream]]]:
    """Blocks of concurrent streams for one shared process pool.

    Each block is a named list of streams that run *simultaneously*
    (one thread each) against one installed
    :class:`~repro.parallel.sharedpool.SharedProcessPool`, so freed
    worker slots are genuinely stolen across queries.  The axes:
    distinct tenants, mixed priorities, and every fault plan paired
    with a clean process-backend neighbour (a fault-armed stream falls
    back to the sequential path by design, but it still runs
    concurrently — its crashes and retries must never corrupt the
    neighbour sharing the pool).  Every stream must stay oracle-equal.
    """
    base = generate_data_case(seed)
    second = generate_data_case(seed + 1)
    blocks: List[Tuple[str, List[SharedPoolStream]]] = [
        ("two-tenant-clean", [
            SharedPoolStream("alpha", 0, base, ConfigCell(
                "repartition", workers=4, backend="process")),
            SharedPoolStream("beta", 0, second, ConfigCell(
                "zigzag", workers=4, backend="process")),
        ]),
        ("priority-mix", [
            SharedPoolStream("alpha", 0, base, ConfigCell(
                "repartition(BF)", workers=4, backend="process")),
            SharedPoolStream("beta", 1, base, ConfigCell(
                "broadcast", workers=4, backend="process")),
            SharedPoolStream("gamma", 1, second, ConfigCell(
                "semijoin", workers=4, backend="process")),
        ]),
    ]
    for fault_spec in FAULT_AXIS:
        blocks.append((f"faults[{fault_spec}]", [
            SharedPoolStream("faulty", 0, base, ConfigCell(
                "repartition", workers=30, fault_spec=fault_spec,
                backend="process")),
            SharedPoolStream("clean", 0, second, ConfigCell(
                "semijoin", workers=4, backend="process")),
        ]))
    return blocks


def run_shared_pool_block(streams: Sequence[SharedPoolStream],
                          pool_workers: int = 2) -> Dict[str, Table]:
    """Run a block's streams concurrently on one shared pool.

    Installs a fresh :class:`~repro.parallel.sharedpool
    .SharedProcessPool` for every engine call site, runs each stream in
    its own thread under its :func:`repro.parallel.task_origin`, and
    restores the backend toggle and installed override on every exit
    path.  Returns ``{stream.label(): result_table}``; re-raises the
    first stream failure.  The pool's session prefix must hold no
    leaked segments afterwards (asserted here, not left to callers).
    """
    import threading

    from repro import parallel
    from repro.parallel import (
        SharedProcessPool,
        install_backend,
        leaked_segments,
        set_execution_backend,
    )

    pool = SharedProcessPool(workers=pool_workers)
    previous_installed = install_backend(pool)
    previous_backend = set_execution_backend(
        "process", workers=pool_workers)
    results: Dict[str, Table] = {}
    errors: Dict[str, BaseException] = {}

    def run_stream(stream: SharedPoolStream) -> None:
        warehouse = build_cell_warehouse(
            stream.case, stream.cell.workers, stream.cell.format_name
        )
        try:
            with parallel.task_origin(stream.tenant, stream.label(),
                                      stream.priority):
                if stream.cell.fault_spec:
                    warehouse.arm_faults(
                        FaultPlan.from_spec(stream.cell.fault_spec))
                    try:
                        run = algorithm_by_name(
                            stream.cell.algorithm
                        ).run(warehouse, stream.case.query)
                    finally:
                        warehouse.disarm_faults()
                else:
                    run = algorithm_by_name(stream.cell.algorithm).run(
                        warehouse, stream.case.query
                    )
            results[stream.label()] = run.result
        except BaseException as exc:  # noqa: BLE001 - reported below
            errors[stream.label()] = exc

    try:
        threads = [
            threading.Thread(target=run_stream, args=(stream,),
                             name=stream.label())
            for stream in streams
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
    finally:
        set_execution_backend(previous_backend)
        install_backend(previous_installed)
        pool.shutdown()
    if errors:
        label, exc = next(iter(errors.items()))
        raise ServiceError(
            f"shared-pool stream {label} failed: {exc!r}"
        ) from exc
    leaks = leaked_segments(pool.registry.prefix)
    if leaks:
        raise ServiceError(
            f"shared-pool block leaked segments: {leaks}"
        )
    return results


def wide_grid(seeds: Sequence[int]) -> List[Tuple[DataCase, ConfigCell]]:
    """The slow-marked sweep: the full axis cross per seeded case."""
    grid: List[Tuple[DataCase, ConfigCell]] = []
    for seed in seeds:
        case = generate_data_case(seed)
        for algorithm in ALL_ALGORITHMS:
            for workers in WORKER_AXIS:
                for format_name in FORMAT_AXIS:
                    for kernels in (True, False):
                        grid.append((case, ConfigCell(
                            algorithm, workers=workers,
                            format_name=format_name, kernels=kernels,
                        )))
            for fault_spec in FAULT_AXIS:
                grid.append((case, ConfigCell(
                    algorithm, workers=30, fault_spec=fault_spec,
                )))
            grid.append((case, ConfigCell(
                algorithm, workers=30, cache_warm=True,
            )))
            for workers in WORKER_AXIS:
                for kernels in (True, False):
                    grid.append((case, ConfigCell(
                        algorithm, workers=workers, kernels=kernels,
                        backend="process",
                    )))
        for estimate_error in ESTIMATE_ERROR_AXIS:
            for workers in WORKER_AXIS:
                grid.append((case, ConfigCell(
                    "adaptive", workers=workers,
                    estimate_error=estimate_error,
                )))
        for key_skew in KEY_SKEW_AXIS[1:]:
            hot = skewed_case(key_skew, seed=seed)
            for algorithm in SHUFFLE_ALGORITHMS:
                for workers in WORKER_AXIS:
                    for skew_handling in (False, True):
                        grid.append((hot, ConfigCell(
                            algorithm, workers=workers,
                            skew_handling=skew_handling,
                        )))
    return grid
