"""repro.testkit — the shared differential-testing subsystem.

One harness for every correctness question the reproduction asks:

* :mod:`repro.testkit.oracle` — a trusted single-node executor (plain
  numpy/dict hash join and aggregation over :class:`repro.relational.
  table.Table`, no engine code) plus canonical row-multiset comparison
  with readable first-divergence diffs;
* :mod:`repro.testkit.generator` — seeded data/query/config generation
  spanning the metamorphic axes (algorithms, worker counts, HDFS
  formats, kernels on/off, fault plans, cache cold/warm) and a runner
  executing one grid cell;
* :mod:`repro.testkit.invariants` — engine assertion hooks (exactly-once
  shuffle delivery, partition completeness/disjointness, Bloom
  no-false-negative, spill round-trip fidelity) armed via
  :func:`checking`;
* :mod:`repro.testkit.shrink` — a delta-debugging minimizer reducing a
  failing (case, config) to a minimal table plus a single config axis,
  emitting a ready-to-paste repro snippet;
* :mod:`repro.testkit.fuzz` — the budgeted fuzz driver behind
  ``python -m repro fuzz`` and the CI ``fuzz-smoke`` job.

The engine modules import :mod:`~repro.testkit.invariants` at load
time, so this package must stay import-light: only the invariant hooks
(numpy-only) load eagerly; everything else resolves lazily on first
attribute access.
"""

from __future__ import annotations

from repro.testkit.invariants import checking, checking_enabled

_LAZY_MODULES = ("fuzz", "generator", "invariants", "oracle", "shrink")

__all__ = [
    "checking",
    "checking_enabled",
    "fuzz",
    "generator",
    "invariants",
    "oracle",
    "shrink",
]


def __getattr__(name: str):
    if name in _LAZY_MODULES:
        import importlib

        return importlib.import_module(f"repro.testkit.{name}")
    raise AttributeError(f"module 'repro.testkit' has no attribute {name!r}")
