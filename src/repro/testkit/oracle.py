"""The trusted single-node oracle for hybrid queries.

:func:`oracle_execute` answers any :class:`~repro.query.query.
HybridQuery` over two plain tables using nothing but numpy primitives
and Python dictionaries: a dict-based hash join, row-at-a-time UDF
evaluation for derived columns, and a dict-based group-by.  It shares
*no* code with the engines — not the partitioners, not the kernels, not
even the shared local-join/aggregate plan steps that
:func:`repro.query.executor.reference_join` reuses — so a bug in any
shared kernel cannot cancel out between the system under test and this
oracle.

The comparison helpers treat results as **row multisets**: every engine
in the reproduction is exact, so two correct executors may only differ
in row order.  :func:`compare_tables` returns ``None`` on equivalence
or a readable first-divergence diff (missing rows, extra rows,
first differing sorted position) meant to be pasted straight into a bug
report.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.query.query import HybridQuery
from repro.relational.aggregates import AggregateSpec
from repro.relational.schema import Column, DataType, Schema
from repro.relational.table import Table, table_from_rows

Rows = List[Tuple]


# ----------------------------------------------------------------------
# Execution
# ----------------------------------------------------------------------
def _filter_rows(table: Table, predicate) -> Table:
    """Boolean-mask filter via plain numpy indexing (no Table.filter)."""
    mask = np.asarray(predicate.evaluate(table), dtype=bool)
    columns = {
        name: table.column(name)[mask] for name in table.schema.names
    }
    dictionaries = {
        column.name: table.dictionary(column.name)
        for column in table.schema
        if column.dtype is DataType.DICT_STRING
    }
    return Table(table.schema, columns, dictionaries)


def _apply_derived_rowwise(table: Table, query: HybridQuery) -> Table:
    """Compute derived columns one row at a time (no memoised kernel).

    Deliberately the dumbest correct implementation: the UDF runs per
    row over the materialised strings, and the derived dictionary is
    rebuilt with ``np.unique`` — independently of the per-dictionary
    memoisation the engines use.
    """
    for derived in query.hdfs_derived:
        source_values = table.strings(derived.source)
        derived_values = np.array(
            [derived.function(value) for value in source_values],
            dtype=object,
        )
        dictionary, codes = np.unique(derived_values, return_inverse=True)
        column = Column(derived.name, DataType.DICT_STRING,
                        derived.width_bytes)
        table = table.with_column(
            column, codes.astype(np.int32), dictionary=dictionary
        )
    return table


def _dict_hash_join(t_table: Table, l_table: Table,
                    query: HybridQuery) -> Table:
    """Inner equi-join via a Python dict, output columns prefixed."""
    build: Dict[int, List[int]] = {}
    l_keys = l_table.column(query.hdfs_join_key)
    for row, key in enumerate(l_keys.tolist()):
        build.setdefault(key, []).append(row)

    t_matches: List[int] = []
    l_matches: List[int] = []
    for row, key in enumerate(t_table.column(query.db_join_key).tolist()):
        for l_row in build.get(key, ()):
            t_matches.append(row)
            l_matches.append(l_row)
    t_idx = np.asarray(t_matches, dtype=np.int64)
    l_idx = np.asarray(l_matches, dtype=np.int64)

    columns: Dict[str, np.ndarray] = {}
    dictionaries: Dict[str, np.ndarray] = {}
    schema_columns: List[Column] = []
    for prefix, side, idx in (
        (query.db_prefix, t_table, t_idx),
        (query.hdfs_prefix, l_table, l_idx),
    ):
        for column in side.schema:
            name = f"{prefix}{column.name}"
            schema_columns.append(
                Column(name, column.dtype, column.width_bytes)
            )
            columns[name] = side.column(column.name)[idx]
            if column.dtype is DataType.DICT_STRING:
                dictionaries[name] = side.dictionary(column.name)
    return Table(Schema(schema_columns), columns, dictionaries)


def _group_value(table: Table, name: str, row: int):
    column = table.schema.column(name)
    if column.dtype is DataType.DICT_STRING:
        return table.dictionary(name)[table.column(name)[row]]
    return table.column(name)[row].item()


def _aggregate_rowwise(joined: Table, query: HybridQuery) -> Table:
    """Dict-based group-by over the joined rows.

    ``avg`` is decomposed into (sum, count) during accumulation; the
    other functions accumulate directly.  Output rows come back sorted
    by ascending group value (strings for dict-string group columns) —
    a deterministic order, though callers should still compare as
    multisets via :func:`compare_tables`.
    """
    group_names = list(query.group_by)
    specs = list(query.aggregates)
    groups: Dict[Tuple, List] = {}
    for row in range(joined.num_rows):
        key = tuple(
            _group_value(joined, name, row) for name in group_names
        )
        state = groups.get(key)
        if state is None:
            state = [_fresh_state(spec) for spec in specs]
            groups[key] = state
        for spec, accumulator in zip(specs, state):
            _accumulate(spec, accumulator, joined, row)

    schema_columns = [joined.schema.column(name) for name in group_names]
    schema_columns += [
        Column(spec.output_name(), spec.output_dtype()) for spec in specs
    ]
    rows = []
    for key in sorted(groups):
        rows.append(key + tuple(
            _finalise(spec, accumulator)
            for spec, accumulator in zip(specs, groups[key])
        ))
    return table_from_rows(Schema(schema_columns), rows)


def _fresh_state(spec: AggregateSpec):
    if spec.function == "count":
        return [0]
    if spec.function == "sum":
        return [0]
    if spec.function == "avg":
        return [0, 0]  # running sum, running count
    return [None]  # min / max


def _accumulate(spec: AggregateSpec, state: List, joined: Table,
                row: int) -> None:
    if spec.function == "count":
        state[0] += 1
        return
    value = joined.column(spec.column)[row].item()
    if spec.function == "sum":
        state[0] += value
    elif spec.function == "avg":
        state[0] += value
        state[1] += 1
    elif spec.function == "min":
        state[0] = value if state[0] is None else min(state[0], value)
    else:  # max
        state[0] = value if state[0] is None else max(state[0], value)


def _finalise(spec: AggregateSpec, state: List):
    if spec.function == "avg":
        return state[0] / state[1] if state[1] else 0.0
    return state[0]


def oracle_execute(t_table: Table, l_table: Table,
                   query: HybridQuery) -> Table:
    """Run ``query`` over unpartitioned tables with the trusted oracle.

    The pipeline mirrors the query semantics, not any engine: filter
    both sides, project, derive row-wise, dict-hash-join, apply the
    post-join predicate, group and aggregate with Python dicts.

    Empty-join semantics (the contract the approximate estimators must
    match): a join that produces no qualifying rows yields a **zero-row
    table** with the full result schema — groups are only materialised
    when at least one row lands in them, so there is no ``count=0`` row,
    no ``sum`` over nothing, and ``avg`` of an empty group can only
    arise through :func:`_finalise`'s explicit ``0.0`` convention (a
    defensive branch; a materialised group always has ``count >= 1``).
    """
    t_side = _filter_rows(t_table, query.db_predicate)
    t_side = t_side.project(list(query.db_projection))

    l_side = _filter_rows(l_table, query.hdfs_predicate)
    l_side = l_side.project(list(query.hdfs_projection))
    l_side = _apply_derived_rowwise(l_side, query)
    l_side = l_side.project(list(query.hdfs_wire_columns()))

    joined = _dict_hash_join(t_side, l_side, query)
    if query.post_join_predicate is not None:
        joined = _filter_rows(joined, query.post_join_predicate)
    return _aggregate_rowwise(joined, query)


def oracle_aggregate_cells(t_table: Table, l_table: Table,
                           query: HybridQuery) -> Dict[Tuple, object]:
    """The exact answer as a ``(group, aggregate) -> value`` map.

    The cell form the statistical contract consumes: each key pairs the
    group-value tuple with one aggregate's output name, mirroring
    :class:`repro.approx.estimator.ApproxEstimate.cells` so coverage
    checks can line the two up directly.  An empty join yields an empty
    map — the absence of a group *is* the exact answer for it.
    """
    result = oracle_execute(t_table, l_table, query)
    n_groups = len(query.group_by)
    names = [spec.output_name() for spec in query.aggregates]
    cells: Dict[Tuple, object] = {}
    for row in result.to_rows():
        key = row[:n_groups]
        for name, value in zip(names, row[n_groups:]):
            cells[(key, name)] = value
    return cells


# ----------------------------------------------------------------------
# Canonical comparison
# ----------------------------------------------------------------------
def canonical_rows(result: Union[Table, Sequence[Tuple]]) -> Rows:
    """Rows as a sorted list of tuples (the canonical multiset form)."""
    rows = result.to_rows() if isinstance(result, Table) else list(result)
    return sorted(rows)


def compare_tables(actual: Union[Table, Sequence[Tuple]],
                   expected: Union[Table, Sequence[Tuple]],
                   label: str = "result",
                   max_examples: int = 5) -> Optional[str]:
    """None when the row multisets agree; a readable diff otherwise.

    The diff leads with the first divergence in canonical (sorted)
    order, then lists up to ``max_examples`` missing and extra rows
    with their multiplicities.
    """
    if isinstance(actual, Table) and isinstance(expected, Table):
        if actual.schema.names != expected.schema.names:
            return (
                f"{label}: column mismatch: actual "
                f"{list(actual.schema.names)} vs expected "
                f"{list(expected.schema.names)}"
            )
    actual_rows = canonical_rows(actual)
    expected_rows = canonical_rows(expected)
    if actual_rows == expected_rows:
        return None

    lines = [
        f"{label}: row multisets diverge "
        f"({len(actual_rows)} actual rows vs {len(expected_rows)} expected)"
    ]
    for position, (got, want) in enumerate(zip(actual_rows, expected_rows)):
        if got != want:
            lines.append(
                f"  first divergence at sorted row {position}: "
                f"actual={got!r} expected={want!r}"
            )
            break
    else:
        position = min(len(actual_rows), len(expected_rows))
        longer = "actual" if len(actual_rows) > len(expected_rows) \
            else "expected"
        surplus = (actual_rows if longer == "actual" else expected_rows)
        lines.append(
            f"  first divergence at sorted row {position}: only "
            f"{longer} continues, with {surplus[position]!r}"
        )
    missing = Counter(expected_rows) - Counter(actual_rows)
    extra = Counter(actual_rows) - Counter(expected_rows)
    for title, bag in (("missing from actual", missing),
                       ("unexpected in actual", extra)):
        if not bag:
            continue
        total = sum(bag.values())
        lines.append(f"  {title}: {total} row(s)")
        for row, count in list(sorted(bag.items()))[:max_examples]:
            suffix = f" (x{count})" if count > 1 else ""
            lines.append(f"    {row!r}{suffix}")
        if len(bag) > max_examples:
            lines.append(f"    ... and {len(bag) - max_examples} more")
    return "\n".join(lines)


def assert_equivalent(actual: Union[Table, Sequence[Tuple]],
                      expected: Union[Table, Sequence[Tuple]],
                      label: str = "result") -> None:
    """Raise AssertionError with the first-divergence diff on mismatch."""
    diff = compare_tables(actual, expected, label=label)
    if diff is not None:
        raise AssertionError(diff)
