"""Engine invariant hooks, active only inside :func:`checking`.

The distributed engines promise a handful of structural invariants that
differential tests alone can miss (two bugs can cancel out in the final
aggregate).  This module threads *assertion hooks* into the hot spots:

* **exactly-once shuffle delivery** — every destination of
  :func:`repro.jen.exchange.shuffle` accepts each sender's partition
  exactly once, and receives exactly the rows addressed to it, even
  when the fault injector re-sends dropped messages or duplicates
  partitions whose acknowledgement was lost;
* **partition completeness/disjointness** — the hash partitioners in
  :class:`repro.jen.worker.JenWorker` and
  :class:`repro.edw.worker.DbWorker` route every input row to exactly
  one partition, and every row of partition ``i`` re-hashes to ``i``;
* **Bloom no-false-negative** — a :class:`repro.core.bloom.BloomFilter`
  never reports an inserted key absent; a shadow key set is tracked
  through ``add``/``union_in_place``/``copy``/``combine`` and verified
  on every ``contains`` probe;
* **spill round-trip fidelity** — grace-hash fragmenting
  (:func:`repro.jen.spill.fragment_tables`) loses no rows and keeps
  equal keys co-located in the same fragment on both sides.

All hooks are gated on a module-level flag so production runs pay a
single ``if`` per call site.  Enable them with::

    from repro import testkit

    with testkit.checking():
        algorithm_by_name("zigzag").run(warehouse, query)

Violations raise :class:`repro.errors.InvariantViolation`.
"""

from __future__ import annotations

import weakref
from contextlib import contextmanager
from typing import Iterator, Optional, Sequence

import numpy as np

from repro.errors import InvariantViolation

#: Global gate; flip only through :func:`checking`.
_CHECKING = False

#: BloomFilter -> np.ndarray of every key ever inserted (shadow set).
#: Weak keys let filters die normally; entries exist only for filters
#: touched while checking was active.
_BLOOM_SHADOWS: "weakref.WeakKeyDictionary" = weakref.WeakKeyDictionary()


def checking_enabled() -> bool:
    """True while invariant hooks are armed."""
    return _CHECKING


@contextmanager
def checking() -> Iterator[None]:
    """Arm every engine invariant hook for the duration of the block.

    Re-entrant; the shadow state of Bloom filters is dropped on the
    outermost exit so one test cannot poison the next.
    """
    global _CHECKING
    previous = _CHECKING
    _CHECKING = True
    try:
        yield
    finally:
        _CHECKING = previous
        if not previous:
            _BLOOM_SHADOWS.clear()


def violation(message: str) -> "InvariantViolation":
    """Build the typed error (helper so hooks read as one-liners)."""
    return InvariantViolation(message)


# ----------------------------------------------------------------------
# Shuffle delivery (jen/exchange.py)
# ----------------------------------------------------------------------
def check_shuffle_delivery(outgoing, per_destination,
                           delivery_counts: np.ndarray) -> None:
    """Exactly-once acceptance plus row conservation per destination.

    ``delivery_counts[sender, destination]`` counts the copies each
    receiver *accepted* (post dedup).  Anything other than exactly one
    copy per (sender, destination) pair — or a received row count that
    differs from the rows addressed to that destination — is a
    violation.
    """
    if not _CHECKING:
        return
    bad = np.argwhere(delivery_counts != 1)
    if bad.size:
        sender, destination = (int(bad[0][0]), int(bad[0][1]))
        raise violation(
            "shuffle delivery is not exactly-once: destination "
            f"{destination} accepted {int(delivery_counts[sender, destination])} "
            f"copies from sender {sender} (expected 1)"
        )
    for destination, received in enumerate(per_destination):
        expected = sum(
            parts[destination].num_rows for parts in outgoing
        )
        if received.num_rows != expected:
            raise violation(
                f"shuffle conservation broken at destination {destination}: "
                f"received {received.num_rows} rows, senders addressed "
                f"{expected}"
            )


# ----------------------------------------------------------------------
# Hash partitioning (jen/worker.py, edw/worker.py)
# ----------------------------------------------------------------------
def check_hash_partition(table, key: str, parts: Sequence,
                         num_partitions: int, hash_fn) -> None:
    """Partition completeness and disjointness.

    * completeness — the partition row counts sum to the input rows
      (no row dropped, none duplicated);
    * disjointness — every row of partition ``i`` re-hashes to ``i``
      under the agreed hash, so no row could also belong elsewhere.
    """
    if not _CHECKING:
        return
    if len(parts) != num_partitions:
        raise violation(
            f"partitioner returned {len(parts)} parts for "
            f"{num_partitions} partitions"
        )
    total = sum(part.num_rows for part in parts)
    if total != table.num_rows:
        raise violation(
            f"partition completeness broken on key {key!r}: "
            f"{table.num_rows} input rows became {total} partitioned rows"
        )
    for index, part in enumerate(parts):
        if part.num_rows == 0:
            continue
        routed = hash_fn(part.column(key), num_partitions)
        wrong = np.flatnonzero(routed != index)
        if wrong.size:
            key_value = part.column(key)[wrong[0]]
            raise violation(
                f"partition disjointness broken: row with {key}="
                f"{key_value!r} landed in partition {index} but hashes "
                f"to {int(routed[wrong[0]])}"
            )


# ----------------------------------------------------------------------
# Hybrid (broadcast-hot / hash-cold) shuffle (jen/worker.py,
# core/joins/repartition.py)
# ----------------------------------------------------------------------
def _hot_destination_sets(hot_keys: np.ndarray,
                          fanouts: Optional[np.ndarray],
                          num_partitions: int, hash_fn):
    """Allowed destination set per hot key (all when no fan-outs)."""
    if fanouts is None:
        everywhere = frozenset(range(num_partitions))
        return {int(k): everywhere for k in hot_keys}
    homes = hash_fn(hot_keys, num_partitions)
    return {
        int(k): frozenset(
            (int(home) + offset) % num_partitions
            for offset in range(int(fanout))
        )
        for k, home, fanout in zip(hot_keys, homes, fanouts)
    }


def check_hybrid_partition(table, key: str, parts: Sequence,
                           num_partitions: int, hash_fn,
                           hot_keys: np.ndarray,
                           fanouts: Optional[np.ndarray] = None) -> None:
    """Hybrid split of one sender's build side (L rows).

    * completeness — the partition row counts sum to the input rows;
    * cold disjointness — every *cold* row of partition ``i`` re-hashes
      to ``i`` under the agreed hash;
    * hot conservation — each hot key's rows appear across the parts
      exactly as many times as in the input (spread, never duplicated),
      so no (l, t) pair can be produced twice downstream;
    * hot containment — hot rows only land inside their key's bounded
      destination set (``fanouts`` consecutive workers from the agreed-
      hash home; every worker when ``fanouts`` is ``None``).
    """
    if not _CHECKING:
        return
    if len(parts) != num_partitions:
        raise violation(
            f"hybrid partitioner returned {len(parts)} parts for "
            f"{num_partitions} partitions"
        )
    total = sum(part.num_rows for part in parts)
    if total != table.num_rows:
        raise violation(
            f"hybrid partition completeness broken on key {key!r}: "
            f"{table.num_rows} input rows became {total} partitioned rows"
        )
    hot_keys = np.asarray(hot_keys, dtype=np.int64)
    allowed = _hot_destination_sets(hot_keys, fanouts, num_partitions,
                                    hash_fn)
    for index, part in enumerate(parts):
        if part.num_rows == 0:
            continue
        keys = part.column(key)
        hot_mask = np.isin(keys, hot_keys)
        routed = hash_fn(keys, num_partitions)
        wrong = np.flatnonzero(~hot_mask & (routed != index))
        if wrong.size:
            raise violation(
                f"hybrid partition disjointness broken: cold row with "
                f"{key}={keys[wrong[0]]!r} landed in partition {index} "
                f"but hashes to {int(routed[wrong[0]])}"
            )
        for hot_key in np.unique(keys[hot_mask]):
            if index not in allowed[int(hot_key)]:
                raise violation(
                    f"hybrid partition containment broken: hot key "
                    f"{int(hot_key)} landed in partition {index}, "
                    f"outside its destination set "
                    f"{sorted(allowed[int(hot_key)])}"
                )
    input_keys = table.column(key)
    input_hot = input_keys[np.isin(input_keys, hot_keys)]
    spread_hot = np.concatenate([
        part.column(key)[np.isin(part.column(key), hot_keys)]
        for part in parts
    ]) if parts else np.zeros(0, dtype=np.int64)
    expected_keys, expected_counts = np.unique(input_hot,
                                               return_counts=True)
    actual_keys, actual_counts = np.unique(spread_hot, return_counts=True)
    if (not np.array_equal(expected_keys, actual_keys)
            or not np.array_equal(expected_counts, actual_counts)):
        raise violation(
            f"hybrid partition hot conservation broken on key {key!r}: "
            "spread hot rows do not match the input multiset"
        )


def check_broadcast_routing(t_parts, key: str, per_destination,
                            num_destinations: int, hash_fn,
                            hot_keys: np.ndarray,
                            fanouts: Optional[np.ndarray] = None) -> None:
    """Probe-side (T′) routing of a hybrid shuffle.

    Every destination must hold its agreed-hash share of the cold rows,
    plus — for each hot key whose bounded destination set contains it —
    exactly one copy of every input row of that key, and *zero* rows of
    hot keys whose set does not contain it.  Together with the L-side
    spread (:func:`check_hybrid_partition`) this guarantees each hot
    (l, t) pair is produced exactly once.
    """
    if not _CHECKING:
        return
    hot_keys = np.asarray(hot_keys, dtype=np.int64)
    allowed = _hot_destination_sets(hot_keys, fanouts, num_destinations,
                                    hash_fn)
    all_keys = np.concatenate([part.column(key) for part in t_parts]) \
        if t_parts else np.zeros(0, dtype=np.int64)
    hot_input = all_keys[np.isin(all_keys, hot_keys)]
    input_counts = {
        int(k): int(c)
        for k, c in zip(*np.unique(hot_input, return_counts=True))
    }
    cold_input = all_keys[~np.isin(all_keys, hot_keys)]
    cold_seen = 0
    for destination, received in enumerate(per_destination):
        keys = received.column(key)
        hot_mask = np.isin(keys, hot_keys)
        got_hot, got_counts = np.unique(keys[hot_mask],
                                        return_counts=True)
        got = {int(k): int(c) for k, c in zip(got_hot, got_counts)}
        for hot_key in hot_keys:
            expected = (
                input_counts.get(int(hot_key), 0)
                if destination in allowed[int(hot_key)] else 0
            )
            if got.get(int(hot_key), 0) != expected:
                raise violation(
                    f"broadcast routing broken at destination "
                    f"{destination}: hot key {int(hot_key)} delivered "
                    f"{got.get(int(hot_key), 0)} rows, expected "
                    f"{expected}"
                )
        cold = keys[~hot_mask]
        cold_seen += cold.size
        if cold.size:
            routed = hash_fn(cold, num_destinations)
            wrong = np.flatnonzero(routed != destination)
            if wrong.size:
                raise violation(
                    f"broadcast routing broken: cold row with {key}="
                    f"{cold[wrong[0]]!r} arrived at destination "
                    f"{destination} but hashes to {int(routed[wrong[0]])}"
                )
    if cold_seen != cold_input.size:
        raise violation(
            f"broadcast routing lost cold rows: {cold_input.size} input "
            f"cold rows became {cold_seen} delivered rows"
        )


# ----------------------------------------------------------------------
# Bloom filters (core/bloom.py)
# ----------------------------------------------------------------------
def record_bloom_add(bloom, keys: np.ndarray) -> None:
    """Track inserted keys in the filter's shadow set."""
    if not _CHECKING:
        return
    keys = np.unique(np.asarray(keys).astype(np.int64, copy=False))
    existing = _BLOOM_SHADOWS.get(bloom)
    if existing is None:
        _BLOOM_SHADOWS[bloom] = keys
    else:
        _BLOOM_SHADOWS[bloom] = np.union1d(existing, keys)


def record_bloom_merge(destination, source) -> None:
    """Union/copy propagates the source's shadow set."""
    if not _CHECKING:
        return
    source_keys = _BLOOM_SHADOWS.get(source)
    if source_keys is None:
        return
    existing = _BLOOM_SHADOWS.get(destination)
    if existing is None:
        _BLOOM_SHADOWS[destination] = source_keys.copy()
    else:
        _BLOOM_SHADOWS[destination] = np.union1d(existing, source_keys)


def check_bloom_contains(bloom, keys: np.ndarray,
                         mask: np.ndarray) -> None:
    """No false negatives: every shadow-tracked key must test True."""
    if not _CHECKING:
        return
    shadow = _BLOOM_SHADOWS.get(bloom)
    if shadow is None or shadow.size == 0:
        return
    keys = np.asarray(keys).astype(np.int64, copy=False)
    required = np.isin(keys, shadow)
    false_negatives = np.flatnonzero(required & ~np.asarray(mask))
    if false_negatives.size:
        key_value = int(keys[false_negatives[0]])
        raise violation(
            f"Bloom filter false negative: key {key_value} was inserted "
            "but contains() reported it absent"
        )


# ----------------------------------------------------------------------
# Spill fragmenting (jen/spill.py)
# ----------------------------------------------------------------------
def check_spill_fragments(build, probe, build_key: str, probe_key: str,
                          fragments, num_fragments: int,
                          hash_fn) -> None:
    """Grace-hash round trip: no rows lost, fragments co-aligned.

    Both inputs must reappear in full across the fragments, and every
    fragment's rows (both sides) must hash to that fragment — which is
    exactly what guarantees the fragment-wise join equals the in-memory
    join.
    """
    if not _CHECKING:
        return
    build_total = sum(pair[0].num_rows for pair in fragments)
    probe_total = sum(pair[1].num_rows for pair in fragments)
    if build_total != build.num_rows or probe_total != probe.num_rows:
        raise violation(
            "spill round trip lost rows: build "
            f"{build.num_rows}->{build_total}, probe "
            f"{probe.num_rows}->{probe_total}"
        )
    for index, (build_fragment, probe_fragment) in enumerate(fragments):
        for side, fragment, key in (
            ("build", build_fragment, build_key),
            ("probe", probe_fragment, probe_key),
        ):
            if fragment.num_rows == 0:
                continue
            routed = hash_fn(fragment.column(key), num_fragments)
            wrong = np.flatnonzero(routed != index)
            if wrong.size:
                raise violation(
                    f"spill fragment misalignment: {side} row with "
                    f"{key}={fragment.column(key)[wrong[0]]!r} sits in "
                    f"fragment {index} but hashes to "
                    f"{int(routed[wrong[0]])}"
                )
