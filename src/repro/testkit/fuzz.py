"""Budgeted differential fuzzing over the metamorphic config space.

The driver behind ``python -m repro fuzz`` and the CI ``fuzz-smoke``
job: for each seed it generates a fresh data case, samples config cells
across every metamorphic axis, runs each cell with the engine invariant
hooks armed, and compares the result against the single-node oracle.
Every failure is shrunk to a minimal repro
(:mod:`repro.testkit.shrink`) and — when an artifact directory is given
— written out as a JSON record plus a ready-to-run ``.py`` snippet so
CI can upload the failing seed for offline replay.
"""

from __future__ import annotations

import json
import pathlib
import time
from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from repro.testkit import invariants, oracle, shrink
from repro.testkit.generator import (
    ALL_ALGORITHMS,
    FAULT_AXIS,
    FORMAT_AXIS,
    WORKER_AXIS,
    ConfigCell,
    DataCase,
    edge_cases,
    generate_data_case,
    run_cell,
)


@dataclass
class FuzzFailure:
    """One fuzzed cell that disagreed with the oracle (or crashed)."""

    case_name: str
    provenance: str
    cell: ConfigCell
    kind: str
    diff: str
    shrunk: Optional[shrink.ShrinkOutcome] = None

    def record(self) -> dict:
        """JSON-serialisable artifact for CI upload."""
        payload = {
            "case": self.case_name,
            "provenance": self.provenance,
            "cell": repr(self.cell),
            "kind": self.kind,
            "diff": self.diff,
        }
        if self.shrunk is not None:
            payload["shrunk_provenance"] = self.shrunk.case.provenance
            payload["shrunk_cell"] = repr(self.shrunk.cell)
            payload["shrunk_rows"] = self.shrunk.total_rows
            payload["snippet"] = self.shrunk.snippet()
        return payload


@dataclass
class FuzzReport:
    """Everything one fuzz run did."""

    seeds: List[int]
    cells_run: int = 0
    failures: List[FuzzFailure] = field(default_factory=list)
    elapsed_seconds: float = 0.0
    artifact_paths: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures

    def render(self) -> str:
        lines = [
            f"fuzz: {self.cells_run} cells over {len(self.seeds)} seed(s) "
            f"in {self.elapsed_seconds:.1f}s — "
            f"{len(self.failures)} failure(s)"
        ]
        for failure in self.failures:
            lines.append(
                f"  FAIL {failure.case_name} / {failure.cell.label()} "
                f"[{failure.kind}]"
            )
            if failure.shrunk is not None:
                lines.append(
                    f"    shrunk to {failure.shrunk.total_rows} row(s); "
                    "repro snippet in artifact"
                )
            lines.extend(
                f"    {line}" for line in failure.diff.splitlines()[:4]
            )
        for path in self.artifact_paths:
            lines.append(f"  artifact: {path}")
        return "\n".join(lines)


def sample_cell(rng: np.random.Generator) -> ConfigCell:
    """One random config cell spanning every metamorphic axis.

    Faults and warm caches are sampled at low probability so most cells
    exercise the plain engine paths, mirroring the default grid's mix.
    """
    fault_spec = None
    cache_warm = False
    roll = rng.random()
    if roll < 0.15:
        fault_spec = str(rng.choice(FAULT_AXIS))
    elif roll < 0.25:
        cache_warm = True
    workers = int(rng.choice(WORKER_AXIS))
    if fault_spec is not None:
        workers = 30  # fault specs name workers that must exist
    return ConfigCell(
        algorithm=str(rng.choice(ALL_ALGORITHMS)),
        workers=workers,
        format_name=str(rng.choice(FORMAT_AXIS)),
        kernels=bool(rng.random() < 0.7),
        fault_spec=fault_spec,
        cache_warm=cache_warm,
        late_materialization=bool(rng.random() < 0.25),
    )


def _check_cell(case: DataCase, cell: ConfigCell
                ) -> Optional[FuzzFailure]:
    try:
        result = run_cell(case, cell)
    except Exception as error:  # noqa: BLE001 - reported, not swallowed
        return FuzzFailure(
            case_name=case.name,
            provenance=case.provenance,
            cell=cell,
            kind=f"error:{type(error).__name__}",
            diff=f"execution raised {type(error).__name__}: {error}",
        )
    diff = oracle.compare_tables(
        result, case.oracle_rows(), label=cell.label()
    )
    if diff is None:
        return None
    return FuzzFailure(
        case_name=case.name,
        provenance=case.provenance,
        cell=cell,
        kind="divergence",
        diff=diff,
    )


def _write_artifacts(directory: pathlib.Path, index: int,
                     failure: FuzzFailure) -> List[str]:
    directory.mkdir(parents=True, exist_ok=True)
    stem = f"failure-{index:03d}-{failure.case_name}"
    json_path = directory / f"{stem}.json"
    json_path.write_text(json.dumps(failure.record(), indent=2) + "\n")
    paths = [str(json_path)]
    if failure.shrunk is not None:
        snippet_path = directory / f"{stem}.py"
        snippet_path.write_text(failure.shrunk.snippet())
        paths.append(str(snippet_path))
    return paths


def run_fuzz(seeds: Sequence[int], cells_per_seed: int = 10,
             rows_scale: float = 1.0,
             include_edge_cases: bool = False,
             artifact_dir: Optional[str] = None,
             shrink_budget: int = 150) -> FuzzReport:
    """Fuzz ``cells_per_seed`` sampled cells for every seed.

    Each cell runs with invariant checking armed; any divergence,
    invariant violation, or crash becomes a :class:`FuzzFailure`,
    shrunk within ``shrink_budget`` evaluations.  ``rows_scale``
    scales the generated table sizes (CI smoke uses < 1).
    """
    report = FuzzReport(seeds=list(seeds))
    directory = pathlib.Path(artifact_dir) if artifact_dir else None
    started = time.perf_counter()
    with invariants.checking():
        cases: List[DataCase] = [
            generate_data_case(
                seed,
                t_rows=max(60, int(1_500 * rows_scale)),
                l_rows=max(240, int(6_000 * rows_scale)),
            )
            for seed in seeds
        ]
        if include_edge_cases:
            cases.extend(edge_cases())
        for case_index, case in enumerate(cases):
            seed = seeds[case_index % len(seeds)]
            rng = np.random.default_rng(seed * 1_000 + case_index)
            for _ in range(cells_per_seed):
                cell = sample_cell(rng)
                failure = _check_cell(case, cell)
                report.cells_run += 1
                if failure is None:
                    continue
                failure.shrunk = shrink.shrink(
                    case, cell, max_evaluations=shrink_budget
                )
                if directory is not None:
                    report.artifact_paths.extend(_write_artifacts(
                        directory, len(report.failures), failure
                    ))
                report.failures.append(failure)
    report.elapsed_seconds = time.perf_counter() - started
    return report
