"""Local plan steps shared by every engine.

Whatever the distributed strategy, each worker ultimately performs the
same local pipeline on its slice of data:

1. join its T-side rows with its L-side rows (prefixing columns);
2. apply the post-join predicate;
3. compute partial group-by aggregates.

One designated worker then merges the partials.  Keeping these steps in
one module guarantees the five algorithms and the single-node reference
executor cannot drift apart semantically — the property tests rely on
exactly that.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.kernels.joinindex import JoinBuildIndex
from repro.relational.aggregates import (
    group_by_aggregate,
    merge_partial_aggregates,
)
from repro.relational.operators import join_tables
from repro.relational.table import Table
from repro.query.query import HybridQuery


def apply_derivations(l_table: Table, query: HybridQuery) -> Table:
    """Compute the scan-time derived columns on a (filtered) L table."""
    for derived in query.hdfs_derived:
        l_table = derived.apply(l_table)
    return l_table


def local_join(t_part: Table, l_part: Table, query: HybridQuery,
               build_index: Optional[JoinBuildIndex] = None) -> Table:
    """Join one worker's T-side rows with its L-side rows.

    The L side is the hash-table (build) side, as in JEN: the filtered
    HDFS data is already streaming in while the database data arrives
    later, so JEN builds on L'' and probes with the database rows
    (paper Section 4.4).  Output columns carry the query's prefixes.

    ``build_index`` is an optional pre-built :class:`JoinBuildIndex`
    over ``l_part``'s join keys; passing it skips the sort of the build
    side, so a worker that probes the same build with several probe
    fragments — or the service plane replaying a query on an unchanged
    build — pays for the index once.
    """
    return join_tables(
        build=l_part,
        probe=t_part,
        build_key=query.hdfs_join_key,
        probe_key=query.db_join_key,
        build_prefix=query.hdfs_prefix,
        probe_prefix=query.db_prefix,
        build_index=build_index,
    )


def local_partial_aggregate(joined: Table, query: HybridQuery) -> Table:
    """Post-join predicate plus partial group-by on one worker."""
    if query.post_join_predicate is not None:
        joined = joined.filter(query.post_join_predicate.evaluate(joined))
    return group_by_aggregate(joined, list(query.group_by),
                              list(query.aggregates))


def merge_partials(partials: Sequence[Table], query: HybridQuery) -> Table:
    """Merge per-worker partial aggregates into the final result."""
    return merge_partial_aggregates(
        list(partials), list(query.group_by), list(query.aggregates)
    )


def empty_partial(query: HybridQuery, t_schema, l_schema) -> Table:
    """A zero-row partial aggregate with the right schema.

    Needed when a worker ends up with no rows at all (tiny tables, many
    workers) so the final merge still sees a well-formed input.
    """
    t_empty = Table.empty(t_schema)
    l_empty = Table.empty(l_schema)
    joined = local_join(t_empty, l_empty, query)
    return local_partial_aggregate(joined, query)


def aggregate_row_width(query: HybridQuery, joined_schema) -> int:
    """Logical bytes of one partial-aggregate row (for transfer costing)."""
    group_width = joined_schema.row_width(list(query.group_by))
    agg_width = sum(
        spec.output_dtype().default_width() for spec in query.aggregates
    )
    return group_width + agg_width


def needed_wire_columns(query: HybridQuery, side: str) -> tuple:
    """Wire columns of one side the post-join pipeline provably needs.

    ``side`` is ``"db"`` or ``"hdfs"``.  The join key is always needed
    (it decides matches); beyond it a projected column is needed only if
    the post-join predicate, the group-by, or an aggregate argument
    references it under this side's prefix.  Late materialization
    (:mod:`repro.latemat`) uses this set to drop provably dead payload
    columns from the deferred fetch: a column nothing downstream reads
    never has to cross the network at all.
    """
    if side == "db":
        prefix = query.db_prefix
        key = query.db_join_key
        projected = tuple(query.db_projection)
    elif side == "hdfs":
        prefix = query.hdfs_prefix
        key = query.hdfs_join_key
        projected = query.hdfs_wire_columns()
    else:
        raise ValueError(f"side must be 'db' or 'hdfs', got {side!r}")
    referenced = set(query.group_by)
    if query.post_join_predicate is not None:
        referenced |= set(query.post_join_predicate.columns())
    for spec in query.aggregates:
        if spec.column is not None:
            referenced.add(spec.column)
    needed = [key]
    for name in projected:
        if name != key and f"{prefix}{name}" in referenced:
            needed.append(name)
    return tuple(needed)


def partial_tables_nonempty(partials: List[Table]) -> List[Table]:
    """Drop empty partials but keep at least one for schema."""
    non_empty = [table for table in partials if table.num_rows]
    return non_empty if non_empty else partials[:1]
