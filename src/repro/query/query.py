"""The hybrid query template (paper Section 2).

A :class:`HybridQuery` captures exactly the query shape the paper
studies::

    SELECT g(L.cols), agg(...)
    FROM T, L
    WHERE <local predicates on T>
      AND <local predicates on L>
      AND T.joinKey = L.joinKey
      AND <post-join predicate over both sides>
    GROUP BY g(L.cols)

Join outputs prefix the two sides (``t_``/``l_`` by default) because the
paper's schemas share column names; the post-join predicate, group-by
columns and aggregates are expressed over the prefixed joined schema.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional, Tuple

import numpy as np

from repro.errors import ExpressionError
from repro.kernels import kernels_enabled
from repro.relational.aggregates import AggregateSpec
from repro.relational.expressions import Predicate, TruePredicate
from repro.relational.schema import Column, DataType
from repro.relational.table import Table


@dataclass(frozen=True)
class DerivedColumn:
    """A scalar-UDF column computed during the HDFS scan.

    Reproduces the paper's ``extract_group(L.groupByExtractCol)``: JEN's
    process thread derives the grouping value while records stream past.
    For dictionary-encoded sources the UDF is applied to the (small)
    dictionary, not per row.

    ``function`` maps one string to one string.
    """

    name: str
    source: str
    udf_name: str
    function: Callable[[str], str]
    width_bytes: int = 24

    def apply(self, table: Table) -> Table:
        """Return ``table`` with the derived column appended.

        The UDF sweep over the dictionary is memoised on dictionary
        *identity*: every block scanned from one HDFS table shares the
        same dictionary object, so a 240-block scan runs the UDF once
        instead of 240 times.  The cached tuple keeps a strong reference
        to the source dictionary, which keeps the ``is`` check sound.
        Memoisation is part of the vectorised kernel layer: with kernels
        disabled the sweep reruns per block, reproducing the pre-kernel
        scan for honest before/after benchmarking.
        """
        source_column = table.schema.column(self.source)
        if source_column.dtype is not DataType.DICT_STRING:
            raise ExpressionError(
                f"derived column {self.name!r} requires a dict-string "
                f"source, got {source_column.dtype}"
            )
        dictionary = table.dictionary(self.source)
        cached = self.__dict__.get("_apply_cache")
        if (cached is None or cached[0] is not dictionary
                or not kernels_enabled()):
            derived_values = np.array(
                [self.function(value) for value in dictionary], dtype=object
            )
            new_dictionary, remap = np.unique(
                derived_values, return_inverse=True
            )
            cached = (dictionary, new_dictionary, remap.astype(np.int32))
            object.__setattr__(self, "_apply_cache", cached)
        _, new_dictionary, remap = cached
        codes = remap[table.column(self.source)]
        column = Column(self.name, DataType.DICT_STRING, self.width_bytes)
        return table.with_column(column, codes, dictionary=new_dictionary)


@dataclass(frozen=True)
class HybridQuery:
    """One hybrid-warehouse query in the paper's template."""

    db_table: str
    hdfs_table: str
    db_join_key: str
    hdfs_join_key: str
    db_projection: Tuple[str, ...]
    hdfs_projection: Tuple[str, ...]
    db_predicate: Predicate = field(default_factory=TruePredicate)
    hdfs_predicate: Predicate = field(default_factory=TruePredicate)
    hdfs_derived: Tuple[DerivedColumn, ...] = ()
    post_join_predicate: Optional[Predicate] = None
    group_by: Tuple[str, ...] = ()
    aggregates: Tuple[AggregateSpec, ...] = (AggregateSpec("count"),)
    db_prefix: str = "t_"
    hdfs_prefix: str = "l_"

    def __post_init__(self):
        if self.db_join_key not in self.db_projection:
            raise ExpressionError(
                "db_projection must include the join key "
                f"{self.db_join_key!r}"
            )
        if self.hdfs_join_key not in self.hdfs_projection:
            raise ExpressionError(
                "hdfs_projection must include the join key "
                f"{self.hdfs_join_key!r}"
            )
        if not self.group_by:
            raise ExpressionError(
                "the paper's query template always groups and aggregates; "
                "group_by must not be empty"
            )
        if self.db_prefix == self.hdfs_prefix:
            raise ExpressionError("the two side prefixes must differ")

    # ------------------------------------------------------------------
    def prefixed_db_key(self) -> str:
        """Join-key column name on the joined (prefixed) schema, T side."""
        return f"{self.db_prefix}{self.db_join_key}"

    def prefixed_hdfs_key(self) -> str:
        """Join-key column name on the joined (prefixed) schema, L side."""
        return f"{self.hdfs_prefix}{self.hdfs_join_key}"

    def derived_names(self) -> Tuple[str, ...]:
        """Names of the scan-time derived columns."""
        return tuple(derived.name for derived in self.hdfs_derived)

    def hdfs_wire_columns(self) -> Tuple[str, ...]:
        """Columns of the filtered HDFS table that travel the network.

        The projection plus scan-time derived columns, *minus* source
        columns that exist only to feed a derivation: once JEN's process
        thread has computed ``urlPrefix``, the wide source varchar never
        hits a send buffer (the paper's ``read_hdfs`` returns
        ``url_prefix``, not the raw column).
        """
        consumed_sources = set()
        for derived in self.hdfs_derived:
            prefixed = f"{self.hdfs_prefix}{derived.source}"
            needed_later = prefixed in self.group_by
            if self.post_join_predicate is not None:
                needed_later |= prefixed in self.post_join_predicate.columns()
            if not needed_later:
                consumed_sources.add(derived.source)
        kept = tuple(
            name for name in self.hdfs_projection
            if name not in consumed_sources
        )
        return kept + self.derived_names()
