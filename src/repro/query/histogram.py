"""Equi-depth histograms: catalog statistics for selectivity estimation.

A real EDW optimizer reads selectivities from catalog statistics rather
than sampling at plan time.  This module provides that substrate: an
equi-depth histogram per column plus a per-table bundle able to estimate
the selectivity of the conjunctive predicate class the paper pushes down
(``col <op> literal`` conjuncts, under the usual attribute-independence
assumption).

Used by tests to validate the advisor's inputs, and available to
applications that want plan-time estimation without touching the data.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.errors import ReproError
from repro.relational.expressions import (
    ColumnPredicate,
    CompareOp,
    Conjunction,
    Predicate,
    TruePredicate,
)
from repro.relational.table import Table

#: Default number of equi-depth buckets.
DEFAULT_BUCKETS = 64


@dataclass(frozen=True)
class HistogramBucket:
    """One equi-depth bucket: values in ``[low, high]``."""

    low: float
    high: float
    count: int
    distinct: int


class EquiDepthHistogram:
    """Equi-depth histogram over one numeric column."""

    def __init__(self, values: np.ndarray,
                 num_buckets: int = DEFAULT_BUCKETS):
        values = np.asarray(values)
        if values.size == 0:
            raise ReproError("cannot build a histogram over zero values")
        if num_buckets <= 0:
            raise ReproError("num_buckets must be positive")
        ordered = np.sort(values.astype(np.float64))
        self.total = len(ordered)
        self.min_value = float(ordered[0])
        self.max_value = float(ordered[-1])
        boundaries = np.linspace(0, self.total, num_buckets + 1)
        boundaries = boundaries.astype(np.int64)
        self.buckets: List[HistogramBucket] = []
        for index in range(num_buckets):
            start, stop = int(boundaries[index]), int(boundaries[index + 1])
            if stop <= start:
                continue
            chunk = ordered[start:stop]
            self.buckets.append(HistogramBucket(
                low=float(chunk[0]),
                high=float(chunk[-1]),
                count=len(chunk),
                distinct=int(len(np.unique(chunk))),
            ))
        self._highs = [bucket.high for bucket in self.buckets]

    # ------------------------------------------------------------------
    def estimate_le(self, literal: float) -> float:
        """Estimated fraction of values ``<= literal``."""
        if literal < self.min_value:
            return 0.0
        if literal >= self.max_value:
            return 1.0
        covered = 0.0
        index = bisect.bisect_left(self._highs, literal)
        for bucket in self.buckets[:index]:
            covered += bucket.count
        if index < len(self.buckets):
            bucket = self.buckets[index]
            width = max(bucket.high - bucket.low, 1e-12)
            within = (literal - bucket.low) / width
            covered += bucket.count * min(max(within, 0.0), 1.0)
        return covered / self.total

    def estimate_eq(self, literal: float) -> float:
        """Estimated fraction of values ``== literal``."""
        if literal < self.min_value or literal > self.max_value:
            return 0.0
        index = min(bisect.bisect_left(self._highs, literal),
                    len(self.buckets) - 1)
        bucket = self.buckets[index]
        return bucket.count / max(bucket.distinct, 1) / self.total

    def estimate(self, op: CompareOp, literal: float) -> float:
        """Estimated selectivity of ``column <op> literal``."""
        if op is CompareOp.LE:
            return self.estimate_le(literal)
        if op is CompareOp.LT:
            return max(0.0, self.estimate_le(literal)
                       - self.estimate_eq(literal))
        if op is CompareOp.GE:
            return 1.0 - self.estimate(CompareOp.LT, literal)
        if op is CompareOp.GT:
            return 1.0 - self.estimate_le(literal)
        if op is CompareOp.EQ:
            return self.estimate_eq(literal)
        if op is CompareOp.NE:
            return 1.0 - self.estimate_eq(literal)
        raise ReproError(f"unsupported operator {op}")


class TableStatistics:
    """Histograms over the analysable columns of one table."""

    def __init__(self, num_rows: int,
                 histograms: Dict[str, EquiDepthHistogram]):
        self.num_rows = num_rows
        self.histograms = histograms

    @classmethod
    def analyze(cls, table: Table,
                columns: Optional[Sequence[str]] = None,
                num_buckets: int = DEFAULT_BUCKETS,
                sample_rows: int = 100_000) -> "TableStatistics":
        """Build statistics from a table (sampling large ones).

        Dictionary-encoded string columns are skipped: the predicate
        class the paper pushes down compares numeric columns.
        """
        from repro.relational.schema import DataType

        if columns is None:
            columns = [
                column.name for column in table.schema
                if column.dtype is not DataType.DICT_STRING
            ]
        sample = table if table.num_rows <= sample_rows else \
            table.slice(0, sample_rows)
        histograms = {}
        for name in columns:
            values = sample.column(name)
            if values.size:
                histograms[name] = EquiDepthHistogram(
                    values, num_buckets=num_buckets
                )
        return cls(num_rows=table.num_rows, histograms=histograms)

    # ------------------------------------------------------------------
    def estimate_predicate(self, predicate: Predicate) -> float:
        """Selectivity estimate under attribute independence.

        Conjuncts over columns without histograms contribute a neutral
        factor of 1.0 (the safe overestimate for data movement).
        """
        if isinstance(predicate, TruePredicate):
            return 1.0
        if isinstance(predicate, Conjunction):
            selectivity = 1.0
            for child in predicate.children:
                selectivity *= self.estimate_predicate(child)
            return selectivity
        if isinstance(predicate, ColumnPredicate):
            histogram = self.histograms.get(predicate.column)
            if histogram is None:
                return 1.0
            return histogram.estimate(predicate.op,
                                      float(predicate.literal))
        return 1.0

    def estimate_rows(self, predicate: Predicate) -> float:
        """Estimated surviving row count."""
        return self.num_rows * self.estimate_predicate(predicate)
