"""Logical query layer: the paper's query template and shared plan steps.

All five join algorithms execute the same logical query — local
predicates on both tables, projections, an equi-join, a post-join
predicate and a group-by aggregation (paper Section 2).  This package
defines that query shape (:class:`~repro.query.query.HybridQuery`), the
local plan steps every worker shares (:mod:`repro.query.plan`),
selectivity measurement (:mod:`repro.query.stats`) and the single-node
reference executor used as ground truth (:mod:`repro.query.executor`).
"""

from repro.query.query import DerivedColumn, HybridQuery
from repro.query.plan import (
    apply_derivations,
    local_join,
    local_partial_aggregate,
    merge_partials,
)
from repro.query.stats import SelectivityReport, measure_selectivities
from repro.query.executor import reference_join

__all__ = [
    "DerivedColumn",
    "HybridQuery",
    "SelectivityReport",
    "apply_derivations",
    "local_join",
    "local_partial_aggregate",
    "measure_selectivities",
    "merge_partials",
    "reference_join",
]
