"""Single-node reference execution.

:func:`reference_join` runs the hybrid query on two plain tables with no
distribution, no Bloom filters and no network — the semantic ground
truth every distributed algorithm must match.  The property-based tests
assert exactly this equivalence, which is also why Bloom-filter false
positives are harmless: they only let extra rows *reach* the join, never
change its result.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.relational.table import Table
from repro.query.plan import (
    apply_derivations,
    local_join,
    local_partial_aggregate,
)
from repro.query.query import HybridQuery


def reference_join(t_table: Table, l_table: Table, query: HybridQuery
                   ) -> Table:
    """Execute ``query`` over unpartitioned tables, returning the result.

    Result rows are ordered by ascending group key (the aggregation
    operator's deterministic order), so results from different executors
    can be compared directly.
    """
    t_filtered = t_table.filter(query.db_predicate.evaluate(t_table))
    t_projected = t_filtered.project(list(query.db_projection))

    l_filtered = l_table.filter(query.hdfs_predicate.evaluate(l_table))
    l_projected = l_filtered.project(list(query.hdfs_projection))
    l_projected = apply_derivations(l_projected, query)
    l_wire = l_projected.project(list(query.hdfs_wire_columns()))

    parallel_result = _try_parallel_aggregate(t_projected, l_wire, query)
    if parallel_result is not None:
        return parallel_result
    joined = local_join(t_projected, l_wire, query)
    return local_partial_aggregate(joined, query)


def reference_aggregate_cells(t_table: Table, l_table: Table,
                              query: HybridQuery) -> Dict[Tuple, object]:
    """The reference answer as a ``(group, aggregate) -> value`` map.

    Same cell shape as :func:`repro.testkit.oracle.
    oracle_aggregate_cells` but computed through the engines' shared
    plan steps — what the approximate tier's benchmark gates check
    interval containment against without importing the testkit.
    """
    result = reference_join(t_table, l_table, query)
    n_groups = len(query.group_by)
    names = [spec.output_name() for spec in query.aggregates]
    cells: Dict[Tuple, object] = {}
    for row in result.to_rows():
        key = row[:n_groups]
        for name, value in zip(names, row[n_groups:]):
            cells[(key, name)] = value
    return cells


#: Below this many probe rows the fork/shm round trip costs more than
#: the join itself; the sequential path runs regardless of backend.
_PARALLEL_MIN_PROBE_ROWS = 20_000


def _try_parallel_aggregate(t_projected: Table, l_wire: Table,
                            query: HybridQuery) -> "Table | None":
    """Partition-parallel join + aggregate on the process pool, or
    ``None`` to stay sequential (backend off, input too small, or the
    query cannot cross the process boundary)."""
    from repro import parallel

    if not parallel.parallel_enabled():
        return None
    if t_projected.num_rows < _PARALLEL_MIN_PROBE_ROWS:
        parallel.record_fallback("reference.aggregate",
                                 "input-below-threshold")
        return None
    from repro.parallel.join import parallel_reference_aggregate

    try:
        return parallel_reference_aggregate(
            t_projected, l_wire, query,
            parallel.get_backend(parallel.pool_workers()),
        )
    except parallel.ParallelUnsupported:
        parallel.record_fallback("reference.aggregate",
                                 "unsupported-payload")
        return None
