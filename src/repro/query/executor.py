"""Single-node reference execution.

:func:`reference_join` runs the hybrid query on two plain tables with no
distribution, no Bloom filters and no network — the semantic ground
truth every distributed algorithm must match.  The property-based tests
assert exactly this equivalence, which is also why Bloom-filter false
positives are harmless: they only let extra rows *reach* the join, never
change its result.
"""

from __future__ import annotations

from repro.relational.table import Table
from repro.query.plan import (
    apply_derivations,
    local_join,
    local_partial_aggregate,
)
from repro.query.query import HybridQuery


def reference_join(t_table: Table, l_table: Table, query: HybridQuery
                   ) -> Table:
    """Execute ``query`` over unpartitioned tables, returning the result.

    Result rows are ordered by ascending group key (the aggregation
    operator's deterministic order), so results from different executors
    can be compared directly.
    """
    t_filtered = t_table.filter(query.db_predicate.evaluate(t_table))
    t_projected = t_filtered.project(list(query.db_projection))

    l_filtered = l_table.filter(query.hdfs_predicate.evaluate(l_table))
    l_projected = l_filtered.project(list(query.hdfs_projection))
    l_projected = apply_derivations(l_projected, query)
    l_wire = l_projected.project(list(query.hdfs_wire_columns()))

    joined = local_join(t_projected, l_wire, query)
    return local_partial_aggregate(joined, query)
