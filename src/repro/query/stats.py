"""Selectivity measurement: the paper's σ and S quantities.

The paper parameterises every experiment by four numbers:

* ``sigma_t`` — tuple selectivity of the local predicates on T;
* ``sigma_l`` — tuple selectivity of the local predicates on L;
* ``s_t`` (written S_T′) — the fraction of *distinct join keys* of the
  filtered T that also occur in the filtered L;
* ``s_l`` (S_L′) — symmetric, for the filtered L.

This module measures all four from actual tables; the workload
generator's property tests check the measured values hit the requested
specification, and the advisor consumes the same report.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.advisor import WorkloadEstimate
from repro.relational.expressions import Predicate
from repro.relational.table import Table
from repro.query.query import HybridQuery

#: Rows sampled from each side for selectivity estimation.
SAMPLE_ROWS = 20_000


@dataclass(frozen=True)
class SelectivityReport:
    """Measured selectivities of one (T, L, query) triple."""

    t_rows: int
    l_rows: int
    t_filtered_rows: int
    l_filtered_rows: int
    t_distinct_keys: int
    l_distinct_keys: int
    common_keys: int

    @property
    def sigma_t(self) -> float:
        """Tuple selectivity of the T local predicates."""
        return self.t_filtered_rows / self.t_rows if self.t_rows else 0.0

    @property
    def sigma_l(self) -> float:
        """Tuple selectivity of the L local predicates."""
        return self.l_filtered_rows / self.l_rows if self.l_rows else 0.0

    @property
    def s_t(self) -> float:
        """Join-key selectivity on the filtered T (the paper's S_T′)."""
        return (
            self.common_keys / self.t_distinct_keys
            if self.t_distinct_keys else 0.0
        )

    @property
    def s_l(self) -> float:
        """Join-key selectivity on the filtered L (the paper's S_L′)."""
        return (
            self.common_keys / self.l_distinct_keys
            if self.l_distinct_keys else 0.0
        )

    def describe(self) -> str:
        """One-line summary in the paper's notation."""
        return (
            f"sigma_T={self.sigma_t:.4f} sigma_L={self.sigma_l:.4f} "
            f"S_T'={self.s_t:.4f} S_L'={self.s_l:.4f} "
            f"(|JK(T')|={self.t_distinct_keys}, "
            f"|JK(L')|={self.l_distinct_keys}, "
            f"overlap={self.common_keys})"
        )


def measure_selectivities(
    t_table: Table,
    l_table: Table,
    query: HybridQuery,
) -> SelectivityReport:
    """Measure σ_T, σ_L, S_T′ and S_L′ for a query over real tables."""
    t_mask = query.db_predicate.evaluate(t_table)
    l_mask = query.hdfs_predicate.evaluate(l_table)
    t_keys = np.unique(t_table.column(query.db_join_key)[t_mask])
    l_keys = np.unique(l_table.column(query.hdfs_join_key)[l_mask])
    common = np.intersect1d(t_keys, l_keys, assume_unique=True)
    return SelectivityReport(
        t_rows=t_table.num_rows,
        l_rows=l_table.num_rows,
        t_filtered_rows=int(t_mask.sum()),
        l_filtered_rows=int(l_mask.sum()),
        t_distinct_keys=len(t_keys),
        l_distinct_keys=len(l_keys),
        common_keys=len(common),
    )


def sample_workload_estimate(warehouse, query: HybridQuery,
                             sample_rows: int = SAMPLE_ROWS
                             ) -> WorkloadEstimate:
    """Sample-based selectivity estimation for the advisor.

    Samples a slice of each table, applies the local predicates, and
    measures tuple selectivities and join-key overlap — the statistics
    a database optimizer would read from its catalog.  Shared by the
    SQL session's auto mode and the adaptive plane (which needs a base
    estimate without standing up a session).
    """
    db_meta = warehouse.database.table_meta(query.db_table)
    hdfs_meta = warehouse.hdfs.table_meta(query.hdfs_table)
    scale_up = 1.0 / warehouse.config.scale

    partition = warehouse.database.workers[0].partition(query.db_table)
    t_sample = partition.slice(0, min(sample_rows, partition.num_rows))
    blocks = warehouse.hdfs.table_blocks(query.hdfs_table)
    rows = warehouse.hdfs.read_block(blocks[0])
    l_sample = rows.slice(0, min(sample_rows, rows.num_rows))

    t_mask = query.db_predicate.evaluate(t_sample)
    l_mask = query.hdfs_predicate.evaluate(l_sample)
    sigma_t = max(float(t_mask.mean()), 1e-5)
    sigma_l = max(float(l_mask.mean()), 1e-5)
    t_keys = np.unique(t_sample.column(query.db_join_key)[t_mask])
    l_keys = np.unique(l_sample.column(query.hdfs_join_key)[l_mask])
    common = len(np.intersect1d(t_keys, l_keys, assume_unique=True))
    s_t = common / len(t_keys) if len(t_keys) else 1.0
    s_l = common / len(l_keys) if len(l_keys) else 1.0

    storage_format = hdfs_meta.storage_format()
    l_scan_bytes = storage_format.scan_bytes_per_row(
        hdfs_meta.schema, list(query.hdfs_projection)
    )
    return WorkloadEstimate(
        t_rows=db_meta.num_rows * scale_up,
        l_rows=hdfs_meta.num_rows * scale_up,
        sigma_t=sigma_t,
        sigma_l=sigma_l,
        s_t=max(s_t, 1e-4),
        s_l=max(s_l, 1e-4),
        t_wire_bytes=db_meta.schema.row_width(
            list(query.db_projection)
        ),
        l_wire_bytes=hdfs_meta.schema.row_width(
            list(query.hdfs_projection)
        ),
        l_scan_bytes=l_scan_bytes,
        format_name=hdfs_meta.format_name,
    )


def predicate_selectivity(table: Table, predicate: Predicate) -> float:
    """Fraction of rows of ``table`` satisfying ``predicate``."""
    if table.num_rows == 0:
        return 0.0
    return float(predicate.evaluate(table).mean())
