"""Selectivity measurement: the paper's σ and S quantities.

The paper parameterises every experiment by four numbers:

* ``sigma_t`` — tuple selectivity of the local predicates on T;
* ``sigma_l`` — tuple selectivity of the local predicates on L;
* ``s_t`` (written S_T′) — the fraction of *distinct join keys* of the
  filtered T that also occur in the filtered L;
* ``s_l`` (S_L′) — symmetric, for the filtered L.

This module measures all four from actual tables; the workload
generator's property tests check the measured values hit the requested
specification, and the advisor consumes the same report.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.relational.expressions import Predicate
from repro.relational.table import Table
from repro.query.query import HybridQuery


@dataclass(frozen=True)
class SelectivityReport:
    """Measured selectivities of one (T, L, query) triple."""

    t_rows: int
    l_rows: int
    t_filtered_rows: int
    l_filtered_rows: int
    t_distinct_keys: int
    l_distinct_keys: int
    common_keys: int

    @property
    def sigma_t(self) -> float:
        """Tuple selectivity of the T local predicates."""
        return self.t_filtered_rows / self.t_rows if self.t_rows else 0.0

    @property
    def sigma_l(self) -> float:
        """Tuple selectivity of the L local predicates."""
        return self.l_filtered_rows / self.l_rows if self.l_rows else 0.0

    @property
    def s_t(self) -> float:
        """Join-key selectivity on the filtered T (the paper's S_T′)."""
        return (
            self.common_keys / self.t_distinct_keys
            if self.t_distinct_keys else 0.0
        )

    @property
    def s_l(self) -> float:
        """Join-key selectivity on the filtered L (the paper's S_L′)."""
        return (
            self.common_keys / self.l_distinct_keys
            if self.l_distinct_keys else 0.0
        )

    def describe(self) -> str:
        """One-line summary in the paper's notation."""
        return (
            f"sigma_T={self.sigma_t:.4f} sigma_L={self.sigma_l:.4f} "
            f"S_T'={self.s_t:.4f} S_L'={self.s_l:.4f} "
            f"(|JK(T')|={self.t_distinct_keys}, "
            f"|JK(L')|={self.l_distinct_keys}, "
            f"overlap={self.common_keys})"
        )


def measure_selectivities(
    t_table: Table,
    l_table: Table,
    query: HybridQuery,
) -> SelectivityReport:
    """Measure σ_T, σ_L, S_T′ and S_L′ for a query over real tables."""
    t_mask = query.db_predicate.evaluate(t_table)
    l_mask = query.hdfs_predicate.evaluate(l_table)
    t_keys = np.unique(t_table.column(query.db_join_key)[t_mask])
    l_keys = np.unique(l_table.column(query.hdfs_join_key)[l_mask])
    common = np.intersect1d(t_keys, l_keys, assume_unique=True)
    return SelectivityReport(
        t_rows=t_table.num_rows,
        l_rows=l_table.num_rows,
        t_filtered_rows=int(t_mask.sum()),
        l_filtered_rows=int(l_mask.sum()),
        t_distinct_keys=len(t_keys),
        l_distinct_keys=len(l_keys),
        common_keys=len(common),
    )


def predicate_selectivity(table: Table, predicate: Predicate) -> float:
    """Fraction of rows of ``table`` satisfying ``predicate``."""
    if table.num_rows == 0:
        return 0.0
    return float(predicate.evaluate(table).mean())
