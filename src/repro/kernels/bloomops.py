"""Word-level Bloom-filter kernels.

Three hot spots of the paper's filter pipeline, rewritten against the
uint64 word array instead of individual bits:

* **insert** — ``np.bitwise_or.at`` is notoriously serial (one Python-
  level scatter per element).  :func:`scatter_or` instead scatters the
  positions into a byte-per-bit presence array with a plain fancy-index
  assignment — duplicate positions (hash collisions and the k hashes of
  repeated keys) collapse for free because every write stores the same
  ``1`` — and packs it into words with one ``np.packbits``.  Filters
  too large for the transient presence array fall back to sort +
  group-by-word + one fused ``bitwise_or.reduceat`` per distinct word.
* **probe** — :func:`test_bits` tests hash functions in short-circuit
  order: the full key set is probed against the first hash only, and
  each later hash probes just the survivors of the previous ones.  With
  k hashes and fill ratio f the work is ``n·(1 + (k-1)·f)`` loads
  instead of the naive ``n·k``.
* **popcount** — :func:`popcount` uses the hardware ``popcnt`` exposed
  as ``np.bitwise_count`` where available and an 8-bit lookup table
  otherwise, never materialising 8 bits per byte the way
  ``np.unpackbits`` does.

All three are bit-identical to the naive formulations in
:mod:`repro.kernels.reference` (the property tests compare final word
arrays, masks and counts directly).
"""

from __future__ import annotations

import sys

import numpy as np

import repro.kernels as _kernels
from repro.kernels.reference import (
    naive_popcount,
    naive_scatter_or,
    naive_test_bits,
)

_WORD_SHIFT = np.uint64(6)
_BIT_MASK = np.uint64(63)
_ONE = np.uint64(1)

#: Set-bit count per byte value, for platforms without np.bitwise_count.
_POPCOUNT_TABLE = np.unpackbits(
    np.arange(256, dtype=np.uint8)[:, None], axis=1
).sum(axis=1).astype(np.uint8)

_HAVE_BITWISE_COUNT = hasattr(np, "bitwise_count")

#: The packbits insert path keeps a transient byte-per-bit presence
#: array (64 bytes per word); cap it at 16 MB so a huge filter cannot
#: blow the working set.  ``np.packbits(bitorder="little")`` followed by
#: a uint64 view only lines up with the word layout on little-endian
#: hosts, hence the byte-order gate.
_PACKBITS_MAX_WORDS = (16 << 20) // 64
_LITTLE_ENDIAN = sys.byteorder == "little"


def scatter_or(words: np.ndarray, positions: np.ndarray) -> None:
    """OR the given bit positions into ``words``, in place.

    ``positions`` is any integer array of bit indexes (duplicates
    welcome); ``words`` is the filter's uint64 backing array.  The
    final word values match a serial scatter exactly.
    """
    if not _kernels.kernels_enabled():
        naive_scatter_or(words, positions)
        return
    positions = np.asarray(positions).ravel()
    if positions.size == 0:
        return
    if _LITTLE_ENDIAN and words.size <= _PACKBITS_MAX_WORDS:
        # Duplicate-collapsing scatter: every occurrence of a position
        # writes the same 1 into the presence byte, so no dedup pass is
        # needed before the single packbits.  uint64 positions (what
        # the filter's hasher produces) are reinterpreted as int64
        # without a copy — bit positions never reach 2**63 — because
        # fancy indexing with a non-native index dtype would pay a full
        # conversion pass.
        if positions.dtype == np.uint64:
            indexes = np.ascontiguousarray(positions).view(np.int64)
        else:
            indexes = positions.astype(np.int64, copy=False)
        presence = np.zeros(words.size * 64, dtype=np.uint8)
        presence[indexes] = 1
        words |= np.packbits(presence, bitorder="little").view(np.uint64)
        return
    # Large-filter fallback: sort positions, group by word (sorted, so
    # equal words are adjacent), fuse each word's bits with reduceat.
    # Duplicates need no explicit collapsing — OR is idempotent.
    positions = np.sort(positions.astype(np.uint64, copy=False))
    word_index = (positions >> _WORD_SHIFT).astype(np.int64)
    bits = _ONE << (positions & _BIT_MASK)
    starts = np.concatenate(
        ([0], np.flatnonzero(np.diff(word_index)) + 1)
    )
    words[word_index[starts]] |= np.bitwise_or.reduceat(bits, starts)


def test_bits(words: np.ndarray, positions: np.ndarray) -> np.ndarray:
    """Which columns of a (k, n) position array have all k bits set.

    Hash functions are evaluated in short-circuit order: only keys
    whose bits were all set so far are probed against the next hash, so
    selective filters pay for roughly one probe per rejected key.
    """
    if not _kernels.kernels_enabled():
        return naive_test_bits(words, positions)
    positions = np.asarray(positions)
    if positions.size == 0:
        return np.ones(positions.shape[-1], dtype=bool)
    first = positions[0]
    word_index = (first >> _WORD_SHIFT).astype(np.int64)
    mask = (words[word_index] >> (first & _BIT_MASK)) & _ONE != 0
    for row in range(1, positions.shape[0]):
        alive = np.flatnonzero(mask)
        if alive.size == 0:
            break
        subset = positions[row][alive]
        word_index = (subset >> _WORD_SHIFT).astype(np.int64)
        hit = (words[word_index] >> (subset & _BIT_MASK)) & _ONE != 0
        mask[alive[~hit]] = False
    return mask


def popcount(words: np.ndarray) -> int:
    """Total number of set bits in a uint64 word array."""
    if not _kernels.kernels_enabled():
        return naive_popcount(words)
    if words.size == 0:
        return 0
    if _HAVE_BITWISE_COUNT:
        return int(np.bitwise_count(words).sum())
    as_bytes = np.ascontiguousarray(words).view(np.uint8)
    return int(_POPCOUNT_TABLE[as_bytes].sum(dtype=np.int64))
