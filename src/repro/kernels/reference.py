"""Naive reference implementations of every kernel.

These are the formulations the vectorised kernels replaced: one
full-table boolean filter per destination, ``np.bitwise_or.at``
scatter, per-hash probe loops, ``np.unpackbits`` popcount, and a
per-probe re-sort of the join build side.  They exist for two reasons:

* the differential property tests assert each kernel is *bit-identical*
  to its reference on seeded grids of adversarial inputs;
* the wall-clock benchmark (``python -m repro bench``) times the
  reference against the kernel on the same data, producing the
  before/after numbers in ``BENCH_wallclock.json``.

They are also the live fallback when ``set_kernels_enabled(False)`` is
active, which is how the end-to-end benchmark runs the *whole engine*
on naive kernels without a separate legacy code path.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np


def naive_partition_indices(assignments: np.ndarray,
                            num_partitions: int) -> List[np.ndarray]:
    """Per-destination row indices via one boolean filter per destination."""
    assignments = np.asarray(assignments)
    return [
        np.flatnonzero(assignments == partition).astype(np.int64)
        for partition in range(num_partitions)
    ]


def naive_partition_table(table, assignments: np.ndarray,
                          num_partitions: int) -> List:
    """Per-destination tables via one full-table filter per destination."""
    assignments = np.asarray(assignments)
    return [
        table.filter(assignments == partition)
        for partition in range(num_partitions)
    ]


def naive_scatter_or(words: np.ndarray, positions: np.ndarray) -> None:
    """Serial scatter-OR of bit positions into a uint64 word array."""
    positions = np.asarray(positions).ravel().astype(np.uint64)
    word_index = (positions >> np.uint64(6)).astype(np.int64)
    bit = np.uint64(1) << (positions & np.uint64(63))
    np.bitwise_or.at(words, word_index, bit)


def naive_test_bits(words: np.ndarray, positions: np.ndarray) -> np.ndarray:
    """Per-hash-function probe loop over a (k, n) position array."""
    positions = np.asarray(positions)
    mask = np.ones(positions.shape[1], dtype=bool)
    for i in range(positions.shape[0]):
        word_index = (positions[i] >> np.uint64(6)).astype(np.int64)
        bit = (positions[i] & np.uint64(63)).astype(np.uint64)
        mask &= (words[word_index] >> bit) & np.uint64(1) != 0
    return mask


def naive_popcount(words: np.ndarray) -> int:
    """Count set bits by materialising every bit with ``unpackbits``."""
    as_bytes = np.ascontiguousarray(words).view(np.uint8)
    return int(np.unpackbits(as_bytes).sum())


def naive_join_indices(build_keys: np.ndarray, probe_keys: np.ndarray
                       ) -> Tuple[np.ndarray, np.ndarray]:
    """All matching (build_row, probe_row) pairs via a pure-Python dict.

    Pairs are emitted probe-major with build positions ascending within
    one probe row — the order the sorted kernel produces.
    """
    build_keys = np.asarray(build_keys)
    probe_keys = np.asarray(probe_keys)
    lookup = {}
    for position, key in enumerate(build_keys.tolist()):
        lookup.setdefault(key, []).append(position)
    build_out: List[int] = []
    probe_out: List[int] = []
    for position, key in enumerate(probe_keys.tolist()):
        for build_position in lookup.get(key, ()):
            build_out.append(build_position)
            probe_out.append(position)
    return (np.asarray(build_out, dtype=np.int64),
            np.asarray(probe_out, dtype=np.int64))


def naive_sorted_join(build_keys: np.ndarray, probe_keys: np.ndarray
                      ) -> Tuple[np.ndarray, np.ndarray]:
    """The pre-kernel sort-based join: re-sorts the build side per call."""
    build_keys = np.asarray(build_keys)
    probe_keys = np.asarray(probe_keys)
    if build_keys.size == 0 or probe_keys.size == 0:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty
    order = np.argsort(build_keys, kind="stable")
    sorted_build = build_keys[order]
    lo = np.searchsorted(sorted_build, probe_keys, side="left")
    hi = np.searchsorted(sorted_build, probe_keys, side="right")
    counts = (hi - lo).astype(np.int64)
    total = int(counts.sum())
    if total == 0:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty
    probe_idx = np.repeat(np.arange(len(probe_keys), dtype=np.int64), counts)
    starts = np.zeros(len(probe_keys), dtype=np.int64)
    np.cumsum(counts[:-1], out=starts[1:])
    within = np.arange(total, dtype=np.int64) - np.repeat(starts, counts)
    build_idx = order[np.repeat(lo.astype(np.int64), counts) + within]
    return build_idx, probe_idx
