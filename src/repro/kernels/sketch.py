"""Count-min sketch + top-k candidate heap for heavy-hitter detection.

The skew plane (:mod:`repro.skew`) needs to know, *while the scan is
still running*, which join keys are hot enough to melt a single
receiver in the agreed-hash shuffle.  The classic streaming answer
(Cormode & Muthukrishnan) is a count-min sketch — a ``depth x width``
counter matrix indexed by ``depth`` independent hashes — paired with a
small candidate heap holding the keys whose estimates currently clear
the hot threshold.

Two properties make the pair safe to act on:

* **No underestimation.**  Every cell an update touches only grows, so
  ``estimate(k) >= true_count(k)`` always.  A key whose true frequency
  ends above the hot threshold therefore can never be pruned from the
  candidate set by a too-small estimate — no false negatives.
* **Bounded overestimation.**  With width ``w`` and depth ``d``, the
  standard bound gives ``estimate(k) <= true_count(k) + e*N/w`` with
  probability ``1 - e^-d`` over the seeding, where ``N`` is the total
  stream weight.  False positives cost only some unnecessary broadcast
  of cold keys, never wrong answers.

Hashing reuses the seeded splitmix64 mixer idiom of
:mod:`repro.core.bloom`, so sketches with the same ``(width, depth,
seed)`` are bit-deterministic across runs and platforms.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from repro.errors import SimulationError

_MIX_MULT_1 = np.uint64(0xBF58476D1CE4E5B9)
_MIX_MULT_2 = np.uint64(0x94D049BB133111EB)
_GOLDEN = np.uint64(0x9E3779B97F4A7C15)


def _mix(values: np.ndarray, seed: int) -> np.ndarray:
    """Vectorised splitmix64 finaliser, seeded (same idiom as bloom)."""
    x = values.astype(np.uint64, copy=True)
    with np.errstate(over="ignore"):
        x += np.uint64(seed) * _GOLDEN
        x ^= x >> np.uint64(30)
        x *= _MIX_MULT_1
        x ^= x >> np.uint64(27)
        x *= _MIX_MULT_2
        x ^= x >> np.uint64(31)
    return x


class CountMinSketch:
    """A seeded count-min sketch over integer keys.

    Parameters
    ----------
    width:
        Counters per row; overestimation shrinks as ``N / width``.
    depth:
        Independent hash rows; estimates take the minimum across them.
    seed:
        Base seed; row ``r`` hashes with ``seed * depth + r + 1`` so the
        rows are independent but the whole sketch is reproducible.
    """

    def __init__(self, width: int = 1024, depth: int = 4, seed: int = 11):
        if width <= 0 or depth <= 0:
            raise SimulationError("sketch width and depth must be positive")
        self.width = int(width)
        self.depth = int(depth)
        self.seed = int(seed)
        self._counts = np.zeros((self.depth, self.width), dtype=np.int64)
        self._total = 0

    @property
    def total(self) -> int:
        """Total stream weight added so far."""
        return self._total

    def _positions(self, keys: np.ndarray) -> np.ndarray:
        """(depth, len(keys)) matrix of counter indices."""
        rows = [
            _mix(keys, self.seed * self.depth + row + 1)
            % np.uint64(self.width)
            for row in range(self.depth)
        ]
        return np.stack(rows).astype(np.int64)

    def add(self, keys: np.ndarray, counts: np.ndarray = None) -> None:
        """Add ``counts[i]`` occurrences of ``keys[i]`` (1 if omitted).

        Callers streaming raw key batches should pre-aggregate with
        ``np.unique(..., return_counts=True)`` — the sketch is exact
        under either form, the aggregated one just hashes less.
        """
        keys = np.asarray(keys, dtype=np.int64)
        if keys.size == 0:
            return
        if counts is None:
            counts = np.ones(keys.size, dtype=np.int64)
        else:
            counts = np.asarray(counts, dtype=np.int64)
        positions = self._positions(keys)
        for row in range(self.depth):
            np.add.at(self._counts[row], positions[row], counts)
        self._total += int(counts.sum())

    def estimate(self, keys: np.ndarray) -> np.ndarray:
        """Frequency estimates (``>=`` truth, elementwise) for ``keys``."""
        keys = np.asarray(keys, dtype=np.int64)
        if keys.size == 0:
            return np.zeros(0, dtype=np.int64)
        positions = self._positions(keys)
        gathered = np.stack([
            self._counts[row][positions[row]] for row in range(self.depth)
        ])
        return gathered.min(axis=0)


class TopKHeap:
    """The ``k`` keys with the largest (monotone) frequency estimates.

    Estimates from a count-min sketch only grow, so the tracker keeps a
    plain ``key -> best estimate`` map and prunes it in two ways: a
    caller-supplied floor (the hot threshold, which also only grows) and
    the capacity ``k``.  Ties break toward the smaller key so the
    surviving set is deterministic regardless of offer order.
    """

    def __init__(self, k: int):
        if k <= 0:
            raise SimulationError("top-k capacity must be positive")
        self.k = int(k)
        self._estimates: Dict[int, int] = {}

    def offer(self, keys: np.ndarray, estimates: np.ndarray) -> None:
        """Record the latest estimates for a batch of candidate keys."""
        for key, estimate in zip(keys.tolist(), estimates.tolist()):
            current = self._estimates.get(key)
            if current is None or estimate > current:
                self._estimates[key] = int(estimate)

    def prune(self, floor: int) -> None:
        """Drop candidates below ``floor``, then enforce the capacity."""
        self._estimates = {
            key: estimate for key, estimate in self._estimates.items()
            if estimate >= floor
        }
        if len(self._estimates) > self.k:
            survivors = sorted(
                self._estimates.items(),
                key=lambda item: (-item[1], item[0]),
            )[:self.k]
            self._estimates = dict(survivors)

    def keys(self) -> np.ndarray:
        """Current candidate keys, sorted ascending (int64)."""
        return np.array(sorted(self._estimates), dtype=np.int64)

    def items(self) -> List[tuple]:
        """``(key, estimate)`` pairs, hottest first, key-tie ascending."""
        return sorted(
            self._estimates.items(), key=lambda item: (-item[1], item[0])
        )
