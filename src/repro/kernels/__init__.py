"""Vectorised hot-path kernels shared by every engine.

The paper's argument is that hybrid-join cost is dominated by a handful
of scan/shuffle/filter primitives, so this package makes exactly those
primitives fast while keeping them *bit-identical* to their naive
formulations (the differential battery in ``tests/test_kernels.py``
pins that equivalence):

* :mod:`repro.kernels.partition` — single-pass hash partitioning: one
  stable argsort instead of one full-table boolean filter per
  destination (O(n log n) vs O(n·p) for a p-way shuffle).
* :mod:`repro.kernels.joinindex` — :class:`JoinBuildIndex`, the sorted
  build side of the local equi-join, built once per worker build side
  and reusable across probe fragments and (via the service-plane
  cache) across queries on the same normalised build.
* :mod:`repro.kernels.bloomops` — word-level Bloom-filter operations:
  duplicate-collapsing scatter-OR insert, vectorised multi-hash bit
  tests, and popcount without materialising individual bits.
* :mod:`repro.kernels.sketch` — the seeded count-min sketch and top-k
  candidate heap behind heavy-hitter detection (:mod:`repro.skew`);
  streaming primitives with no naive twin — their contract (no
  underestimation, bounded overestimation, determinism) is pinned by
  property tests against exact counts instead.
* :mod:`repro.kernels.wirecodec` — the compact wire format of the
  late-materialization transfers (:mod:`repro.latemat`): varint/delta
  row-id batches, dictionary-id passthrough and constant stripping,
  with bit-exact vectorised round trips.
* :mod:`repro.kernels.reference` — the naive formulations every kernel
  must match bit for bit; they also provide the "before" timings of
  ``python -m repro bench``.

``set_kernels_enabled(False)`` routes every kernel through its naive
reference implementation.  The engines always call through this layer,
so the wall-clock benchmark can measure genuinely identical end-to-end
code paths with only the kernel implementations swapped.
"""

from __future__ import annotations

_ENABLED = True


def kernels_enabled() -> bool:
    """Whether the vectorised implementations are active."""
    return _ENABLED


def set_kernels_enabled(enabled: bool) -> bool:
    """Toggle the vectorised kernels (benchmark/debug switch).

    Returns the previous setting so callers can restore it.
    """
    global _ENABLED
    previous = _ENABLED
    _ENABLED = bool(enabled)
    return previous


from repro.kernels.bloomops import popcount, scatter_or, test_bits  # noqa: E402
from repro.kernels.joinindex import JoinBuildIndex, probe_join  # noqa: E402
from repro.kernels.partition import (  # noqa: E402
    partition_indices,
    partition_table,
)
from repro.kernels.sketch import CountMinSketch, TopKHeap  # noqa: E402
from repro.kernels.wirecodec import (  # noqa: E402
    decode_rowids,
    decode_table,
    encode_rowids,
    encode_table,
    encoded_rowid_bytes,
    encoded_table_bytes,
)

__all__ = [
    "CountMinSketch",
    "JoinBuildIndex",
    "TopKHeap",
    "decode_rowids",
    "decode_table",
    "encode_rowids",
    "encode_table",
    "encoded_rowid_bytes",
    "encoded_table_bytes",
    "kernels_enabled",
    "partition_indices",
    "partition_table",
    "popcount",
    "probe_join",
    "scatter_or",
    "set_kernels_enabled",
    "test_bits",
]
