"""The reusable build side of the local equi-join.

Every distributed algorithm in the paper ends with each worker joining
its build-side rows against probe fragments.  The sort-based local join
used to re-sort the *same* build keys on every call; a
:class:`JoinBuildIndex` performs that O(n log n) sort once and then
answers any number of probes in O(p log n) each.  Workers build one
index per build side and reuse it across probe fragments and spill
re-reads; the service plane additionally caches indexes across queries
that share a normalised build side (see
:class:`repro.service.cache.JoinIndexCache`).

The probe algorithm is byte-for-byte the one ``hash_join_indices``
always used (stable argsort + double ``searchsorted``), so match pairs
come back in the identical order: probe-major, build positions in
sorted-key occurrence order within one probe row.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

import repro.kernels as _kernels
from repro.kernels.reference import naive_sorted_join


class JoinBuildIndex:
    """Sorted join keys plus the permutation back to build-row order.

    Parameters
    ----------
    build_keys:
        The build side's join-key column.  The array is retained (by
        reference) so cached indexes can be validated against a fresh
        build side with :meth:`matches` before reuse.
    """

    __slots__ = ("keys", "order", "sorted_keys")

    def __init__(self, build_keys: np.ndarray):
        self.keys = np.asarray(build_keys)
        self.order = np.argsort(self.keys, kind="stable").astype(
            np.int64, copy=False
        )
        self.sorted_keys = self.keys[self.order]

    @property
    def num_keys(self) -> int:
        """Number of build rows indexed."""
        return len(self.keys)

    def matches(self, build_keys: np.ndarray) -> bool:
        """Whether this index was built over exactly ``build_keys``.

        Identity is checked first (the common case for a per-query
        reuse); otherwise an O(n) element compare guards cached reuse
        across queries — still far cheaper than the O(n log n) rebuild.
        """
        build_keys = np.asarray(build_keys)
        if build_keys is self.keys:
            return True
        if build_keys.shape != self.keys.shape:
            return False
        return bool(np.array_equal(build_keys, self.keys))

    def probe(self, probe_keys: np.ndarray
              ) -> Tuple[np.ndarray, np.ndarray]:
        """All matching (build_row, probe_row) pairs for an equi-join.

        Duplicate keys multiply out exactly as SQL requires; the pair
        order is identical to the historical ``hash_join_indices``.
        """
        probe_keys = np.asarray(probe_keys)
        if self.num_keys == 0 or probe_keys.size == 0:
            empty = np.empty(0, dtype=np.int64)
            return empty, empty
        lo = np.searchsorted(self.sorted_keys, probe_keys, side="left")
        hi = np.searchsorted(self.sorted_keys, probe_keys, side="right")
        counts = (hi - lo).astype(np.int64)
        total = int(counts.sum())
        if total == 0:
            empty = np.empty(0, dtype=np.int64)
            return empty, empty
        probe_idx = np.repeat(
            np.arange(len(probe_keys), dtype=np.int64), counts
        )
        starts = np.zeros(len(probe_keys), dtype=np.int64)
        np.cumsum(counts[:-1], out=starts[1:])
        within = np.arange(total, dtype=np.int64) - np.repeat(starts, counts)
        build_idx = self.order[np.repeat(lo.astype(np.int64), counts)
                               + within]
        return build_idx, probe_idx

    def __repr__(self) -> str:
        return f"JoinBuildIndex(keys={self.num_keys})"


def probe_join(build_keys: np.ndarray, probe_keys: np.ndarray,
               build_index: Optional[JoinBuildIndex] = None,
               ) -> Tuple[np.ndarray, np.ndarray]:
    """Equi-join index pairs, reusing ``build_index`` when one is given.

    Without an index this is a one-shot build + probe; with one, the
    build-side sort is skipped entirely.  A supplied index must cover
    exactly ``build_keys`` (cheaply verified), falling back to a fresh
    build on mismatch rather than returning wrong pairs.
    """
    if build_index is not None and build_index.matches(build_keys):
        return build_index.probe(probe_keys)
    if not _kernels.kernels_enabled():
        return naive_sorted_join(build_keys, probe_keys)
    return JoinBuildIndex(build_keys).probe(probe_keys)
