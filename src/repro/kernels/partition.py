"""Single-pass hash partitioning.

The naive formulation used everywhere before this kernel existed —
``[table.filter(assignments == d) for d in range(p)]`` — scans the full
assignment array once *per destination*: O(n·p) work, which at the
paper's 30-worker shuffles means 30 full-table boolean filters plus 30
gathers.  The kernel computes destination assignments once, stable-sorts
the row indices by destination (O(n log n)), gathers the table a single
time in destination order, and hands out per-destination **zero-copy
slices** of that one gather.

Stability of the sort preserves original row order within each
destination, so the output tables are bit-identical to the naive
per-destination filters.  Rows whose assignment falls outside
``[0, num_partitions)`` are dropped, exactly as the naive masks drop
them.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

import repro.kernels as _kernels
from repro.kernels.reference import (
    naive_partition_indices,
    naive_partition_table,
)


def _sorted_bounds(assignments: np.ndarray, num_partitions: int
                   ) -> Tuple[np.ndarray, np.ndarray]:
    """Stable destination order plus per-destination slice bounds.

    ``bounds[d]:bounds[d + 1]`` indexes destination ``d``'s rows inside
    ``order``.

    When every assignment is in range and the destination count fits 16
    bits — every shuffle and repartition in this codebase — the sort
    runs as a radix sort on a narrowed uint8/uint16 copy (numpy's
    stable sort is radix for small integer dtypes, several times faster
    than comparison-sorting int64; one byte beats two) and the bounds
    come from one bincount.
    Otherwise the general path comparison-sorts the original values;
    out-of-range assignments then sort before ``bounds[0]`` (negatives)
    or after ``bounds[-1]`` (>= num_partitions) and are thereby
    excluded without a separate masking pass.
    """
    if num_partitions <= np.iinfo(np.uint16).max and assignments.size:
        low = int(assignments.min())
        high = int(assignments.max())
        if low >= 0 and high < num_partitions:
            narrow = np.uint8 if num_partitions <= 256 else np.uint16
            order = np.argsort(
                assignments.astype(narrow), kind="stable"
            ).astype(np.int64, copy=False)
            counts = np.bincount(assignments, minlength=num_partitions)
            bounds = np.zeros(num_partitions + 1, dtype=np.int64)
            np.cumsum(counts, out=bounds[1:])
            return order, bounds
    order = np.argsort(assignments, kind="stable").astype(np.int64,
                                                          copy=False)
    sorted_assignments = assignments[order]
    bounds = np.searchsorted(
        sorted_assignments,
        np.arange(num_partitions + 1, dtype=assignments.dtype),
        side="left",
    )
    return order, bounds


def partition_indices(assignments: np.ndarray,
                      num_partitions: int) -> List[np.ndarray]:
    """Per-destination row-index arrays from one stable sort.

    Equivalent to ``[np.flatnonzero(assignments == d) for d in
    range(num_partitions)]`` — indices ascend within each destination —
    at O(n log n) total instead of O(n·p).
    """
    if not _kernels.kernels_enabled():
        return naive_partition_indices(assignments, num_partitions)
    assignments = np.asarray(assignments)
    if assignments.size == 0:
        empty = np.empty(0, dtype=np.int64)
        return [empty] * num_partitions
    order, bounds = _sorted_bounds(assignments, num_partitions)
    return [
        order[bounds[partition]:bounds[partition + 1]]
        for partition in range(num_partitions)
    ]


def partition_table(table, assignments: np.ndarray,
                    num_partitions: int) -> List:
    """Split ``table`` into per-destination tables in one pass.

    One stable argsort plus one full-table gather; each returned table
    is a zero-copy row-range view of the gathered table, so downstream
    re-slicing (shuffle concatenation, spill fragmenting) copies no
    partition twice.  Bit-identical to filtering per destination.
    """
    if not _kernels.kernels_enabled():
        return naive_partition_table(table, assignments, num_partitions)
    assignments = np.asarray(assignments)
    if len(assignments) != table.num_rows:
        raise ValueError(
            f"assignments length {len(assignments)} != table rows "
            f"{table.num_rows}"
        )
    if table.num_rows == 0:
        empty = table.slice(0, 0)
        return [empty] * num_partitions
    order, bounds = _sorted_bounds(assignments, num_partitions)
    in_order = table.take(order)
    return [
        in_order.slice(int(bounds[partition]), int(bounds[partition + 1]))
        for partition in range(num_partitions)
    ]
