"""Compact wire codec for thin tables, row-id batches and payloads.

Late materialization (:mod:`repro.latemat`) makes the hot transfers
carry ``(join_key, origin_rowid)`` pairs and, later, batches of
surviving row ids — both extremely compressible: row ids within one
stitch batch are sorted and dense, join keys are small integers, and
dictionary-encoded string columns already travel as int32 codes.  This
module is the wire format those transfers use:

* **varint/delta row ids** — :func:`encode_rowids` sorts the batch and
  stores ``[count, first, gaps...]`` as LEB128 varints, so a dense
  batch costs ~1 byte per row instead of 8.
* **dictionary-id passthrough** — a ``DICT_STRING`` column ships its
  int32 code array plus the (small, amortised) dictionary once; the
  decoded varchar width never touches the wire.
* **constant stripping** — a column holding one repeated value (the
  no-NULL data model's analogue of null-stripping: an absent/sentinel
  column collapses to a single run) is encoded as tag + value + count.
* **sorted-column delta** — non-decreasing integer columns (row ids,
  clustered keys) store zigzag(first) + gaps as varints.

Both directions are vectorised (numpy byte peeling, no per-value
Python loop) and the round trip is bit-exact —
``tests/test_latemat.py`` pins it.  :func:`encoded_table_bytes` is the
honest "what would this table cost on the wire" estimator the
exchange/export paths record when late materialization is enabled.
"""

from __future__ import annotations

import struct
from typing import Dict, List

import numpy as np

from repro.errors import TableError
from repro.relational.schema import DataType, Schema
from repro.relational.table import Table

#: Column encoding tags (one byte each on the wire).
TAG_RAW = 0
TAG_DELTA = 1
TAG_CONST = 2
TAG_DICT = 3


# ----------------------------------------------------------------------
# Varints
# ----------------------------------------------------------------------
def encode_varints(values: np.ndarray) -> bytes:
    """LEB128-encode an unsigned integer array (vectorised).

    Bytes are peeled seven bits at a time across the whole array — at
    most ten rounds for 64-bit values — instead of looping per value.
    """
    values = np.asarray(values, dtype=np.uint64)
    if values.size == 0:
        return b""
    nbytes = np.ones(values.shape, dtype=np.int64)
    remaining = values >> np.uint64(7)
    while remaining.any():
        nbytes += (remaining != 0)
        remaining = remaining >> np.uint64(7)
    starts = np.concatenate(
        ([0], np.cumsum(nbytes)[:-1])).astype(np.int64)
    out = np.empty(int(nbytes.sum()), dtype=np.uint8)
    for round_ in range(10):
        mask = nbytes > round_
        if not mask.any():
            break
        septet = ((values[mask] >> np.uint64(7 * round_))
                  & np.uint64(0x7F)).astype(np.uint8)
        more = (nbytes[mask] > round_ + 1).astype(np.uint8)
        out[starts[mask] + round_] = septet | (more << 7)
    return out.tobytes()


def decode_varints(data: bytes) -> np.ndarray:
    """Decode a LEB128 stream back to a uint64 array (vectorised)."""
    arr = np.frombuffer(data, dtype=np.uint8)
    if arr.size == 0:
        return np.empty(0, dtype=np.uint64)
    terminal = (arr & 0x80) == 0
    if not terminal[-1]:
        raise TableError("truncated varint stream")
    group = np.zeros(arr.size, dtype=np.int64)
    group[1:] = np.cumsum(terminal)[:-1]
    starts = np.flatnonzero(
        np.concatenate(([True], terminal[:-1])))
    position = np.arange(arr.size, dtype=np.int64) - starts[group]
    septets = (arr & 0x7F).astype(np.uint64) \
        << (7 * position).astype(np.uint64)
    values = np.zeros(int(terminal.sum()), dtype=np.uint64)
    np.add.at(values, group, septets)
    return values


def _zigzag(values: np.ndarray) -> np.ndarray:
    signed = np.asarray(values, dtype=np.int64)
    return ((signed << 1) ^ (signed >> 63)).astype(np.uint64)


def _unzigzag(values: np.ndarray) -> np.ndarray:
    unsigned = np.asarray(values, dtype=np.uint64)
    return ((unsigned >> np.uint64(1)).astype(np.int64)
            ^ -(unsigned & np.uint64(1)).astype(np.int64))


# ----------------------------------------------------------------------
# Row-id batches
# ----------------------------------------------------------------------
def encode_rowids(rowids: np.ndarray) -> bytes:
    """Sort + delta + varint encode a batch of row ids."""
    rowids = np.sort(np.asarray(rowids, dtype=np.int64))
    stream = np.empty(rowids.size + 1, dtype=np.uint64)
    stream[0] = rowids.size
    if rowids.size:
        stream[1] = np.uint64(rowids[0])
        stream[2:] = np.diff(rowids).astype(np.uint64)
    return encode_varints(stream)


def decode_rowids(data: bytes) -> np.ndarray:
    """Decode :func:`encode_rowids` output (sorted int64 array)."""
    stream = decode_varints(data)
    if stream.size == 0:
        raise TableError("empty row-id stream")
    count = int(stream[0])
    if stream.size != count + 1:
        raise TableError(
            f"row-id stream advertises {count} ids, carries "
            f"{stream.size - 1}")
    if count == 0:
        return np.empty(0, dtype=np.int64)
    return np.cumsum(stream[1:].astype(np.int64))


def encoded_rowid_bytes(rowids: np.ndarray) -> int:
    """Wire bytes of one encoded row-id batch."""
    return len(encode_rowids(rowids))


# ----------------------------------------------------------------------
# Tables
# ----------------------------------------------------------------------
def _frame(tag: int, payload: bytes) -> bytes:
    return bytes([tag]) + encode_varints(
        np.array([len(payload)], dtype=np.uint64)) + payload


def _encode_column(table: Table, name: str) -> bytes:
    column = table.schema.column(name)
    values = table.column(name)
    if column.dtype is DataType.DICT_STRING:
        dictionary = table.dictionary(name)
        parts: List[bytes] = [encode_varints(
            np.array([len(dictionary)], dtype=np.uint64))]
        for entry in dictionary:
            encoded = str(entry).encode("utf-8")
            parts.append(encode_varints(
                np.array([len(encoded)], dtype=np.uint64)))
            parts.append(encoded)
        parts.append(values.astype("<i4").tobytes())
        return _frame(TAG_DICT, b"".join(parts))
    if column.dtype is DataType.FLOAT64:
        bits = values.view(np.uint64)
        if values.size and (bits == bits[0]).all():
            return _frame(TAG_CONST, encode_varints(bits[:1]))
        return _frame(TAG_RAW, values.astype("<f8").tobytes())
    signed = values.astype(np.int64)
    if values.size and (signed == signed[0]).all():
        return _frame(TAG_CONST, encode_varints(_zigzag(signed[:1])))
    if values.size > 1:
        gaps = np.diff(signed)
        if (gaps >= 0).all():
            stream = np.empty(signed.size, dtype=np.uint64)
            stream[0] = _zigzag(signed[:1])[0]
            stream[1:] = gaps.astype(np.uint64)
            return _frame(TAG_DELTA, encode_varints(stream))
    width = "<i4" if values.dtype.itemsize == 4 else "<i8"
    return _frame(TAG_RAW, values.astype(width).tobytes())


def encode_table(table: Table) -> bytes:
    """Encode a whole table (columns in schema order)."""
    header = encode_varints(
        np.array([table.num_rows], dtype=np.uint64))
    return header + b"".join(
        _encode_column(table, name) for name in table.schema.names)


class _Reader:
    def __init__(self, data: bytes):
        self.data = data
        self.offset = 0

    def varint(self) -> int:
        start = self.offset
        while self.data[self.offset] & 0x80:
            self.offset += 1
        self.offset += 1
        return int(decode_varints(self.data[start:self.offset])[0])

    def raw(self, nbytes: int) -> bytes:
        chunk = self.data[self.offset:self.offset + nbytes]
        if len(chunk) != nbytes:
            raise TableError("truncated wire table")
        self.offset += nbytes
        return chunk


def decode_table(data: bytes, schema: Schema) -> Table:
    """Decode :func:`encode_table` output back to a table."""
    reader = _Reader(data)
    num_rows = reader.varint()
    columns: Dict[str, np.ndarray] = {}
    dictionaries: Dict[str, np.ndarray] = {}
    for column in schema:
        tag = reader.raw(1)[0]
        payload = reader.raw(reader.varint())
        dtype = column.dtype.numpy_dtype()
        if tag == TAG_DICT:
            sub = _Reader(payload)
            entries = [
                sub.raw(sub.varint()).decode("utf-8")
                for _ in range(sub.varint())
            ]
            dictionaries[column.name] = np.asarray(entries, dtype=object)
            codes = np.frombuffer(
                sub.raw(4 * num_rows), dtype="<i4")
            columns[column.name] = codes.astype(np.int32)
        elif tag == TAG_CONST:
            value = decode_varints(payload)[:1]
            if column.dtype is DataType.FLOAT64:
                fill = value.view(np.float64)[0]
            else:
                fill = _unzigzag(value)[0]
            columns[column.name] = np.full(num_rows, fill, dtype=dtype)
        elif tag == TAG_DELTA:
            stream = decode_varints(payload)
            if stream.size != num_rows:
                raise TableError("delta column length mismatch")
            values = np.empty(num_rows, dtype=np.int64)
            values[0] = _unzigzag(stream[:1])[0]
            values[1:] = stream[1:].astype(np.int64)
            columns[column.name] = np.cumsum(values).astype(dtype)
        elif tag == TAG_RAW:
            if column.dtype is DataType.FLOAT64:
                columns[column.name] = np.frombuffer(
                    payload, dtype="<f8").astype(dtype)
            else:
                width = "<i4" if dtype.itemsize == 4 else "<i8"
                columns[column.name] = np.frombuffer(
                    payload, dtype=width).astype(dtype)
        else:
            raise TableError(f"unknown wire-column tag {tag}")
        if len(columns[column.name]) != num_rows:
            raise TableError(
                f"column {column.name!r} decoded "
                f"{len(columns[column.name])} rows, expected {num_rows}")
    return Table(schema, columns, dictionaries)


def encoded_table_bytes(table: Table) -> int:
    """Wire bytes of ``table`` under this codec."""
    return len(encode_table(table))


#: struct of the fixed per-batch framing a shm stitch message carries:
#: slot index + encoded-rowid byte length.
STITCH_HEADER = struct.Struct("<iq")
