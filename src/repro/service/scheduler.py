"""Multi-query scheduling on the shared simulated cluster.

The single-query time plane (:mod:`repro.sim.replay`) replays one trace
as if the whole cluster belonged to it.  The service plane replays many
traces on *one* :class:`~repro.sim.engine.SimEngine`, with the cluster's
three resource classes modelled as FIFO gang slots:

``edw``
    The parallel database workers — table scans, index re-accesses, the
    DB-side join's internal shuffle and local joins.
``jen``
    The JEN workers on the DataNodes — HDFS scans, hash builds, probes,
    aggregation, spill I/O.
``net``
    The interconnect — JEN-to-JEN shuffles, DB exports/ingests over the
    20 Gbit switch, Bloom filter movements.

Each trace phase occupies one slot of its class for its whole duration
(gang scheduling: a phase was priced assuming every worker of that class
participates, so two same-class phases cannot genuinely overlap and are
serialised FIFO).  Phases of *different* classes — one query's HDFS scan
against another's database export — overlap freely, which is exactly
where a concurrent stream beats serial execution.

Within one query the ``streams_from`` pipelining of
:mod:`repro.sim.replay` is preserved chunk for chunk, with one extra
rule: a phase only *starts* (and starts streaming) once it holds its
slot, so a producer always acquires before its consumers request —
which makes the cross-query wait graph provably acyclic (consumers
block only on upstream producers; a started phase never re-requests).

:class:`FairSharePolicy` is the admission-order policy the controller
in :mod:`repro.service.admission` consults: highest priority first,
then the tenant with the fewest queries in flight, then FIFO.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence

from repro.errors import ServiceError
from repro.sim.engine import AllOf, Resource, SimEngine, Timeout
from repro.sim.replay import PhaseTiming
from repro.sim.trace import Phase, Trace

#: Trace phase kind -> shared resource class (None = coordinator-side
#: latency, never contended).
CLASS_OF_KIND: Dict[str, Optional[str]] = {
    "db_scan": "edw",
    "db_cpu": "edw",
    "db_shuffle": "edw",
    "hdfs_scan": "jen",
    "cpu": "jen",
    "disk": "jen",
    "read": "jen",
    "shuffle": "net",
    "transfer": "net",
    "network": "net",
    "bloom": "net",
    "latency": None,
}

#: Chunks per streamed phase; coarser than the single-query replay's 64
#: because the service replays many traces on one heap.
DEFAULT_CHUNKS = 32


class SharedCluster:
    """The three contended resource classes, bound to one engine."""

    def __init__(self, engine: SimEngine, edw_slots: int = 1,
                 jen_slots: int = 1, net_slots: int = 1):
        if min(edw_slots, jen_slots, net_slots) < 1:
            raise ServiceError("every resource class needs >= 1 slot")
        self.engine = engine
        self._resources: Dict[str, Resource] = {
            "edw": engine.resource(edw_slots, name="edw-workers"),
            "jen": engine.resource(jen_slots, name="jen-workers"),
            "net": engine.resource(net_slots, name="interconnect"),
        }

    def resource_for(self, kind: str) -> Optional[Resource]:
        """The resource a phase of ``kind`` contends on (None = free)."""
        klass = CLASS_OF_KIND.get(kind)
        if klass is None:
            return None
        return self._resources[klass]

    def utilisation(self) -> Dict[str, float]:
        """Current in-use fraction per resource class."""
        return {
            name: resource.in_use / resource.capacity
            for name, resource in self._resources.items()
        }


@dataclass
class TraceRun:
    """One trace being replayed on the shared cluster."""

    label: str
    trace: Trace
    #: Triggered when every phase finished; value is the makespan end.
    done: object
    #: Filled in as phases complete.
    timings: Dict[str, PhaseTiming]

    @property
    def finished(self) -> bool:
        """Whether the whole trace has completed."""
        return self.done.triggered

    @property
    def end_time(self) -> float:
        """Simulated completion time (only valid once finished)."""
        if not self.finished:
            raise ServiceError(f"trace {self.label!r} still running")
        return self.done.value

    def elapsed(self, start: float) -> float:
        """Makespan of this trace measured from ``start``."""
        return self.end_time - start


def schedule_trace(engine: SimEngine, cluster: SharedCluster, trace: Trace,
                   chunks: int = DEFAULT_CHUNKS, label: str = "") -> TraceRun:
    """Spawn ``trace``'s phases as contending processes; returns the run.

    Must be called while the engine is at the simulated time the query
    starts executing (i.e. from an admission callback or before
    ``engine.run()``).  The returned :class:`TraceRun`'s ``done`` event
    triggers at the query's completion time.
    """
    if chunks <= 0:
        raise ServiceError("chunks must be positive")
    run_label = label or trace.label
    started = {phase.name: engine.event(f"{run_label}:{phase.name}-start")
               for phase in trace}
    finished = {phase.name: engine.event(f"{run_label}:{phase.name}-finish")
                for phase in trace}
    chunk_events = {
        phase.name: [engine.event(f"{run_label}:{phase.name}-chunk{i}")
                     for i in range(chunks)]
        for phase in trace
    }
    run = TraceRun(label=run_label, trace=trace,
                   done=engine.event(f"{run_label}-done"), timings={})

    def run_phase(phase: Phase):
        barriers = [finished[name] for name in phase.after]
        barriers += [started[name] for name in phase.streams_from]
        if barriers:
            yield AllOf(barriers)
        resource = cluster.resource_for(phase.kind)
        request = None
        if resource is not None:
            request = resource.request(1.0)
            yield request
        start_time = engine.now
        started[phase.name].succeed()
        slice_seconds = phase.seconds / chunks
        for index in range(chunks):
            if phase.streams_from:
                yield AllOf(
                    [chunk_events[name][index]
                     for name in phase.streams_from]
                )
            if slice_seconds > 0:
                yield Timeout(slice_seconds)
            chunk_events[phase.name][index].succeed()
        finished[phase.name].succeed()
        if request is not None:
            resource.release(request)
        run.timings[phase.name] = PhaseTiming(
            name=phase.name, kind=phase.kind,
            start=start_time, end=engine.now,
        )

    def completion():
        yield AllOf([finished[name] for name in trace.names()])
        run.done.succeed(engine.now)

    for phase in trace:
        engine.process(run_phase(phase), name=f"{run_label}:{phase.name}")
    engine.process(completion(), name=f"{run_label}-completion")
    return run


class FairSharePolicy:
    """Pick the next queued query to admit when a slot frees.

    Ordering: highest priority first (lower ``priority`` number wins),
    then the tenant currently holding the fewest in-flight queries
    (fair share), then submission order.  The controller only offers
    requests that are *eligible* (tenant under quota).

    The same policy schedules at two granularities: the admission
    controller applies it to whole queries entering the simulated
    cluster, and :class:`~repro.parallel.sharedpool.SharedProcessPool`
    applies it to individual *morsels* contending for real pool-worker
    slots — any object exposing ``priority`` / ``tenant`` / ``seq``
    can be offered to :meth:`select`.
    """

    def select(self, pending: Sequence, in_flight_by_tenant: Dict[str, int]
               ) -> Optional[int]:
        """Index into ``pending`` of the request to admit next."""
        if not pending:
            return None
        best_index = None
        best_key = None
        for index, request in enumerate(pending):
            key = (
                request.priority,
                in_flight_by_tenant.get(request.tenant, 0),
                request.seq,
            )
            if best_key is None or key < best_key:
                best_key = key
                best_index = index
        return best_index
