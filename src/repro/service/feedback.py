"""Execution feedback: observed statistics refine future advice.

The advisor's sample-based :class:`~repro.core.advisor.WorkloadEstimate`
is a planning guess; a *completed* query carries the truth.  Every
finished execution reports:

* the observed tuple selectivity of the database predicate
  (rows surviving ``db_filter`` over rows scanned);
* the observed tuple selectivity of the HDFS predicate
  (rows after predicates over rows scanned);
* the observed join output cardinality.

The loop keeps two stores, in the spirit of runtime join-location
optimisation (Chandra & Sudarshan, arXiv:1703.01148):

* **exact** — per normalised plan (:func:`repro.service.cache.plan_key`):
  an EWMA of the observed selectivities.  A repeat of the same query is
  advised from what actually happened, not from a fresh sample.
* **template** — per plan *template* (literals stripped): an EWMA of
  the observed/estimated *ratio*.  A new parameterisation of a familiar
  template gets its sampled estimate multiplied by the template's
  historical correction factor, so systematic sampling bias (e.g. a
  predicate whose selectivity the first block under-represents) is
  corrected even for constants never seen before.

:meth:`FeedbackLoop.refine` applies exact observations first, then the
template correction, and clamps everything back into the advisor's
legal ``(0, 1]`` range.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Dict, Optional

from repro.core.advisor import WorkloadEstimate
from repro.core.joins.base import JoinResult
from repro.errors import SimulationError
from repro.service.metrics import MetricsRegistry

#: Selectivities are clamped into this range before refinement.
_SIGMA_FLOOR = 1e-5


@dataclass
class Observation:
    """What one completed execution taught us."""

    sigma_t: Optional[float]
    sigma_l: Optional[float]
    join_output_tuples: float
    algorithm: str
    simulated_seconds: float


def observe(join_result: JoinResult) -> Observation:
    """Extract observed statistics from a completed run.

    Selectivities come from the movement counters every algorithm
    records; an algorithm that skipped a side (no ``db_filter`` phase,
    nothing scanned) contributes ``None`` for that side.
    """
    stats = join_result.stats
    sigma_t: Optional[float] = None
    try:
        t_prime = join_result.trace.phase("db_filter").tuples
        if stats.db_rows_scanned > 0:
            sigma_t = t_prime / stats.db_rows_scanned
    except SimulationError:
        pass
    sigma_l: Optional[float] = None
    if stats.hdfs_rows_scanned > 0:
        sigma_l = stats.hdfs_rows_after_predicates / stats.hdfs_rows_scanned
    return Observation(
        sigma_t=sigma_t,
        sigma_l=sigma_l,
        join_output_tuples=stats.join_output_tuples,
        algorithm=join_result.algorithm,
        simulated_seconds=join_result.total_seconds,
    )


@dataclass
class _Ewma:
    """One exponentially weighted pair of selectivities."""

    sigma_t: Optional[float] = None
    sigma_l: Optional[float] = None
    samples: int = 0

    def update(self, alpha: float, sigma_t: Optional[float],
               sigma_l: Optional[float]) -> None:
        if sigma_t is not None:
            self.sigma_t = (sigma_t if self.sigma_t is None
                            else alpha * sigma_t
                            + (1 - alpha) * self.sigma_t)
        if sigma_l is not None:
            self.sigma_l = (sigma_l if self.sigma_l is None
                            else alpha * sigma_l
                            + (1 - alpha) * self.sigma_l)
        self.samples += 1


class FeedbackLoop:
    """Accumulates observations; refines estimates for the advisor."""

    def __init__(self, alpha: float = 0.5,
                 metrics: Optional[MetricsRegistry] = None):
        if not 0 < alpha <= 1:
            raise ValueError("alpha must be in (0, 1]")
        self.alpha = alpha
        self._exact: Dict[str, _Ewma] = {}
        self._template: Dict[str, _Ewma] = {}
        metrics = metrics or MetricsRegistry()
        self._recorded = metrics.counter(
            "feedback.observations", "completed executions recorded")
        self._refined = metrics.counter(
            "feedback.refinements", "estimates adjusted from history")

    # ------------------------------------------------------------------
    def record(self, exact_key: str, template_key: str,
               estimate: WorkloadEstimate,
               join_result: JoinResult) -> Observation:
        """Fold one completed execution into both stores."""
        observation = observe(join_result)
        exact = self._exact.setdefault(exact_key, _Ewma())
        exact.update(self.alpha, observation.sigma_t, observation.sigma_l)
        ratio_t = (observation.sigma_t / max(estimate.sigma_t, _SIGMA_FLOOR)
                   if observation.sigma_t is not None else None)
        ratio_l = (observation.sigma_l / max(estimate.sigma_l, _SIGMA_FLOOR)
                   if observation.sigma_l is not None else None)
        template = self._template.setdefault(template_key, _Ewma())
        template.update(self.alpha, ratio_t, ratio_l)
        self._recorded.inc()
        return observation

    def refine(self, exact_key: str, template_key: str,
               estimate: WorkloadEstimate) -> WorkloadEstimate:
        """The estimate, corrected by everything observed so far."""
        sigma_t, sigma_l = estimate.sigma_t, estimate.sigma_l
        adjusted = False
        exact = self._exact.get(exact_key)
        if exact is not None and exact.samples > 0:
            if exact.sigma_t is not None:
                sigma_t, adjusted = exact.sigma_t, True
            if exact.sigma_l is not None:
                sigma_l, adjusted = exact.sigma_l, True
        else:
            template = self._template.get(template_key)
            if template is not None and template.samples > 0:
                if template.sigma_t is not None:
                    sigma_t, adjusted = sigma_t * template.sigma_t, True
                if template.sigma_l is not None:
                    sigma_l, adjusted = sigma_l * template.sigma_l, True
        if not adjusted:
            return estimate
        self._refined.inc()
        return dataclasses.replace(
            estimate,
            sigma_t=min(1.0, max(_SIGMA_FLOOR, sigma_t)),
            sigma_l=min(1.0, max(_SIGMA_FLOOR, sigma_l)),
        )

    # ------------------------------------------------------------------
    @property
    def observations(self) -> int:
        """Completed executions recorded so far."""
        return int(self._recorded.value)

    def known_plans(self) -> int:
        """Distinct exact plans with at least one observation."""
        return len(self._exact)
