"""Synthetic query streams over a generated workload.

A stream is a list of :class:`StreamedQuery` — the paper's Section 5
benchmark query re-parameterised into a handful of *templates* (the
independent-predicate thresholds scaled down, so templates differ in
σ_T/σ_L and therefore in the advisor's preferred algorithm), assigned
to tenants round-robin and drawn repeatedly with a seeded RNG.  Repeats
of a template with the *same* constants are what exercise the result
cache; templates sharing T's predicate while varying L's are what
exercise the Bloom-filter cache.

Everything is deterministic given the spec's seed.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from repro.errors import ServiceError
from repro.query.query import HybridQuery
from repro.relational.expressions import compare
from repro.workload.generator import Workload
from repro.workload.scenario import build_paper_query


@dataclass(frozen=True)
class StreamSpec:
    """Shape of one synthetic query stream."""

    num_queries: int = 24
    #: Distinct (T-factor, L-factor) parameterisations to draw from.
    templates: int = 4
    #: Simulated seconds between consecutive arrivals (0 = burst).
    arrival_gap: float = 5.0
    tenants: int = 2
    seed: int = 11
    #: Fraction of queries submitted as best-effort (priority 1).
    best_effort_fraction: float = 0.25

    def __post_init__(self):
        if self.num_queries < 1 or self.templates < 1 or self.tenants < 1:
            raise ServiceError(
                "num_queries, templates and tenants must be >= 1")
        if self.arrival_gap < 0:
            raise ServiceError("arrival_gap must be non-negative")
        if not 0.0 <= self.best_effort_fraction <= 1.0:
            raise ServiceError("best_effort_fraction must be in [0, 1]")


@dataclass(frozen=True)
class StreamedQuery:
    """One arrival in the stream."""

    query: HybridQuery
    tenant: str
    at: float
    priority: int
    template: int


def template_factors(templates: int) -> List[Tuple[float, float]]:
    """The (T, L) independent-threshold scale factors per template.

    Template 0 is the paper's query verbatim; later templates tighten
    the independent predicates, lowering σ without touching the
    correlated key regions.  The L factor moves twice as fast as the T
    factor so consecutive templates *share* T's predicate in pairs —
    the condition for a Bloom-cache hit across different plans.
    """
    factors = []
    for index in range(templates):
        t_factor = 1.0 / (1 + index // 2)
        l_factor = 1.0 / (1 + index % 4)
        factors.append((t_factor, l_factor))
    return factors


def build_template_query(workload: Workload, t_factor: float = 1.0,
                         l_factor: float = 1.0) -> HybridQuery:
    """The paper query with its independent thresholds scaled down.

    Scaling only ``indPred`` keeps the correlated key regions (and so
    the join-key selectivities) intact while multiplying each side's
    tuple selectivity by roughly the factor — the same knob the paper's
    own sweeps turn.
    """
    if not 0 < t_factor <= 1 or not 0 < l_factor <= 1:
        raise ServiceError("template factors must be in (0, 1]")
    base = build_paper_query(workload)
    t_ind = max(0, round(workload.t_thresholds.ind_threshold * t_factor))
    l_ind = max(0, round(workload.l_thresholds.ind_threshold * l_factor))
    return dataclasses.replace(
        base,
        db_predicate=(
            compare("corPred", "<=", workload.t_thresholds.cor_threshold)
            & compare("indPred", "<=", t_ind)
        ),
        hdfs_predicate=(
            compare("corPred", "<=", workload.l_thresholds.cor_threshold)
            & compare("indPred", "<=", l_ind)
        ),
    )


def generate_query_stream(workload: Workload,
                          spec: StreamSpec) -> List[StreamedQuery]:
    """A deterministic stream of arrivals over ``workload``."""
    rng = np.random.default_rng(spec.seed)
    factors = template_factors(spec.templates)
    queries = [
        build_template_query(workload, t_factor, l_factor)
        for t_factor, l_factor in factors
    ]
    stream: List[StreamedQuery] = []
    for index in range(spec.num_queries):
        template = int(rng.integers(0, spec.templates))
        best_effort = bool(rng.random() < spec.best_effort_fraction)
        stream.append(StreamedQuery(
            query=queries[template],
            tenant=f"tenant-{index % spec.tenants}",
            at=index * spec.arrival_gap,
            priority=1 if best_effort else 0,
            template=template,
        ))
    return stream
