"""Admission control and the resource governor for the query service.

Every submitted query passes through one :class:`AdmissionController`
before it may touch the shared cluster:

* at most ``slots`` queries are in flight at once (bounded concurrency);
* each tenant may hold at most ``tenant_quota`` of those slots, so one
  noisy tenant cannot starve the rest;
* excess queries wait in a bounded FIFO queue; a queue beyond
  ``max_queue`` rejects new arrivals outright (``queue_full``);
* a queued query that is not granted a slot within ``queue_timeout``
  simulated seconds is rejected (``timeout``) — its timer fires on the
  DES heap via :meth:`~repro.sim.engine.SimEngine.call_at`;
* under overload the controller degrades gracefully: once the queue is
  ``shed_fraction`` full, *best-effort* arrivals (priority > 0) are shed
  immediately (``overload_shed``) so interactive traffic keeps its
  queue headroom.

Which queued query gets a freed slot is decided by the scheduling
policy (:class:`~repro.service.scheduler.FairSharePolicy` by default):
priority, then fair share across tenants, then FIFO.  Admission is the
*coarse* fairness layer — once admitted, a query's individual morsels
compete again, under the same policy, for the shared process pool's
worker slots (:class:`~repro.parallel.sharedpool.SharedProcessPool`),
so a tenant cannot dodge its quota by packing work into fewer, fatter
queries.

The controller lives entirely in simulated time; it is driven from
processes on the service's :class:`~repro.sim.engine.SimEngine` and
communicates through one-shot events whose value is an
:class:`AdmissionOutcome`.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.errors import ServiceError
from repro.service.metrics import MetricsRegistry
from repro.service.scheduler import FairSharePolicy
from repro.sim.engine import Event, SimEngine


@dataclass(frozen=True)
class AdmissionConfig:
    """Tunables of the resource governor."""

    #: Maximum queries in flight on the cluster at once.
    slots: int = 8
    #: Maximum queries waiting for a slot; further arrivals are rejected.
    max_queue: int = 32
    #: Simulated seconds a query may wait before it is rejected.
    queue_timeout: float = 300.0
    #: Maximum in-flight queries per tenant (None = no per-tenant cap).
    tenant_quota: Optional[int] = None
    #: Queue-depth fraction beyond which best-effort (priority > 0)
    #: arrivals are shed immediately.  None disables shedding.
    shed_fraction: Optional[float] = 0.75
    #: Turn shedding into a degraded tier: arrivals that would be
    #: rejected ``overload_shed`` are admitted (queued) for *approximate*
    #: execution instead.  Interactive (priority 0) traffic is never
    #: shed, so the exact tier is unaffected either way.
    degrade_to_approx: bool = False

    def __post_init__(self):
        if self.slots < 1:
            raise ServiceError("admission needs at least one slot")
        if self.max_queue < 0:
            raise ServiceError("max_queue must be non-negative")
        if self.queue_timeout <= 0:
            raise ServiceError("queue_timeout must be positive")
        if self.tenant_quota is not None and self.tenant_quota < 1:
            raise ServiceError("tenant_quota must be >= 1 when set")
        if self.shed_fraction is not None and not 0 < self.shed_fraction <= 1:
            raise ServiceError("shed_fraction must be in (0, 1]")


@dataclass
class AdmissionGrant:
    """A held slot; hand it back via :meth:`AdmissionController.release`."""

    tenant: str
    seq: int
    granted_at: float
    released: bool = False


@dataclass(frozen=True)
class AdmissionOutcome:
    """Value carried by the event a request resolves to."""

    admitted: bool
    #: "admitted", "queue_full", "overload_shed" or "timeout".
    reason: str
    queued_seconds: float
    grant: Optional[AdmissionGrant] = None
    #: True when the slot was granted under overload for the degraded
    #: (approximate) tier instead of being shed.
    degraded: bool = False


@dataclass
class _Pending:
    """One queued admission request."""

    tenant: str
    priority: int
    seq: int
    enqueued_at: float
    event: Event
    resolved: bool = False
    degraded: bool = False


class AdmissionController:
    """Gate between submitted queries and the shared cluster."""

    def __init__(self, engine: SimEngine,
                 config: Optional[AdmissionConfig] = None,
                 policy: Optional[FairSharePolicy] = None,
                 metrics: Optional[MetricsRegistry] = None):
        self.engine = engine
        self.config = config or AdmissionConfig()
        self.policy = policy or FairSharePolicy()
        self.metrics = metrics or MetricsRegistry()
        self._pending: List[_Pending] = []
        self._in_flight = 0
        self._by_tenant: Dict[str, int] = {}
        self._seq = itertools.count()
        self._gauge_queue = self.metrics.gauge(
            "admission.queue_depth", "queries waiting for a slot")
        self._gauge_in_flight = self.metrics.gauge(
            "admission.in_flight", "queries holding a slot")
        self._wait_histogram = self.metrics.histogram(
            "admission.queue_wait_seconds", "slot wait of admitted queries")

    # ------------------------------------------------------------------
    @property
    def in_flight(self) -> int:
        """Queries currently holding a slot."""
        return self._in_flight

    def tenant_in_flight(self, tenant: str) -> int:
        """Slots currently held by ``tenant``."""
        return self._by_tenant.get(tenant, 0)

    @property
    def queue_depth(self) -> int:
        """Queries currently waiting."""
        return len(self._pending)

    # ------------------------------------------------------------------
    def request(self, tenant: str = "default", priority: int = 0) -> Event:
        """Ask for a slot; the returned event resolves to an
        :class:`AdmissionOutcome` (possibly immediately)."""
        event = self.engine.event(f"admit-{tenant}")
        now = self.engine.now
        degraded = False
        if self._shed_now(priority):
            if not self.config.degrade_to_approx:
                self._reject(event, "overload_shed", 0.0)
                return event
            # Degraded tier: the query keeps its place in line but will
            # execute approximately — overload buys latency/accuracy,
            # not a rejection.
            degraded = True
            self.metrics.counter("admission.degraded_to_approx").inc()
        if len(self._pending) >= self.config.max_queue \
                and not self._slot_available(tenant):
            self._reject(event, "queue_full", 0.0)
            return event
        pending = _Pending(
            tenant=tenant, priority=priority, seq=next(self._seq),
            enqueued_at=now, event=event, degraded=degraded,
        )
        self._pending.append(pending)
        self._gauge_queue.set(len(self._pending))
        self._dispatch()
        if not pending.resolved:
            # Only genuinely queued requests need an expiry timer (a
            # timer for an admitted request would still sit on the DES
            # heap, dragging the simulated clock out to the timeout).
            self.engine.call_at(
                now + self.config.queue_timeout,
                lambda: self._expire(pending),
            )
        return event

    def release(self, grant: AdmissionGrant) -> None:
        """Return a slot; wakes the next eligible queued query."""
        if grant.released:
            raise ServiceError(
                f"admission grant for tenant {grant.tenant!r} "
                "released twice"
            )
        grant.released = True
        self._in_flight -= 1
        self._by_tenant[grant.tenant] -= 1
        self._gauge_in_flight.set(self._in_flight)
        self._dispatch()

    # ------------------------------------------------------------------
    def _slot_available(self, tenant: str) -> bool:
        under_quota = (
            self.config.tenant_quota is None
            or self.tenant_in_flight(tenant) < self.config.tenant_quota
        )
        return self._in_flight < self.config.slots and under_quota

    def _shed_now(self, priority: int) -> bool:
        if self.config.shed_fraction is None or priority <= 0:
            return False
        if self.config.max_queue == 0:
            return False
        threshold = self.config.shed_fraction * self.config.max_queue
        return len(self._pending) >= threshold

    def _reject(self, event: Event, reason: str, waited: float) -> None:
        self.metrics.counter(f"admission.rejected.{reason}").inc()
        self.metrics.counter("admission.rejected").inc()
        event.succeed(AdmissionOutcome(
            admitted=False, reason=reason, queued_seconds=waited,
        ))

    def _expire(self, pending: _Pending) -> None:
        if pending.resolved:
            return
        pending.resolved = True
        self._pending.remove(pending)
        self._gauge_queue.set(len(self._pending))
        self._reject(pending.event, "timeout",
                     self.engine.now - pending.enqueued_at)

    def _dispatch(self) -> None:
        while self._in_flight < self.config.slots:
            eligible = [
                pending for pending in self._pending
                if self.config.tenant_quota is None
                or self.tenant_in_flight(pending.tenant)
                < self.config.tenant_quota
            ]
            choice = self.policy.select(eligible, dict(self._by_tenant))
            if choice is None:
                return
            pending = eligible[choice]
            pending.resolved = True
            self._pending.remove(pending)
            self._in_flight += 1
            self._by_tenant[pending.tenant] = (
                self._by_tenant.get(pending.tenant, 0) + 1
            )
            waited = self.engine.now - pending.enqueued_at
            self._gauge_queue.set(len(self._pending))
            self._gauge_in_flight.set(self._in_flight)
            self._wait_histogram.observe(waited)
            self.metrics.counter("admission.admitted").inc()
            grant = AdmissionGrant(
                tenant=pending.tenant, seq=pending.seq,
                granted_at=self.engine.now,
            )
            pending.event.succeed(AdmissionOutcome(
                admitted=True, reason="admitted",
                queued_seconds=waited, grant=grant,
                degraded=pending.degraded,
            ))
