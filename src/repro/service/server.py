"""The query service: a stream of hybrid joins over one shared cluster.

:class:`QueryService` is the third plane of the reproduction, next to
the data plane (real rows moving between the simulated engines) and the
time plane (one trace replayed on the DES).  It accepts *many* queries
— submitted ahead of time with simulated arrival offsets — and runs
them concurrently over one :class:`~repro.warehouse.HybridWarehouse`:

1. ``submit()`` records a query (a :class:`~repro.query.query.HybridQuery`
   or SQL text) and returns a :class:`QueryTicket`;
2. ``drain()`` replays the whole stream on a fresh
   :class:`~repro.sim.engine.SimEngine`: arrivals fire at their offsets,
   the admission controller gates entry to the cluster, admitted
   queries execute the real data plane (through the semantic caches)
   and their traces contend for the shared EDW / JEN / interconnect
   resources of :class:`~repro.service.scheduler.SharedCluster`;
3. each completion feeds observed statistics back to the advisor via
   :class:`~repro.service.feedback.FeedbackLoop`, so algorithm choice
   improves over the stream;
4. ``drain()`` returns a :class:`ServiceReport` with per-query outcomes
   and the service metrics (throughput, tail latency, cache hit rates,
   admission counters).

The service is reusable: caches and feedback survive across drains,
while simulated time restarts from zero for each batch.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field, replace
from typing import List, Mapping, Optional, Union

from repro.approx.policy import ApproxPolicy
from repro.core.joins import JoinResult, algorithm_by_name
from repro.errors import FaultError, ServiceError
from repro.query.query import HybridQuery
from repro.relational.table import Table
from repro.service.admission import AdmissionConfig, AdmissionController
from repro.service.cache import (
    BloomCache,
    CachingBloomBuilder,
    CachingJoinIndexProvider,
    JoinIndexCache,
    ResultCache,
    build_side_key,
    plan_key,
)
from repro.service.feedback import FeedbackLoop
from repro.service.metrics import MetricsRegistry
from repro.service.scheduler import SharedCluster, schedule_trace
from repro.sim.engine import SimEngine, Timeout
from repro.sql import SqlSession


@dataclass(frozen=True)
class ServiceConfig:
    """Tunables of one query service."""

    admission: AdmissionConfig = field(default_factory=AdmissionConfig)
    #: Gang slots per shared resource class (see scheduler module).
    edw_slots: int = 1
    jen_slots: int = 1
    net_slots: int = 1
    #: Streaming chunks per phase in the concurrent replay.
    chunks: int = 32
    result_cache_entries: int = 128
    bloom_cache_entries: int = 64
    join_index_cache_entries: int = 64
    enable_result_cache: bool = True
    enable_bloom_cache: bool = True
    enable_join_index_cache: bool = True
    enable_feedback: bool = True
    #: Run ``auto`` queries through the adaptive wrapper (mid-query
    #: re-optimization) instead of committing to the advisor's pick.
    enable_adaptive: bool = False
    #: Simulated coordinator latency of answering from the result cache.
    cache_hit_seconds: float = 0.1
    #: How many times a query killed by an unrecoverable injected fault
    #: is re-admitted before the failure is surfaced to the client.
    fault_retries: int = 1
    #: When the process execution backend is selected, serve every
    #: query of the service from one shared
    #: :class:`~repro.parallel.sharedpool.SharedProcessPool` (morsels
    #: from concurrent streams interleave on one worker set, with
    #: per-tenant fair scheduling and cross-query work stealing)
    #: instead of the per-session backend.  The pool survives drains,
    #: so later batches reuse its warmed workers and cached exports.
    shared_pool: bool = True
    #: Degraded tier: under overload, best-effort arrivals that would be
    #: shed are admitted for *approximate* execution instead — the
    #: explicit latency/accuracy knob.  Degraded results carry interval
    #: reports, never enter the result cache, and never feed the
    #: advisor's feedback loop.
    approx_degrade: bool = False
    #: Service-wide accuracy target of the degraded tier (None = the
    #: :class:`~repro.approx.policy.ApproxPolicy` defaults).
    approx_policy: Optional[ApproxPolicy] = None
    #: Per-tenant accuracy targets overriding ``approx_policy``.
    approx_tenant_policies: Mapping[str, ApproxPolicy] = \
        field(default_factory=dict)


@dataclass
class QueryOutcome:
    """Everything the service can say about one submitted query."""

    ticket_id: int
    tenant: str
    #: "ok", "rejected" (admission control) or "failed" (unrecoverable
    #: fault after the configured re-admissions).
    status: str
    reject_reason: str = ""
    #: Typed error of the terminal fault, e.g. "QueryAbortError: ...".
    error: str = ""
    #: Re-admissions this query consumed recovering from faults.
    fault_retries_used: int = 0
    algorithm: str = ""
    advisor_rationale: str = ""
    cache_hit: bool = False
    submitted_at: float = 0.0
    admitted_at: float = 0.0
    finished_at: float = 0.0
    queue_wait: float = 0.0
    result: Optional[Table] = None
    join_result: Optional[JoinResult] = None
    #: True when the query executed on the degraded (approximate) tier.
    degraded: bool = False
    #: The approximate run's interval report (the
    #: ``trace.metadata["approx"]`` payload); ``None`` for exact runs.
    approx_report: Optional[dict] = None

    @property
    def ok(self) -> bool:
        """Whether the query completed."""
        return self.status == "ok"

    @property
    def latency(self) -> float:
        """Submission-to-answer simulated seconds."""
        return self.finished_at - self.submitted_at

    @property
    def service_seconds(self) -> float:
        """Execution time excluding the admission queue wait."""
        return self.finished_at - self.admitted_at


@dataclass
class QueryTicket:
    """Handle returned by :meth:`QueryService.submit`."""

    id: int
    tenant: str
    at: float
    outcome: Optional[QueryOutcome] = None

    @property
    def done(self) -> bool:
        """Whether the batch holding this ticket has been drained."""
        return self.outcome is not None

    def result(self) -> Table:
        """The result table; raises if not drained or not completed."""
        if self.outcome is None:
            raise ServiceError(
                f"query q{self.id} not executed yet; call drain()"
            )
        if not self.outcome.ok:
            detail = self.outcome.error or self.outcome.reject_reason
            raise ServiceError(
                f"query q{self.id} was {self.outcome.status} ({detail})"
            )
        return self.outcome.result


@dataclass
class _Submission:
    ticket: QueryTicket
    query: HybridQuery
    algorithm: str
    priority: int


@dataclass
class ServiceReport:
    """Outcome of draining one batch."""

    outcomes: List[QueryOutcome]
    makespan: float
    metrics: MetricsRegistry

    def completed(self) -> List[QueryOutcome]:
        """Queries that produced a result."""
        return [outcome for outcome in self.outcomes if outcome.ok]

    def rejected(self) -> List[QueryOutcome]:
        """Queries refused by admission control."""
        return [outcome for outcome in self.outcomes
                if outcome.status == "rejected"]

    def failed(self) -> List[QueryOutcome]:
        """Queries that died on an unrecoverable fault after retries."""
        return [outcome for outcome in self.outcomes
                if outcome.status == "failed"]

    def throughput(self) -> float:
        """Completed queries per simulated second."""
        if self.makespan <= 0:
            return 0.0
        return len(self.completed()) / self.makespan

    def serial_seconds(self) -> float:
        """Sum of per-query execution times — what a one-at-a-time
        service would have taken end to end."""
        return sum(outcome.service_seconds for outcome in self.completed())

    def render(self) -> str:
        """Human-readable report: per-query lines plus the metrics."""
        lines = [
            f"{len(self.completed())} completed, "
            f"{len(self.rejected())} rejected, "
            f"{len(self.failed())} failed in "
            f"{self.makespan:.1f}s simulated "
            f"({self.throughput() * 60:.2f} queries/min; serial sum "
            f"{self.serial_seconds():.1f}s)",
            "",
        ]
        for outcome in self.outcomes:
            if outcome.ok:
                source = "cache" if outcome.cache_hit else outcome.algorithm
                if outcome.degraded:
                    report = outcome.approx_report or {}
                    source = (
                        f"~{source}@"
                        f"{report.get('fraction_scanned', 1.0):.0%}"
                    )
                lines.append(
                    f"  q{outcome.ticket_id:<4d} {outcome.tenant:<10s} "
                    f"{source:<18s} wait={outcome.queue_wait:7.1f}s "
                    f"latency={outcome.latency:8.1f}s "
                    f"rows={outcome.result.num_rows}"
                )
            elif outcome.status == "failed":
                lines.append(
                    f"  q{outcome.ticket_id:<4d} {outcome.tenant:<10s} "
                    f"FAILED ({outcome.error}) after "
                    f"{outcome.fault_retries_used} re-admissions"
                )
            else:
                lines.append(
                    f"  q{outcome.ticket_id:<4d} {outcome.tenant:<10s} "
                    f"REJECTED ({outcome.reject_reason}) after "
                    f"{outcome.queue_wait:.1f}s"
                )
        lines += ["", "metrics:", self.metrics.render()]
        return "\n".join(lines)


class QueryService:
    """Concurrent query execution over one hybrid warehouse."""

    def __init__(self, warehouse, config: Optional[ServiceConfig] = None):
        self.warehouse = warehouse
        self.config = config or ServiceConfig()
        self.metrics = MetricsRegistry()
        self.feedback = FeedbackLoop(metrics=self.metrics)
        self.result_cache = ResultCache(
            self.config.result_cache_entries, metrics=self.metrics)
        self.bloom_builder = CachingBloomBuilder(
            warehouse.database,
            BloomCache(self.config.bloom_cache_entries,
                       metrics=self.metrics),
        )
        self.join_index_provider = CachingJoinIndexProvider(
            warehouse.jen,
            JoinIndexCache(self.config.join_index_cache_entries,
                           metrics=self.metrics),
        )
        refiner = (self._refine_estimate if self.config.enable_feedback
                   else None)
        self.session = SqlSession(warehouse, estimate_refiner=refiner)
        self._ids = itertools.count(1)
        self._pending: List[_Submission] = []
        #: Created lazily on the first drain that runs with the process
        #: backend selected; survives across drains.
        self._shared_pool = None

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------
    def submit(self, query: Union[HybridQuery, str], tenant: str = "default",
               at: float = 0.0, algorithm: str = "auto",
               priority: int = 0) -> QueryTicket:
        """Queue a query for the next drain; returns its ticket.

        ``at`` is the simulated arrival offset from the start of the
        batch; ``priority`` 0 is interactive, larger values are
        best-effort (shed first under overload).
        """
        if at < 0:
            raise ServiceError("arrival offset must be non-negative")
        if isinstance(query, str):
            query = self._translate(query)
        if algorithm != "auto":
            algorithm_by_name(algorithm)  # validate the name early
        ticket = QueryTicket(id=next(self._ids), tenant=tenant, at=at)
        self._pending.append(_Submission(
            ticket=ticket, query=query, algorithm=algorithm,
            priority=priority,
        ))
        self.metrics.counter("service.submitted").inc()
        return ticket

    def _translate(self, sql: str) -> HybridQuery:
        translation = self.session.explain(sql)
        if translation.needs_prejoin():
            raise ServiceError(
                "star-schema SQL needs in-database pre-joins; run it "
                "through SqlSession.execute, not the query service"
            )
        return translation.query

    # ------------------------------------------------------------------
    # Draining a batch
    # ------------------------------------------------------------------
    def drain(self) -> ServiceReport:
        """Replay every pending submission on a fresh simulated clock."""
        batch, self._pending = self._pending, []
        engine = SimEngine()
        cluster = SharedCluster(
            engine,
            edw_slots=self.config.edw_slots,
            jen_slots=self.config.jen_slots,
            net_slots=self.config.net_slots,
        )
        admission_config = self.config.admission
        if self.config.approx_degrade:
            admission_config = replace(admission_config,
                                       degrade_to_approx=True)
        admission = AdmissionController(
            engine, admission_config, metrics=self.metrics)
        outcomes: List[QueryOutcome] = []
        if self.config.enable_bloom_cache:
            self.bloom_builder.install()
        if self.config.enable_join_index_cache:
            self.join_index_provider.install()
        previous_backend = self._install_shared_pool()
        try:
            for submission in sorted(batch,
                                     key=lambda s: (s.ticket.at,
                                                    s.ticket.id)):
                engine.process(
                    self._query_process(engine, cluster, admission,
                                        submission, outcomes),
                    name=f"q{submission.ticket.id}",
                )
            engine.run()
        finally:
            self.bloom_builder.uninstall()
            self.join_index_provider.uninstall()
            self._uninstall_shared_pool(previous_backend)
        outcomes.sort(key=lambda outcome: outcome.ticket_id)
        # The engine's final clock includes queue-timeout timers that
        # fired as no-ops; the batch makespan is the last completion.
        makespan = max(
            (outcome.finished_at for outcome in outcomes), default=0.0)
        return ServiceReport(
            outcomes=outcomes, makespan=makespan, metrics=self.metrics)

    #: drain() under its task-queue name, for submit/await call sites.
    await_all = drain

    # ------------------------------------------------------------------
    # Shared multi-query process pool
    # ------------------------------------------------------------------
    def shared_pool(self):
        """This service's :class:`SharedProcessPool` (created lazily)."""
        if self._shared_pool is None:
            from repro import parallel
            from repro.parallel.sharedpool import SharedProcessPool

            self._shared_pool = SharedProcessPool(
                workers=parallel.pool_workers())
        return self._shared_pool

    def _install_shared_pool(self):
        """Route engine parallel calls to the shared pool for one drain.

        Returns the token :meth:`_uninstall_shared_pool` needs, or
        ``None`` when the shared pool is not in play (config off, or
        the sequential backend is selected — a pool of processes would
        be dead weight under a purely simulated drain).
        """
        from repro import parallel

        if not (self.config.shared_pool and parallel.parallel_enabled()):
            return None
        return (parallel.install_backend(self.shared_pool()),)

    def _uninstall_shared_pool(self, token) -> None:
        from repro import parallel

        if token is None:
            return
        parallel.install_backend(token[0])
        for event, _detail in parallel.drain_pool_events():
            self.metrics.counter(f"parallel.pool.{event}").inc()
        snapshot = self._shared_pool.stats_snapshot()
        for key in ("created", "reused", "banked"):
            counter = self.metrics.counter(f"parallel.segments.{key}")
            delta = snapshot[key] - counter.value
            if delta > 0:
                counter.inc(delta)

    def shutdown(self) -> None:
        """Release the shared pool's workers and segments (idempotent).

        The service object stays usable — the next drain with the
        process backend selected lazily builds a fresh pool.
        """
        if self._shared_pool is not None:
            self._shared_pool.shutdown()
            self._shared_pool = None

    def execute(self, query: Union[HybridQuery, str],
                algorithm: str = "auto") -> QueryOutcome:
        """Convenience: submit one query and drain immediately."""
        ticket = self.submit(query, algorithm=algorithm)
        self.drain()
        return ticket.outcome

    # ------------------------------------------------------------------
    def _query_process(self, engine, cluster, admission,
                       submission: _Submission,
                       outcomes: List[QueryOutcome]):
        """The per-query generator process driven by the DES."""
        ticket = submission.ticket
        if ticket.at > 0:
            yield Timeout(ticket.at)
        submitted_at = engine.now
        key = plan_key(submission.query)

        if self.config.enable_result_cache:
            cached = self.result_cache.get(key)
            if cached is not None:
                if self.config.cache_hit_seconds > 0:
                    yield Timeout(self.config.cache_hit_seconds)
                outcome = QueryOutcome(
                    ticket_id=ticket.id, tenant=ticket.tenant,
                    status="ok", algorithm="cache", cache_hit=True,
                    submitted_at=submitted_at, admitted_at=submitted_at,
                    finished_at=engine.now, result=cached,
                )
                self._finish(ticket, outcome, outcomes)
                return

        admit = yield admission.request(ticket.tenant, submission.priority)
        if not admit.admitted:
            outcome = QueryOutcome(
                ticket_id=ticket.id, tenant=ticket.tenant,
                status="rejected", reject_reason=admit.reason,
                submitted_at=submitted_at,
                admitted_at=submitted_at + admit.queued_seconds,
                finished_at=submitted_at + admit.queued_seconds,
                queue_wait=admit.queued_seconds,
            )
            self._finish(ticket, outcome, outcomes)
            return

        # Graceful degradation: an unrecoverable injected fault releases
        # the slot and re-admits the query up to ``fault_retries`` times
        # (the injector's fired-once crash/abort state persists, so the
        # retry typically runs clean); past that, the failure surfaces
        # with its typed FaultError.
        queue_wait = admit.queued_seconds
        retries_used = 0
        approx_report = None
        from repro import parallel

        while True:
            try:
                # Tag the data plane with its query stream: morsels
                # landing in the shared pool carry the tenant (fair
                # scheduling) and priority of this query.
                with parallel.task_origin(ticket.tenant,
                                          f"q{ticket.id}",
                                          submission.priority):
                    if admit.degraded:
                        algorithm, rationale, join_result, \
                            approx_report = self._execute_approx(
                                submission.query, ticket.tenant)
                    else:
                        algorithm, rationale, join_result = \
                            self._execute_data_plane(
                                submission.query, submission.algorithm)
                break
            except FaultError as exc:
                admission.release(admit.grant)
                self.metrics.counter("service.fault_aborts").inc()
                injector = getattr(self.warehouse.jen, "injector", None)
                if injector is not None:
                    injector.bump_epoch()
                if retries_used >= self.config.fault_retries:
                    outcome = QueryOutcome(
                        ticket_id=ticket.id, tenant=ticket.tenant,
                        status="failed",
                        error=f"{type(exc).__name__}: {exc}",
                        fault_retries_used=retries_used,
                        submitted_at=submitted_at,
                        admitted_at=submitted_at + queue_wait,
                        finished_at=engine.now, queue_wait=queue_wait,
                    )
                    self._finish(ticket, outcome, outcomes)
                    return
                retries_used += 1
                self.metrics.counter("service.fault_retries").inc()
                admit = yield admission.request(ticket.tenant,
                                               submission.priority)
                if not admit.admitted:
                    outcome = QueryOutcome(
                        ticket_id=ticket.id, tenant=ticket.tenant,
                        status="rejected", reject_reason=admit.reason,
                        error=f"{type(exc).__name__}: {exc}",
                        fault_retries_used=retries_used,
                        submitted_at=submitted_at,
                        finished_at=engine.now,
                        queue_wait=queue_wait + admit.queued_seconds,
                    )
                    self._finish(ticket, outcome, outcomes)
                    return
                queue_wait += admit.queued_seconds
        run = schedule_trace(
            engine, cluster, join_result.trace,
            chunks=self.config.chunks, label=f"q{ticket.id}",
        )
        yield run.done
        admission.release(admit.grant)

        # A degraded run's answer is an estimate: it must not poison the
        # result cache (a later exact query would get a sampled answer)
        # nor the advisor's feedback loop (its observed volumes reflect
        # the sample, not the query).
        degraded = approx_report is not None
        if self.config.enable_feedback and not degraded:
            self.feedback.record(
                key, plan_key(submission.query, literals=False),
                self.session.sample_estimate(submission.query), join_result,
            )
        if self.config.enable_result_cache and not degraded:
            self.result_cache.put(key, join_result.result)
        outcome = QueryOutcome(
            ticket_id=ticket.id, tenant=ticket.tenant, status="ok",
            algorithm=algorithm, advisor_rationale=rationale,
            fault_retries_used=retries_used,
            submitted_at=submitted_at,
            admitted_at=submitted_at + queue_wait,
            finished_at=engine.now, queue_wait=queue_wait,
            result=join_result.result, join_result=join_result,
            degraded=degraded, approx_report=approx_report,
        )
        self._finish(ticket, outcome, outcomes)

    def _execute_data_plane(self, query: HybridQuery, algorithm: str):
        """Run the real data plane; returns (algorithm, rationale, run)."""
        rationale = ""
        if algorithm == "auto" and self.config.enable_adaptive:
            return self._execute_adaptive(query)
        if algorithm == "auto":
            decision = self.session.advise(query)
            algorithm, rationale = decision.best, decision.rationale
        if self.config.enable_join_index_cache:
            self.join_index_provider.set_context(build_side_key(
                query, self.warehouse.jen.num_workers, algorithm))
        join_result = algorithm_by_name(algorithm).run(
            self.warehouse, query)
        self._count_fallbacks(join_result)
        return algorithm, rationale, join_result

    def _execute_approx(self, query: HybridQuery, tenant: str):
        """The degraded tier: run the query approximately.

        Falls back to the exact tier (counting ``approx.unsupported``)
        when the query or environment is outside the approximate
        contract: min/max aggregates have no closed-form interval, and
        an armed fault plan has no recovery semantics in the
        block-at-a-time sampled scan.  Returns ``(algorithm, rationale,
        join_result, approx_report)`` with ``approx_report=None`` on
        fallback.
        """
        from repro.approx import ApproxJoin

        policy = (
            self.config.approx_tenant_policies.get(tenant)
            or self.config.approx_policy
            or ApproxPolicy()
        )
        injector = getattr(self.warehouse.jen, "injector", None)
        has_extremes = any(
            spec.function in ("min", "max") for spec in query.aggregates
        )
        if (injector is not None and injector.armed) or has_extremes:
            self.metrics.counter("approx.unsupported").inc()
            algorithm, rationale, join_result = self._execute_data_plane(
                query, "auto")
            return algorithm, rationale, join_result, None

        algo = ApproxJoin.from_policy(
            policy, progressive=policy.max_error is not None)
        join_result = algo.run(self.warehouse, query)
        self._count_fallbacks(join_result)
        self.metrics.counter("approx.runs").inc()
        report = join_result.trace.metadata.get("approx", {})
        self.metrics.histogram("approx.fraction_scanned").observe(
            report.get("fraction_scanned", 1.0))
        rationale = (
            f"shed to degraded tier: sample_rate={policy.sample_rate:g}, "
            f"confidence={policy.confidence:g}"
            + (f", max_error={policy.max_error:g}"
               if policy.max_error is not None else "")
        )
        return join_result.algorithm, rationale, join_result, report

    def _execute_adaptive(self, query: HybridQuery):
        """Auto mode with mid-query re-optimization.

        The adaptive wrapper starts from the *refined* estimate, so the
        feedback loop's observed statistics (themselves fed by earlier
        adaptive runs) progressively remove the need to switch on
        repeated templates.
        """
        from repro.adaptive import AdaptiveJoin

        if self.config.enable_join_index_cache:
            self.join_index_provider.set_context(build_side_key(
                query, self.warehouse.jen.num_workers, "adaptive"))
        estimate = self.session.estimate(query)
        join_result = AdaptiveJoin(estimate=estimate).run(
            self.warehouse, query)
        self._count_fallbacks(join_result)
        self.metrics.counter("adaptive.runs").inc()
        report = join_result.trace.metadata.get("adaptive", {})
        rationale = ""
        if report.get("switched"):
            self.metrics.counter("adaptive.switches").inc()
            rationale = report["switches"][-1]["reason"]
        return join_result.algorithm, rationale, join_result

    def _count_fallbacks(self, join_result: JoinResult) -> None:
        """Surface sequential-fallback events in the metrics registry."""
        fallbacks = join_result.trace.metadata.get("parallel_fallbacks", ())
        for _site, reason in fallbacks:
            self.metrics.counter(f"parallel.fallback.{reason}").inc()
        self._record_bytes_shipped(join_result)

    def _record_bytes_shipped(self, join_result: JoinResult) -> None:
        """Accumulate the trace's per-phase transfer volumes.

        Every join trace classifies its transfer phases into export /
        shuffle / relay / stitch buckets (``bytes_shipped`` metadata);
        the service sums them across queries so an operator can see
        where the cluster's network budget went — and in particular how
        much late materialization's stitch phase spent versus what thin
        shipping saved.
        """
        shipped = join_result.trace.metadata.get("bytes_shipped")
        if not shipped:
            return
        for category in ("export", "shuffle", "relay", "stitch"):
            amount = shipped.get(category, 0.0)
            if amount > 0:
                self.metrics.counter(f"net.bytes.{category}").inc(amount)
        cross = shipped.get("cross_cluster", 0.0)
        if cross > 0:
            self.metrics.counter("net.bytes.cross_cluster").inc(cross)

    def _refine_estimate(self, query: HybridQuery, estimate):
        """The session's estimate hook: apply accumulated feedback."""
        return self.feedback.refine(
            plan_key(query), plan_key(query, literals=False), estimate)

    def _finish(self, ticket: QueryTicket, outcome: QueryOutcome,
                outcomes: List[QueryOutcome]) -> None:
        ticket.outcome = outcome
        outcomes.append(outcome)
        if outcome.ok:
            self.metrics.counter("service.completed").inc()
            label = "cache" if outcome.cache_hit else outcome.algorithm
            self.metrics.histogram("service.latency_seconds").observe(
                outcome.latency)
            self.metrics.histogram(
                f"service.latency_seconds.{label}").observe(outcome.latency)
            self.metrics.histogram(
                f"service.latency_seconds.tenant.{ticket.tenant}"
            ).observe(outcome.latency)
        elif outcome.status == "failed":
            self.metrics.counter("service.query_failed").inc()
        else:
            self.metrics.counter("service.query_rejected").inc()
