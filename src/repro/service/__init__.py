"""The service plane: concurrent query streams over the shared cluster.

See :mod:`repro.service.server` for the top-level
:class:`QueryService`; the other modules are its organs — admission
control (:mod:`~repro.service.admission`), multi-query scheduling on
the shared DES (:mod:`~repro.service.scheduler`), semantic caching
(:mod:`~repro.service.cache`), the execution feedback loop
(:mod:`~repro.service.feedback`), metrics
(:mod:`~repro.service.metrics`) and synthetic query streams
(:mod:`~repro.service.stream`).
"""

from repro.service.admission import (
    AdmissionConfig,
    AdmissionController,
    AdmissionOutcome,
)
from repro.service.cache import (
    BloomCache,
    CachingBloomBuilder,
    ResultCache,
    plan_key,
    predicate_key,
)
from repro.service.feedback import FeedbackLoop, Observation, observe
from repro.service.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.service.scheduler import (
    FairSharePolicy,
    SharedCluster,
    schedule_trace,
)
from repro.service.server import (
    QueryOutcome,
    QueryService,
    QueryTicket,
    ServiceConfig,
    ServiceReport,
)
from repro.service.stream import (
    StreamSpec,
    StreamedQuery,
    build_template_query,
    generate_query_stream,
)

__all__ = [
    "AdmissionConfig",
    "AdmissionController",
    "AdmissionOutcome",
    "BloomCache",
    "CachingBloomBuilder",
    "Counter",
    "FairSharePolicy",
    "FeedbackLoop",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Observation",
    "QueryOutcome",
    "QueryService",
    "QueryTicket",
    "ResultCache",
    "ServiceConfig",
    "ServiceReport",
    "SharedCluster",
    "StreamSpec",
    "StreamedQuery",
    "build_template_query",
    "generate_query_stream",
    "observe",
    "plan_key",
    "predicate_key",
    "schedule_trace",
]
