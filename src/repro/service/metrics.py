"""A small counters/gauges/histograms registry for the service plane.

The service plane runs entirely in simulated time, so the metrics here
are ordinary in-process accumulators — no clocks, no threads, no
sampling windows.  A :class:`MetricsRegistry` is owned by one
:class:`~repro.service.server.QueryService` instance; its
:meth:`~MetricsRegistry.render` output is what ``python -m repro serve``
prints after replaying a stream.

Histograms keep every observation (query streams here are thousands of
points at most), so quantiles are exact rather than sketch
approximations.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.errors import ServiceError


class Counter:
    """A monotonically increasing count (admissions, rejections, hits)."""

    def __init__(self, name: str, help_text: str = ""):
        self.name = name
        self.help_text = help_text
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be non-negative) to the counter."""
        if amount < 0:
            raise ServiceError(
                f"counter {self.name!r} cannot decrease (inc {amount})"
            )
        self.value += amount

    def __repr__(self) -> str:
        return f"Counter({self.name}={self.value:g})"


class Gauge:
    """An instantaneous level (queue depth, in-flight queries).

    Tracks the high watermark alongside the current value — the peak
    concurrency a service run sustained is a gauge's ``high`` reading.
    """

    def __init__(self, name: str, help_text: str = ""):
        self.name = name
        self.help_text = help_text
        self.value = 0.0
        self.high = 0.0

    def set(self, value: float) -> None:
        """Set the current level."""
        self.value = float(value)
        self.high = max(self.high, self.value)

    def inc(self, amount: float = 1.0) -> None:
        """Adjust the current level by ``amount`` (may be negative)."""
        self.set(self.value + amount)

    def dec(self, amount: float = 1.0) -> None:
        """Shorthand for ``inc(-amount)``."""
        self.inc(-amount)

    def __repr__(self) -> str:
        return f"Gauge({self.name}={self.value:g}, high={self.high:g})"


class Histogram:
    """Exact-quantile histogram over every observed value."""

    def __init__(self, name: str, help_text: str = ""):
        self.name = name
        self.help_text = help_text
        self._values: List[float] = []
        self._sorted = True

    def observe(self, value: float) -> None:
        """Record one observation."""
        if self._values and value < self._values[-1]:
            self._sorted = False
        self._values.append(float(value))

    @property
    def count(self) -> int:
        """Number of observations."""
        return len(self._values)

    @property
    def total(self) -> float:
        """Sum of observations."""
        return sum(self._values)

    @property
    def mean(self) -> float:
        """Arithmetic mean (0 when empty)."""
        return self.total / self.count if self._values else 0.0

    def percentile(self, q: float) -> float:
        """Exact ``q``-th percentile (nearest-rank, ``0 <= q <= 100``)."""
        if not 0.0 <= q <= 100.0:
            raise ServiceError(f"percentile {q} outside [0, 100]")
        if not self._values:
            return 0.0
        if not self._sorted:
            self._values.sort()
            self._sorted = True
        rank = max(0, min(len(self._values) - 1,
                          round(q / 100.0 * (len(self._values) - 1))))
        return self._values[rank]

    @property
    def p50(self) -> float:
        """Median."""
        return self.percentile(50.0)

    @property
    def p95(self) -> float:
        """95th percentile."""
        return self.percentile(95.0)

    @property
    def p99(self) -> float:
        """99th percentile."""
        return self.percentile(99.0)

    def __repr__(self) -> str:
        return (f"Histogram({self.name}: n={self.count}, "
                f"p50={self.p50:g}, p95={self.p95:g})")


class MetricsRegistry:
    """Named metrics with get-or-create accessors.

    Re-requesting a name returns the existing instrument; requesting an
    existing name as a *different* instrument type is an error, so two
    components cannot silently alias each other's numbers.
    """

    def __init__(self):
        self._metrics: Dict[str, object] = {}

    def _get_or_create(self, name: str, cls, help_text: str):
        existing = self._metrics.get(name)
        if existing is not None:
            if not isinstance(existing, cls):
                raise ServiceError(
                    f"metric {name!r} already registered as "
                    f"{type(existing).__name__}, not {cls.__name__}"
                )
            return existing
        metric = cls(name, help_text)
        self._metrics[name] = metric
        return metric

    def counter(self, name: str, help_text: str = "") -> Counter:
        """Get or create a counter."""
        return self._get_or_create(name, Counter, help_text)

    def gauge(self, name: str, help_text: str = "") -> Gauge:
        """Get or create a gauge."""
        return self._get_or_create(name, Gauge, help_text)

    def histogram(self, name: str, help_text: str = "") -> Histogram:
        """Get or create a histogram."""
        return self._get_or_create(name, Histogram, help_text)

    def get(self, name: str) -> Optional[object]:
        """The metric registered under ``name``, or None."""
        return self._metrics.get(name)

    def as_dict(self) -> Dict[str, object]:
        """Snapshot of every metric's headline value(s)."""
        snapshot: Dict[str, object] = {}
        for name, metric in sorted(self._metrics.items()):
            if isinstance(metric, Counter):
                snapshot[name] = metric.value
            elif isinstance(metric, Gauge):
                snapshot[name] = {"value": metric.value, "high": metric.high}
            elif isinstance(metric, Histogram):
                snapshot[name] = {
                    "count": metric.count,
                    "mean": metric.mean,
                    "p50": metric.p50,
                    "p95": metric.p95,
                    "p99": metric.p99,
                }
        return snapshot

    def render(self) -> str:
        """Multi-line human-readable report of every metric."""
        lines = []
        for name, metric in sorted(self._metrics.items()):
            if isinstance(metric, Counter):
                lines.append(f"  {name:<42s} {metric.value:12g}")
            elif isinstance(metric, Gauge):
                lines.append(
                    f"  {name:<42s} {metric.value:12g}  "
                    f"(high {metric.high:g})"
                )
            elif isinstance(metric, Histogram):
                lines.append(
                    f"  {name:<42s} n={metric.count:<6d} "
                    f"mean={metric.mean:9.2f} p50={metric.p50:9.2f} "
                    f"p95={metric.p95:9.2f} p99={metric.p99:9.2f}"
                )
        return "\n".join(lines) if lines else "  (no metrics recorded)"
