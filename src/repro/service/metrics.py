"""A small counters/gauges/histograms registry for the service plane.

The service plane runs entirely in simulated time, but the *process*
hosting it does not: the parallel execution backend
(:mod:`repro.parallel`) completes shared-memory results on pool
callback threads, and service embedders are free to drive one
:class:`MetricsRegistry` from several threads at once.  Every
instrument therefore guards its mutable state with a
:class:`threading.Lock` — increments are atomic read-modify-write
operations, never lost updates.  Pool *worker processes* do not touch
the registry at all: they return raw stage counts to the coordinator,
which aggregates them into these instruments from a single process
(per-process aggregation), so no cross-process lock is needed.

Histograms keep every observation (query streams here are thousands of
points at most), so quantiles are exact rather than sketch
approximations.
"""

from __future__ import annotations

import threading
from typing import Dict, List, Optional

from repro.errors import ServiceError


class Counter:
    """A monotonically increasing count (admissions, rejections, hits).

    ``inc`` is atomic under the instrument's lock, so concurrent
    increments from service threads never lose updates.
    """

    def __init__(self, name: str, help_text: str = ""):
        self.name = name
        self.help_text = help_text
        self._lock = threading.Lock()
        self._value = 0.0

    @property
    def value(self) -> float:
        """Current count."""
        with self._lock:
            return self._value

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be non-negative) to the counter."""
        if amount < 0:
            raise ServiceError(
                f"counter {self.name!r} cannot decrease (inc {amount})"
            )
        with self._lock:
            self._value += amount

    def __repr__(self) -> str:
        return f"Counter({self.name}={self.value:g})"


class Gauge:
    """An instantaneous level (queue depth, in-flight queries).

    Tracks the high watermark alongside the current value — the peak
    concurrency a service run sustained is a gauge's ``high`` reading.
    ``set``/``inc``/``dec`` update level and watermark under one lock,
    so the watermark never misses a concurrent spike.
    """

    def __init__(self, name: str, help_text: str = ""):
        self.name = name
        self.help_text = help_text
        self._lock = threading.Lock()
        self._value = 0.0
        self._high = 0.0

    @property
    def value(self) -> float:
        """Current level."""
        with self._lock:
            return self._value

    @property
    def high(self) -> float:
        """High watermark."""
        with self._lock:
            return self._high

    def set(self, value: float) -> None:
        """Set the current level."""
        with self._lock:
            self._value = float(value)
            self._high = max(self._high, self._value)

    def inc(self, amount: float = 1.0) -> None:
        """Adjust the current level by ``amount`` (may be negative)."""
        with self._lock:
            self._value += float(amount)
            self._high = max(self._high, self._value)

    def dec(self, amount: float = 1.0) -> None:
        """Shorthand for ``inc(-amount)``."""
        self.inc(-amount)

    def __repr__(self) -> str:
        with self._lock:
            return (f"Gauge({self.name}={self._value:g}, "
                    f"high={self._high:g})")


class Histogram:
    """Exact-quantile histogram over every observed value."""

    def __init__(self, name: str, help_text: str = ""):
        self.name = name
        self.help_text = help_text
        self._lock = threading.Lock()
        self._values: List[float] = []
        self._sorted = True

    def observe(self, value: float) -> None:
        """Record one observation."""
        with self._lock:
            if self._values and value < self._values[-1]:
                self._sorted = False
            self._values.append(float(value))

    @property
    def count(self) -> int:
        """Number of observations."""
        with self._lock:
            return len(self._values)

    @property
    def total(self) -> float:
        """Sum of observations."""
        with self._lock:
            return sum(self._values)

    @property
    def mean(self) -> float:
        """Arithmetic mean (0 when empty)."""
        with self._lock:
            if not self._values:
                return 0.0
            return sum(self._values) / len(self._values)

    def percentile(self, q: float) -> float:
        """Exact ``q``-th percentile (nearest-rank, ``0 <= q <= 100``)."""
        if not 0.0 <= q <= 100.0:
            raise ServiceError(f"percentile {q} outside [0, 100]")
        with self._lock:
            if not self._values:
                return 0.0
            if not self._sorted:
                self._values.sort()
                self._sorted = True
            rank = max(0, min(len(self._values) - 1,
                              round(q / 100.0 * (len(self._values) - 1))))
            return self._values[rank]

    @property
    def p50(self) -> float:
        """Median."""
        return self.percentile(50.0)

    @property
    def p95(self) -> float:
        """95th percentile."""
        return self.percentile(95.0)

    @property
    def p99(self) -> float:
        """99th percentile."""
        return self.percentile(99.0)

    def __repr__(self) -> str:
        return (f"Histogram({self.name}: n={self.count}, "
                f"p50={self.p50:g}, p95={self.p95:g})")


class MetricsRegistry:
    """Named metrics with get-or-create accessors.

    Re-requesting a name returns the existing instrument; requesting an
    existing name as a *different* instrument type is an error, so two
    components cannot silently alias each other's numbers.  Lookup and
    creation happen under a registry lock, so two threads racing to
    create the same name always converge on one instrument.
    """

    def __init__(self):
        self._lock = threading.Lock()
        self._metrics: Dict[str, object] = {}

    def _get_or_create(self, name: str, cls, help_text: str):
        with self._lock:
            existing = self._metrics.get(name)
            if existing is not None:
                if not isinstance(existing, cls):
                    raise ServiceError(
                        f"metric {name!r} already registered as "
                        f"{type(existing).__name__}, not {cls.__name__}"
                    )
                return existing
            metric = cls(name, help_text)
            self._metrics[name] = metric
            return metric

    def counter(self, name: str, help_text: str = "") -> Counter:
        """Get or create a counter."""
        return self._get_or_create(name, Counter, help_text)

    def gauge(self, name: str, help_text: str = "") -> Gauge:
        """Get or create a gauge."""
        return self._get_or_create(name, Gauge, help_text)

    def histogram(self, name: str, help_text: str = "") -> Histogram:
        """Get or create a histogram."""
        return self._get_or_create(name, Histogram, help_text)

    def get(self, name: str) -> Optional[object]:
        """The metric registered under ``name``, or None."""
        with self._lock:
            return self._metrics.get(name)

    def _snapshot_items(self):
        with self._lock:
            return sorted(self._metrics.items())

    def as_dict(self) -> Dict[str, object]:
        """Snapshot of every metric's headline value(s)."""
        snapshot: Dict[str, object] = {}
        for name, metric in self._snapshot_items():
            if isinstance(metric, Counter):
                snapshot[name] = metric.value
            elif isinstance(metric, Gauge):
                snapshot[name] = {"value": metric.value, "high": metric.high}
            elif isinstance(metric, Histogram):
                snapshot[name] = {
                    "count": metric.count,
                    "mean": metric.mean,
                    "p50": metric.p50,
                    "p95": metric.p95,
                    "p99": metric.p99,
                }
        return snapshot

    def render(self) -> str:
        """Multi-line human-readable report of every metric."""
        lines = []
        for name, metric in self._snapshot_items():
            if isinstance(metric, Counter):
                lines.append(f"  {name:<42s} {metric.value:12g}")
            elif isinstance(metric, Gauge):
                lines.append(
                    f"  {name:<42s} {metric.value:12g}  "
                    f"(high {metric.high:g})"
                )
            elif isinstance(metric, Histogram):
                lines.append(
                    f"  {name:<42s} n={metric.count:<6d} "
                    f"mean={metric.mean:9.2f} p50={metric.p50:9.2f} "
                    f"p95={metric.p95:9.2f} p99={metric.p99:9.2f}"
                )
        return "\n".join(lines) if lines else "  (no metrics recorded)"

    # -- operator summary ----------------------------------------------
    _TENANT_PREFIX = "service.latency_seconds.tenant."
    _CACHE_PREFIX = "cache."
    _BYTES_PREFIX = "net.bytes."

    def summary(self) -> Dict[str, object]:
        """Structured operator summary of the registry.

        Groups the flat metric namespace into the three views an
        operator actually asks for: where did latency go (per tenant),
        did the caches earn their memory (hit rates, including the
        pushed-down Bloom-filter cache), and where did the network
        budget go (per-category bytes shipped, with the stitch bucket
        isolating late materialization's payload fetches).
        """
        tenants: Dict[str, Dict[str, float]] = {}
        caches: Dict[str, Dict[str, float]] = {}
        bytes_shipped: Dict[str, float] = {}
        for name, metric in self._snapshot_items():
            if name.startswith(self._TENANT_PREFIX) \
                    and isinstance(metric, Histogram):
                tenants[name[len(self._TENANT_PREFIX):]] = {
                    "count": metric.count,
                    "mean": metric.mean,
                    "p50": metric.p50,
                    "p95": metric.p95,
                    "p99": metric.p99,
                }
            elif name.startswith(self._BYTES_PREFIX) \
                    and isinstance(metric, Counter):
                bytes_shipped[name[len(self._BYTES_PREFIX):]] = metric.value
            elif name.startswith(self._CACHE_PREFIX) \
                    and isinstance(metric, Counter):
                cache_name, _, field = \
                    name[len(self._CACHE_PREFIX):].partition(".")
                caches.setdefault(cache_name, {})[field] = metric.value
        for cache in caches.values():
            lookups = cache.get("hits", 0.0) + cache.get("misses", 0.0)
            cache["hit_rate"] = (
                cache.get("hits", 0.0) / lookups if lookups else 0.0
            )
        return {
            "tenants": tenants,
            "caches": caches,
            "bytes_shipped": bytes_shipped,
        }

    def render_report(self) -> str:
        """Human-readable version of :meth:`summary`."""
        summary = self.summary()
        lines: List[str] = []
        tenants = summary["tenants"]
        lines.append("per-tenant latency (simulated seconds):")
        if tenants:
            for tenant, stats in sorted(tenants.items()):
                lines.append(
                    f"  {tenant:<18s} n={int(stats['count']):<5d} "
                    f"mean={stats['mean']:9.2f} p50={stats['p50']:9.2f} "
                    f"p95={stats['p95']:9.2f} p99={stats['p99']:9.2f}"
                )
        else:
            lines.append("  (no completed queries)")
        lines.append("cache hit rates:")
        caches = summary["caches"]
        if caches:
            for cache_name, stats in sorted(caches.items()):
                lines.append(
                    f"  {cache_name:<18s} "
                    f"hits={int(stats.get('hits', 0)):<7d} "
                    f"misses={int(stats.get('misses', 0)):<7d} "
                    f"hit_rate={stats['hit_rate']:6.1%}"
                )
        else:
            lines.append("  (no cache lookups)")
        lines.append("bytes shipped (scaled to paper size):")
        shipped = summary["bytes_shipped"]
        if shipped:
            for category, value in sorted(shipped.items()):
                lines.append(f"  {category:<18s} {value:16,.0f}")
        else:
            lines.append("  (no transfer phases recorded)")
        return "\n".join(lines)
