"""Semantic caching for the query service.

Three artifacts of a hybrid-join execution are worth keeping across a
query stream:

* **the result** — the paper's query template always groups and
  aggregates, so results are small; a repeated query (same normalised
  plan) is answered from the coordinator without touching either
  cluster, and — because every algorithm is exact — a result computed
  by *any* algorithm serves a repeat regardless of which algorithm the
  advisor would pick this time;
* **the merged database Bloom filter BF(T′)** — the paper's Section 3
  filter depends only on the database table, its local predicate and
  the join key, *not* on the HDFS side of the query.  Two queries that
  share those (e.g. the same transaction filter joined against
  different log slices) can reuse one OR-merged filter, skipping the
  ``cal_filter``/``combine_filter`` pipeline entirely;
* **the per-worker join build indexes** — JEN's local join sorts each
  worker's build side (the filtered HDFS rows it received) before
  probing.  Two queries whose HDFS side is unchanged — same table,
  predicate, derivations and join key, pruned by the same database
  filter — deliver byte-identical build partitions to each worker, so
  the sorted :class:`~repro.kernels.JoinBuildIndex` can be reused and
  only the probe runs.  Reuse is *verified*: a cached index is compared
  against the fresh build keys (O(n), versus the O(n log n) sort it
  saves) and silently rebuilt on any mismatch, so a stale entry can
  never change a result.

Keys are *semantic*: predicates are normalised (conjunction and
disjunction children sorted, literals rendered canonically), so two
syntactically different but identical plans share an entry.  With
``literals=False`` the same normalisation yields a *template* key —
the plan with its constants stripped — which is what the feedback loop
(:mod:`repro.service.feedback`) aggregates observations under.

Both caches are bounded LRU maps.  Entries are returned by reference
and must be treated as immutable, matching the read-only convention of
the rest of the data plane.
"""

from __future__ import annotations

import dataclasses
from collections import OrderedDict
from typing import Optional

from repro.errors import ServiceError
from repro.query.query import HybridQuery
from repro.relational.expressions import (
    BetweenDayDiff,
    ColumnPairPredicate,
    ColumnPredicate,
    Conjunction,
    Disjunction,
    InSetPredicate,
    Negation,
    Predicate,
    TruePredicate,
    UdfPredicate,
)
from repro.relational.table import Table
from repro.service.metrics import MetricsRegistry


# ----------------------------------------------------------------------
# Canonical keys
# ----------------------------------------------------------------------
def predicate_key(predicate: Optional[Predicate],
                  literals: bool = True) -> str:
    """Canonical string form of a predicate.

    AND/OR children are sorted so commutative rewrites coincide; with
    ``literals=False`` comparison constants are replaced by ``?``,
    producing the template form shared by all parameterisations.
    UDF predicates are keyed by UDF name and column (two UDFs with the
    same registered name are assumed to be the same function).
    """
    lit = (lambda value: repr(value)) if literals else (lambda value: "?")
    if predicate is None:
        return "NONE"
    if isinstance(predicate, TruePredicate):
        return "TRUE"
    if isinstance(predicate, ColumnPredicate):
        return f"{predicate.column}{predicate.op.value}{lit(predicate.literal)}"
    if isinstance(predicate, Conjunction):
        children = sorted(
            predicate_key(child, literals) for child in predicate.children
        )
        return "AND(" + ",".join(children) + ")"
    if isinstance(predicate, Disjunction):
        children = sorted(
            predicate_key(child, literals) for child in predicate.children
        )
        return "OR(" + ",".join(children) + ")"
    if isinstance(predicate, Negation):
        return "NOT(" + predicate_key(predicate.child, literals) + ")"
    if isinstance(predicate, BetweenDayDiff):
        bounds = (f"{predicate.low},{predicate.high}" if literals
                  else "?,?")
        return (f"DAYDIFF({predicate.left_column},"
                f"{predicate.right_column})IN[{bounds}]")
    if isinstance(predicate, InSetPredicate):
        values = (",".join(sorted(repr(v) for v in predicate.values))
                  if literals else "?")
        return f"{predicate.column}IN({values})"
    if isinstance(predicate, ColumnPairPredicate):
        return (f"{predicate.left_column}{predicate.op.value}"
                f"{predicate.right_column}")
    if isinstance(predicate, UdfPredicate):
        return f"UDF:{predicate.name}({predicate.column})"
    # Unknown predicate types fall back to repr, which is stable for
    # the frozen dataclasses this AST is built from.
    return repr(predicate)


def plan_key(query: HybridQuery, literals: bool = True) -> str:
    """Canonical normalised form of a whole hybrid plan.

    Everything that affects the result participates: tables, join keys,
    projections (order matters — it is the output schema), predicates,
    scan-time derivations, post-join predicate, grouping and
    aggregates.  With ``literals=False`` this is the plan *template*.
    """
    derived = ";".join(
        f"{d.name}={d.udf_name}({d.source})" for d in query.hdfs_derived
    )
    aggregates = ";".join(
        f"{spec.function}({spec.column or '*'})as{spec.output_name()}"
        for spec in query.aggregates
    )
    parts = [
        f"db={query.db_table}",
        f"hdfs={query.hdfs_table}",
        f"on={query.db_join_key}={query.hdfs_join_key}",
        f"tproj={','.join(query.db_projection)}",
        f"lproj={','.join(query.hdfs_projection)}",
        f"tpred={predicate_key(query.db_predicate, literals)}",
        f"lpred={predicate_key(query.hdfs_predicate, literals)}",
        f"derived={derived}",
        f"post={predicate_key(query.post_join_predicate, literals)}",
        f"group={','.join(query.group_by)}",
        f"agg={aggregates}",
        f"prefix={query.db_prefix}|{query.hdfs_prefix}",
    ]
    return "&".join(parts)


def bloom_key(table_name: str, predicate: Predicate, key_column: str,
              num_bits: int, num_hashes: int, seed: int) -> str:
    """Canonical key of a merged BF(T′): everything its bits depend on."""
    return (f"{table_name}|{key_column}|{predicate_key(predicate)}"
            f"|m={num_bits}|k={num_hashes}|s={seed}")


def build_side_key(query: HybridQuery, num_workers: int,
                   algorithm: str = "") -> str:
    """Canonical key of the JEN workers' join build sides.

    Everything that determines which HDFS rows land on which worker
    participates: the HDFS table, its predicate and derivations, the
    join keys, the worker count (the agreed hash fans out over it) and
    the algorithm plus database predicate (they decide whether and with
    which BF(T′) the scan was pruned).  Collisions are harmless — the
    provider verifies cached indexes against the fresh keys before
    trusting them — so this key only has to be *selective*, not
    perfect.
    """
    derived = ";".join(
        f"{d.name}={d.udf_name}({d.source})" for d in query.hdfs_derived
    )
    parts = [
        f"hdfs={query.hdfs_table}",
        f"key={query.hdfs_join_key}",
        f"lpred={predicate_key(query.hdfs_predicate)}",
        f"derived={derived}",
        f"db={query.db_table}",
        f"dbkey={query.db_join_key}",
        f"tpred={predicate_key(query.db_predicate)}",
        f"alg={algorithm}",
        f"workers={num_workers}",
    ]
    return "&".join(parts)


# ----------------------------------------------------------------------
# Bounded LRU caches
# ----------------------------------------------------------------------
class _LruCache:
    """Bounded LRU mapping with hit/miss/eviction counters."""

    def __init__(self, capacity: int, name: str,
                 metrics: Optional[MetricsRegistry] = None):
        if capacity < 1:
            raise ServiceError(f"{name} cache capacity must be >= 1")
        self.capacity = capacity
        self._entries: "OrderedDict[str, object]" = OrderedDict()
        metrics = metrics or MetricsRegistry()
        self.hits = metrics.counter(f"cache.{name}.hits")
        self.misses = metrics.counter(f"cache.{name}.misses")
        self.evictions = metrics.counter(f"cache.{name}.evictions")

    def get(self, key: str):
        """The cached value, refreshing recency; None on miss."""
        try:
            value = self._entries[key]
        except KeyError:
            self.misses.inc()
            return None
        self._entries.move_to_end(key)
        self.hits.inc()
        return value

    def put(self, key: str, value) -> None:
        """Insert (or refresh) an entry, evicting the LRU tail."""
        if key in self._entries:
            self._entries.move_to_end(key)
        self._entries[key] = value
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.evictions.inc()

    def invalidate(self, key: Optional[str] = None) -> None:
        """Drop one entry (or everything, when ``key`` is None)."""
        if key is None:
            self._entries.clear()
        else:
            self._entries.pop(key, None)

    def __len__(self) -> int:
        return len(self._entries)

    def hit_rate(self) -> float:
        """Hits over lookups (0 when never consulted)."""
        lookups = self.hits.value + self.misses.value
        return self.hits.value / lookups if lookups else 0.0


class ResultCache(_LruCache):
    """Normalised plan key -> final result :class:`Table`."""

    def __init__(self, capacity: int = 128,
                 metrics: Optional[MetricsRegistry] = None):
        super().__init__(capacity, "result", metrics)

    def get(self, key: str) -> Optional[Table]:
        return super().get(key)


class BloomCache(_LruCache):
    """BF(T′) key -> merged ``GlobalBloomResult``."""

    def __init__(self, capacity: int = 64,
                 metrics: Optional[MetricsRegistry] = None):
        super().__init__(capacity, "bloom", metrics)


class JoinIndexCache(_LruCache):
    """Build-side key + worker slot -> :class:`JoinBuildIndex`."""

    def __init__(self, capacity: int = 64,
                 metrics: Optional[MetricsRegistry] = None):
        super().__init__(capacity, "joinindex", metrics)


class CachingJoinIndexProvider:
    """Cross-query memoisation of per-worker join build indexes.

    Installed on :attr:`Jen.build_index_provider` for the duration of a
    drain.  The service sets the current query's
    :func:`build_side_key` context before executing the data plane; the
    engine then asks this provider for each worker's index.  A cached
    index is returned only if :meth:`JoinBuildIndex.matches` confirms
    it was built over exactly the worker's fresh build keys — anything
    else (first sight, eviction, a context collision, a fault-recovery
    run that redistributed rows) builds and caches a new index.  Reuse
    is therefore invisible to the data plane: the probe output is
    bit-identical either way.
    """

    def __init__(self, jen, cache: JoinIndexCache):
        self._jen = jen
        self.cache = cache
        self._context: Optional[str] = None

    def set_context(self, context_key: Optional[str]) -> None:
        """Scope subsequent lookups to one query's build-side key."""
        self._context = context_key

    def __call__(self, worker_slot: int, build_keys):
        from repro.kernels.joinindex import JoinBuildIndex

        if self._context is None:
            return JoinBuildIndex(build_keys)
        key = f"{self._context}|w{worker_slot}"
        cached = self.cache.get(key)
        if cached is not None and cached.matches(build_keys):
            return cached
        index = JoinBuildIndex(build_keys)
        self.cache.put(key, index)
        return index

    def install(self) -> None:
        """Hook this provider into the JEN engine."""
        self._jen.build_index_provider = self

    def uninstall(self) -> None:
        """Detach from the engine (leave foreign providers alone)."""
        if getattr(self._jen, "build_index_provider", None) is self:
            self._jen.build_index_provider = None
        self._context = None


class CachingBloomBuilder:
    """Memoising stand-in for ``ParallelDatabase.build_global_bloom``.

    Installed by the service for the duration of a drain: a cache hit
    returns the previously merged filter with its build-cost stats
    zeroed (``index_only=True``, nothing scanned), so the trace prices
    the BF build at its floor while the data plane probes bits
    identical to a rebuild.  The multicast to the JEN workers is *not*
    elided — a reused filter still has to reach the scan sites.
    """

    def __init__(self, database, cache: BloomCache):
        self._database = database
        self._build = database.build_global_bloom
        self.cache = cache

    def __call__(self, table_name, predicate, key_column, num_bits,
                 num_hashes=2, seed=7):
        key = bloom_key(table_name, predicate, key_column,
                        num_bits, num_hashes, seed)
        cached = self.cache.get(key)
        if cached is not None:
            return dataclasses.replace(
                cached, index_only=True, rows_accessed=0,
                bytes_accessed=0.0, keys_added=0,
            )
        result = self._build(table_name, predicate, key_column,
                             num_bits, num_hashes=num_hashes, seed=seed)
        self.cache.put(key, result)
        return result

    def install(self) -> None:
        """Shadow the database's builder with this memoising one."""
        self._database.build_global_bloom = self

    def uninstall(self) -> None:
        """Restore the database's original builder."""
        if self._database.__dict__.get("build_global_bloom") is self:
            del self._database.__dict__["build_global_bloom"]
