"""Zero-copy table transport over ``multiprocessing.shared_memory``.

The process-pool backend must move :class:`~repro.relational.table.Table`
objects between the coordinator and the pool workers without paying a
pickle of every column.  The codec here packs all numeric column arrays
of one table into a *single* shared-memory segment; what actually
crosses the process boundary is a :class:`TableHandle` — schema, row
count, per-column offsets and the segment name — so a worker attaches
the segment and wraps numpy views around the same physical pages the
coordinator wrote.  Dictionary arrays of dict-string columns (small, a
few dozen distinct strings) ride along inside the pickled handle.

Lifecycle is guarded by :class:`ShmRegistry`: every segment carries a
session-unique name prefix, the registry records every name it created
or adopted, and :meth:`ShmRegistry.close_all` unlinks them.  Because
the prefix encodes the coordinator PID, :meth:`ShmRegistry.sweep` can
reclaim even segments whose names were lost when a worker process died
mid-transfer — ``/dev/shm`` ends every run clean, crash or no crash.

Worker-created result segments are unregistered from the inheriting
process's ``resource_tracker`` (:func:`disown_segment`) so the parent —
not the dying worker — owns the unlink.
"""

from __future__ import annotations

import os
import secrets
from dataclasses import dataclass
from multiprocessing import shared_memory
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.errors import ShmError
from repro.relational.schema import Schema
from repro.relational.table import Table

#: Session-unique prefix for every segment this process creates.  The
#: PID makes post-crash sweeps safe: only our own leftovers match.
SESSION_PREFIX = f"reproshm{os.getpid()}x{secrets.token_hex(3)}"

#: Where POSIX shared memory appears as files (Linux).  Used only by
#: the crash sweep; other platforms fall back to tracked-name cleanup.
_SHM_DIR = "/dev/shm"


def disown_segment(segment: shared_memory.SharedMemory) -> None:
    """Detach ``segment`` from this process's resource tracker.

    A worker that creates a result segment must hand ownership to the
    coordinator; otherwise the worker's ``resource_tracker`` unlinks
    the segment when the worker exits, yanking the pages out from
    under the parent.  Best-effort: tracker internals are stable across
    CPython 3.8–3.13 but this degrades gracefully if they change.
    """
    try:  # pragma: no cover - depends on interpreter internals
        from multiprocessing import resource_tracker

        resource_tracker.unregister(segment._name, "shared_memory")
    except Exception:
        pass


@dataclass(frozen=True)
class TableHandle:
    """A picklable description of one shared-memory-resident table.

    ``segment`` is ``None`` for zero-byte tables (no rows, or only
    zero-width columns) — nothing to share, so nothing is allocated.
    ``columns`` maps column name to ``(numpy dtype string, byte
    offset, byte length)`` inside the segment.
    """

    schema: Schema
    num_rows: int
    segment: Optional[str]
    columns: Tuple[Tuple[str, str, int, int], ...]
    dictionaries: Dict[str, np.ndarray]

    @property
    def nbytes(self) -> int:
        """Total payload bytes inside the segment."""
        return sum(length for _, _, _, length in self.columns)


def export_table(table: Table, registry: "ShmRegistry") -> TableHandle:
    """Pack ``table``'s columns into one fresh shared-memory segment.

    One ``memcpy`` per column; the returned handle plus the segment are
    all a worker needs to see the identical table.  The segment is
    owned (and eventually unlinked) by ``registry``.
    """
    layout: List[Tuple[str, str, int, int]] = []
    offset = 0
    arrays: List[np.ndarray] = []
    for name in table.schema.names:
        array = np.ascontiguousarray(table.column(name))
        layout.append((name, array.dtype.str, offset, array.nbytes))
        arrays.append(array)
        offset += array.nbytes
    segment_name: Optional[str] = None
    if offset > 0:
        segment = registry.create(offset)
        segment_name = segment.name
        for (name, _, start, length), array in zip(layout, arrays):
            if length == 0:
                continue
            view = np.ndarray(array.shape, dtype=array.dtype,
                              buffer=segment.buf, offset=start)
            view[...] = array
        registry.detach(segment)
    dictionaries = {
        column.name: table.dictionary(column.name)
        for column in table.schema
        if column.name in table._dictionaries
    }
    return TableHandle(
        schema=table.schema,
        num_rows=table.num_rows,
        segment=segment_name,
        columns=tuple(layout),
        dictionaries=dictionaries,
    )


class AttachedTable:
    """A table view over someone else's shared-memory segment.

    Keeps the :class:`~multiprocessing.shared_memory.SharedMemory`
    object alive while the numpy views exist; :meth:`close` drops the
    mapping (never the segment itself — the owner unlinks).
    ``materialize()`` returns a self-contained copy safe to use after
    ``close()``.
    """

    def __init__(self, handle: TableHandle):
        self._handle = handle
        self._segment: Optional[shared_memory.SharedMemory] = None
        columns: Dict[str, np.ndarray] = {}
        if handle.segment is not None:
            try:
                self._segment = shared_memory.SharedMemory(
                    name=handle.segment
                )
            except FileNotFoundError:
                raise ShmError(
                    f"shared-memory segment {handle.segment!r} is gone "
                    "(owner unlinked it before attach, or the exporting "
                    "worker died mid-transfer)"
                ) from None
        for name, dtype_str, start, length in handle.columns:
            dtype = np.dtype(dtype_str)
            count = length // dtype.itemsize if dtype.itemsize else 0
            if length == 0 or self._segment is None:
                # Zero-byte column: only possible for zero-row tables
                # with our fixed-width dtypes, but stay defensive.
                columns[name] = np.zeros(handle.num_rows, dtype=dtype)
            else:
                columns[name] = np.ndarray(
                    (count,), dtype=dtype,
                    buffer=self._segment.buf, offset=start,
                )
        self.table = Table._view(
            handle.schema, columns, dict(handle.dictionaries)
        )

    def materialize(self) -> Table:
        """A deep copy backed by private memory (outlives the segment)."""
        columns = {
            name: np.array(self.table.column(name), copy=True)
            for name in self.table.schema.names
        }
        return Table._view(
            self.table.schema, columns, dict(self._handle.dictionaries)
        )

    def close(self) -> None:
        """Drop the mapping (invalidates ``self.table``'s views)."""
        if self._segment is not None:
            self._segment.close()
            self._segment = None

    def __enter__(self) -> "AttachedTable":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()


class ShmRegistry:
    """Owner of every shared-memory segment one backend session makes.

    ``create`` hands out named segments under :data:`SESSION_PREFIX`;
    ``adopt`` takes ownership of worker-created segments; ``release``
    and ``close_all`` unlink.  ``sweep`` reclaims orphans by prefix —
    the guard that keeps ``/dev/shm`` clean even when a worker crashed
    between creating a result segment and reporting its name.

    Each registry instance claims its own namespace under the session
    prefix (``...i<instance>``): several registries can coexist in one
    process (the global backend's plus test-created ones) without name
    collisions, and one registry's ``sweep`` can never unlink another
    live registry's segments.
    """

    _instances = 0

    def __init__(self, prefix: str = SESSION_PREFIX):
        ShmRegistry._instances += 1
        self.prefix = f"{prefix}i{ShmRegistry._instances}"
        self._counter = 0
        self._owned: Dict[str, Optional[shared_memory.SharedMemory]] = {}

    def next_name(self) -> str:
        """A fresh segment name under this registry's prefix."""
        self._counter += 1
        return f"{self.prefix}n{self._counter}"

    def create(self, nbytes: int) -> shared_memory.SharedMemory:
        """Allocate and track a segment of at least ``nbytes``."""
        if nbytes < 0:
            raise ShmError(f"cannot allocate {nbytes} bytes")
        segment = shared_memory.SharedMemory(
            name=self.next_name(), create=True, size=max(1, nbytes)
        )
        self._owned[segment.name] = segment
        return segment

    def detach(self, segment: shared_memory.SharedMemory) -> None:
        """Close our mapping of an owned segment (still tracked)."""
        if segment.name not in self._owned:
            raise ShmError(f"segment {segment.name!r} is not owned here")
        segment.close()
        self._owned[segment.name] = None

    def adopt(self, name: str) -> None:
        """Take ownership of a segment created in a worker process."""
        if name not in self._owned:
            self._owned[name] = None

    def release(self, name: Optional[str]) -> None:
        """Unlink one owned segment (no-op for ``None`` / unknown)."""
        if name is None or name not in self._owned:
            return
        segment = self._owned.pop(name)
        try:
            if segment is None:
                segment = shared_memory.SharedMemory(name=name)
            segment.close()
            segment.unlink()
        except FileNotFoundError:
            pass

    def owned_names(self) -> List[str]:
        """Currently tracked segment names (tests, leak checks)."""
        return sorted(self._owned)

    def close_all(self) -> None:
        """Unlink every tracked segment, then sweep for orphans."""
        for name in list(self._owned):
            self.release(name)
        self.sweep()

    def sweep(self) -> List[str]:
        """Unlink untracked leftovers matching this session's prefix.

        Only possible where POSIX shared memory is exposed as files
        (Linux ``/dev/shm``); elsewhere tracked-name cleanup already
        covered everything a healthy run created, and crashed-worker
        orphans die with the machine's tmpfs.
        """
        reclaimed: List[str] = []
        if not os.path.isdir(_SHM_DIR):
            return reclaimed
        try:
            entries = os.listdir(_SHM_DIR)
        except OSError:  # pragma: no cover - permission-restricted /dev/shm
            return reclaimed
        for entry in entries:
            if not entry.startswith(self.prefix):
                continue
            if entry in self._owned:
                continue
            try:
                orphan = shared_memory.SharedMemory(name=entry)
                orphan.close()
                orphan.unlink()
                reclaimed.append(entry)
            except FileNotFoundError:
                continue
        return reclaimed


def leaked_segments(prefix: str = "reproshm") -> List[str]:
    """Names of live shared-memory segments matching ``prefix``.

    The leak check used by tests and CI: after a run (including chaos
    runs that killed workers), this must be empty.
    """
    if not os.path.isdir(_SHM_DIR):
        return []
    try:
        return sorted(
            entry for entry in os.listdir(_SHM_DIR)
            if entry.startswith(prefix)
        )
    except OSError:  # pragma: no cover - permission-restricted /dev/shm
        return []
