"""Zero-copy table transport over ``multiprocessing.shared_memory``.

The process-pool backend must move :class:`~repro.relational.table.Table`
objects between the coordinator and the pool workers without paying a
pickle of every column.  The codec here packs all numeric column arrays
of one table into a *single* shared-memory segment; what actually
crosses the process boundary is a :class:`TableHandle` — schema, row
count, per-column offsets and the segment name — so a worker attaches
the segment and wraps numpy views around the same physical pages the
coordinator wrote.  Dictionary arrays of dict-string columns (small, a
few dozen distinct strings) ride along inside the pickled handle.

Lifecycle is guarded by :class:`ShmRegistry`: every segment carries a
session-unique name prefix, the registry records every name it created
or adopted, and :meth:`ShmRegistry.close_all` unlinks them.  Because
the prefix encodes the coordinator PID, :meth:`ShmRegistry.sweep` can
reclaim even segments whose names were lost when a worker process died
mid-transfer — ``/dev/shm`` ends every run clean, crash or no crash.

All segment opens go through :func:`open_segment`, which suppresses
``resource_tracker`` registration: the registry *is* the tracker here,
and skipping the tracker's blocking pipe write per attach removes the
largest per-morsel fixed cost.  Worker-created result segments are
therefore never owned by the dying worker — the coordinator adopts and
eventually unlinks them (:func:`unlink_segment`).

:class:`SegmentPool` sits on top of the registry and recycles segments
across morsels and queries on a size-bucketed free list: released
segments stay mapped instead of being unlinked, and worker-created
result segments are *banked* into the same free list once their rows
have been materialised — in steady state the backend stops touching
``shm_open``/``ftruncate`` entirely.
"""

from __future__ import annotations

import os
import secrets
import threading
from dataclasses import dataclass
from multiprocessing import shared_memory
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.errors import ShmError
from repro.relational.schema import Schema
from repro.relational.table import Table

#: Session-unique prefix for every segment this process creates.  The
#: PID makes post-crash sweeps safe: only our own leftovers match.
SESSION_PREFIX = f"reproshm{os.getpid()}x{secrets.token_hex(3)}"

#: Where POSIX shared memory appears as files (Linux).  Used only by
#: the crash sweep; other platforms fall back to tracked-name cleanup.
_SHM_DIR = "/dev/shm"


_TRACKER_PATCH_LOCK = threading.Lock()

# The pool's fork-context workers are forked from a coordinator that
# may have *other* query threads inside the patch window at fork time.
# The child would inherit a held _TRACKER_PATCH_LOCK (and possibly the
# patched tracker functions) with no thread left to release it, and
# deadlock on its first open_segment.  Reset both in the child.
from multiprocessing import resource_tracker as _resource_tracker

_ORIGINAL_REGISTER = _resource_tracker.register
_ORIGINAL_UNREGISTER = _resource_tracker.unregister


def _reset_tracker_patch_after_fork() -> None:  # pragma: no cover - child
    global _TRACKER_PATCH_LOCK
    _TRACKER_PATCH_LOCK = threading.Lock()
    _resource_tracker.register = _ORIGINAL_REGISTER
    _resource_tracker.unregister = _ORIGINAL_UNREGISTER


os.register_at_fork(after_in_child=_reset_tracker_patch_after_fork)


def open_segment(name: str,
                 create: bool = False,
                 size: int = 0) -> shared_memory.SharedMemory:
    """Open a shared-memory segment without resource-tracker traffic.

    CPython (3.9–3.12) registers *every* ``SharedMemory`` — attaches
    included — with the ``resource_tracker`` daemon, and each
    registration is a blocking pipe write plus a liveness probe.  At
    hundreds of morsel results per query that synchronous IPC dominates
    the backend's fixed cost.  Our segments don't need the tracker:
    every name is owned by a :class:`ShmRegistry` whose ``close_all`` /
    ``sweep`` reclaim it even after a crash (the registry prefix is the
    tracker).  So attach/create with registration suppressed.
    """
    from multiprocessing import resource_tracker

    with _TRACKER_PATCH_LOCK:
        original = resource_tracker.register
        resource_tracker.register = lambda *_a, **_k: None
        try:
            return shared_memory.SharedMemory(
                name=name, create=create, size=size
            )
        finally:
            resource_tracker.register = original


def unlink_segment(segment: shared_memory.SharedMemory) -> None:
    """Unlink a segment opened via :func:`open_segment`.

    ``SharedMemory.unlink`` unregisters from the resource tracker; for
    segments whose registration was suppressed that is a spurious
    (asynchronous, stderr-noisy) ``KeyError`` in the tracker daemon, so
    suppress the unregister symmetrically.
    """
    from multiprocessing import resource_tracker

    with _TRACKER_PATCH_LOCK:
        original = resource_tracker.unregister
        resource_tracker.unregister = lambda *_a, **_k: None
        try:
            segment.unlink()
        finally:
            resource_tracker.unregister = original


def disown_segment(segment: shared_memory.SharedMemory) -> None:
    """Detach ``segment`` from this process's resource tracker.

    A worker that creates a result segment must hand ownership to the
    coordinator; otherwise the worker's ``resource_tracker`` unlinks
    the segment when the worker exits, yanking the pages out from
    under the parent.  Best-effort: tracker internals are stable across
    CPython 3.8–3.13 but this degrades gracefully if they change.
    """
    try:  # pragma: no cover - depends on interpreter internals
        from multiprocessing import resource_tracker

        resource_tracker.unregister(segment._name, "shared_memory")
    except Exception:
        pass


@dataclass(frozen=True)
class TableHandle:
    """A picklable description of one shared-memory-resident table.

    ``segment`` is ``None`` for zero-byte tables (no rows, or only
    zero-width columns) — nothing to share, so nothing is allocated.
    ``columns`` maps column name to ``(numpy dtype string, byte
    offset, byte length)`` inside the segment.
    """

    schema: Schema
    num_rows: int
    segment: Optional[str]
    columns: Tuple[Tuple[str, str, int, int], ...]
    dictionaries: Dict[str, np.ndarray]

    @property
    def nbytes(self) -> int:
        """Total payload bytes inside the segment."""
        return sum(length for _, _, _, length in self.columns)


def export_table(table: Table, registry: "ShmRegistry") -> TableHandle:
    """Pack ``table``'s columns into one fresh shared-memory segment.

    One ``memcpy`` per column; the returned handle plus the segment are
    all a worker needs to see the identical table.  The segment is
    owned (and eventually unlinked) by ``registry``.
    """
    layout: List[Tuple[str, str, int, int]] = []
    offset = 0
    arrays: List[np.ndarray] = []
    for name in table.schema.names:
        array = np.ascontiguousarray(table.column(name))
        layout.append((name, array.dtype.str, offset, array.nbytes))
        arrays.append(array)
        offset += array.nbytes
    segment_name: Optional[str] = None
    if offset > 0:
        segment = registry.create(offset)
        segment_name = segment.name
        for (name, _, start, length), array in zip(layout, arrays):
            if length == 0:
                continue
            view = np.ndarray(array.shape, dtype=array.dtype,
                              buffer=segment.buf, offset=start)
            view[...] = array
        registry.detach(segment)
    dictionaries = {
        column.name: table.dictionary(column.name)
        for column in table.schema
        if column.name in table._dictionaries
    }
    return TableHandle(
        schema=table.schema,
        num_rows=table.num_rows,
        segment=segment_name,
        columns=tuple(layout),
        dictionaries=dictionaries,
    )


class AttachedTable:
    """A table view over someone else's shared-memory segment.

    Keeps the :class:`~multiprocessing.shared_memory.SharedMemory`
    object alive while the numpy views exist; :meth:`close` drops the
    mapping (never the segment itself — the owner unlinks).
    ``materialize()`` returns a self-contained copy safe to use after
    ``close()``.
    """

    def __init__(self, handle: TableHandle):
        self._handle = handle
        self._segment: Optional[shared_memory.SharedMemory] = None
        columns: Dict[str, np.ndarray] = {}
        if handle.segment is not None:
            try:
                self._segment = open_segment(handle.segment)
            except FileNotFoundError:
                raise ShmError(
                    f"shared-memory segment {handle.segment!r} is gone "
                    "(owner unlinked it before attach, or the exporting "
                    "worker died mid-transfer)"
                ) from None
        for name, dtype_str, start, length in handle.columns:
            dtype = np.dtype(dtype_str)
            count = length // dtype.itemsize if dtype.itemsize else 0
            if length == 0 or self._segment is None:
                # Zero-byte column: only possible for zero-row tables
                # with our fixed-width dtypes, but stay defensive.
                columns[name] = np.zeros(handle.num_rows, dtype=dtype)
            else:
                columns[name] = np.ndarray(
                    (count,), dtype=dtype,
                    buffer=self._segment.buf, offset=start,
                )
        self.table = Table._view(
            handle.schema, columns, dict(handle.dictionaries)
        )

    def materialize(self) -> Table:
        """A deep copy backed by private memory (outlives the segment)."""
        columns = {
            name: np.array(self.table.column(name), copy=True)
            for name in self.table.schema.names
        }
        return Table._view(
            self.table.schema, columns, dict(self._handle.dictionaries)
        )

    def close(self) -> None:
        """Drop the mapping (invalidates ``self.table``'s views)."""
        if self._segment is not None:
            self._segment.close()
            self._segment = None

    def __enter__(self) -> "AttachedTable":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()


class ShmRegistry:
    """Owner of every shared-memory segment one backend session makes.

    ``create`` hands out named segments under :data:`SESSION_PREFIX`;
    ``adopt`` takes ownership of worker-created segments; ``release``
    and ``close_all`` unlink.  ``sweep`` reclaims orphans by prefix —
    the guard that keeps ``/dev/shm`` clean even when a worker crashed
    between creating a result segment and reporting its name.

    Each registry instance claims its own namespace under the session
    prefix (``...i<instance>``): several registries can coexist in one
    process (the global backend's plus test-created ones) without name
    collisions, and one registry's ``sweep`` can never unlink another
    live registry's segments.
    """

    _instances = 0

    def __init__(self, prefix: str = SESSION_PREFIX):
        ShmRegistry._instances += 1
        self.prefix = f"{prefix}i{ShmRegistry._instances}"
        self._counter = 0
        self._owned: Dict[str, Optional[shared_memory.SharedMemory]] = {}
        # Re-entrant: the shared multi-query pool mutates the registry
        # from several query threads plus executor callback threads.
        self._lock = threading.RLock()

    def next_name(self) -> str:
        """A fresh segment name under this registry's prefix."""
        with self._lock:
            self._counter += 1
            return f"{self.prefix}n{self._counter}"

    def create(self, nbytes: int) -> shared_memory.SharedMemory:
        """Allocate and track a segment of at least ``nbytes``."""
        if nbytes < 0:
            raise ShmError(f"cannot allocate {nbytes} bytes")
        segment = open_segment(
            self.next_name(), create=True, size=max(1, nbytes)
        )
        with self._lock:
            self._owned[segment.name] = segment
        return segment

    def detach(self, segment: shared_memory.SharedMemory) -> None:
        """Close our mapping of an owned segment (still tracked)."""
        with self._lock:
            if segment.name not in self._owned:
                raise ShmError(
                    f"segment {segment.name!r} is not owned here")
            segment.close()
            self._owned[segment.name] = None

    def adopt(self, name: str) -> None:
        """Take ownership of a segment created in a worker process."""
        with self._lock:
            if name not in self._owned:
                self._owned[name] = None

    def adopt_mapped(self, segment: shared_memory.SharedMemory) -> None:
        """Take ownership of an already-attached foreign segment.

        Used by :class:`SegmentPool` when it banks a worker-created
        result segment: the pool keeps the mapping alive for reuse, and
        the registry records the mapped object so ``close_all`` can
        unlink it without re-attaching.
        """
        with self._lock:
            self._owned[segment.name] = segment

    def release(self, name: Optional[str]) -> None:
        """Unlink one owned segment (no-op for ``None`` / unknown)."""
        if name is None:
            return
        with self._lock:
            if name not in self._owned:
                return
            segment = self._owned.pop(name)
        try:
            if segment is None:
                segment = open_segment(name)
            segment.close()
            unlink_segment(segment)
        except FileNotFoundError:
            pass

    def owned_names(self) -> List[str]:
        """Currently tracked segment names (tests, leak checks)."""
        with self._lock:
            return sorted(self._owned)

    def close_all(self) -> None:
        """Unlink every tracked segment, then sweep for orphans."""
        with self._lock:
            names = list(self._owned)
        for name in names:
            self.release(name)
        self.sweep()

    def sweep(self) -> List[str]:
        """Unlink untracked leftovers matching this session's prefix.

        Only possible where POSIX shared memory is exposed as files
        (Linux ``/dev/shm``); elsewhere tracked-name cleanup already
        covered everything a healthy run created, and crashed-worker
        orphans die with the machine's tmpfs.
        """
        reclaimed: List[str] = []
        if not os.path.isdir(_SHM_DIR):
            return reclaimed
        try:
            entries = os.listdir(_SHM_DIR)
        except OSError:  # pragma: no cover - permission-restricted /dev/shm
            return reclaimed
        with self._lock:
            owned = set(self._owned)
        for entry in entries:
            if not entry.startswith(self.prefix):
                continue
            if entry in owned:
                continue
            try:
                orphan = open_segment(entry)
                orphan.close()
                unlink_segment(orphan)
                reclaimed.append(entry)
            except FileNotFoundError:
                continue
        return reclaimed


class SegmentPool:
    """Size-bucketed reuse of shared-memory segments.

    Creating and unlinking a ``/dev/shm`` segment costs a ``shm_open``
    + ``ftruncate`` + ``mmap`` round trip per morsel — the single
    biggest fixed cost of the process backend once the pool is warm.
    The pool keeps released segments *mapped* on a power-of-two free
    list instead of unlinking them, so the next export of similar size
    reuses the same physical pages, across morsels and across queries.

    Every pooled segment is still owned by the underlying
    :class:`ShmRegistry` (created through it or adopted into it), so
    the crash-safety story is unchanged: ``close_all`` / ``sweep``
    reclaim everything, pooled or busy, and one pool's segments can
    never collide with another registry's namespace.

    The pool implements the ``create``/``detach`` allocator protocol of
    :func:`export_table`: ``create`` may hand back a segment *larger*
    than requested (the bucket size), which is safe because every
    handle carries explicit per-column offsets and lengths.
    """

    #: Smallest bucket; anything below one page rounds up to it.
    MIN_BUCKET = 4096
    #: Default cap on bytes parked on the free list before further
    #: recycles unlink instead (bounds /dev/shm usage of idle pools).
    DEFAULT_MAX_BYTES = 128 * 1024 * 1024

    def __init__(self, registry: ShmRegistry,
                 max_bytes: int = DEFAULT_MAX_BYTES):
        self.registry = registry
        self.max_bytes = max_bytes
        self._free: Dict[int, List[shared_memory.SharedMemory]] = {}
        self._busy: Dict[str, shared_memory.SharedMemory] = {}
        self._free_bytes = 0
        # Re-entrant: concurrent query threads of the shared pool
        # acquire/recycle/bank interleaved.
        self._lock = threading.RLock()
        self.stats: Dict[str, int] = {
            "created": 0, "reused": 0, "banked": 0,
            "recycled": 0, "evicted": 0,
        }

    @classmethod
    def bucket_for(cls, nbytes: int) -> int:
        """The power-of-two bucket holding ``nbytes``."""
        bucket = cls.MIN_BUCKET
        while bucket < nbytes:
            bucket <<= 1
        return bucket

    @classmethod
    def _bucket_of(cls, segment: shared_memory.SharedMemory) -> int:
        """The largest bucket ``segment`` fully covers.

        Pool-created segments are exactly bucket-sized; banked
        worker-created segments have arbitrary sizes and file under the
        next bucket *down*, so an ``acquire`` from that bucket is
        always satisfied.
        """
        bucket = cls.bucket_for(segment.size)
        if bucket > segment.size:
            bucket >>= 1
        return bucket

    # -- allocator protocol (export_table, context publishing) ---------
    def acquire(self, nbytes: int) -> shared_memory.SharedMemory:
        """A mapped segment of at least ``nbytes`` (reused or fresh)."""
        if nbytes < 0:
            raise ShmError(f"cannot allocate {nbytes} bytes")
        bucket = self.bucket_for(max(1, nbytes))
        with self._lock:
            free = self._free.get(bucket)
            if free:
                segment = free.pop()
                self._free_bytes -= segment.size
                self.stats["reused"] += 1
            else:
                segment = self.registry.create(bucket)
                self.stats["created"] += 1
            self._busy[segment.name] = segment
        return segment

    create = acquire

    def detach(self, segment: shared_memory.SharedMemory) -> None:
        """Allocator protocol no-op: pooled mappings stay open."""

    # -- lifecycle -----------------------------------------------------
    def recycle(self, name: Optional[str]) -> None:
        """Return a busy segment to the free list (or unlink if over
        the byte cap / unknown to the pool)."""
        if name is None:
            return
        with self._lock:
            segment = self._busy.pop(name, None)
            if segment is None:
                # Not pool-managed (e.g. a zero-byte table, or a handle
                # exported before the pool existed): plain release.
                self.registry.release(name)
                return
            if self._free_bytes + segment.size > self.max_bytes:
                self.stats["evicted"] += 1
                self.registry.release(name)
                return
            self._free.setdefault(
                self._bucket_of(segment), []).append(segment)
            self._free_bytes += segment.size
            self.stats["recycled"] += 1

    def bank(self, name: Optional[str]) -> None:
        """Adopt a worker-created result segment into the free list.

        The coordinator calls this after materialising a result: the
        segment (created and disowned by a pool worker) becomes
        registry-owned and immediately reusable for the next export.
        Its size is banked under the largest bucket it fully covers.
        """
        if name is None:
            return
        try:
            segment = open_segment(name)
        except FileNotFoundError:
            return
        with self._lock:
            self.registry.adopt_mapped(segment)
            if self._free_bytes + segment.size > self.max_bytes:
                self.stats["evicted"] += 1
                self.registry.release(name)
                return
            self._free.setdefault(
                self._bucket_of(segment), []).append(segment)
            self._free_bytes += segment.size
            self.stats["banked"] += 1

    def release(self, name: Optional[str]) -> None:
        """Unlink a busy segment outright (cache invalidation path)."""
        if name is None:
            return
        with self._lock:
            self._busy.pop(name, None)
            self.registry.release(name)

    def free_bytes(self) -> int:
        """Bytes currently parked on the free list."""
        with self._lock:
            return self._free_bytes

    def busy_names(self) -> List[str]:
        """Names of segments handed out and not yet recycled."""
        with self._lock:
            return sorted(self._busy)

    def drain(self) -> None:
        """Unlink every free-list segment (busy ones stay live)."""
        with self._lock:
            for segments in self._free.values():
                for segment in segments:
                    self.registry.release(segment.name)
            self._free.clear()
            self._free_bytes = 0

    def close(self) -> None:
        """Unlink everything the pool tracks, free and busy."""
        with self._lock:
            self.drain()
            for name in list(self._busy):
                self.release(name)


def leaked_segments(prefix: str = "reproshm") -> List[str]:
    """Names of live shared-memory segments matching ``prefix``.

    The leak check used by tests and CI: after a run (including chaos
    runs that killed workers), this must be empty.
    """
    if not os.path.isdir(_SHM_DIR):
        return []
    try:
        return sorted(
            entry for entry in os.listdir(_SHM_DIR)
            if entry.startswith(prefix)
        )
    except OSError:  # pragma: no cover - permission-restricted /dev/shm
        return []
