"""The persistent process pool behind the ``"process"`` backend.

One :class:`ProcessBackend` per coordinator process, created lazily on
first use and shared by every engine (JEN scans, local joins, database
partition scans).  It bundles three things:

* a :class:`concurrent.futures.ProcessPoolExecutor` (fork context where
  available, so workers share the parent's loaded code pages),
* the :class:`~repro.parallel.shm.ShmRegistry` owning every segment of
  the session, and
* an export cache: immutable engine tables (HDFS block replicas,
  database partitions) are packed into shared memory once and reused by
  every subsequent query, so steady-state queries ship only handles.

Worker death is contained: a :class:`BrokenProcessPool` is translated
into :class:`~repro.errors.ParallelExecutionError` *after* the broken
executor is torn down, the export cache dropped and every session
segment reclaimed (including orphans the dead worker never reported).
The next parallel call starts a fresh pool.
"""

from __future__ import annotations

import atexit
import os
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from typing import Callable, Dict, Iterable, Iterator, Optional, Tuple

import multiprocessing

from repro.errors import ParallelExecutionError
from repro.parallel.shm import ShmRegistry, TableHandle, export_table
from repro.relational.table import Table


def default_pool_workers() -> int:
    """Pool size when the user did not pick one: every available core."""
    try:
        return max(1, len(os.sched_getaffinity(0)))
    except AttributeError:  # pragma: no cover - non-Linux
        return max(1, os.cpu_count() or 1)


class ProcessBackend:
    """Executor + segment registry + export cache for one session."""

    def __init__(self, workers: Optional[int] = None):
        self.workers = workers or default_pool_workers()
        self.registry = ShmRegistry()
        self._executor: Optional[ProcessPoolExecutor] = None
        #: cache key -> (id of the exported table, handle).  The id
        #: detects staleness: engine tables are immutable, so a new
        #: object under the same key means the data changed.
        self._export_cache: Dict[object, Tuple[int, TableHandle]] = {}

    # ------------------------------------------------------------------
    def executor(self) -> ProcessPoolExecutor:
        """The live executor, creating it on first use."""
        if self._executor is None:
            try:
                context = multiprocessing.get_context("fork")
            except ValueError:  # pragma: no cover - non-POSIX
                context = multiprocessing.get_context()
            self._executor = ProcessPoolExecutor(
                max_workers=self.workers, mp_context=context
            )
        return self._executor

    # ------------------------------------------------------------------
    def export_cached(self, key: object, table: Table) -> TableHandle:
        """Shared-memory handle for an immutable engine table.

        The first call per (key, table object) pays the pack; later
        queries over the same loaded table reuse the segment.
        """
        cached = self._export_cache.get(key)
        if cached is not None and cached[0] == id(table):
            return cached[1]
        if cached is not None:
            self.registry.release(cached[1].segment)
        handle = export_table(table, self.registry)
        self._export_cache[key] = (id(table), handle)
        return handle

    def export_transient(self, table: Table) -> TableHandle:
        """Uncached export; caller releases via :meth:`release`."""
        return export_table(table, self.registry)

    def release(self, handle: Optional[TableHandle]) -> None:
        """Unlink a transient handle's segment."""
        if handle is not None:
            self.registry.release(handle.segment)

    def adopt_result(self, handle: Optional[TableHandle]) -> None:
        """Take ownership of a worker-created result segment."""
        if handle is not None and handle.segment is not None:
            self.registry.adopt(handle.segment)

    def consume(self, handle: Optional[TableHandle]) -> None:
        """Adopt and immediately unlink a worker-created result segment.

        The receive pattern: the coordinator attaches the result,
        copies it out (:meth:`AttachedTable.materialize`), then calls
        this — inputs travel zero-copy, results pay one ``memcpy`` and
        their segments never outlive the receive.
        """
        if handle is not None and handle.segment is not None:
            self.registry.adopt(handle.segment)
            self.registry.release(handle.segment)

    # ------------------------------------------------------------------
    def run_unordered(self, fn: Callable, payloads: Iterable
                      ) -> Iterator[object]:
        """Yield ``fn(payload)`` results as they complete (any order).

        This is the morsel work queue: every payload is an independent
        task, idle pool workers pull the next pending one, and the
        coordinator consumes results the moment they land — which is
        what lets the shuffle of finished morsels overlap the scan of
        the rest.  A dead worker aborts the batch via
        :class:`ParallelExecutionError` after cleanup.
        """
        executor = self.executor()
        futures = {executor.submit(fn, payload) for payload in payloads}
        try:
            while futures:
                done, futures = wait(futures, return_when=FIRST_COMPLETED)
                for future in done:
                    yield future.result()
        except BrokenProcessPool:
            for future in futures:
                future.cancel()
            self._abort("a pool worker died mid-task")
        except Exception:
            for future in futures:
                future.cancel()
            raise

    def run_all(self, fn: Callable, payloads: Iterable) -> list:
        """All results, in payload order (barrier variant)."""
        executor = self.executor()
        futures = [executor.submit(fn, payload) for payload in payloads]
        try:
            return [future.result() for future in futures]
        except BrokenProcessPool:
            for future in futures:
                future.cancel()
            self._abort("a pool worker died mid-task")

    def _abort(self, reason: str) -> None:
        """Tear down after a worker crash, then raise the typed error."""
        self.shutdown()
        raise ParallelExecutionError(
            f"process-pool backend failed: {reason}; all shared-memory "
            "segments were reclaimed — retry the query (the next parallel "
            "call starts a fresh pool) or switch to the sequential backend"
        )

    # ------------------------------------------------------------------
    def shutdown(self) -> None:
        """Stop the executor and unlink every session segment."""
        if self._executor is not None:
            self._executor.shutdown(wait=False, cancel_futures=True)
            self._executor = None
        self._export_cache.clear()
        self.registry.close_all()


_BACKEND: Optional[ProcessBackend] = None


def get_backend(workers: Optional[int] = None) -> ProcessBackend:
    """The session's shared :class:`ProcessBackend` (created lazily)."""
    global _BACKEND
    if _BACKEND is None:
        _BACKEND = ProcessBackend(workers=workers)
    elif workers is not None and workers != _BACKEND.workers:
        _BACKEND.shutdown()
        _BACKEND = ProcessBackend(workers=workers)
    return _BACKEND


def shutdown_backend() -> None:
    """Tear down the shared backend (tests, CLI exit, resizes)."""
    global _BACKEND
    if _BACKEND is not None:
        _BACKEND.shutdown()
        _BACKEND = None


@atexit.register
def _shutdown_at_exit() -> None:  # pragma: no cover - interpreter exit
    try:
        shutdown_backend()
    except Exception:
        pass
