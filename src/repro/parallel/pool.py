"""The persistent process pool behind the ``"process"`` backend.

One :class:`ProcessBackend` per coordinator process, created lazily on
first use and shared by every engine (JEN scans, local joins, database
partition scans).  It bundles three things:

* a :class:`concurrent.futures.ProcessPoolExecutor` (fork context where
  available, so workers share the parent's loaded code pages),
* the :class:`~repro.parallel.shm.ShmRegistry` owning every segment of
  the session, and
* an export cache: immutable engine tables (HDFS block replicas,
  database partitions) are packed into shared memory once and reused by
  every subsequent query, so steady-state queries ship only handles.

Worker death is contained: a :class:`BrokenProcessPool` is translated
into :class:`~repro.errors.ParallelExecutionError` *after* the broken
executor is torn down, the export cache dropped and every session
segment reclaimed (including orphans the dead worker never reported).
The next parallel call starts a fresh pool.
"""

from __future__ import annotations

import atexit
import os
import threading
import time
import weakref
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from typing import Callable, Dict, Iterable, Iterator, Optional, Tuple

import multiprocessing

from repro.errors import ParallelExecutionError
from repro.parallel.shm import (
    SegmentPool,
    ShmRegistry,
    TableHandle,
    export_table,
)
from repro.relational.table import Table


def default_pool_workers() -> int:
    """Pool size when the user did not pick one: every available core."""
    try:
        return max(1, len(os.sched_getaffinity(0)))
    except AttributeError:  # pragma: no cover - non-Linux
        return max(1, os.cpu_count() or 1)


class ProcessBackend:
    """Executor + segment registry + export cache for one session."""

    def __init__(self, workers: Optional[int] = None,
                 max_pool_bytes: int = SegmentPool.DEFAULT_MAX_BYTES):
        self.workers = workers or default_pool_workers()
        self.registry = ShmRegistry()
        #: The segment pool every export/recycle goes through: released
        #: segments stay mapped and are reused across morsels/queries.
        self.pool = SegmentPool(self.registry, max_bytes=max_pool_bytes)
        self._executor: Optional[ProcessPoolExecutor] = None
        self._sizer = None
        self._context_seq = 0
        self._dispatch_overhead: Optional[float] = None
        # Guards the export cache, context sequence and lazy sizer;
        # the shared multi-query pool is called from many threads.
        self._state_lock = threading.RLock()
        #: cache key -> list of (weakref to exported table, handle).
        #: Engine tables are immutable, so identity is the cache
        #: validity test; the weakref keeps entries per *live* table.
        #: Two warehouses can share a key (block ids restart per
        #: filesystem), so one key may hold several live entries — the
        #: old replace-on-mismatch scheme recycled a segment the other
        #: query's in-flight morsels were still reading.
        self._export_cache: Dict[object, list] = {}

    @property
    def sizer(self):
        """This backend's adaptive morsel sizer (lazy; survives queries)."""
        with self._state_lock:
            if self._sizer is None:
                from repro.parallel.scan import MorselSizer

                self._sizer = MorselSizer()
            return self._sizer

    def next_context_seq(self) -> int:
        """Globally-unique (per backend) sequence for task contexts."""
        with self._state_lock:
            self._context_seq += 1
            return self._context_seq

    def close_context(self, ref) -> None:
        """Recycle a published context's segment after its batch."""
        self.pool.recycle(ref.segment)

    def dispatch_overhead_seconds(self, tasks: int = 12) -> float:
        """Measured per-task dispatch cost of this pool (cached).

        Round-trips ``tasks`` no-op descriptors through the executor
        and divides the wall time: everything *except* useful work —
        header pickle, queue hops, result pickle.  The first call warms
        the pool so fork cost never pollutes the figure.  The morsel
        sizer uses this to decide how many rows amortise a dispatch.
        """
        if self._dispatch_overhead is None:
            from repro.parallel.tasks import (
                KIND_NOOP,
                make_descriptor,
                run_task,
            )

            descriptors = [make_descriptor(KIND_NOOP, None, index=i)
                           for i in range(max(4, tasks))]
            executor = self.executor()
            try:
                list(executor.map(run_task, descriptors[:2]))
                started = time.perf_counter()
                list(executor.map(run_task, descriptors))
                elapsed = time.perf_counter() - started
            except BrokenProcessPool:
                self._abort("a pool worker died during the dispatch probe")
            self._dispatch_overhead = elapsed / len(descriptors)
        return self._dispatch_overhead

    # ------------------------------------------------------------------
    def executor(self) -> ProcessPoolExecutor:
        """The live executor, creating it on first use."""
        with self._state_lock:
            if self._executor is None:
                try:
                    context = multiprocessing.get_context("fork")
                except ValueError:  # pragma: no cover - non-POSIX
                    context = multiprocessing.get_context()
                self._executor = ProcessPoolExecutor(
                    max_workers=self.workers, mp_context=context
                )
            return self._executor

    # ------------------------------------------------------------------
    def export_cached(self, key: object, table: Table) -> TableHandle:
        """Shared-memory handle for an immutable engine table.

        The first call per (key, table object) pays the pack; later
        queries over the same loaded table reuse the segment.  Entries
        are held per live table object, so concurrent queries over
        different warehouses (which reuse block ids, hence keys) each
        keep their own export; an entry is recycled only once its
        table has been garbage-collected.
        """
        with self._state_lock:
            entries = self._export_cache.setdefault(key, [])
            live = []
            hit: Optional[TableHandle] = None
            for ref, cached in entries:
                target = ref()
                if target is None:
                    # The exported table was garbage-collected; no
                    # query can still be scanning it (a running query
                    # holds its warehouse's tables alive), so the
                    # segment is safe to hand back to the pool.
                    self.pool.recycle(cached.segment)
                elif target is table:
                    hit = cached
                    live.append((ref, cached))
                else:
                    # A different live table under the same key
                    # (another warehouse): keep both — recycling here
                    # would yank a segment from under that query.
                    live.append((ref, cached))
            entries[:] = live
            if hit is not None:
                return hit
            handle = export_table(table, self.pool)
            entries.append((weakref.ref(table), handle))
            return handle

    def export_transient(self, table: Table) -> TableHandle:
        """Uncached export into a pooled segment; caller releases via
        :meth:`release` (which recycles, not unlinks)."""
        return export_table(table, self.pool)

    def release(self, handle: Optional[TableHandle]) -> None:
        """Recycle a transient handle's segment back into the pool."""
        if handle is not None:
            self.pool.recycle(handle.segment)

    def adopt_result(self, handle: Optional[TableHandle]) -> None:
        """Take ownership of a worker-created result segment."""
        if handle is not None and handle.segment is not None:
            self.registry.adopt(handle.segment)

    def consume(self, handle: Optional[TableHandle]) -> None:
        """Bank a worker-created result segment for reuse.

        The receive pattern: the coordinator attaches the result,
        copies it out (:meth:`AttachedTable.materialize`), then calls
        this — inputs travel zero-copy, results pay one ``memcpy``, and
        their segments join the pool's free list so the next export
        (any query) reuses the pages instead of minting a segment.
        """
        if handle is not None and handle.segment is not None:
            self.pool.bank(handle.segment)

    # ------------------------------------------------------------------
    def run_unordered(self, fn: Callable, payloads: Iterable
                      ) -> Iterator[object]:
        """Yield ``fn(payload)`` results as they complete (any order).

        This is the morsel work queue: every payload is an independent
        task, idle pool workers pull the next pending one, and the
        coordinator consumes results the moment they land — which is
        what lets the shuffle of finished morsels overlap the scan of
        the rest.  A dead worker aborts the batch via
        :class:`ParallelExecutionError` after cleanup.
        """
        executor = self.executor()
        futures = {executor.submit(fn, payload) for payload in payloads}
        try:
            while futures:
                done, futures = wait(futures, return_when=FIRST_COMPLETED)
                for future in done:
                    yield future.result()
        except BrokenProcessPool:
            for future in futures:
                future.cancel()
            self._abort("a pool worker died mid-task")
        except Exception:
            for future in futures:
                future.cancel()
            raise

    def run_all(self, fn: Callable, payloads: Iterable) -> list:
        """All results, in payload order (barrier variant)."""
        executor = self.executor()
        futures = [executor.submit(fn, payload) for payload in payloads]
        try:
            return [future.result() for future in futures]
        except BrokenProcessPool:
            for future in futures:
                future.cancel()
            self._abort("a pool worker died mid-task")

    def _abort(self, reason: str) -> None:
        """Tear down after a worker crash, then raise the typed error."""
        self.shutdown()
        raise ParallelExecutionError(
            f"process-pool backend failed: {reason}; all shared-memory "
            "segments were reclaimed — retry the query (the next parallel "
            "call starts a fresh pool) or switch to the sequential backend"
        )

    # ------------------------------------------------------------------
    def shutdown(self) -> None:
        """Stop the executor and unlink every session segment."""
        if self._executor is not None:
            self._executor.shutdown(wait=False, cancel_futures=True)
            self._executor = None
        self._export_cache.clear()
        self.pool.close()
        self.registry.close_all()


_BACKEND: Optional[ProcessBackend] = None

#: An explicitly-installed backend (the service's shared multi-query
#: pool).  While set, every engine call site resolves to it regardless
#: of the requested worker count — queries must share one pool to share
#: its work queue.
_INSTALLED: Optional[ProcessBackend] = None


def install_backend(backend: Optional[ProcessBackend]
                    ) -> Optional[ProcessBackend]:
    """Route ``get_backend`` to ``backend`` (None uninstalls).

    Returns the previously-installed backend so callers can restore it.
    Installing does not tear anything down: the global lazily-created
    backend (if any) stays alive for when the override is removed.
    """
    global _INSTALLED
    previous = _INSTALLED
    _INSTALLED = backend
    return previous


def installed_backend() -> Optional[ProcessBackend]:
    """The currently-installed override, if any."""
    return _INSTALLED


def get_backend(workers: Optional[int] = None) -> ProcessBackend:
    """The session's shared :class:`ProcessBackend` (created lazily)."""
    global _BACKEND
    if _INSTALLED is not None:
        return _INSTALLED
    if _BACKEND is None:
        _BACKEND = ProcessBackend(workers=workers)
    elif workers is not None and workers != _BACKEND.workers:
        _BACKEND.shutdown()
        _BACKEND = ProcessBackend(workers=workers)
    return _BACKEND


def shutdown_backend() -> None:
    """Tear down the shared backend (tests, CLI exit, resizes)."""
    global _BACKEND
    if _BACKEND is not None:
        _BACKEND.shutdown()
        _BACKEND = None


@atexit.register
def _shutdown_at_exit() -> None:  # pragma: no cover - interpreter exit
    try:
        shutdown_backend()
    except Exception:
        pass
