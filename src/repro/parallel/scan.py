"""Morsel-driven parallel scans with overlapped shuffle partitioning.

The sequential engine scans each simulated worker's blocks in one pass.
Here every block is cut into **morsels** (Leis et al.'s morsel-driven
parallelism) that form one shared work queue over the process pool: an
idle pool worker always pulls the next pending morsel, so a straggling
morsel cannot idle the other cores.

The shuffle overlaps the scan: when the scan feeds a hash shuffle, each
morsel task also partitions its filtered rows by the agreed hash
(destination-sorted rows + per-destination counts come back in one
segment), and the coordinator slices finished morsels into
per-destination buffers while other morsels are still being scanned —
the paper's Fig. 7 read/process/send overlap, executed rather than
modelled.  The resulting outgoing matrix is stashed by the engine and
consumed by the next ``shuffle_by_key`` over the same wire tables, so
shuffle accounting and invariant checks still run unchanged.

Morsel size is **adaptive**: :class:`MorselSizer` (one per backend,
surviving across queries) grows morsels until the pool's measured
per-task dispatch overhead is under 10% of the measured task body
time, and shrinks them when one morsel's body dwarfs the batch mean
(skew eats stealing granularity).  Results are banked: each morsel's
segment joins the backend's :class:`~repro.parallel.shm.SegmentPool`
after its rows are copied out, so steady-state batches reuse segments
instead of minting them.

Determinism: morsel results are keyed by ``(worker slot, block seq,
morsel seq)`` and assembled in that order; because morsels are
contiguous row ranges and the partitioning is stable, per-destination
row order is bit-identical across pool sizes, morsel sizes and runs.
Bloom-filter builds are applied coordinator-side in the same order
(bitwise-OR inserts commute, so the filters are bit-identical to
sequential anyway).
"""

from __future__ import annotations

import math
import pickle
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.bloom import BloomFilter
from repro.edw.partitioner import agreed_hash_partition
from repro.hdfs.filesystem import HdfsFileSystem, HdfsTableMeta
from repro.jen.worker import JenWorker, ScanRequest, ScanStats
from repro.parallel import ParallelUnsupported
from repro.parallel.pool import ProcessBackend
from repro.parallel.shm import AttachedTable, TableHandle
from repro.parallel.tasks import (
    KIND_DB_FILTER,
    KIND_SCAN,
    TaskContext,
    TaskEnv,
    export_bloom,
    make_descriptor,
    publish_context,
    run_task,
)
from repro.relational.expressions import Predicate
from repro.relational.table import Table
from repro.testkit import invariants

#: Baseline rows per morsel — the sizer's floor.  Small enough that a
#: selective scan yields many times more morsels than pool workers
#: (work stealing has slack), large enough that per-task dispatch
#: overhead stays bounded.
DEFAULT_MORSEL_ROWS = 8192


class MorselSizer:
    """Adapts rows-per-morsel to the pool's measured dispatch cost.

    After each batch the sizer knows the measured per-row body cost
    (``Σ body_seconds / Σ rows``) and the pool's per-task dispatch
    overhead (:meth:`ProcessBackend.dispatch_overhead_seconds`); it
    picks the smallest morsel whose body amortises the dispatch to
    under :data:`TARGET_OVERHEAD` of task runtime.  Growth is damped
    (≤4× per batch) and two pressures shrink morsels again:

    * **skew** — when one morsel's body exceeds
      :data:`SKEW_RATIO` × the batch mean, halve (big morsels rob the
      queue of stealing granularity exactly when it matters);
    * **slack** — :meth:`plan` never cuts a batch into fewer than two
      morsels per pool worker when the input allows it.

    Correctness never depends on the chosen size: morsels are
    contiguous row ranges assembled in tag order, so any size yields
    bit-identical results.
    """

    TARGET_OVERHEAD = 0.10
    SKEW_RATIO = 4.0
    GROWTH_CAP = 4

    def __init__(self, min_rows: int = DEFAULT_MORSEL_ROWS,
                 max_rows: int = 64 * DEFAULT_MORSEL_ROWS):
        self.min_rows = min_rows
        self.max_rows = max_rows
        self.morsel_rows = min_rows
        self.per_row_seconds: Optional[float] = None

    def plan(self, total_rows: int, workers: int) -> int:
        """Rows per morsel for the next batch of ``total_rows``."""
        rows = self.morsel_rows
        if workers > 0:
            slack = math.ceil(total_rows / (2 * workers))
            if slack >= self.min_rows:
                rows = min(rows, slack)
        return max(1, rows)

    def observe(self, body_seconds: Sequence[float],
                rows_done: Sequence[int],
                overhead_seconds: float) -> None:
        """Update the target size from one finished batch."""
        total_rows = sum(rows_done)
        total_body = sum(body_seconds)
        if total_rows <= 0 or not body_seconds:
            return
        per_row = total_body / total_rows
        if self.per_row_seconds is not None:
            per_row = 0.5 * (per_row + self.per_row_seconds)
        self.per_row_seconds = per_row
        if per_row <= 0:
            target = self.max_rows
        else:
            # body >= (1 - t)/t x overhead  =>  overhead <= t of task.
            target = int(
                overhead_seconds * (1.0 - self.TARGET_OVERHEAD)
                / (self.TARGET_OVERHEAD * per_row)
            ) + 1
        target = min(target, self.GROWTH_CAP * self.morsel_rows)
        target = max(self.min_rows, min(self.max_rows, target))
        if len(body_seconds) >= 2:
            mean = total_body / len(body_seconds)
            if mean > 0 and max(body_seconds) > self.SKEW_RATIO * mean:
                target = max(self.min_rows,
                             min(target, self.morsel_rows // 2))
        self.morsel_rows = target


def ensure_picklable(payload, what: str) -> None:
    """Raise :class:`ParallelUnsupported` if ``payload`` cannot cross.

    SQL-registered scalar UDFs are closures, which cannot be pickled to
    a pool worker; such queries silently stay on the sequential path.
    """
    try:
        pickle.dumps(payload)
    except Exception as exc:
        raise ParallelUnsupported(
            f"{what} is not picklable ({exc!r})"
        ) from None


def morsel_ranges(num_rows: int,
                  morsel_rows: int) -> List[Tuple[int, int]]:
    """Fixed-row ``[start, stop)`` cuts covering ``num_rows``."""
    return [
        (start, min(start + morsel_rows, num_rows))
        for start in range(0, num_rows, morsel_rows)
    ]


def task_env(backend: ProcessBackend) -> TaskEnv:
    """The coordinator settings every task of this batch replays."""
    from repro.kernels import kernels_enabled
    from repro.latemat import late_materialization_enabled

    return TaskEnv(kernels=kernels_enabled(),
                   prefix=backend.registry.prefix,
                   late_materialization=late_materialization_enabled())


@dataclass
class ParallelScanOutcome:
    """What a parallel distributed scan hands back to the engine."""

    wire_tables: List[Table]
    stats: ScanStats
    local_blooms: Optional[List[BloomFilter]]
    #: ``outgoing[sender][destination]`` — the already-partitioned
    #: shuffle matrix (present when partitioning was fused), for the
    #: engine to stash until ``shuffle_by_key`` consumes it.
    outgoing: Optional[List[List[Table]]]
    #: The shuffle key the fused partitioning used.
    shuffle_key: Optional[str]


def parallel_distributed_scan(
    filesystem: HdfsFileSystem,
    workers: Sequence[JenWorker],
    assignment,
    meta: HdfsTableMeta,
    request: ScanRequest,
    db_bloom: Optional[BloomFilter],
    build_local_blooms: bool,
    bloom_bits: int,
    bloom_hashes: int,
    bloom_seed: int,
    backend: ProcessBackend,
    morsel_rows: Optional[int] = None,
) -> ParallelScanOutcome:
    """Run one distributed scan as a morsel queue on the process pool.

    ``morsel_rows`` pins the morsel size (tests); by default the
    backend's :class:`MorselSizer` picks it and learns from the batch.
    Raises :class:`ParallelUnsupported` when the request cannot cross
    the process boundary; the engine falls back to the sequential scan.
    """
    ensure_picklable(request, "scan request")
    num_workers = len(workers)
    # Fuse the shuffle partitioning into the morsels whenever the wire
    # rows still carry the join key (every repartition/zigzag scan).
    fuse = (request.join_key is not None
            and request.join_key in request.wire_columns)
    if build_local_blooms and not fuse:
        # The local BF_H build needs the surviving join keys; without
        # the key on the wire the coordinator cannot reconstruct them.
        raise ParallelUnsupported(
            "local Bloom build without the join key on the wire"
        )

    scan_row_bytes = meta.storage_format().scan_bytes_per_row(
        meta.schema, list(request.projection)
    )
    stats = ScanStats()
    env = task_env(backend)

    # Export every block first (cached across queries) so the batch's
    # total row count is known before the morsel size is chosen.
    block_handles: List[TableHandle] = []
    block_info: List[Tuple[int, int, int, int]] = []
    total_rows = 0
    for slot, worker in enumerate(workers):
        blocks = list(assignment.blocks_for(worker.worker_id))
        for block_seq, block in enumerate(blocks):
            local = (
                worker.worker_id < len(filesystem.datanodes)
                and filesystem.datanodes[worker.worker_id]
                .has_replica(block.block_id)
            )
            if local:
                stats.local_blocks += 1
            else:
                stats.remote_blocks += 1
            # Export the first replica's rows (replicas are
            # identical); the segment is cached across queries.
            rows = filesystem.datanodes[block.replicas[0]] \
                .read_block(block)
            handle = backend.export_cached(
                ("block", block.block_id), rows
            )
            block_info.append(
                (slot, block_seq, len(block_handles), block.num_rows))
            block_handles.append(handle)
            total_rows += block.num_rows

    adaptive = morsel_rows is None
    if adaptive:
        overhead = backend.dispatch_overhead_seconds()
        effective_rows = backend.sizer.plan(total_rows, backend.workers)
    else:
        overhead = 0.0
        effective_rows = morsel_rows

    bloom_handle = None
    context_ref = None
    bodies: List[float] = []
    rows_done: List[int] = []
    # tag -> (materialised wire, per-destination slices).  Receive in
    # completion order: the materialise + partition slicing of finished
    # morsels overlaps the scanning of the rest.
    morsels: Dict[Tuple[int, int, int],
                  Tuple[Table, Optional[List[Table]]]] = {}
    try:
        if block_info:
            if db_bloom is not None:
                bloom_handle = export_bloom(db_bloom, backend.pool)
            context_ref = publish_context(TaskContext(
                env=env,
                blocks=tuple(block_handles),
                request=request,
                db_bloom=bloom_handle,
                num_partitions=num_workers if fuse else None,
            ), backend)
            descriptors = [
                make_descriptor(
                    KIND_SCAN, context_ref,
                    tag=(slot, block_seq, morsel_seq),
                    index=index, row_start=start, row_stop=stop,
                )
                for slot, block_seq, index, num_rows in block_info
                for morsel_seq, (start, stop) in enumerate(
                    morsel_ranges(num_rows, effective_rows))
            ]
            for result in backend.run_unordered(run_task, descriptors):
                with AttachedTable(result.handle) as attached:
                    wire = attached.materialize()
                backend.consume(result.handle)
                dest_slices: Optional[List[Table]] = None
                if result.counts is not None:
                    dest_slices = []
                    offset = 0
                    for count in result.counts:
                        dest_slices.append(
                            wire.slice(offset, offset + count))
                        offset += count
                morsels[result.tag] = (wire, dest_slices)
                bodies.append(result.body_seconds)
                rows_done.append(result.rows_scanned)
                stats.rows_scanned += result.rows_scanned
                stats.stored_bytes_scanned += (
                    result.rows_scanned * scan_row_bytes
                )
                stats.rows_after_predicates += result.rows_after_predicates
                stats.rows_after_bloom += result.rows_after_bloom
    finally:
        if context_ref is not None:
            backend.close_context(context_ref)
        if bloom_handle is not None:
            backend.pool.recycle(bloom_handle.segment)
    if adaptive and bodies:
        backend.sizer.observe(bodies, rows_done, overhead)

    # Deterministic assembly: (block seq, morsel seq) order per slot.
    blooms = (
        [BloomFilter(bloom_bits, bloom_hashes, seed=bloom_seed)
         for _ in workers]
        if build_local_blooms else None
    )
    wire_tables: List[Table] = []
    outgoing: Optional[List[List[Table]]] = [] if fuse else None
    empty_wire: Optional[Table] = None
    for slot, worker in enumerate(workers):
        ordered = sorted(tag for tag in morsels if tag[0] == slot)
        if not ordered:
            # No blocks assigned: the sequential empty-wire pipeline.
            if empty_wire is None:
                sample = filesystem.table_blocks(meta.name)[0]
                empty = filesystem.read_block(sample).slice(0, 0)
                empty = empty.project(list(request.projection))
                empty = request.apply_derivations(empty)
                empty_wire = empty.project(list(request.wire_columns))
            wire_tables.append(empty_wire)
            if outgoing is not None:
                outgoing.append(
                    [empty_wire.slice(0, 0)] * num_workers
                )
            continue
        wire = Table.concat([morsels[tag][0] for tag in ordered])
        wire_tables.append(wire)
        if blooms is not None:
            blooms[slot].add(wire.column(request.join_key))
        if outgoing is not None:
            parts = [
                Table.concat([
                    morsels[tag][1][destination] for tag in ordered
                ])
                for destination in range(num_workers)
            ]
            if invariants.checking_enabled():
                invariants.check_hash_partition(
                    wire, request.join_key, parts, num_workers,
                    agreed_hash_partition,
                )
            outgoing.append(parts)

    return ParallelScanOutcome(
        wire_tables=wire_tables,
        stats=stats,
        local_blooms=blooms,
        outgoing=outgoing,
        shuffle_key=request.join_key if fuse else None,
    )


def parallel_db_filter(
    workers,
    table_name: str,
    predicate: Predicate,
    projection: Sequence[str],
    backend: ProcessBackend,
) -> List[Table]:
    """Fan one ``filter_project`` over the pool, one task per partition.

    Returns the per-worker result tables in worker order; the caller
    (:meth:`repro.edw.database.ParallelDatabase.filter_project`) builds
    the access stats from the partitions it already holds.
    """
    ensure_picklable((predicate, tuple(projection)), "database scan")
    env = task_env(backend)
    handles: List[TableHandle] = []
    for worker in workers:
        partition = worker.partition(table_name)
        handles.append(backend.export_cached(
            ("dbpart", table_name, worker.worker_id), partition
        ))
    parts: List[Optional[Table]] = [None] * len(handles)
    context_ref = publish_context(TaskContext(
        env=env,
        blocks=tuple(handles),
        predicate=predicate,
        projection=tuple(projection),
    ), backend)
    try:
        descriptors = [
            make_descriptor(KIND_DB_FILTER, context_ref, index=index)
            for index in range(len(handles))
        ]
        for result in backend.run_unordered(run_task, descriptors):
            with AttachedTable(result.handle) as attached:
                parts[result.tag] = attached.materialize()
            backend.consume(result.handle)
    finally:
        backend.close_context(context_ref)
    return parts
