"""Parallel local joins, partial aggregation, and the parallel oracle.

:func:`parallel_join_and_aggregate` fans the engine's per-worker local
join + partial-aggregate loop over the process pool, one task per
simulated worker slot.  Each slot runs exactly the sequential body
(spill planning, Grace-hash fragmenting, sorted build index, probe,
partial aggregate), so accounting and results are identical; only the
slots execute concurrently.

:func:`parallel_reference_aggregate` is the same idea applied to the
single-node reference executor: both sides are hash-partitioned by the
join key, the partition joins + partial aggregates run on the pool, and
the partials merge — semantically identical to joining whole tables
because the equi-join only matches rows within a hash partition and the
aggregate layer is built to merge partials.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.edw.partitioner import agreed_hash_partition
from repro.jen.exchange import final_aggregate
from repro.kernels.partition import partition_table
from repro.parallel.pool import ProcessBackend
from repro.parallel.shm import AttachedTable, TableHandle
from repro.parallel.tasks import (
    KIND_JOIN,
    KIND_STITCH,
    TaskContext,
    make_descriptor,
    publish_context,
    run_task,
)
from repro.relational.table import Table
from repro.query.plan import merge_partials, partial_tables_nonempty
from repro.query.query import HybridQuery


def _run_slots(
    pairs: List[Tuple[Table, Table]],
    query: HybridQuery,
    memory_budget_rows: float,
    backend: ProcessBackend,
) -> List[Tuple[Table, "JoinSlotResultNumbers"]]:
    """Fan (build, probe) pairs over the pool; results in slot order."""
    from repro.parallel.scan import ensure_picklable, task_env

    ensure_picklable(query, "query plan")
    env = task_env(backend)
    transient: List[TableHandle] = []
    context_ref = None
    try:
        # (build, probe) handles interleaved: slot s reads 2s / 2s + 1.
        for l_part, t_part in pairs:
            transient.append(backend.export_transient(l_part))
            transient.append(backend.export_transient(t_part))
        context_ref = publish_context(TaskContext(
            env=env,
            blocks=tuple(transient),
            query=query,
            memory_budget_rows=memory_budget_rows,
        ), backend)
        descriptors = [
            make_descriptor(KIND_JOIN, context_ref, index=slot)
            for slot in range(len(pairs))
        ]
        results: List[Optional[Tuple[Table, object]]] = \
            [None] * len(pairs)
        for result in backend.run_unordered(run_task, descriptors):
            with AttachedTable(result.handle) as attached:
                partial = attached.materialize()
            backend.consume(result.handle)
            results[result.tag] = (partial, result)
        return results
    finally:
        if context_ref is not None:
            backend.close_context(context_ref)
        for handle in transient:
            backend.release(handle)


def parallel_join_and_aggregate(
    l_parts: List[Table],
    t_parts: List[Table],
    query: HybridQuery,
    memory_budget_rows: float,
    backend: ProcessBackend,
) -> Tuple[Table, "LocalJoinStats"]:
    """The engine's join stage, one pool task per worker slot.

    Raises :class:`~repro.parallel.ParallelUnsupported` when the query
    cannot cross the process boundary; the engine falls back.
    """
    from repro.jen.engine import LocalJoinStats

    slot_results = _run_slots(
        list(zip(l_parts, t_parts)), query, memory_budget_rows, backend
    )
    stats = LocalJoinStats()
    partials: List[Table] = []
    for partial, numbers in slot_results:
        stats.build_tuples += numbers.build_tuples
        stats.probe_tuples += numbers.probe_tuples
        stats.join_output_tuples += numbers.join_output_tuples
        stats.spilled_tuples += numbers.spilled_tuples
        stats.max_fragments = max(stats.max_fragments,
                                  numbers.num_fragments)
        partials.append(partial)
    result = final_aggregate(partials, query)
    stats.result_rows = result.num_rows
    return result, stats


def parallel_stitch(
    payload_table: Table,
    rowid_batches: List,
    backend: ProcessBackend,
) -> List[Table]:
    """Late-materialization payload gathers, one pool task per slot.

    The payload store's concatenated table is exported into a pooled
    shared-memory segment **once**; each slot's surviving row ids cross
    the boundary wire-codec-encoded (varint/delta — the same format the
    trace's ``payload_fetch`` phase prices) and the workers gather
    their rows straight from the shared segment.  Results come back in
    slot order.

    Raises :class:`~repro.parallel.ParallelUnsupported` when the
    payload cannot cross the process boundary; the stitch falls back
    to coordinator-side gathers.
    """
    from repro.kernels.wirecodec import encode_rowids
    from repro.parallel.scan import task_env

    env = task_env(backend)
    payload_handle = None
    context_ref = None
    try:
        payload_handle = backend.export_transient(payload_table)
        encoded = tuple(
            encode_rowids(batch) for batch in rowid_batches
        )
        context_ref = publish_context(TaskContext(
            env=env,
            blocks=(payload_handle,),
            rowid_batches=encoded,
        ), backend)
        descriptors = [
            make_descriptor(KIND_STITCH, context_ref, index=slot)
            for slot in range(len(rowid_batches))
        ]
        results: List[Optional[Table]] = [None] * len(rowid_batches)
        for result in backend.run_unordered(run_task, descriptors):
            with AttachedTable(result.handle) as attached:
                fetched = attached.materialize()
            backend.consume(result.handle)
            results[result.tag] = fetched
        return results
    finally:
        if context_ref is not None:
            backend.close_context(context_ref)
        if payload_handle is not None:
            backend.release(payload_handle)


def parallel_reference_aggregate(
    t_table: Table,
    l_table: Table,
    query: HybridQuery,
    backend: ProcessBackend,
) -> Table:
    """Morsel-parallel join + partial aggregation for the reference
    executor: hash-partition both (already filtered/projected) sides,
    join each partition pair on the pool, merge the partials."""
    parts = backend.workers
    if parts <= 1:
        from repro.parallel import ParallelUnsupported

        raise ParallelUnsupported("single-worker pool")
    l_assignments = agreed_hash_partition(
        l_table.column(query.hdfs_join_key), parts
    )
    l_parts = partition_table(l_table, l_assignments, parts)
    t_assignments = agreed_hash_partition(
        t_table.column(query.db_join_key), parts
    )
    t_parts = partition_table(t_table, t_assignments, parts)
    slot_results = _run_slots(
        list(zip(l_parts, t_parts)), query, 0.0, backend
    )
    partials = [partial for partial, _numbers in slot_results]
    return merge_partials(partial_tables_nonempty(partials), query)
