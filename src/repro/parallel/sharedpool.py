"""One process pool serving many concurrent queries.

:class:`SharedProcessPool` is a :class:`~repro.parallel.pool
.ProcessBackend` whose work queue is shared across query streams: every
``run_unordered`` / ``run_all`` batch — from any thread — lands its
tasks in one pending list, and a dispatcher fills the pool's worker
slots from that list.  Morsels, not queries, are the scheduling unit,
which is what buys the two properties the single-query backend cannot
have:

* **cross-query work stealing** — when stream A's batch drains below
  the worker count, the freed slots immediately pull stream B's
  morsels; no query can idle the pool while another has pending work;
* **fair sharing** — the slot-fill order reuses the service plane's
  :class:`~repro.service.scheduler.FairSharePolicy` (highest priority
  first, then the tenant with the fewest tasks in flight, then FIFO),
  keyed by the submitting thread's :func:`repro.parallel.task_origin`.

Crash containment is *per stream*, not per pool: a dead worker fails
every in-flight future with :class:`BrokenProcessPool`, so affected
tasks are retried (bounded per task) on a rebuilt executor and only a
task that keeps killing workers fails — and it fails only its own
stream.  The registry is never torn down while other streams hold live
segments; orphan reclamation (:meth:`ShmRegistry.sweep`) is deferred
until the pool goes idle.

Scheduling decisions are observable through
:func:`repro.parallel.record_pool_event`: ``contention`` (a task waited
because all slots were busy), ``cross_stream_dispatch`` (a slot freed
by one stream was given to another), ``worker_crash_retry`` and
``executor_rebuild``.
"""

from __future__ import annotations

import queue
import threading
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, Iterator, List, Optional

from repro.errors import ParallelExecutionError
from repro.parallel.pool import ProcessBackend
from repro.parallel.shm import SegmentPool


@dataclass
class _Stream:
    """One submitted batch (one ``run_unordered``/``run_all`` call)."""

    tenant: str
    label: str
    priority: int
    total: int
    #: ``("result", index, value)`` or ``("error", index, exc)``.
    results: "queue.Queue" = field(default_factory=queue.Queue)
    delivered: int = 0
    failed: bool = False
    cancelled: bool = False


@dataclass
class _PendingTask:
    """One task waiting for a pool slot."""

    stream: _Stream
    fn: Callable
    payload: object
    index: int
    seq: int
    attempts: int = 0
    #: Set when the task ever waited behind a full pool (contention).
    waited: bool = False
    #: The executor this task was last submitted to — a breakage only
    #: tears down the executor that actually broke, never a rebuilt one.
    executor: object = None

    # FairSharePolicy reads .priority / .tenant / .seq off the pending
    # items; expose the stream's identity.
    @property
    def priority(self) -> int:
        return self.stream.priority

    @property
    def tenant(self) -> str:
        return self.stream.tenant


class SharedProcessPool(ProcessBackend):
    """A multi-query :class:`ProcessBackend` with one shared work queue.

    Thread-safe: any number of query threads may run parallel batches
    concurrently; the segment pool, registry and export cache are
    shared (so one tenant's cached block exports warm every tenant).
    """

    #: Attempts per task across executor rebuilds.  A worker crash
    #: fails *every* in-flight future, so innocent tasks of other
    #: streams need headroom to survive a neighbour's repeated crashes.
    MAX_ATTEMPTS = 3

    def __init__(self, workers: Optional[int] = None,
                 max_pool_bytes: int = SegmentPool.DEFAULT_MAX_BYTES):
        super().__init__(workers=workers, max_pool_bytes=max_pool_bytes)
        from repro.service.scheduler import FairSharePolicy

        self._queue_lock = threading.RLock()
        self._policy = FairSharePolicy()
        self._pending: List[_PendingTask] = []
        self._in_flight: Dict[str, int] = {}
        self._slots_busy = 0
        self._task_seq = 0
        self._active_streams = 0
        self._last_stream: Optional[_Stream] = None
        self._sweep_pending = False

    # -- submission ----------------------------------------------------
    def _submit_batch(self, fn: Callable, payloads: List[object]
                      ) -> _Stream:
        from repro.parallel import current_origin

        tenant, label, priority = current_origin()
        stream = _Stream(tenant=tenant, label=label, priority=priority,
                         total=len(payloads))
        if not payloads:
            return stream
        with self._queue_lock:
            self._active_streams += 1
            for index, payload in enumerate(payloads):
                self._task_seq += 1
                self._pending.append(_PendingTask(
                    stream=stream, fn=fn, payload=payload,
                    index=index, seq=self._task_seq,
                ))
            self._dispatch_locked()
        return stream

    def _dispatch_locked(self) -> None:
        """Fill free worker slots from the pending list (lock held)."""
        from repro import parallel

        while self._pending and self._slots_busy < self.workers:
            choice = self._policy.select(self._pending, self._in_flight)
            if choice is None:  # pragma: no cover - pending is non-empty
                return
            task = self._pending.pop(choice)
            if task.stream.cancelled or task.stream.failed:
                self._account_dropped_locked(task)
                continue
            if task.waited:
                parallel.record_pool_event(
                    "contention",
                    f"{task.stream.tenant}:{task.stream.label}")
            if (self._last_stream is not None
                    and task.stream is not self._last_stream):
                parallel.record_pool_event(
                    "cross_stream_dispatch",
                    f"{self._last_stream.tenant}->{task.stream.tenant}")
            self._last_stream = task.stream
            task.attempts += 1
            self._slots_busy += 1
            self._in_flight[task.tenant] = \
                self._in_flight.get(task.tenant, 0) + 1
            task.executor = self.executor()
            future = task.executor.submit(task.fn, task.payload)
            future.add_done_callback(
                lambda f, task=task: self._task_done(task, f))
        for task in self._pending:
            task.waited = True

    def _account_dropped_locked(self, task: _PendingTask) -> None:
        """A cancelled/failed stream's pending task will never run."""
        stream = task.stream
        stream.delivered += 1
        stream.results.put(("dropped", task.index, None))
        if stream.delivered >= stream.total:
            self._stream_drained_locked(stream)

    def _stream_drained_locked(self, stream: _Stream) -> None:
        self._active_streams -= 1
        if self._last_stream is stream:
            self._last_stream = None
        self._maybe_sweep_locked()

    def _maybe_sweep_locked(self) -> None:
        """Deferred orphan reclamation, only when the pool is idle.

        Sweeping while any stream runs could unlink a result segment a
        live worker just created but not yet reported; once idle, every
        unreported leftover really is an orphan of a dead worker.
        """
        if (self._sweep_pending and self._active_streams == 0
                and self._slots_busy == 0):
            self._sweep_pending = False
            self.registry.sweep()

    # -- completion (executor callback thread) -------------------------
    def _task_done(self, task: _PendingTask, future) -> None:
        stream = task.stream
        with self._queue_lock:
            self._slots_busy -= 1
            count = self._in_flight.get(task.tenant, 1) - 1
            if count > 0:
                self._in_flight[task.tenant] = count
            else:
                self._in_flight.pop(task.tenant, None)
            error: Optional[BaseException] = None
            if future.cancelled():
                error = ParallelExecutionError("task cancelled")
            else:
                error = future.exception()
            if isinstance(error, BrokenProcessPool):
                self._handle_breakage_locked(task)
                return
            stream.delivered += 1
            if error is not None:
                stream.failed = True
                stream.results.put(("error", task.index, error))
            elif stream.cancelled or stream.failed:
                stream.results.put(("dropped", task.index, None))
            else:
                stream.results.put(
                    ("result", task.index, future.result()))
            if stream.delivered >= stream.total:
                self._stream_drained_locked(stream)
            self._dispatch_locked()

    def _handle_breakage_locked(self, task: _PendingTask) -> None:
        """A worker died under ``task`` (or a neighbour's task)."""
        from repro import parallel

        if self._executor is not None and self._executor is task.executor:
            # Only the executor that actually broke is torn down: late
            # breakage callbacks from the same crash must not kill the
            # already-rebuilt pool other streams are running on.
            self._executor.shutdown(wait=False, cancel_futures=True)
            self._executor = None
            self._sweep_pending = True
            parallel.record_pool_event(
                "executor_rebuild",
                f"after crash under {task.stream.tenant}")
        stream = task.stream
        if task.attempts < self.MAX_ATTEMPTS and not (
                stream.cancelled or stream.failed):
            parallel.record_pool_event(
                "worker_crash_retry",
                f"{stream.tenant}:{stream.label} "
                f"attempt {task.attempts + 1}")
            self._pending.append(task)
        else:
            stream.delivered += 1
            stream.failed = True
            stream.results.put(("error", task.index, ParallelExecutionError(
                f"shared-pool task for stream "
                f"{stream.tenant}:{stream.label} crashed the worker "
                f"{task.attempts} times; giving up on this stream (other "
                "streams continue on a rebuilt pool)"
            )))
            if stream.delivered >= stream.total:
                self._stream_drained_locked(stream)
        self._maybe_sweep_locked()
        self._dispatch_locked()

    # -- consumption ---------------------------------------------------
    def _finish_stream(self, stream: _Stream) -> None:
        """Abandon a stream (consumer exited early or errored)."""
        with self._queue_lock:
            if stream.delivered >= stream.total:
                return  # fully drained; already accounted
            stream.cancelled = True
            # Pending tasks are dropped at dispatch; in-flight ones
            # complete into the abandoned queue and are accounted by
            # the done-callback.

    def run_unordered(self, fn: Callable, payloads: Iterable
                      ) -> Iterator[object]:
        """Yield results as they complete, from the *shared* queue."""
        stream = self._submit_batch(fn, list(payloads))
        drained = False
        try:
            for _ in range(stream.total):
                kind, _index, value = stream.results.get()
                if kind != "result":
                    raise value if isinstance(value, BaseException) \
                        else ParallelExecutionError(
                            "shared-pool task was dropped")
                yield value
            drained = True
        finally:
            if not drained:
                self._finish_stream(stream)

    def run_all(self, fn: Callable, payloads: Iterable) -> list:
        """All results in payload order, from the shared queue."""
        stream = self._submit_batch(fn, list(payloads))
        results: List[object] = [None] * stream.total
        error: Optional[BaseException] = None
        for _ in range(stream.total):
            kind, index, value = stream.results.get()
            if kind == "error" and error is None:
                error = value
                self._finish_stream(stream)
            elif kind == "result":
                results[index] = value
        if error is not None:
            raise error
        return results

    def dispatch_overhead_seconds(self, tasks: int = 12) -> float:
        """Per-task overhead measured through the shared queue itself.

        Deliberately not computed under ``_state_lock``: the probe runs
        a real batch (which takes ``_queue_lock``), and the two locks
        must never nest in both orders.  A concurrent double probe is
        harmless — both measure the same figure and one write wins.
        """
        if self._dispatch_overhead is None:
            import time

            from repro.parallel.tasks import (
                KIND_NOOP,
                make_descriptor,
                run_task,
            )

            descriptors = [make_descriptor(KIND_NOOP, None, index=i)
                           for i in range(max(4, tasks))]
            self.run_all(run_task, descriptors[:2])  # warm the pool
            started = time.perf_counter()
            self.run_all(run_task, descriptors)
            elapsed = time.perf_counter() - started
            self._dispatch_overhead = elapsed / len(descriptors)
        return self._dispatch_overhead

    # -- lifecycle -----------------------------------------------------
    def stats_snapshot(self) -> Dict[str, int]:
        """Queue/pool counters for metrics scraping."""
        with self._queue_lock:
            snapshot = {
                "pending": len(self._pending),
                "slots_busy": self._slots_busy,
                "active_streams": self._active_streams,
            }
        snapshot.update(self.pool.stats)
        return snapshot

    def shutdown(self) -> None:
        with self._queue_lock:
            for task in self._pending:
                task.stream.cancelled = True
            self._pending.clear()
            self._in_flight.clear()
            self._slots_busy = 0
            self._active_streams = 0
            self._sweep_pending = False
        super().shutdown()
