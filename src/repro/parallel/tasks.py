"""Fixed-layout task descriptors and their worker-side bodies.

The first version of this backend pickled a full payload dataclass per
morsel — schema, scan request, Bloom handle, table handle — so dispatch
cost grew with plan complexity and was paid for every one of hundreds
of morsels.  This version splits a batch into two parts:

* a :class:`TaskContext` — everything constant across the batch (env,
  request/query, Bloom handle, the tuple of input table handles) —
  pickled **once** and published into a pooled shared-memory segment
  (:func:`publish_context`);
* per-task **descriptors**: 97-byte fixed-layout structs
  (:data:`_DESCRIPTOR`) carrying only primitives — a body kind, a tag,
  an index into the context's handle tuple, a row range, and the
  context segment's name.  No pickle of engine objects ever crosses
  per task.

Worker side, :func:`run_task` is the single entry point: it unpacks
the struct, resolves the context (attached, unpickled and cached under
its unique sequence number, so segment reuse can never alias a stale
context), and dispatches to the engine body registered for the kind in
:data:`_TASK_BODIES` — bodies are resolved *in the worker* from the
registry, not shipped as callables.

The bodies deliberately contain no pipeline logic of their own — they
call the same :meth:`repro.jen.worker.JenWorker.process_rows` /
:meth:`repro.edw.worker.DbWorker.filter_rows` / join-plan functions the
sequential backend runs, so the two backends execute byte-for-byte the
same engine code on each batch.  Each result carries ``body_seconds``
(the measured in-worker runtime) so the coordinator's
:class:`~repro.parallel.scan.MorselSizer` can grow morsels until
dispatch overhead is amortised.

Every body first applies :class:`TaskEnv`: the coordinator's kernels
toggle is replayed (the long-lived pool may have been forked under a
different setting), and testkit invariant hooks are forced **off** —
invariants are checked once, coordinator-side, on the assembled
results; a forked worker inheriting an armed ``checking()`` flag would
otherwise assert against shadow state that only exists in the parent.
"""

from __future__ import annotations

import os
import pickle
import struct
import time
from collections import OrderedDict
from dataclasses import dataclass
from multiprocessing import shared_memory
from typing import Callable, Dict, Optional, Tuple

import numpy as np

from repro.core.bloom import BloomFilter
from repro.edw.partitioner import agreed_hash_partition
from repro.edw.worker import DbWorker
from repro.errors import ShmError
from repro.jen.worker import JenWorker, ScanRequest
from repro.kernels.partition import partition_table
from repro.parallel.shm import (
    AttachedTable,
    TableHandle,
    export_table,
    open_segment,
)
from repro.relational.expressions import Predicate
from repro.relational.table import Table
from repro.query.query import HybridQuery


@dataclass(frozen=True)
class TaskEnv:
    """Coordinator settings a task body must replay in the worker."""

    kernels: bool
    #: The coordinator's session prefix; result segments are named
    #: under it so a post-crash sweep can find them.
    prefix: str
    #: The coordinator's late-materialization toggle (the long-lived
    #: pool may have been forked under a different setting).
    late_materialization: bool = False


def _enter_task_env(env: TaskEnv) -> None:
    """Apply the coordinator's toggles inside the pool worker."""
    from repro import kernels, latemat
    from repro.testkit import invariants

    kernels.set_kernels_enabled(env.kernels)
    latemat.set_late_materialization_enabled(env.late_materialization)
    # Invariant hooks run coordinator-side on the assembled results;
    # the worker must not assert against forked shadow state.
    invariants._CHECKING = False


class _ResultAllocator:
    """Segment factory for worker-created result tables.

    Names carry the coordinator's session prefix plus this worker's PID
    (so concurrent pool workers cannot collide) and are disowned at
    creation: the coordinator banks each segment into its
    :class:`~repro.parallel.shm.SegmentPool` when the result arrives,
    and its sweep reclaims any whose name died with a crashing worker.
    Implements the ``create``/``detach`` protocol of
    :func:`repro.parallel.shm.export_table`.
    """

    def __init__(self, prefix: str):
        self.prefix = prefix
        self._counter = 0

    def create(self, nbytes: int) -> shared_memory.SharedMemory:
        self._counter += 1
        segment = open_segment(
            f"{self.prefix}w{os.getpid()}r{self._counter}",
            create=True, size=max(1, nbytes),
        )
        return segment

    def detach(self, segment: shared_memory.SharedMemory) -> None:
        segment.close()


#: One allocator per (worker process, session prefix).
_ALLOCATORS: Dict[str, _ResultAllocator] = {}


def _result_allocator(prefix: str) -> _ResultAllocator:
    allocator = _ALLOCATORS.get(prefix)
    if allocator is None:
        allocator = _ResultAllocator(prefix)
        _ALLOCATORS[prefix] = allocator
    return allocator


# ----------------------------------------------------------------------
# Bloom filters over the boundary
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class BloomHandle:
    """A Bloom filter whose word array lives in shared memory."""

    num_bits: int
    num_hashes: int
    seed: int
    num_added: int
    segment: str
    num_words: int


def export_bloom(bloom: BloomFilter, registry) -> BloomHandle:
    """Copy the filter's words into a registry/pool-owned segment."""
    segment = registry.create(bloom._words.nbytes)
    view = np.ndarray(bloom._words.shape, dtype=np.uint64,
                      buffer=segment.buf)
    view[...] = bloom._words
    name = segment.name
    registry.detach(segment)
    return BloomHandle(
        num_bits=bloom.num_bits,
        num_hashes=bloom.num_hashes,
        seed=bloom.seed,
        num_added=bloom.num_added,
        segment=name,
        num_words=len(bloom._words),
    )


class AttachedBloom:
    """Read-only view of an exported Bloom filter (probe-side use)."""

    def __init__(self, handle: BloomHandle):
        self._segment = open_segment(handle.segment)
        self.bloom = BloomFilter(
            handle.num_bits, handle.num_hashes, handle.seed
        )
        self.bloom._words = np.ndarray(
            (handle.num_words,), dtype=np.uint64, buffer=self._segment.buf
        )
        self.bloom._num_added = handle.num_added

    def __enter__(self) -> BloomFilter:
        return self.bloom

    def __exit__(self, *_exc) -> None:
        self._segment.close()


# ----------------------------------------------------------------------
# Batch contexts: the pickled-once part of a task batch
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class TaskContext:
    """Everything constant across one batch of tasks.

    Only the fields a batch's kind actually uses are populated; the
    whole object is pickled once into a pooled segment and resolved
    worker-side by sequence number.
    """

    env: TaskEnv
    #: Input tables, referenced by descriptors via their index.  Join
    #: batches interleave (build, probe) pairs: slot ``s`` reads
    #: ``blocks[2s]`` / ``blocks[2s + 1]``.
    blocks: Tuple[TableHandle, ...] = ()
    request: Optional[ScanRequest] = None
    db_bloom: Optional[BloomHandle] = None
    num_partitions: Optional[int] = None
    query: Optional[HybridQuery] = None
    memory_budget_rows: float = 0.0
    predicate: Optional[Predicate] = None
    projection: Tuple[str, ...] = ()
    #: Wire-codec-encoded surviving row ids, one batch per stitch task
    #: (:func:`repro.kernels.wirecodec.encode_rowids` output).
    rowid_batches: Tuple[bytes, ...] = ()


@dataclass(frozen=True)
class ContextRef:
    """Coordinator-side record of one published context."""

    seq: int
    segment: str
    nbytes: int


def publish_context(ctx: TaskContext, backend) -> ContextRef:
    """Pickle ``ctx`` once into a pooled segment; returns its ref.

    The caller recycles the segment via ``backend.close_context`` when
    the batch is done.  ``seq`` is globally unique per backend, so a
    recycled segment carrying a *new* context can never be confused
    with a cached stale one in the workers.
    """
    payload = pickle.dumps(ctx, protocol=pickle.HIGHEST_PROTOCOL)
    segment = backend.pool.acquire(len(payload))
    segment.buf[:len(payload)] = payload
    return ContextRef(
        seq=backend.next_context_seq(),
        segment=segment.name,
        nbytes=len(payload),
    )


# ----------------------------------------------------------------------
# Descriptors: the fixed-layout per-task header
# ----------------------------------------------------------------------
#: kind u8 | tag 3×i32 | index i32 | row_start i64 | row_stop i64 |
#: ctx_seq u32 | ctx_nbytes u32 | ctx segment name 56 bytes (padded).
_DESCRIPTOR = struct.Struct("<B3iiqqII56s")

KIND_SCAN = 1
KIND_JOIN = 2
KIND_DB_FILTER = 3
KIND_NOOP = 4
KIND_STITCH = 5


def make_descriptor(kind: int, ctx: Optional[ContextRef],
                    tag: Tuple[int, int, int] = (0, 0, 0),
                    index: int = 0, row_start: int = 0,
                    row_stop: int = 0) -> bytes:
    """Pack one task header; the only thing pickled per task."""
    segment = b"" if ctx is None else ctx.segment.encode("ascii")
    if len(segment) > 56:
        raise ShmError(f"segment name too long for descriptor: {segment!r}")
    return _DESCRIPTOR.pack(
        kind, tag[0], tag[1], tag[2], index, row_start, row_stop,
        0 if ctx is None else ctx.seq,
        0 if ctx is None else ctx.nbytes,
        segment,
    )


#: Worker-side context cache: (segment name, seq) -> TaskContext.  The
#: seq makes keys unique across segment reuse; a tiny LRU keeps the
#: common case (every morsel of a batch hits the same context) at one
#: attach + unpickle per batch per worker.
_CONTEXT_CACHE: "OrderedDict[Tuple[str, int], TaskContext]" = OrderedDict()
_CONTEXT_CACHE_CAP = 8


def _resolve_context(name: str, seq: int, nbytes: int) -> TaskContext:
    key = (name, seq)
    ctx = _CONTEXT_CACHE.get(key)
    if ctx is not None:
        _CONTEXT_CACHE.move_to_end(key)
        return ctx
    try:
        segment = open_segment(name)
    except FileNotFoundError:
        raise ShmError(
            f"context segment {name!r} is gone (coordinator recycled it "
            "before the batch finished?)"
        ) from None
    try:
        payload = bytes(segment.buf[:nbytes])
    finally:
        segment.close()
    ctx = pickle.loads(payload)
    _CONTEXT_CACHE[key] = ctx
    while len(_CONTEXT_CACHE) > _CONTEXT_CACHE_CAP:
        _CONTEXT_CACHE.popitem(last=False)
    return ctx


#: kind -> body.  Bodies live in the registry and are resolved in the
#: worker; submitting a task ships a 97-byte header, never a callable.
_TASK_BODIES: Dict[int, Callable] = {}


def register_task_body(kind: int, body: Callable) -> None:
    _TASK_BODIES[kind] = body


def run_task(raw: bytes):
    """The pool's single entry point: header in, engine result out."""
    (kind, tag0, tag1, tag2, index, row_start, row_stop,
     ctx_seq, ctx_nbytes, segment) = _DESCRIPTOR.unpack(raw)
    body = _TASK_BODIES.get(kind)
    if body is None:
        raise ShmError(f"no task body registered for kind {kind}")
    name = segment.rstrip(b"\x00").decode("ascii")
    ctx = None
    if name:
        ctx = _resolve_context(name, ctx_seq, ctx_nbytes)
    return body(ctx, (tag0, tag1, tag2), index, row_start, row_stop)


# ----------------------------------------------------------------------
# Morsel scan (JEN side)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ScanMorselResult:
    """What one morsel produced (wire table as a disowned handle)."""

    tag: Tuple[int, int, int]
    handle: TableHandle
    counts: Optional[Tuple[int, ...]]
    rows_scanned: int
    rows_after_predicates: int
    rows_after_bloom: int
    body_seconds: float


def _run_scan_morsel(ctx: TaskContext, tag, index: int,
                     row_start: int, row_stop: int) -> ScanMorselResult:
    """Worker body: scan pipeline (+ optional fused partitioning).

    ``num_partitions`` set on the context means the shuffle
    partitioning is fused into the morsel: the result table comes back
    sorted by destination with ``counts[d]`` rows for each destination
    ``d`` — the coordinator can push the finished morsel's partitions
    into per-destination buffers while other morsels are still being
    scanned (the Fig. 7 overlap).
    """
    started = time.perf_counter()
    _enter_task_env(ctx.env)
    allocator = _result_allocator(ctx.env.prefix)
    request = ctx.request
    with AttachedTable(ctx.blocks[index]) as attached:
        rows = attached.table.slice(row_start, row_stop)
        if ctx.db_bloom is not None:
            with AttachedBloom(ctx.db_bloom) as db_bloom:
                wire, after_predicates, after_bloom = \
                    JenWorker.process_rows(rows, request, db_bloom=db_bloom)
        else:
            wire, after_predicates, after_bloom = \
                JenWorker.process_rows(rows, request)
        counts: Optional[Tuple[int, ...]] = None
        if (ctx.num_partitions is not None
                and request.join_key is not None):
            assignments = agreed_hash_partition(
                wire.column(request.join_key), ctx.num_partitions
            )
            parts = partition_table(wire, assignments, ctx.num_partitions)
            counts = tuple(part.num_rows for part in parts)
            wire = Table.concat(parts)
        handle = export_table(wire, allocator)
    return ScanMorselResult(
        tag=tag,
        handle=handle,
        counts=counts,
        rows_scanned=row_stop - row_start,
        rows_after_predicates=after_predicates,
        rows_after_bloom=after_bloom,
        body_seconds=time.perf_counter() - started,
    )


# ----------------------------------------------------------------------
# Local join + partial aggregation (one worker slot)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class JoinSlotResult:
    """One slot's partial aggregate plus its volume accounting."""

    tag: int
    handle: TableHandle
    build_tuples: int
    probe_tuples: int
    join_output_tuples: int
    spilled_tuples: int
    num_fragments: int
    body_seconds: float


def _run_join_slot(ctx: TaskContext, tag, index: int,
                   _row_start: int, _row_stop: int) -> JoinSlotResult:
    """Worker body: identical to the engine's sequential slot loop."""
    started = time.perf_counter()
    _enter_task_env(ctx.env)
    from repro.jen.exchange import final_aggregate
    from repro.jen.spill import fragment_tables, plan_spill
    from repro.kernels import kernels_enabled
    from repro.kernels.joinindex import JoinBuildIndex
    from repro.query.plan import local_join, local_partial_aggregate

    allocator = _result_allocator(ctx.env.prefix)
    query = ctx.query
    with AttachedTable(ctx.blocks[2 * index]) as l_attached, \
            AttachedTable(ctx.blocks[2 * index + 1]) as t_attached:
        l_part = l_attached.table
        t_part = t_attached.table
        plan = plan_spill(
            l_part.num_rows, t_part.num_rows, ctx.memory_budget_rows
        )
        build_index = None
        if not plan.spilled and kernels_enabled():
            build_index = JoinBuildIndex(
                l_part.column(query.hdfs_join_key)
            )
        join_output = 0
        worker_partials = []
        for build_frag, probe_frag in fragment_tables(
            l_part, t_part, query.hdfs_join_key, query.db_join_key,
            plan.num_fragments,
        ):
            joined = local_join(probe_frag, build_frag, query,
                                build_index=build_index)
            join_output += joined.num_rows
            worker_partials.append(
                local_partial_aggregate(joined, query)
            )
        partial = final_aggregate(worker_partials, query)
        handle = export_table(partial, allocator)
        return JoinSlotResult(
            tag=index,
            handle=handle,
            build_tuples=l_part.num_rows,
            probe_tuples=t_part.num_rows,
            join_output_tuples=join_output,
            spilled_tuples=plan.spilled_tuples(),
            num_fragments=plan.num_fragments,
            body_seconds=time.perf_counter() - started,
        )


# ----------------------------------------------------------------------
# Database partition scan (EDW side)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class DbFilterResult:
    """One partition's filtered/projected rows."""

    tag: int
    handle: TableHandle
    body_seconds: float


def _run_db_filter(ctx: TaskContext, tag, index: int,
                   _row_start: int, _row_stop: int) -> DbFilterResult:
    """Worker body: the DbWorker scan over one shipped partition."""
    started = time.perf_counter()
    _enter_task_env(ctx.env)
    allocator = _result_allocator(ctx.env.prefix)
    with AttachedTable(ctx.blocks[index]) as attached:
        result = DbWorker.filter_rows(
            attached.table, ctx.predicate, list(ctx.projection)
        )
        handle = export_table(result, allocator)
    return DbFilterResult(
        tag=index, handle=handle,
        body_seconds=time.perf_counter() - started,
    )


def _run_noop(_ctx, _tag, index: int, _row_start: int, _row_stop: int):
    """Dispatch-overhead probe body: touch nothing, return the index."""
    return index


# ----------------------------------------------------------------------
# Late-materialization payload stitch (one worker slot)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class StitchSlotResult:
    """One slot's fetched payload rows (as a disowned handle)."""

    tag: int
    handle: TableHandle
    fetched_rows: int
    body_seconds: float


def _run_stitch_slot(ctx: TaskContext, tag, index: int,
                     _row_start: int, _row_stop: int) -> StitchSlotResult:
    """Worker body: rowid-indexed gather from the pooled payload store.

    ``blocks[0]`` is the store's full payload table, exported once for
    the whole batch; each task decodes its slot's varint/delta row-id
    batch and gathers the surviving rows straight out of the shared
    segment — the real execution of the trace's ``payload_fetch``.
    """
    started = time.perf_counter()
    _enter_task_env(ctx.env)
    from repro.kernels.wirecodec import decode_rowids

    allocator = _result_allocator(ctx.env.prefix)
    with AttachedTable(ctx.blocks[0]) as attached:
        rowids = decode_rowids(ctx.rowid_batches[index])
        fetched = attached.table.take(rowids)
        handle = export_table(fetched, allocator)
    return StitchSlotResult(
        tag=index,
        handle=handle,
        fetched_rows=int(rowids.size),
        body_seconds=time.perf_counter() - started,
    )


register_task_body(KIND_SCAN, _run_scan_morsel)
register_task_body(KIND_JOIN, _run_join_slot)
register_task_body(KIND_DB_FILTER, _run_db_filter)
register_task_body(KIND_NOOP, _run_noop)
register_task_body(KIND_STITCH, _run_stitch_slot)
