"""Picklable task payloads and their worker-side bodies.

Everything that crosses the process boundary is defined here: frozen
payload dataclasses going out (tables travel as
:class:`~repro.parallel.shm.TableHandle`, Bloom filters as
:class:`BloomHandle`), result dataclasses coming back (result tables
again as handles, created by the worker and *disowned* so the
coordinator owns the unlink).

The bodies deliberately contain no pipeline logic of their own — they
call the same :meth:`repro.jen.worker.JenWorker.process_rows` /
:meth:`repro.edw.worker.DbWorker.filter_rows` / join-plan functions the
sequential backend runs, so the two backends execute byte-for-byte the
same engine code on each batch.

Every body first applies :class:`TaskEnv`: the coordinator's kernels
toggle is replayed (the long-lived pool may have been forked under a
different setting), and testkit invariant hooks are forced **off** —
invariants are checked once, coordinator-side, on the assembled
results; a forked worker inheriting an armed ``checking()`` flag would
otherwise assert against shadow state that only exists in the parent.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from multiprocessing import shared_memory
from typing import Dict, Optional, Tuple

import numpy as np

from repro.core.bloom import BloomFilter
from repro.edw.partitioner import agreed_hash_partition
from repro.edw.worker import DbWorker
from repro.jen.worker import JenWorker, ScanRequest
from repro.kernels.partition import partition_table
from repro.parallel.shm import (
    AttachedTable,
    TableHandle,
    disown_segment,
    export_table,
)
from repro.relational.expressions import Predicate
from repro.relational.table import Table
from repro.query.query import HybridQuery


@dataclass(frozen=True)
class TaskEnv:
    """Coordinator settings a task body must replay in the worker."""

    kernels: bool
    #: The coordinator's session prefix; result segments are named
    #: under it so a post-crash sweep can find them.
    prefix: str


def _enter_task_env(env: TaskEnv) -> None:
    """Apply the coordinator's toggles inside the pool worker."""
    from repro import kernels
    from repro.testkit import invariants

    kernels.set_kernels_enabled(env.kernels)
    # Invariant hooks run coordinator-side on the assembled results;
    # the worker must not assert against forked shadow state.
    invariants._CHECKING = False


class _ResultAllocator:
    """Segment factory for worker-created result tables.

    Names carry the coordinator's session prefix plus this worker's PID
    (so concurrent pool workers cannot collide) and are disowned at
    creation: the coordinator adopts each segment when the result
    arrives, and its sweep reclaims any whose name died with a crashing
    worker.  Implements the ``create``/``detach`` protocol of
    :func:`repro.parallel.shm.export_table`.
    """

    def __init__(self, prefix: str):
        self.prefix = prefix
        self._counter = 0

    def create(self, nbytes: int) -> shared_memory.SharedMemory:
        self._counter += 1
        segment = shared_memory.SharedMemory(
            name=f"{self.prefix}w{os.getpid()}r{self._counter}",
            create=True, size=max(1, nbytes),
        )
        disown_segment(segment)
        return segment

    def detach(self, segment: shared_memory.SharedMemory) -> None:
        segment.close()


#: One allocator per (worker process, session prefix).
_ALLOCATORS: Dict[str, _ResultAllocator] = {}


def _result_allocator(prefix: str) -> _ResultAllocator:
    allocator = _ALLOCATORS.get(prefix)
    if allocator is None:
        allocator = _ResultAllocator(prefix)
        _ALLOCATORS[prefix] = allocator
    return allocator


# ----------------------------------------------------------------------
# Bloom filters over the boundary
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class BloomHandle:
    """A Bloom filter whose word array lives in shared memory."""

    num_bits: int
    num_hashes: int
    seed: int
    num_added: int
    segment: str
    num_words: int


def export_bloom(bloom: BloomFilter, registry) -> BloomHandle:
    """Copy the filter's words into a fresh registry-owned segment."""
    segment = registry.create(bloom._words.nbytes)
    view = np.ndarray(bloom._words.shape, dtype=np.uint64,
                      buffer=segment.buf)
    view[...] = bloom._words
    name = segment.name
    registry.detach(segment)
    return BloomHandle(
        num_bits=bloom.num_bits,
        num_hashes=bloom.num_hashes,
        seed=bloom.seed,
        num_added=bloom.num_added,
        segment=name,
        num_words=len(bloom._words),
    )


class AttachedBloom:
    """Read-only view of an exported Bloom filter (probe-side use)."""

    def __init__(self, handle: BloomHandle):
        self._segment = shared_memory.SharedMemory(name=handle.segment)
        self.bloom = BloomFilter(
            handle.num_bits, handle.num_hashes, handle.seed
        )
        self.bloom._words = np.ndarray(
            (handle.num_words,), dtype=np.uint64, buffer=self._segment.buf
        )
        self.bloom._num_added = handle.num_added

    def __enter__(self) -> BloomFilter:
        return self.bloom

    def __exit__(self, *_exc) -> None:
        self._segment.close()


# ----------------------------------------------------------------------
# Morsel scan (JEN side)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ScanMorselTask:
    """One fixed-row slice of one HDFS block through the scan pipeline.

    ``num_partitions`` set means the shuffle partitioning is fused into
    the morsel: the result table comes back sorted by destination with
    ``counts[d]`` rows for each destination ``d`` — the coordinator can
    push the finished morsel's partitions into per-destination buffers
    while other morsels are still being scanned (the Fig. 7 overlap).
    """

    tag: Tuple[int, int, int]
    block: TableHandle
    row_start: int
    row_stop: int
    request: ScanRequest
    db_bloom: Optional[BloomHandle]
    num_partitions: Optional[int]
    env: TaskEnv


@dataclass(frozen=True)
class ScanMorselResult:
    """What one morsel produced (wire table as a disowned handle)."""

    tag: Tuple[int, int, int]
    handle: TableHandle
    counts: Optional[Tuple[int, ...]]
    rows_scanned: int
    rows_after_predicates: int
    rows_after_bloom: int


def run_scan_morsel(task: ScanMorselTask) -> ScanMorselResult:
    """Worker body: scan pipeline (+ optional fused partitioning)."""
    _enter_task_env(task.env)
    allocator = _result_allocator(task.env.prefix)
    with AttachedTable(task.block) as attached:
        rows = attached.table.slice(task.row_start, task.row_stop)
        if task.db_bloom is not None:
            with AttachedBloom(task.db_bloom) as db_bloom:
                wire, after_predicates, after_bloom = \
                    JenWorker.process_rows(rows, task.request,
                                           db_bloom=db_bloom)
        else:
            wire, after_predicates, after_bloom = \
                JenWorker.process_rows(rows, task.request)
        counts: Optional[Tuple[int, ...]] = None
        if (task.num_partitions is not None
                and task.request.join_key is not None):
            assignments = agreed_hash_partition(
                wire.column(task.request.join_key), task.num_partitions
            )
            parts = partition_table(wire, assignments,
                                    task.num_partitions)
            counts = tuple(part.num_rows for part in parts)
            wire = Table.concat(parts)
        handle = export_table(wire, allocator)
    return ScanMorselResult(
        tag=task.tag,
        handle=handle,
        counts=counts,
        rows_scanned=task.row_stop - task.row_start,
        rows_after_predicates=after_predicates,
        rows_after_bloom=after_bloom,
    )


# ----------------------------------------------------------------------
# Local join + partial aggregation (one worker slot)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class JoinSlotTask:
    """One worker's build/probe sides through join + partial aggregate."""

    tag: int
    l_part: TableHandle
    t_part: TableHandle
    query: HybridQuery
    memory_budget_rows: float
    env: TaskEnv


@dataclass(frozen=True)
class JoinSlotResult:
    """One slot's partial aggregate plus its volume accounting."""

    tag: int
    handle: TableHandle
    build_tuples: int
    probe_tuples: int
    join_output_tuples: int
    spilled_tuples: int
    num_fragments: int


def run_join_slot(task: JoinSlotTask) -> JoinSlotResult:
    """Worker body: identical to the engine's sequential slot loop."""
    _enter_task_env(task.env)
    from repro.jen.exchange import final_aggregate
    from repro.jen.spill import fragment_tables, plan_spill
    from repro.kernels import kernels_enabled
    from repro.kernels.joinindex import JoinBuildIndex
    from repro.query.plan import local_join, local_partial_aggregate

    allocator = _result_allocator(task.env.prefix)
    query = task.query
    with AttachedTable(task.l_part) as l_attached, \
            AttachedTable(task.t_part) as t_attached:
        l_part = l_attached.table
        t_part = t_attached.table
        plan = plan_spill(
            l_part.num_rows, t_part.num_rows, task.memory_budget_rows
        )
        build_index = None
        if not plan.spilled and kernels_enabled():
            build_index = JoinBuildIndex(
                l_part.column(query.hdfs_join_key)
            )
        join_output = 0
        worker_partials = []
        for build_frag, probe_frag in fragment_tables(
            l_part, t_part, query.hdfs_join_key, query.db_join_key,
            plan.num_fragments,
        ):
            joined = local_join(probe_frag, build_frag, query,
                                build_index=build_index)
            join_output += joined.num_rows
            worker_partials.append(
                local_partial_aggregate(joined, query)
            )
        partial = final_aggregate(worker_partials, query)
        handle = export_table(partial, allocator)
        return JoinSlotResult(
            tag=task.tag,
            handle=handle,
            build_tuples=l_part.num_rows,
            probe_tuples=t_part.num_rows,
            join_output_tuples=join_output,
            spilled_tuples=plan.spilled_tuples(),
            num_fragments=plan.num_fragments,
        )


# ----------------------------------------------------------------------
# Database partition scan (EDW side)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class DbFilterTask:
    """One DB worker's partition through predicate + projection."""

    tag: int
    partition: TableHandle
    predicate: Predicate
    projection: Tuple[str, ...]
    env: TaskEnv


@dataclass(frozen=True)
class DbFilterResult:
    """One partition's filtered/projected rows."""

    tag: int
    handle: TableHandle


def run_db_filter(task: DbFilterTask) -> DbFilterResult:
    """Worker body: the DbWorker scan over one shipped partition."""
    _enter_task_env(task.env)
    allocator = _result_allocator(task.env.prefix)
    with AttachedTable(task.partition) as attached:
        result = DbWorker.filter_rows(
            attached.table, task.predicate, list(task.projection)
        )
        handle = export_table(result, allocator)
    return DbFilterResult(tag=task.tag, handle=handle)
