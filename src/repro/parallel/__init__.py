"""Opt-in multicore execution backend (real processes, shared memory).

Every engine in this reproduction *models* the paper's parallelism on a
simulated clock but executes it sequentially in one Python process.
This package adds a second execution backend that runs the per-worker
hot stages — HDFS scan + predicate/Bloom filtering, hash partitioning,
local join build/probe, partial aggregation — genuinely in parallel on
a ``multiprocessing`` pool:

* :mod:`repro.parallel.shm` — zero-copy table transport: columns live
  in ``multiprocessing.shared_memory`` segments, only schema + segment
  names are pickled, and a guarded registry unlinks every segment even
  when a worker crashes mid-transfer.
* :mod:`repro.parallel.pool` — the persistent process pool, its export
  cache, and crash containment.
* :mod:`repro.parallel.tasks` — the picklable task payloads and the
  worker-side bodies (which reuse the exact engine pipeline code).
* :mod:`repro.parallel.scan` — morsel-driven scans with the shuffle
  partitioning fused into each morsel (the paper's Fig. 7 overlap,
  executed instead of modelled).
* :mod:`repro.parallel.join` — per-worker local joins + partial
  aggregation fanned out over the pool.

``set_execution_backend("process")`` flips every routed engine call
site, mirroring :func:`repro.kernels.set_kernels_enabled`.  Sequential
stays the default: simulated-time traces, fault injection and the
testkit's deterministic replay all assume single-process execution, so
the engines silently fall back to the sequential path whenever a fault
plan is armed, a cross-query join-index provider is installed, or a
payload cannot be pickled (e.g. SQL-registered lambda UDFs).
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import List, Optional, Tuple

from repro.errors import ReproError

VALID_BACKENDS = ("sequential", "process")

_BACKEND_NAME = "sequential"
_POOL_WORKERS: Optional[int] = None

#: ``(site, reason)`` pairs recorded while the process backend was
#: selected but an engine call site ran sequentially anyway.  Bounded so
#: a long-running service cannot grow it without draining.
_FALLBACK_EVENTS: List[Tuple[str, str]] = []
_FALLBACK_CAP = 64


def record_fallback(site: str, reason: str) -> None:
    """Note that ``site`` fell back to the sequential path.

    Call sites invoke this unconditionally; the record is kept only
    while the process backend is actually selected, so sequential runs
    (where "falling back" is just the normal path) pay one string
    comparison and store nothing.
    """
    if _BACKEND_NAME != "process":
        return
    if len(_FALLBACK_EVENTS) < _FALLBACK_CAP:
        _FALLBACK_EVENTS.append((site, reason))


def fallback_events() -> List[Tuple[str, str]]:
    """The recorded fallbacks, oldest first (without draining)."""
    return list(_FALLBACK_EVENTS)


def drain_fallback_events() -> List[Tuple[str, str]]:
    """Return and clear the recorded fallbacks.

    The join plumbing drains after each run and attaches the events to
    the trace metadata; the service plane additionally counts them in
    its metrics registry.
    """
    events = list(_FALLBACK_EVENTS)
    _FALLBACK_EVENTS.clear()
    return events


#: ``(event, detail)`` pairs recorded by the shared multi-query pool:
#: queue contention, cross-query dispatch (work stealing), worker-crash
#: retries, executor rebuilds.  Same bounded-drain discipline as the
#: fallback events; the service counts them as ``parallel.pool.<event>``
#: metrics.
_POOL_EVENTS: List[Tuple[str, str]] = []
_POOL_EVENT_CAP = 256
_POOL_EVENT_LOCK = threading.Lock()


def record_pool_event(event: str, detail: str = "") -> None:
    """Note one shared-pool scheduling event (thread-safe)."""
    with _POOL_EVENT_LOCK:
        if len(_POOL_EVENTS) < _POOL_EVENT_CAP:
            _POOL_EVENTS.append((event, detail))


def pool_events() -> List[Tuple[str, str]]:
    """The recorded pool events, oldest first (without draining)."""
    with _POOL_EVENT_LOCK:
        return list(_POOL_EVENTS)


def drain_pool_events() -> List[Tuple[str, str]]:
    """Return and clear the recorded pool events."""
    with _POOL_EVENT_LOCK:
        events = list(_POOL_EVENTS)
        _POOL_EVENTS.clear()
    return events


#: Per-thread identity of the query stream submitting parallel work.
#: The shared pool's fair scheduler keys on it; outside any explicit
#: origin the thread itself is the stream.
_ORIGIN = threading.local()


@contextmanager
def task_origin(tenant: str = "default", label: str = "",
                priority: int = 0):
    """Tag parallel work submitted by this thread with its query stream.

    The service wraps each query's data-plane execution in this, so
    morsels landing in the shared pool carry their tenant (for fair
    scheduling) and priority.  Nestable; restores the previous origin.
    """
    previous = getattr(_ORIGIN, "value", None)
    _ORIGIN.value = (tenant, label, priority)
    try:
        yield
    finally:
        _ORIGIN.value = previous


def current_origin() -> Tuple[str, str, int]:
    """This thread's (tenant, label, priority) stream identity."""
    origin = getattr(_ORIGIN, "value", None)
    if origin is not None:
        return origin
    thread = threading.current_thread()
    return (thread.name, f"t{thread.ident}", 0)


class ParallelUnsupported(Exception):
    """Internal signal: this operation cannot run on the process pool.

    Raised by the parallel drivers when a payload is unpicklable or a
    request shape falls outside the parallel plan; engines catch it and
    fall back to the sequential path.  Never surfaces to callers.
    """


def execution_backend() -> str:
    """The active execution backend name."""
    return _BACKEND_NAME


def parallel_enabled() -> bool:
    """True when the process-pool backend is selected."""
    return _BACKEND_NAME == "process"


def pool_workers() -> Optional[int]:
    """Configured pool size (``None`` = one per available core)."""
    return _POOL_WORKERS


def set_execution_backend(backend: str,
                          workers: Optional[int] = None) -> str:
    """Select the execution backend; returns the previous name.

    ``workers`` sets the process-pool size (ignored for
    ``"sequential"``); ``None`` keeps the current setting, which
    defaults to one worker per available core.  The pool itself is
    created lazily on first parallel call and resized on the next call
    after a worker-count change.
    """
    global _BACKEND_NAME, _POOL_WORKERS
    if backend not in VALID_BACKENDS:
        raise ReproError(
            f"unknown execution backend {backend!r}; "
            f"valid backends: {', '.join(VALID_BACKENDS)}"
        )
    if workers is not None:
        if workers < 1:
            raise ReproError(f"pool workers must be >= 1, got {workers}")
        _POOL_WORKERS = int(workers)
    previous = _BACKEND_NAME
    _BACKEND_NAME = backend
    return previous


from repro.parallel.pool import (  # noqa: E402
    ProcessBackend,
    default_pool_workers,
    get_backend,
    install_backend,
    installed_backend,
    shutdown_backend,
)
from repro.parallel.shm import (  # noqa: E402
    AttachedTable,
    SegmentPool,
    ShmRegistry,
    TableHandle,
    export_table,
    leaked_segments,
)
from repro.parallel.sharedpool import SharedProcessPool  # noqa: E402

__all__ = [
    "AttachedTable",
    "ParallelUnsupported",
    "ProcessBackend",
    "SegmentPool",
    "SharedProcessPool",
    "ShmRegistry",
    "TableHandle",
    "VALID_BACKENDS",
    "current_origin",
    "default_pool_workers",
    "drain_fallback_events",
    "drain_pool_events",
    "execution_backend",
    "export_table",
    "fallback_events",
    "get_backend",
    "install_backend",
    "installed_backend",
    "leaked_segments",
    "parallel_enabled",
    "pool_events",
    "pool_workers",
    "record_fallback",
    "record_pool_event",
    "set_execution_backend",
    "shutdown_backend",
    "task_origin",
]
