"""repro — reproduction of "Joins for Hybrid Warehouses: Exploiting
Massive Parallelism in Hadoop and Enterprise Data Warehouses"
(Tian, Zou, Özcan, Goncalves, Pirahesh — EDBT 2015).

The library simulates the paper's full stack: a shared-nothing parallel
database (:mod:`repro.edw`), an HDFS cluster with text and Parquet-like
storage (:mod:`repro.hdfs`), the JEN execution engine (:mod:`repro.jen`),
the network between them (:mod:`repro.net`), and a discrete-event time
plane (:mod:`repro.sim`) — plus the paper's contribution on top: Bloom
filters and the five hybrid join algorithms including the zigzag join
(:mod:`repro.core`).

Quickstart::

    from repro import (HybridWarehouse, WorkloadSpec, generate_workload,
                       build_paper_query, ZigzagJoin)

    workload = generate_workload(WorkloadSpec(
        sigma_t=0.1, sigma_l=0.4, s_t=0.2, s_l=0.1))
    warehouse = HybridWarehouse()
    warehouse.load_db_table("T", workload.t_table, distribute_on="uniqKey")
    warehouse.database.create_index("T", "idx_pred", ["corPred", "indPred"])
    warehouse.database.create_index(
        "T", "idx_bloom", ["corPred", "indPred", "joinKey"])
    warehouse.load_hdfs_table("L", workload.l_table, "parquet")

    result = ZigzagJoin().run(warehouse, build_paper_query(workload))
    print(result.summary())
"""

from repro.config import (
    BloomFilterConfig,
    ClusterConfig,
    CostModel,
    HybridConfig,
    PaperScale,
    default_config,
)
from repro.core import (
    ALGORITHMS,
    AdvisorDecision,
    BloomFilter,
    BroadcastJoin,
    DbSideJoin,
    JoinAdvisor,
    JoinAlgorithm,
    JoinResult,
    JoinStats,
    RepartitionJoin,
    ZigzagJoin,
    algorithm_by_name,
    valid_algorithm_names,
)
from repro.core.advisor import WorkloadEstimate
from repro.query import (
    HybridQuery,
    SelectivityReport,
    measure_selectivities,
    reference_join,
)
from repro.service import (
    AdmissionConfig,
    QueryService,
    ServiceConfig,
    StreamSpec,
    generate_query_stream,
)
from repro.sql import SqlResult, SqlSession
from repro.warehouse import HybridWarehouse
from repro.workload import (
    Workload,
    WorkloadSpec,
    build_paper_query,
    generate_workload,
)

__version__ = "1.0.0"

__all__ = [
    "ALGORITHMS",
    "AdmissionConfig",
    "AdvisorDecision",
    "BloomFilter",
    "BloomFilterConfig",
    "BroadcastJoin",
    "ClusterConfig",
    "CostModel",
    "DbSideJoin",
    "HybridConfig",
    "HybridQuery",
    "HybridWarehouse",
    "JoinAdvisor",
    "JoinAlgorithm",
    "JoinResult",
    "JoinStats",
    "PaperScale",
    "QueryService",
    "RepartitionJoin",
    "SelectivityReport",
    "ServiceConfig",
    "SqlResult",
    "SqlSession",
    "StreamSpec",
    "Workload",
    "WorkloadEstimate",
    "WorkloadSpec",
    "ZigzagJoin",
    "algorithm_by_name",
    "build_paper_query",
    "default_config",
    "generate_query_stream",
    "generate_workload",
    "measure_selectivities",
    "valid_algorithm_names",
    "reference_join",
    "__version__",
]
