"""Stratified block sampling over the HDFS side of the join.

The sampling unit is an HDFS block: we either scan every row of a block
or none of it (cluster sampling), so a sample of ``m`` of the table's
``M`` blocks costs ``m/M`` of the full scan.  Blocks are stratified by
the datanode holding their primary replica and the sample is allocated
proportionally across strata, which keeps the scan load spread across
the cluster exactly like a full scan would and never inflates the
variance of the pooled SRSWOR estimator used downstream.

``plan_block_sample`` returns a *full* ordering of the table's blocks —
a seeded within-stratum shuffle interleaved round-robin across strata —
plus the target prefix length.  Any prefix of the ordering is an
approximately stratified sample, so a progressive run can keep
consuming blocks past the target until its error budget is met, and a
run that consumes the whole ordering has scanned the table exactly.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from math import ceil
from typing import Dict, List, Sequence, Tuple

from repro.hdfs.filesystem import Block


@dataclass(frozen=True)
class BlockSample:
    """A seeded sampling plan over one HDFS table's blocks."""

    #: Every block of the table, in stratified-interleaved scan order.
    ordering: Tuple[Block, ...]
    #: How many blocks a one-shot run at the requested rate scans.
    target_blocks: int

    @property
    def total_blocks(self) -> int:
        return len(self.ordering)

    @property
    def target(self) -> Tuple[Block, ...]:
        return self.ordering[: self.target_blocks]

    def fraction(self, scanned: int) -> float:
        if not self.ordering:
            return 1.0
        return scanned / len(self.ordering)


def _primary_node(block: Block) -> int:
    return block.replicas[0] if block.replicas else -1


def plan_block_sample(
    blocks: Sequence[Block],
    sample_rate: float,
    seed: int,
    min_blocks: int = 1,
) -> BlockSample:
    """Plan a stratified block sample at ``sample_rate``.

    The target size is ``min(M, max(min_blocks, ceil(rate * M)))`` —
    small tables are simply scanned in full, which downstream code
    treats as an exact (zero-width-interval) run.
    """
    total = len(blocks)
    target = min(total, max(min_blocks, ceil(sample_rate * total)))

    strata: Dict[int, List[Block]] = {}
    for block in blocks:
        strata.setdefault(_primary_node(block), []).append(block)

    rng = random.Random(seed)
    # Shuffle within each stratum (strata visited in sorted order so the
    # permutation is a pure function of the seed, not of dict order).
    shuffled: List[List[Block]] = []
    for node in sorted(strata):
        group = list(strata[node])
        rng.shuffle(group)
        shuffled.append(group)

    # Round-robin interleave across strata: any prefix of the resulting
    # ordering holds a near-proportional share of every stratum.
    ordering: List[Block] = []
    cursor = 0
    while len(ordering) < total:
        for group in shuffled:
            if cursor < len(group):
                ordering.append(group[cursor])
        cursor += 1

    return BlockSample(ordering=tuple(ordering), target_blocks=target)
