"""Progressive refinement: a stream of monotone snapshots.

A progressive approximate join emits one :class:`Snapshot` per scanned
block: the current estimate per cell, its interval, and the fraction of
the table scanned so far.  Raw interval half-widths are *almost* always
shrinking, but the variance estimate itself is random and can tick up
between blocks; clients of a refining stream expect monotonicity, so
the tracker reports each cell's half-width as the running minimum of
its raw half-widths.  That clamped interval is still a valid
``confidence``-level interval whenever the raw one is (it is centred on
the newest, better estimate and never wider than an interval already
reported), and the raw value is kept on the cell for anyone who wants
the unclamped statistics.

The final snapshot of a run that consumed every block is exact: zero
half-widths, estimate identical to the oracle answer.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.approx.estimator import ApproxEstimate, CellEstimate, CellKey
from repro.approx.policy import ApproxPolicy


@dataclass(frozen=True)
class Snapshot:
    """One point in a progressive run's refinement stream."""

    blocks_scanned: int
    blocks_total: int
    fraction_scanned: float
    exact: bool
    cells: Dict[CellKey, CellEstimate]

    def max_relative_error(self) -> float:
        """Worst relative half-width across cells (absolute at zero)."""
        worst = 0.0
        for cell in self.cells.values():
            scale = abs(cell.estimate)
            error = cell.half_width / scale if scale else cell.half_width
            worst = max(worst, error)
        return worst


class SnapshotTracker:
    """Turns raw estimates into a monotone refinement stream."""

    def __init__(self):
        self._best_half_widths: Dict[CellKey, float] = {}
        self.snapshots: List[Snapshot] = []

    def record(self, estimate: ApproxEstimate) -> Snapshot:
        """Clamp ``estimate``'s intervals and append a snapshot."""
        cells: Dict[CellKey, CellEstimate] = {}
        for key, cell in estimate.cells.items():
            best = self._best_half_widths.get(key)
            if best is not None:
                cell = cell.clamped(best)
            self._best_half_widths[key] = cell.half_width
            cells[key] = cell
        snapshot = Snapshot(
            blocks_scanned=estimate.blocks_scanned,
            blocks_total=estimate.blocks_total,
            fraction_scanned=estimate.fraction_scanned,
            exact=estimate.exact,
            cells=cells,
        )
        self.snapshots.append(snapshot)
        return snapshot


def error_target_met(snapshot: Snapshot, policy: ApproxPolicy) -> bool:
    """True when every cell satisfies the policy's ``max_error``.

    Relative half-width for non-zero estimates, absolute for zero ones;
    always false before ``min_blocks`` blocks or without a target.
    """
    if policy.max_error is None:
        return False
    if snapshot.blocks_scanned < policy.min_blocks:
        return False
    return snapshot.max_relative_error() <= policy.max_error


def latest(snapshots: List[Snapshot]) -> Optional[Snapshot]:
    return snapshots[-1] if snapshots else None
