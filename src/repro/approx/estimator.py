"""Closed-form estimators for block-sampled join-aggregates.

The join distributes over HDFS blocks: joining T′ against each sampled
block and summing the per-block group contributions equals joining T′
against the union of those blocks.  Each sampled block therefore yields
one observation per ``(group, aggregate-component)`` cell, and the
classical simple-random-sampling-without-replacement estimators apply
with the block as the sampling unit:

* ``count`` / ``sum`` — a population *total* over the ``M`` blocks:
  ``τ̂ = M · ȳ`` with variance ``M²(1 − m/M)s²/m``.  Blocks where the
  group never appears contribute implicit zeros, which is exactly what
  the running Σ/Σ² accumulators encode.
* ``avg`` — a *ratio* of two totals (sum over count); the linearised
  ratio-estimator variance uses the per-block covariance between the
  numerator and denominator contributions, widened to the
  interval-arithmetic propagation of the two total intervals whenever
  that is wider (the linearisation under-covers for groups
  concentrated in few blocks).
* ``min`` / ``max`` — no unbiased closed form exists under block
  sampling, so the sampled extreme is folded without an interval and
  reported in ``unsupported`` (exact once every block is scanned).

Intervals use Student-t critical values from a hardcoded table (no
scipy in this environment); the tabulated confidence is rounded *up*
and the degrees of freedom *down*, so the interval is conservative.
With fewer than two observed blocks the variance is undefined and the
half-width is ``inf`` — an honest "no information yet" interval.

The ordering produced by :mod:`repro.approx.sampler` is proportionally
stratified by datanode, so these pooled SRSWOR formulas are (weakly)
conservative rather than optimistic — the stratification only removes
between-stratum variance from the true sampling error.

Empty-join behaviour deliberately mirrors :mod:`repro.testkit.oracle`:
a group never seen in any scanned block is absent from the result (the
oracle's dict-based group-by also only materialises observed groups),
and a join with no qualifying rows at all yields a zero-row table with
the full result schema.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import JoinError
from repro.query.plan import local_join
from repro.query.query import HybridQuery
from repro.relational.aggregates import AggregateSpec, group_by_aggregate
from repro.relational.schema import Column, DataType, Schema
from repro.relational.table import Table, table_from_rows

#: Cell identity: (group-key tuple, aggregate output name).
CellKey = Tuple[Tuple, str]

# ----------------------------------------------------------------------
# Student-t critical values (two-sided), indexed by confidence then dof.
# dof keys must be ascending; lookups round confidence up, dof down.
# ----------------------------------------------------------------------
_T_TABLE: Dict[float, Tuple[Tuple[float, float], ...]] = {
    0.90: (
        (1, 6.314), (2, 2.920), (3, 2.353), (4, 2.132), (5, 2.015),
        (6, 1.943), (7, 1.895), (8, 1.860), (9, 1.833), (10, 1.812),
        (11, 1.796), (12, 1.782), (13, 1.771), (14, 1.761), (15, 1.753),
        (16, 1.746), (17, 1.740), (18, 1.734), (19, 1.729), (20, 1.725),
        (21, 1.721), (22, 1.717), (23, 1.714), (24, 1.711), (25, 1.708),
        (26, 1.706), (27, 1.703), (28, 1.701), (29, 1.699), (30, 1.697),
        (40, 1.684), (60, 1.671), (120, 1.658), (math.inf, 1.645),
    ),
    0.95: (
        (1, 12.706), (2, 4.303), (3, 3.182), (4, 2.776), (5, 2.571),
        (6, 2.447), (7, 2.365), (8, 2.306), (9, 2.262), (10, 2.228),
        (11, 2.201), (12, 2.179), (13, 2.160), (14, 2.145), (15, 2.131),
        (16, 2.120), (17, 2.110), (18, 2.101), (19, 2.093), (20, 2.086),
        (21, 2.080), (22, 2.074), (23, 2.069), (24, 2.064), (25, 2.060),
        (26, 2.056), (27, 2.052), (28, 2.048), (29, 2.045), (30, 2.042),
        (40, 2.021), (60, 2.000), (120, 1.980), (math.inf, 1.960),
    ),
    0.99: (
        (1, 63.657), (2, 9.925), (3, 5.841), (4, 4.604), (5, 4.032),
        (6, 3.707), (7, 3.499), (8, 3.355), (9, 3.250), (10, 3.169),
        (11, 3.106), (12, 3.055), (13, 3.012), (14, 2.977), (15, 2.947),
        (16, 2.921), (17, 2.898), (18, 2.878), (19, 2.861), (20, 2.845),
        (21, 2.831), (22, 2.819), (23, 2.807), (24, 2.797), (25, 2.787),
        (26, 2.779), (27, 2.771), (28, 2.763), (29, 2.756), (30, 2.750),
        (40, 2.704), (60, 2.660), (120, 2.617), (math.inf, 2.576),
    ),
}


def t_critical(confidence: float, dof: int) -> float:
    """Two-sided Student-t critical value, conservatively tabulated.

    The requested confidence is rounded up to the nearest tabulated
    level and ``dof`` rounded down to the nearest tabulated entry, so
    the returned quantile never understates the interval.  ``dof <= 0``
    returns ``inf``: with one observed block there is no variance
    estimate and the honest interval is unbounded.
    """
    if dof <= 0:
        return math.inf
    for level in sorted(_T_TABLE):
        if confidence <= level + 1e-12:
            rows = _T_TABLE[level]
            value = rows[0][1]
            for entry_dof, entry_value in rows:
                if entry_dof <= dof:
                    value = entry_value
                else:
                    break
            return value
    raise JoinError(
        f"confidence {confidence} above highest tabulated level "
        f"{max(_T_TABLE)}"
    )


# ----------------------------------------------------------------------
# Cell estimates
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class CellEstimate:
    """One aggregate value with its confidence interval."""

    estimate: float
    #: Reported half-width (progressive mode clamps this to a running
    #: minimum so intervals refine monotonically).
    half_width: float
    #: Un-clamped half-width straight from the variance formula.
    raw_half_width: float
    exact: bool = False

    @property
    def lower(self) -> float:
        return self.estimate - self.half_width

    @property
    def upper(self) -> float:
        return self.estimate + self.half_width

    def contains(self, value: float) -> bool:
        return self.lower <= value <= self.upper

    def clamped(self, previous_half_width: float) -> "CellEstimate":
        """This estimate with the half-width capped at a previous one."""
        if self.half_width <= previous_half_width:
            return self
        return CellEstimate(
            estimate=self.estimate,
            half_width=previous_half_width,
            raw_half_width=self.raw_half_width,
            exact=self.exact,
        )


@dataclass(frozen=True)
class ApproxEstimate:
    """A full query answer estimated from ``blocks_scanned`` blocks."""

    blocks_scanned: int
    blocks_total: int
    cells: Dict[CellKey, CellEstimate]
    result: Table
    #: Output names of min/max aggregates — folded sampled extremes
    #: without intervals (exact only at full scan).
    unsupported: Tuple[str, ...] = ()

    @property
    def fraction_scanned(self) -> float:
        if self.blocks_total == 0:
            return 1.0
        return self.blocks_scanned / self.blocks_total

    @property
    def exact(self) -> bool:
        return self.blocks_scanned >= self.blocks_total

    def max_relative_error(self) -> float:
        """Worst relative half-width across cells (absolute at zero)."""
        worst = 0.0
        for cell in self.cells.values():
            scale = abs(cell.estimate)
            error = cell.half_width / scale if scale else cell.half_width
            worst = max(worst, error)
        return worst


# ----------------------------------------------------------------------
# The estimator
# ----------------------------------------------------------------------
@dataclass
class _GroupState:
    """Running Σ, Σ² and cross-moments of one group's block series."""

    sums: List[float]
    squares: List[float]
    crosses: Dict[Tuple[int, int], float]
    extremes: List[Optional[float]]


class JoinAggregateEstimator:
    """Accumulates per-block join contributions into interval estimates.

    Feed it one post-join, post-predicate joined table per sampled
    block via :meth:`observe_block`; ask for the current
    :class:`ApproxEstimate` at any point with :meth:`estimate`.
    """

    def __init__(self, query: HybridQuery, total_blocks: int,
                 confidence: float):
        self.query = query
        self.total_blocks = total_blocks
        self.confidence = confidence
        self.blocks_observed = 0
        self._groups: Dict[Tuple, _GroupState] = {}
        self._partial_schema: Optional[Schema] = None

        # Decompose the query's aggregates into linear components.
        # count → a count component; sum → a sum component; avg → one of
        # each (shared across aggregates via dedup).  min/max fold
        # outside the linear machinery.
        self._components: List[AggregateSpec] = []
        component_index: Dict[Tuple[str, Optional[str]], int] = {}

        def component(function: str, column: Optional[str]) -> int:
            key = (function, column)
            if key not in component_index:
                index = len(self._components)
                component_index[key] = index
                self._components.append(
                    AggregateSpec(function, column=column,
                                  alias=f"__comp{index}")
                )
            return component_index[key]

        #: Per original aggregate: ("total", comp) | ("ratio", num, den)
        #: | ("extreme", extreme_idx).
        self._plans: List[Tuple] = []
        self._extreme_specs: List[AggregateSpec] = []
        self._cross_pairs: List[Tuple[int, int]] = []
        for spec in query.aggregates:
            if spec.function == "count":
                self._plans.append(("total", component("count", None)))
            elif spec.function == "sum":
                self._plans.append(("total", component("sum", spec.column)))
            elif spec.function == "avg":
                numerator = component("sum", spec.column)
                denominator = component("count", None)
                pair = (numerator, denominator)
                if pair not in self._cross_pairs:
                    self._cross_pairs.append(pair)
                self._plans.append(("ratio", numerator, denominator))
            else:  # min / max
                index = len(self._extreme_specs)
                self._extreme_specs.append(
                    AggregateSpec(spec.function, column=spec.column,
                                  alias=f"__mm{index}")
                )
                self._plans.append(("extreme", index))

    # ------------------------------------------------------------------
    @property
    def unsupported_names(self) -> Tuple[str, ...]:
        return tuple(
            spec.output_name()
            for spec in self.query.aggregates
            if spec.function in ("min", "max")
        )

    def observe_join_block(self, t_prime: Table, wire_block: Table) -> int:
        """Join one sampled block against T′ and fold it in.

        Returns the block's post-predicate join output row count (the
        caller's volume accounting).
        """
        joined = local_join(t_prime, wire_block, self.query)
        if self.query.post_join_predicate is not None:
            joined = joined.filter(
                self.query.post_join_predicate.evaluate(joined)
            )
        self.observe_block(joined)
        return joined.num_rows

    def observe_block(self, joined: Table) -> None:
        """Fold one block's joined (post-predicate) rows into the state."""
        group_columns = list(self.query.group_by)
        partial = group_by_aggregate(
            joined, group_columns, self._components + self._extreme_specs
        )
        if self._partial_schema is None:
            self._partial_schema = partial.schema
        self.blocks_observed += 1

        n_groups = len(group_columns)
        n_components = len(self._components)
        for row in partial.to_rows():
            key = row[:n_groups]
            values = row[n_groups:n_groups + n_components]
            extremes = row[n_groups + n_components:]
            state = self._groups.get(key)
            if state is None:
                state = _GroupState(
                    sums=[0.0] * n_components,
                    squares=[0.0] * n_components,
                    crosses={pair: 0.0 for pair in self._cross_pairs},
                    extremes=[None] * len(self._extreme_specs),
                )
                self._groups[key] = state
            for index, value in enumerate(values):
                value = float(value)
                state.sums[index] += value
                state.squares[index] += value * value
            for pair in self._cross_pairs:
                state.crosses[pair] += (
                    float(values[pair[0]]) * float(values[pair[1]])
                )
            for index, spec in enumerate(self._extreme_specs):
                value = extremes[index]
                current = state.extremes[index]
                if current is None:
                    state.extremes[index] = value
                elif spec.function == "min":
                    state.extremes[index] = min(current, value)
                else:
                    state.extremes[index] = max(current, value)

    # ------------------------------------------------------------------
    def _total_cell(self, state: _GroupState, comp: int,
                    exact: bool) -> CellEstimate:
        m, total = self.blocks_observed, self.total_blocks
        series_sum = state.sums[comp]
        if exact:
            # Full scan: report Σy itself — no M/m rescaling, so no
            # floating-point drift away from the oracle's integer answer.
            return CellEstimate(series_sum, 0.0, 0.0, exact=True)
        estimate = total * series_sum / m
        if m < 2:
            return CellEstimate(estimate, math.inf, math.inf)
        sample_var = max(
            0.0,
            (state.squares[comp] - series_sum * series_sum / m) / (m - 1),
        )
        variance = total * total * (1.0 - m / total) * sample_var / m
        half = t_critical(self.confidence, m - 1) * math.sqrt(variance)
        return CellEstimate(estimate, half, half)

    def _ratio_cell(self, state: _GroupState, numerator: int,
                    denominator: int, exact: bool) -> CellEstimate:
        m = self.blocks_observed
        sum_y = state.sums[numerator]
        sum_x = state.sums[denominator]
        # A group only exists in the state if at least one joined row was
        # observed, so sum_x >= 1; the 0.0 fallback mirrors the oracle's
        # avg-of-empty convention all the same.
        ratio = sum_y / sum_x if sum_x else 0.0
        if exact:
            return CellEstimate(ratio, 0.0, 0.0, exact=True)
        if m < 2 or not sum_x:
            return CellEstimate(ratio, math.inf, math.inf)
        mean_x = sum_x / m
        var_y = max(
            0.0, (state.squares[numerator] - sum_y * sum_y / m) / (m - 1)
        )
        var_x = max(
            0.0, (state.squares[denominator] - sum_x * sum_x / m) / (m - 1)
        )
        cov = (
            state.crosses[(numerator, denominator)] - sum_y * sum_x / m
        ) / (m - 1)
        variance = max(
            0.0,
            (1.0 - m / self.total_blocks)
            / (m * mean_x * mean_x)
            * (var_y + ratio * ratio * var_x - 2.0 * ratio * cov),
        )
        half = t_critical(self.confidence, m - 1) * math.sqrt(variance)
        # The linearised variance assumes the denominator's coefficient
        # of variation is small — false for a group concentrated in a
        # few blocks, where it badly under-covers.  Guard it with the
        # interval-arithmetic propagation of the two *total* intervals
        # (extreme quotient of the numerator and denominator bounds):
        # whenever both parent intervals hold, the propagated one holds
        # too, so taking the wider of the two restores coverage at the
        # cost of width only where the ratio is genuinely unstable.
        y = self._total_cell(state, numerator, exact)
        x = self._total_cell(state, denominator, exact)
        if (
            x.lower <= 0.0
            or not math.isfinite(y.half_width)
            or not math.isfinite(x.half_width)
        ):
            return CellEstimate(ratio, math.inf, math.inf)
        propagated = max(
            ratio - y.lower / x.upper, y.upper / x.lower - ratio
        )
        half = max(half, propagated)
        return CellEstimate(ratio, half, half)

    def estimate(self) -> ApproxEstimate:
        """Current estimates, intervals, and the rendered result table."""
        if self._partial_schema is None:
            raise JoinError(
                "approximate estimator has observed no blocks yet"
            )
        exact = self.blocks_observed >= self.total_blocks
        group_columns = list(self.query.group_by)
        specs = list(self.query.aggregates)

        cells: Dict[CellKey, CellEstimate] = {}
        rows: List[Tuple] = []
        for key in sorted(self._groups):
            state = self._groups[key]
            out_row: List = list(key)
            for spec, plan in zip(specs, self._plans):
                if plan[0] == "total":
                    cell = self._total_cell(state, plan[1], exact)
                    cells[(key, spec.output_name())] = cell
                    value = cell.estimate
                    if exact:
                        value = int(round(value))
                elif plan[0] == "ratio":
                    cell = self._ratio_cell(state, plan[1], plan[2], exact)
                    cells[(key, spec.output_name())] = cell
                    value = cell.estimate
                else:  # extreme
                    value = state.extremes[plan[1]]
                out_row.append(value)
            rows.append(tuple(out_row))

        schema_columns: List[Column] = [
            self._partial_schema.column(name) for name in group_columns
        ]
        for spec in specs:
            if exact or spec.function in ("min", "max"):
                dtype = spec.output_dtype()
            else:
                # Scaled-up totals are real-valued; an int column would
                # silently truncate the estimate.
                dtype = DataType.FLOAT64
            schema_columns.append(Column(spec.output_name(), dtype))

        result = table_from_rows(Schema(schema_columns), rows)
        return ApproxEstimate(
            blocks_scanned=self.blocks_observed,
            blocks_total=self.total_blocks,
            cells=cells,
            result=result,
            unsupported=self.unsupported_names,
        )
