"""The approximate (block-sampled) hybrid join.

``ApproxJoin`` runs the repartition join's exact database side — local
predicates, projection, optionally BF_DB — but scans only a stratified
sample of the HDFS table's blocks (:mod:`repro.approx.sampler`), joins
each sampled block against the full T′ as it arrives, and folds the
per-block group contributions into closed-form interval estimates
(:mod:`repro.approx.estimator`).  In progressive mode every block emits
a monotone :class:`~repro.approx.progressive.Snapshot`, and a
``max_error`` policy stops the scan as soon as every interval is tight
enough.

The trace prices exactly what ran: a full ``db_filter``, an
``hdfs_scan`` over the *sampled* bytes and rows, a shuffle/build/probe
pipeline over the sampled wire volume, plus a tiny interval-estimation
phase.  Row/byte accounting comes from the engine's own per-block scan
seam (:func:`repro.adaptive.hooks.observing_blocks`), not from a
parallel bookkeeping path, so ``approx`` cannot under-report its scan.

A run that happens to consume every block (rate 1.0, tiny tables, or a
progressive run that never met its error target) is *exact*: integer
result dtypes, zero-width intervals, bit-equal to the oracle.
"""

from __future__ import annotations

from typing import List, Optional

from repro.approx.estimator import ApproxEstimate, JoinAggregateEstimator
from repro.approx.policy import ApproxPolicy
from repro.approx.progressive import Snapshot, SnapshotTracker, error_target_met
from repro.approx.sampler import plan_block_sample
from repro.adaptive import hooks as adaptive_hooks
from repro.core.joins.base import (
    JoinAlgorithm,
    JoinResult,
    JoinStats,
    register_algorithm,
)
from repro.errors import JoinError
from repro.jen.worker import ScanRequest
from repro.relational.table import Table
from repro.sim.trace import Trace
from repro.query.query import HybridQuery


@register_algorithm
class ApproxJoin(JoinAlgorithm):
    """Block-sampled approximate join with confidence intervals."""

    name = "approx"

    def __init__(self, sample_rate: float = 1.0, confidence: float = 0.95,
                 seed: int = 11, progressive: bool = False,
                 max_error: Optional[float] = None, use_bloom: bool = False,
                 min_blocks: int = 4):
        # The policy's validation is the constructor's validation.
        self.policy = ApproxPolicy(
            sample_rate=sample_rate,
            confidence=confidence,
            max_error=max_error,
            min_blocks=min_blocks,
            seed=seed,
        )
        self.progressive = progressive
        self.use_bloom = use_bloom
        self.uses_db_bloom = use_bloom
        #: Populated by :meth:`run` — the final estimate and (in
        #: progressive mode) every snapshot, for callers who want the
        #: statistics as objects rather than via trace metadata.
        self.last_estimate: Optional[ApproxEstimate] = None
        self.last_snapshots: List[Snapshot] = []

    @classmethod
    def from_policy(cls, policy: ApproxPolicy, progressive: bool = False,
                    use_bloom: bool = False) -> "ApproxJoin":
        return cls(
            sample_rate=policy.sample_rate,
            confidence=policy.confidence,
            seed=policy.seed,
            progressive=progressive,
            max_error=policy.max_error,
            use_bloom=use_bloom,
            min_blocks=policy.min_blocks,
        )

    @property
    def display_name(self) -> str:
        return "approx(BF)" if self.use_bloom else "approx"

    # ------------------------------------------------------------------
    def run(self, warehouse, query: HybridQuery) -> JoinResult:
        jen = warehouse.jen
        if jen._active_injector() is not None:
            raise JoinError(
                "approx join does not run under an armed fault plan; "
                "use the exact tier for fault-injected queries"
            )
        policy = self.policy
        costing = self._costing(warehouse)
        stats = JoinStats()
        trace = Trace(label=self.display_name)
        trace.add("startup", "latency", costing.startup_seconds(),
                  description="UDF invocation, DB<->JEN connections")

        # -- Exact database side (identical to repartition) --------------
        t_parts = self._run_db_filter(
            warehouse, query, costing, trace, stats,
            description="apply local predicates + projection on T",
        )
        db_bloom = None
        scan_gate = ["startup"]
        if self.use_bloom:
            db_bloom = self._run_bf_db(warehouse, query, costing, trace,
                                       stats)
            scan_gate = ["startup", "bf_db_send"]
        t_prime = Table.concat(t_parts)
        t_tuples = t_prime.num_rows
        t_wire_bytes = t_parts[0].row_bytes()

        # -- Stratified block sample over L ------------------------------
        blocks = warehouse.hdfs.table_blocks(query.hdfs_table)
        if not blocks:
            raise JoinError(
                f"HDFS table {query.hdfs_table!r} has no blocks to sample"
            )
        sample = plan_block_sample(
            blocks, policy.sample_rate, policy.seed, policy.min_blocks
        )
        estimator = JoinAggregateEstimator(
            query, total_blocks=sample.total_blocks,
            confidence=policy.confidence,
        )
        tracker = SnapshotTracker()

        scanned = {"rows": 0.0, "bytes": 0.0, "after_pred": 0.0,
                   "after_bloom": 0.0}

        def on_block(rows_scanned, stored_bytes, rows_after_predicates,
                     rows_after_bloom, bloom_applied):
            scanned["rows"] += rows_scanned
            scanned["bytes"] += stored_bytes
            scanned["after_pred"] += rows_after_predicates
            scanned["after_bloom"] += rows_after_bloom

        request = ScanRequest.from_query(query)
        wire_tuples = 0
        join_output = 0
        first_wire: Optional[Table] = None
        local_blocks = remote_blocks = 0
        stream = jen.scan_sampled_blocks(
            query.hdfs_table, request, sample.ordering, db_bloom=db_bloom
        )
        try:
            with adaptive_hooks.observing_blocks(on_block):
                for wire, block_stats in stream:
                    if first_wire is None:
                        first_wire = wire
                    local_blocks += block_stats.local_blocks
                    remote_blocks += block_stats.remote_blocks
                    wire_tuples += wire.num_rows
                    join_output += estimator.observe_join_block(
                        t_prime, wire
                    )
                    if self._should_stop(estimator, tracker, sample):
                        break
        finally:
            stream.close()

        snapshot = tracker.snapshots[-1] if tracker.snapshots else None
        estimate = estimator.estimate()
        self.last_estimate = estimate
        self.last_snapshots = list(tracker.snapshots)

        # -- Honest pricing of the sampled pipeline ----------------------
        stats.hdfs_rows_scanned = scanned["rows"]
        stats.hdfs_stored_bytes_scanned = scanned["bytes"]
        stats.hdfs_rows_after_predicates = scanned["after_pred"]
        stats.hdfs_rows_after_bloom = scanned["after_bloom"]
        stats.hdfs_tuples_shuffled = wire_tuples
        stats.db_tuples_sent = t_tuples
        stats.join_output_tuples = join_output
        stats.result_rows = estimate.result.num_rows

        meta = warehouse.hdfs.table_meta(query.hdfs_table)
        total_read = local_blocks + remote_blocks
        remote_fraction = remote_blocks / total_read if total_read else 0.0
        trace.add("hdfs_scan", "hdfs_scan",
                  costing.hdfs_scan_seconds(
                      scanned["bytes"], scanned["rows"], meta.format_name,
                      remote_fraction=remote_fraction,
                  ),
                  after=list(scan_gate),
                  description=f"sampled scan of L ({meta.format_name}): "
                              f"{estimate.blocks_scanned}/"
                              f"{estimate.blocks_total} blocks"
                              + (", BF_DB" if db_bloom is not None else ""),
                  volume_bytes=scanned["bytes"],
                  tuples=scanned["rows"])
        l_wire_bytes = (
            first_wire.row_bytes() if first_wire is not None else 0
        )
        trace.add("jen_shuffle", "shuffle",
                  costing.jen_shuffle_seconds(wire_tuples, l_wire_bytes),
                  streams_from=["hdfs_scan"],
                  description="agreed-hash shuffle of sampled L' rows",
                  tuples=wire_tuples)
        trace.add("db_export", "transfer",
                  costing.db_export_seconds(t_tuples, t_wire_bytes),
                  after=["db_filter"],
                  description="DB workers send T' via agreed hash",
                  tuples=t_tuples,
                  volume_bytes=t_tuples * t_wire_bytes)
        trace.add("hash_build", "cpu",
                  costing.hash_build_seconds(wire_tuples),
                  streams_from=["jen_shuffle"],
                  description="build hash tables on sampled L' rows",
                  tuples=wire_tuples)
        trace.add("probe", "cpu",
                  costing.probe_seconds(t_tuples, join_output),
                  after=["hash_build"],
                  streams_from=["db_export"],
                  description="probe with database rows",
                  tuples=t_tuples)
        trace.add("aggregate", "cpu",
                  costing.jen_aggregate_seconds(join_output),
                  streams_from=["probe"],
                  description="post-join predicate, per-block partial agg",
                  tuples=join_output)
        # Interval estimation touches one accumulator per (group, cell):
        # price it as an aggregate pass over the result rows.
        cell_rows = max(1, len(estimate.cells))
        trace.add("estimate_intervals", "cpu",
                  costing.jen_aggregate_seconds(cell_rows),
                  after=["aggregate"],
                  description="closed-form interval estimation per cell",
                  tuples=cell_rows)
        trace.add("result_return", "latency",
                  costing.result_return_seconds(),
                  after=["estimate_intervals"],
                  description="return estimates + intervals to the "
                              "database")

        trace.metadata["approx"] = self._report(estimate, snapshot)
        return self._finish(warehouse, query, estimate.result, stats, trace)

    # ------------------------------------------------------------------
    def _should_stop(self, estimator: JoinAggregateEstimator,
                     tracker: SnapshotTracker, sample) -> bool:
        """The stopping rule, evaluated after every consumed block.

        * progressive: record a snapshot per block; stop early only when
          a ``max_error`` target is met, otherwise refine to exactness.
        * one-shot: stop at the planned target; with a ``max_error``
          target keep drawing past it until the intervals are tight
          enough (or the table is exhausted).
        """
        policy = self.policy
        consumed = estimator.blocks_observed
        if self.progressive:
            snapshot = tracker.record(estimator.estimate())
            return error_target_met(snapshot, policy)
        if consumed < sample.target_blocks:
            return False
        if policy.max_error is None:
            return True
        if consumed < policy.min_blocks:
            return False
        estimate = estimator.estimate()
        return (
            estimate.exact
            or estimate.max_relative_error() <= policy.max_error
        )

    def _report(self, estimate: ApproxEstimate,
                snapshot: Optional[Snapshot]) -> dict:
        """The ``trace.metadata["approx"]`` payload.

        Cells come from the final progressive snapshot when one exists
        (monotone, clamped intervals) and from the raw estimate
        otherwise — one-shot runs report unclamped intervals so the
        stated coverage stays honest.
        """
        cells = snapshot.cells if snapshot is not None else estimate.cells
        policy = self.policy
        return {
            "sample_rate": policy.sample_rate,
            "confidence": policy.confidence,
            "max_error": policy.max_error,
            "seed": policy.seed,
            "progressive": self.progressive,
            "blocks_total": estimate.blocks_total,
            "blocks_scanned": estimate.blocks_scanned,
            "fraction_scanned": estimate.fraction_scanned,
            "exact": estimate.exact,
            "unsupported": list(estimate.unsupported),
            "cells": [
                {
                    "group": list(key[0]),
                    "aggregate": key[1],
                    "estimate": cell.estimate,
                    "lower": cell.lower,
                    "upper": cell.upper,
                    "half_width": cell.half_width,
                    "raw_half_width": cell.raw_half_width,
                    "exact": cell.exact,
                }
                for key, cell in sorted(cells.items(),
                                        key=lambda item: item[0])
            ],
            "snapshots": list(self.last_snapshots),
        }
