"""The accuracy/latency knob of the approximate tier.

An :class:`ApproxPolicy` is what a tenant (or the service operator)
states about a degraded query: how much of the HDFS side to scan, what
confidence the reported intervals must carry, and — optionally — a
relative-error target that lets a progressive run stop as soon as every
reported interval is tight enough.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.errors import ServiceError


@dataclass(frozen=True)
class ApproxPolicy:
    """Per-tenant accuracy target of the degraded (approximate) tier."""

    #: Fraction of HDFS blocks an approximate run scans.
    sample_rate: float = 0.25
    #: Stated coverage of the reported confidence intervals — the
    #: tenant's accuracy target.  The statistical contract
    #: (:mod:`repro.testkit.statcheck`) verifies the exact answer lands
    #: inside the interval at no less than this rate across seeds.
    confidence: float = 0.95
    #: Optional relative half-width target.  When set, a progressive
    #: run keeps refining past ``sample_rate`` until every reported
    #: interval satisfies ``half_width <= max_error * |estimate|``
    #: (absolute ``half_width <= max_error`` for zero estimates).
    max_error: Optional[float] = None
    #: Never estimate from fewer sampled blocks than this (degenerate
    #: samples have no usable variance estimate).
    min_blocks: int = 4
    #: Seed of the block-sampling permutation.
    seed: int = 11

    def __post_init__(self):
        if not 0.0 < self.sample_rate <= 1.0:
            raise ServiceError(
                f"sample_rate must be in (0, 1], got {self.sample_rate}"
            )
        if not 0.5 <= self.confidence < 1.0:
            raise ServiceError(
                f"confidence must be in [0.5, 1), got {self.confidence}"
            )
        if self.max_error is not None and self.max_error <= 0:
            raise ServiceError("max_error must be positive when set")
        if self.min_blocks < 1:
            raise ServiceError("min_blocks must be >= 1")
