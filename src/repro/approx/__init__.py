"""Approximate & progressive joins — the service plane's degraded tier.

Stratified block-level sampling over the HDFS side feeds the existing
join pipeline; closed-form estimators turn per-block group
contributions into confidence intervals for count/sum/avg
join-aggregates, and a progressive mode streams monotonically refining
snapshots until an error target (or exactness) is reached.  The
statistical contract — across seeds, the oracle answer falls inside the
reported interval at no less than the stated rate — is enforced by
:mod:`repro.testkit.statcheck`.
"""

from repro.approx.algorithm import ApproxJoin
from repro.approx.estimator import (
    ApproxEstimate,
    CellEstimate,
    JoinAggregateEstimator,
    t_critical,
)
from repro.approx.policy import ApproxPolicy
from repro.approx.progressive import Snapshot, SnapshotTracker, error_target_met
from repro.approx.sampler import BlockSample, plan_block_sample

__all__ = [
    "ApproxEstimate",
    "ApproxJoin",
    "ApproxPolicy",
    "BlockSample",
    "CellEstimate",
    "JoinAggregateEstimator",
    "Snapshot",
    "SnapshotTracker",
    "error_target_met",
    "plan_block_sample",
    "t_critical",
]
