"""Top-level command line interface.

Usage::

    python -m repro demo                      # quick end-to-end tour
    python -m repro sql "SELECT ..."          # run SQL on a demo warehouse
    python -m repro sql --algorithm zigzag -f query.sql
    python -m repro serve --queries 24 --slots 8  # concurrent stream
    python -m repro advise --sigma-t 0.1 --sigma-l 0.2
    python -m repro experiments [ids...]      # same as python -m repro.bench
    python -m repro bench --out BENCH_wallclock.json  # kernel wall clock
    python -m repro fuzz --seeds 2015 2016 --artifacts fuzz-artifacts

The demo warehouse is the paper's Table-1 workload at 1/25,000 scale,
generated on the fly.
"""

from __future__ import annotations

import argparse
import pathlib
import sys

from repro import (
    HybridWarehouse,
    JoinAdvisor,
    WorkloadEstimate,
    WorkloadSpec,
    algorithm_by_name,
    default_config,
    generate_workload,
    valid_algorithm_names,
)
from repro.errors import JoinError, ServiceError
from repro.sql import SqlSession
from repro.sql.lexer import SqlError
from repro.workload import build_paper_query


def _demo_warehouse(scale: float = 1 / 25_000):
    workload = generate_workload(WorkloadSpec(
        sigma_t=0.1, sigma_l=0.4, s_t=0.2, s_l=0.1,
        t_rows=max(1000, int(1.6e9 * scale)),
        l_rows=max(10_000, int(15e9 * scale)),
        n_keys=max(100, int(16e6 * scale)),
    ))
    warehouse = HybridWarehouse(default_config(scale=scale))
    warehouse.load_db_table("T", workload.t_table, distribute_on="uniqKey")
    warehouse.database.create_index("T", "idx_pred", ["corPred", "indPred"])
    warehouse.database.create_index(
        "T", "idx_bloom", ["corPred", "indPred", "joinKey"]
    )
    warehouse.load_hdfs_table("L", workload.l_table, "parquet")
    return warehouse, workload


def _cmd_demo(_args) -> int:
    warehouse, workload = _demo_warehouse()
    query = build_paper_query(workload)
    print("Table-1 workload loaded "
          f"(T={workload.t_table.num_rows} rows, "
          f"L={workload.l_table.num_rows} rows at 1/25,000 scale)\n")
    for name in ("db", "db(BF)", "broadcast", "repartition",
                 "repartition(BF)", "zigzag"):
        result = algorithm_by_name(name).run(warehouse, query)
        print(result.summary())
    print("\nzigzag phase schedule:")
    print(algorithm_by_name("zigzag").run(warehouse, query)
          .timing.breakdown())
    return 0


def _cmd_sql(args) -> int:
    if args.file:
        sql = pathlib.Path(args.file).read_text()
    elif args.query:
        sql = args.query
    else:
        print("provide a query string or --file", file=sys.stderr)
        return 2
    if args.algorithm != "auto":
        try:
            algorithm_by_name(args.algorithm)
        except JoinError as exc:
            print(f"error: {exc}", file=sys.stderr)
            print("valid algorithms: auto, "
                  + ", ".join(valid_algorithm_names()), file=sys.stderr)
            return 2
    warehouse, _workload = _demo_warehouse()
    session = SqlSession(warehouse)
    try:
        result = session.execute(sql, algorithm=args.algorithm)
    except SqlError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(f"algorithm: {result.algorithm}"
          + (f"  ({result.advisor_rationale})"
             if result.advisor_rationale else ""))
    print(f"simulated: {result.simulated_seconds:.1f}s at paper scale\n")
    headers = result.table.schema.names
    print("  ".join(str(h) for h in headers))
    for row in result.rows()[: args.limit]:
        print("  ".join(str(value) for value in row))
    remaining = result.table.num_rows - args.limit
    if remaining > 0:
        print(f"... {remaining} more rows")
    return 0


def _cmd_serve(args) -> int:
    from repro.service import (
        AdmissionConfig,
        QueryService,
        ServiceConfig,
        StreamSpec,
        generate_query_stream,
    )

    try:
        spec = StreamSpec(
            num_queries=args.queries, templates=args.templates,
            arrival_gap=args.arrival_gap, tenants=args.tenants,
            seed=args.seed,
        )
        approx_policy = None
        if args.approx_rate is not None or args.approx_max_error is not None:
            from repro.approx import ApproxPolicy

            approx_policy = ApproxPolicy(
                sample_rate=(
                    0.25 if args.approx_rate is None else args.approx_rate
                ),
                confidence=args.approx_confidence,
                max_error=args.approx_max_error,
            )
        config = ServiceConfig(admission=AdmissionConfig(slots=args.slots),
                               enable_adaptive=args.adaptive,
                               approx_degrade=args.approx_degrade,
                               approx_policy=approx_policy)
    except ServiceError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.algorithm != "auto":
        try:
            algorithm_by_name(args.algorithm)
        except JoinError as exc:
            print(f"error: {exc}", file=sys.stderr)
            print("valid algorithms: auto, "
                  + ", ".join(valid_algorithm_names()), file=sys.stderr)
            return 2
    from repro import parallel

    warehouse, workload = _demo_warehouse()
    service = QueryService(warehouse, config)
    for item in generate_query_stream(workload, spec):
        service.submit(item.query, tenant=item.tenant, at=item.at,
                       algorithm=args.algorithm, priority=item.priority)
    print(f"replaying {args.queries} queries "
          f"({args.templates} templates, {args.tenants} tenants, "
          f"{args.slots} admission slots, "
          f"{args.backend} execution backend)\n")
    previous_backend = parallel.set_execution_backend(
        args.backend, workers=args.pool_workers)
    try:
        report = service.drain()
    finally:
        parallel.set_execution_backend(previous_backend)
        if args.backend == "process":
            parallel.shutdown_backend()
    print(report.render())
    return 0


def _cmd_report(args) -> int:
    import json

    from repro.latemat import set_late_materialization_enabled
    from repro.service import (
        AdmissionConfig,
        QueryService,
        ServiceConfig,
        StreamSpec,
        generate_query_stream,
    )

    try:
        spec = StreamSpec(
            num_queries=args.queries, templates=args.templates,
            arrival_gap=args.arrival_gap, tenants=args.tenants,
            seed=args.seed,
        )
        config = ServiceConfig(admission=AdmissionConfig(slots=args.slots))
    except ServiceError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    warehouse, workload = _demo_warehouse()
    service = QueryService(warehouse, config)
    for item in generate_query_stream(workload, spec):
        service.submit(item.query, tenant=item.tenant, at=item.at,
                       priority=item.priority)
    previous = set_late_materialization_enabled(args.late_materialization)
    try:
        service.drain()
    finally:
        set_late_materialization_enabled(previous)
    if args.json:
        print(json.dumps(service.metrics.summary(), indent=2, sort_keys=True))
        return 0
    print(f"metrics summary after {args.queries} queries "
          f"({args.tenants} tenants"
          + (", late materialization on" if args.late_materialization
             else "")
          + ")\n")
    print(service.metrics.render_report())
    return 0


def _cmd_approx(args) -> int:
    from repro.approx import ApproxJoin

    warehouse, workload = _demo_warehouse()
    query = build_paper_query(workload)
    progressive = args.progressive or args.max_error is not None
    try:
        join = ApproxJoin(
            sample_rate=args.rate, confidence=args.confidence,
            seed=args.seed, progressive=progressive,
            max_error=args.max_error, use_bloom=args.bloom,
        )
    except ServiceError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    result = join.run(warehouse, query)
    report = result.trace.metadata["approx"]

    print(f"approximate {'progressive ' if progressive else ''}join on "
          f"the demo warehouse (rate {args.rate:g}, "
          f"confidence {args.confidence:g})")
    print(f"scanned {report['blocks_scanned']}/{report['blocks_total']} "
          f"blocks ({report['fraction_scanned']:.0%}), "
          f"simulated {result.total_seconds:.1f}s"
          + (" — exact" if report["exact"] else ""))
    if progressive:
        print("\nrefinement stream:")
        for snap in join.last_snapshots:
            error = snap.max_relative_error()
            error_text = f"{error:8.1%}" if error != float("inf") \
                else "     inf"
            print(f"  {snap.blocks_scanned:3d}/{snap.blocks_total} blocks "
                  f"({snap.fraction_scanned:4.0%})  "
                  f"max relative error {error_text}")
    print("\nestimates:")
    for cell in report["cells"]:
        group = ",".join(str(v) for v in cell["group"])
        if cell["exact"]:
            interval = "exact"
        elif cell["half_width"] == float("inf"):
            interval = "no interval yet"
        else:
            interval = (f"[{cell['lower']:.1f}, {cell['upper']:.1f}] "
                        f"@ {args.confidence:.0%}")
        print(f"  {group:<24s} {cell['aggregate']:<22s} "
              f"{cell['estimate']:12.1f}  {interval}")
    if report["unsupported"]:
        print("\nno closed-form interval (sampled extremes): "
              + ", ".join(report["unsupported"]))
    return 0


def _cmd_chaos(args) -> int:
    from repro.errors import FaultError, FaultSpecError
    from repro.faults import FaultPlan
    from repro.query.executor import reference_join

    try:
        plan = FaultPlan.from_spec(args.faults, seed=args.seed)
    except FaultSpecError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    for name in args.algorithms:
        try:
            algorithm_by_name(name)
        except JoinError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
    warehouse, workload = _demo_warehouse()
    query = build_paper_query(workload)
    expected = reference_join(
        workload.t_table, workload.l_table, query
    ).to_rows()
    print(f"chaos run: {plan}\n")
    mismatches = 0
    for name in args.algorithms:
        baseline = algorithm_by_name(name).run(warehouse, query)
        injector = warehouse.arm_faults(plan)
        try:
            faulted = algorithm_by_name(name).run(warehouse, query)
        except FaultError as exc:
            print(f"{name:<18s} UNRECOVERABLE: {type(exc).__name__}: {exc}")
            warehouse.disarm_faults()
            continue
        warehouse.disarm_faults()
        identical = faulted.result.to_rows() == expected
        if not identical:
            mismatches += 1
        recovery = [phase for phase in faulted.trace
                    if phase.kind == "recovery"]
        print(f"{name:<18s} fault-free={baseline.total_seconds:8.1f}s  "
              f"faulted={faulted.total_seconds:8.1f}s  "
              f"overhead={faulted.total_seconds - baseline.total_seconds:+8.1f}s  "
              f"result={'identical' if identical else 'MISMATCH'}")
        for phase in recovery:
            print(f"    +{phase.seconds:7.1f}s {phase.description}")
        for line in injector.report().splitlines()[1:]:
            print(f"  {line}")
        print()
    if mismatches:
        print(f"{mismatches} algorithm(s) diverged from the reference join",
              file=sys.stderr)
        return 1
    return 0


def _cmd_advise(args) -> int:
    advisor = JoinAdvisor()
    decision = advisor.decide(WorkloadEstimate(
        t_rows=args.t_rows, l_rows=args.l_rows,
        sigma_t=args.sigma_t, sigma_l=args.sigma_l,
        s_t=args.s_t, s_l=args.s_l,
        format_name=args.format,
    ))
    print(f"recommended: {decision.best}")
    print(f"rationale:   {decision.rationale}\n")
    for name, seconds in decision.ranking():
        print(f"  {name:<18s} {seconds:8.1f}s (estimated)")
    return 0


def _cmd_sweep(args) -> int:
    from repro.bench.reporting import format_series
    from repro.bench.sweep import grid, run_sweep

    points = grid(args.sigma_t, args.sigma_l, s_l=args.s_l,
                  format_name=args.format)
    result = run_sweep(points, args.algorithms)
    print(format_series(
        result.rows, "sigma_L", "seconds", "algorithm",
        title=f"simulated seconds (sigma_T={args.sigma_t}, "
              f"S_L'={args.s_l}, {args.format})",
    ))
    print("\nwinners by point:")
    for point, winner in result.winners().items():
        print(f"  {point:<40s} {winner}")
    for point, reason in result.skipped:
        print(f"  skipped {point.label()}: {reason}")
    return 0


def _cmd_experiments(args) -> int:
    from repro.bench.__main__ import main as bench_main

    argv = list(args.ids)
    if args.figures:
        from repro.bench import EXPERIMENTS, WarehouseCache
        from repro.bench.figures import render_experiment

        cache = WarehouseCache()
        for experiment_id in (argv or list(EXPERIMENTS)):
            result = EXPERIMENTS[experiment_id].run(cache)
            print(render_experiment(result))
            print()
        return 0
    return bench_main(argv)


def _cmd_bench(args) -> int:
    from repro.bench.wallclock import run_from_args

    return run_from_args(args)


def _cmd_fuzz(args) -> int:
    from repro.testkit.fuzz import run_fuzz

    report = run_fuzz(
        seeds=args.seeds,
        cells_per_seed=args.cells_per_seed,
        rows_scale=args.rows_scale,
        include_edge_cases=args.edge_cases,
        artifact_dir=args.artifacts,
        shrink_budget=args.shrink_budget,
    )
    print(report.render())
    return 0 if report.ok else 1


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Hybrid-warehouse joins (EDBT 2015 reproduction)",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("demo", help="run every algorithm on the "
                                       "Table-1 workload")

    sql_parser = subparsers.add_parser("sql", help="run a SQL query on a "
                                                   "demo warehouse")
    sql_parser.add_argument("query", nargs="?", help="SQL text")
    sql_parser.add_argument("--file", "-f", help="read SQL from a file")
    sql_parser.add_argument("--algorithm", default="auto",
                            help="join algorithm (default: auto)")
    sql_parser.add_argument("--limit", type=int, default=20,
                            help="result rows to print")

    serve_parser = subparsers.add_parser(
        "serve", help="replay a concurrent query stream through the "
                      "service plane"
    )
    serve_parser.add_argument("--queries", type=int, default=24,
                              help="stream length")
    serve_parser.add_argument("--templates", type=int, default=4,
                              help="distinct query templates")
    serve_parser.add_argument("--tenants", type=int, default=2)
    serve_parser.add_argument("--slots", type=int, default=8,
                              help="admission slots (max in-flight)")
    serve_parser.add_argument("--arrival-gap", type=float, default=5.0,
                              help="simulated seconds between arrivals")
    serve_parser.add_argument("--algorithm", default="auto")
    serve_parser.add_argument("--adaptive", action="store_true",
                              help="run auto queries through the "
                                   "adaptive (mid-query re-optimizing) "
                                   "path")
    serve_parser.add_argument("--seed", type=int, default=11)
    serve_parser.add_argument("--backend", default="sequential",
                              choices=["sequential", "process"],
                              help="execution backend for query "
                                   "execution (process = real "
                                   "multiprocessing pool)")
    serve_parser.add_argument(
        "--approx-degrade", action="store_true",
        help="shed overload to the approximate tier instead of "
             "rejecting best-effort queries")
    serve_parser.add_argument(
        "--approx-rate", type=float, default=None,
        help="degraded-tier block sampling rate (default 0.25)")
    serve_parser.add_argument(
        "--approx-confidence", type=float, default=0.95,
        help="degraded-tier interval confidence")
    serve_parser.add_argument(
        "--approx-max-error", type=float, default=None,
        help="degraded-tier relative-error target (enables "
             "progressive refinement until met)")
    serve_parser.add_argument("--pool-workers", type=int, default=None,
                              help="process-pool size for "
                                   "--backend process (default: host "
                                   "core count)")

    report_parser = subparsers.add_parser(
        "report", help="replay a query stream and summarize the metrics "
                       "registry (per-tenant latency, cache hit rates, "
                       "bytes shipped)"
    )
    report_parser.add_argument("--queries", type=int, default=24,
                               help="stream length")
    report_parser.add_argument("--templates", type=int, default=4,
                               help="distinct query templates")
    report_parser.add_argument("--tenants", type=int, default=2)
    report_parser.add_argument("--slots", type=int, default=8,
                               help="admission slots (max in-flight)")
    report_parser.add_argument("--arrival-gap", type=float, default=5.0,
                               help="simulated seconds between arrivals")
    report_parser.add_argument("--seed", type=int, default=11)
    report_parser.add_argument("--late-materialization",
                               action="store_true",
                               help="run the stream with thin-row "
                                    "shipping + payload stitch enabled")
    report_parser.add_argument("--json", action="store_true",
                               help="emit the summary as JSON")

    approx_parser = subparsers.add_parser(
        "approx", help="run a sampled (approximate) join on the demo "
                       "warehouse and print confidence intervals"
    )
    approx_parser.add_argument("--rate", type=float, default=0.25,
                               help="fraction of HDFS blocks to scan")
    approx_parser.add_argument("--confidence", type=float, default=0.95,
                               help="interval confidence "
                                    "(0.90, 0.95 or 0.99)")
    approx_parser.add_argument("--seed", type=int, default=11,
                               help="block-sampling seed")
    approx_parser.add_argument("--progressive", action="store_true",
                               help="stream refining snapshots block "
                                    "batch by block batch")
    approx_parser.add_argument("--max-error", type=float, default=None,
                               help="stop early once every interval's "
                                    "relative half-width is below this "
                                    "(implies --progressive)")
    approx_parser.add_argument("--bloom", action="store_true",
                               help="push a bloom filter of the EDW "
                                    "join keys into the HDFS scan")

    chaos_parser = subparsers.add_parser(
        "chaos", help="run the workload under an injected fault plan and "
                      "report recovery actions + time overhead"
    )
    chaos_parser.add_argument(
        "--faults", required=True,
        help="fault spec, e.g. 'crash:w7@scan,slow:w3x5,drop:shuffle:0.01'",
    )
    chaos_parser.add_argument(
        "--algorithms", nargs="+",
        default=["zigzag", "repartition(BF)", "db(BF)", "broadcast"],
    )
    chaos_parser.add_argument("--seed", type=int, default=11)

    advise_parser = subparsers.add_parser(
        "advise", help="rank the algorithms for estimated selectivities"
    )
    advise_parser.add_argument("--sigma-t", type=float, required=True)
    advise_parser.add_argument("--sigma-l", type=float, required=True)
    advise_parser.add_argument("--s-t", type=float, default=0.2)
    advise_parser.add_argument("--s-l", type=float, default=0.1)
    advise_parser.add_argument("--t-rows", type=float, default=1.6e9)
    advise_parser.add_argument("--l-rows", type=float, default=15e9)
    advise_parser.add_argument("--format", default="parquet")

    sweep_parser = subparsers.add_parser(
        "sweep", help="sweep selectivities over chosen algorithms"
    )
    sweep_parser.add_argument("--sigma-t", type=float, nargs="+",
                              default=[0.1])
    sweep_parser.add_argument("--sigma-l", type=float, nargs="+",
                              default=[0.01, 0.1, 0.2])
    sweep_parser.add_argument("--s-l", type=float, default=0.1)
    sweep_parser.add_argument("--format", default="parquet")
    sweep_parser.add_argument(
        "--algorithms", nargs="+",
        default=["db(BF)", "repartition(BF)", "zigzag"],
    )

    experiments_parser = subparsers.add_parser(
        "experiments", help="reproduce the paper's tables and figures"
    )
    experiments_parser.add_argument("ids", nargs="*")
    experiments_parser.add_argument("--figures", action="store_true",
                                    help="render ASCII bar charts")

    bench_parser = subparsers.add_parser(
        "bench", help="wall-clock benchmarks of the vectorised kernels "
                      "(naive references vs. repro.kernels)"
    )
    from repro.bench.wallclock import add_arguments as _bench_arguments

    _bench_arguments(bench_parser)

    fuzz_parser = subparsers.add_parser(
        "fuzz", help="differential-fuzz sampled configs against the "
                     "single-node oracle; failures are shrunk to "
                     "minimal repros"
    )
    fuzz_parser.add_argument("--seeds", type=int, nargs="+",
                             default=[2015], help="data-case seeds")
    fuzz_parser.add_argument("--cells-per-seed", type=int, default=10,
                             help="sampled config cells per data case")
    fuzz_parser.add_argument("--rows-scale", type=float, default=1.0,
                             help="scale factor for generated table "
                                  "sizes (CI smoke uses < 1)")
    fuzz_parser.add_argument("--edge-cases", action="store_true",
                             help="also fuzz the named edge-case tables")
    fuzz_parser.add_argument("--artifacts",
                             help="directory for failing-seed artifacts "
                                  "(JSON record + repro snippet)")
    fuzz_parser.add_argument("--shrink-budget", type=int, default=150,
                             help="max executions per shrink")

    args = parser.parse_args(argv)
    handlers = {
        "demo": _cmd_demo,
        "sql": _cmd_sql,
        "serve": _cmd_serve,
        "report": _cmd_report,
        "approx": _cmd_approx,
        "chaos": _cmd_chaos,
        "advise": _cmd_advise,
        "sweep": _cmd_sweep,
        "experiments": _cmd_experiments,
        "bench": _cmd_bench,
        "fuzz": _cmd_fuzz,
    }
    return handlers[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
