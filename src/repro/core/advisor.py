"""The join-site advisor: the paper's Section 5.5 conclusions as code.

Given the workload statistics (table sizes, predicate and join-key
selectivities, storage format), the advisor estimates the execution time
of each algorithm with the same cost model the time plane uses, ranks
them, and explains the choice with the paper's rules of thumb:

* broadcast join only when T′ is very small (the paper's cluster put the
  cutoff around σ_T ≤ 0.001, T′ ≤ 25 MB);
* DB-side join only when the filtered HDFS table is very small
  (σ_L ≤ 0.01 in the paper's runs);
* otherwise an HDFS-side repartition-based join, and among those the
  zigzag join — "the most reliable join method that works the best most
  of the time".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.config import HybridConfig
from repro.core.joins.costing import JoinCosting


@dataclass(frozen=True)
class WorkloadEstimate:
    """Planner-style estimates the advisor works from (paper scale)."""

    t_rows: float
    l_rows: float
    sigma_t: float
    sigma_l: float
    s_t: float
    s_l: float
    #: Wire width of a projected T row / L row in bytes.
    t_wire_bytes: float = 16.0
    l_wire_bytes: float = 32.0
    #: Stored bytes per L row the scan must read.
    l_scan_bytes: float = 30.0
    format_name: str = "parquet"
    bloom_fpr: float = 0.05
    #: Whether each side's storage clusters rows by the join key.  Late
    #: materialization's payload fetch reads whole pages, so surviving
    #: row ids on a key-clustered table land in few pages (amplification
    #: ~1) while a scattered table pays up to the full page factor.
    t_key_clustered: bool = False
    l_key_clustered: bool = False


@dataclass(frozen=True)
class LateMatDecision:
    """Whether late materialization is predicted to pay for a query.

    The advisor compares the classic full-row transfer cost against the
    thin-plus-stitch cost on the repartition-family shape (the paper's
    robust default, and where late materialization changes the most
    bytes).  ``use`` is False whenever the toggle is off, the payloads
    are too narrow to beat the 12-byte thin row, or the join is so
    unselective (near-cartesian) that fetching almost every payload
    back — with page amplification — costs more than shipping full rows
    once.
    """

    enabled: bool
    use: bool
    classic_seconds: float
    latemat_seconds: float
    rationale: str


@dataclass(frozen=True)
class AdvisorDecision:
    """The ranked outcome."""

    best: str
    estimated_seconds: Dict[str, float]
    rationale: str
    #: Per-query late-materialization verdict (None when the advisor
    #: was asked only for the algorithm ranking).
    latemat: Optional[LateMatDecision] = None

    def ranking(self) -> List[Tuple[str, float]]:
        """Algorithms from fastest to slowest estimate.

        Cost ties break on the algorithm name, so the ranking (and
        anything that consumes it, like the ``advise`` CLI output) is
        deterministic regardless of dict insertion order.
        """
        return sorted(self.estimated_seconds.items(),
                      key=lambda kv: (kv[1], kv[0]))


class JoinAdvisor:
    """Rank the algorithms for an estimated workload."""

    def __init__(self, config: Optional[HybridConfig] = None):
        self.config = config or HybridConfig()
        # Estimation happens at paper scale directly: scale factor 1.
        self._costing = JoinCosting(self.config.scaled(1.0))

    # ------------------------------------------------------------------
    def estimate_all(self, est: WorkloadEstimate) -> Dict[str, float]:
        """Analytic time estimates for every algorithm."""
        return {
            "db": self._estimate_db_side(est, use_bloom=False),
            "db(BF)": self._estimate_db_side(est, use_bloom=True),
            "broadcast": self._estimate_broadcast(est),
            "repartition": self._estimate_repartition(est, use_bloom=False),
            "repartition(BF)": self._estimate_repartition(est, use_bloom=True),
            "zigzag": self._estimate_zigzag(est),
        }

    def scan_seconds(self, est: WorkloadEstimate) -> float:
        """Estimated full HDFS scan time — the component the adaptive
        plane pro-rates by observed scan progress."""
        c = self._costing
        return c.hdfs_scan_seconds(
            est.l_rows * est.l_scan_bytes, est.l_rows, est.format_name
        )

    def db_filter_seconds(self, est: WorkloadEstimate) -> float:
        """Estimated database filter time — sunk once T′ is built, and
        credited back when banked T′ partitions make it reusable."""
        return self._costing.db_table_scan_seconds(est.t_rows * 65.0)

    def decide(self, est: WorkloadEstimate) -> AdvisorDecision:
        """Pick the cheapest algorithm (ties on name) and explain it."""
        estimates = self.estimate_all(est)
        best = min(estimates, key=lambda name: (estimates[name], name))
        rationale = self._rationale(est, best)
        return AdvisorDecision(
            best=best, estimated_seconds=estimates, rationale=rationale,
            latemat=self.late_materialization_decision(est),
        )

    def late_materialization_decision(
        self, est: WorkloadEstimate,
        observed_s_t: Optional[float] = None,
        observed_s_l: Optional[float] = None,
    ) -> LateMatDecision:
        """Should this query ship thin rows and stitch, or full rows?

        Compares, with the same :class:`JoinCosting` primitives the
        traces pay, the repartition-shape transfer bill of the classic
        plan (full rows once) against the late-materialized plan (thin
        rows plus a page-amplified payload fetch of the join
        survivors).  ``observed_s_t``/``observed_s_l`` let the adaptive
        plane refine the planner's join-key selectivities with what the
        run actually measured; estimates are used where no observation
        exists.
        """
        from repro.latemat import (
            PAGE_ROWS,
            ROWID_BYTES,
            late_materialization_enabled,
        )

        enabled = late_materialization_enabled()
        c = self._costing
        key_bytes = 4.0
        thin_bytes = key_bytes + ROWID_BYTES
        s_t = est.s_t if observed_s_t is None else observed_s_t
        s_l = est.s_l if observed_s_l is None else observed_s_l
        t_prime = est.t_rows * est.sigma_t
        l_prime = est.l_rows * est.sigma_l
        skew = self._shuffle_skew()

        classic = (
            c.jen_shuffle_seconds(l_prime, est.l_wire_bytes, skew=skew)
            + c.db_export_seconds(t_prime, est.t_wire_bytes)
        )

        # Thin rows move first; survivors of the join fetch their
        # payload back in whole 64-row pages.  On a key-clustered store
        # the survivors sit in few pages (amplification ~1); scattered
        # row ids touch roughly min(PAGE_ROWS, 1/s) rows per returned
        # row.
        def amplification(survivor_fraction: float,
                          clustered: bool) -> float:
            if clustered or survivor_fraction <= 0:
                return 1.0
            return min(float(PAGE_ROWS),
                       max(1.0, 1.0 / survivor_fraction))

        surv_l_frac = min(1.0, s_l)
        surv_t_frac = min(1.0, s_t)
        l_payload = max(0.0, est.l_wire_bytes - key_bytes) + ROWID_BYTES
        t_payload = max(0.0, est.t_wire_bytes - key_bytes) + ROWID_BYTES
        latemat = (
            c.jen_shuffle_seconds(l_prime, thin_bytes, skew=skew)
            + c.db_export_seconds(t_prime, thin_bytes)
            + c.payload_fetch_seconds(
                l_prime * surv_l_frac, l_payload,
                amplification=amplification(
                    surv_l_frac, est.l_key_clustered
                ),
            )
            + c.payload_fetch_seconds(
                t_prime * surv_t_frac, t_payload,
                amplification=amplification(
                    surv_t_frac, est.t_key_clustered
                ),
                cross_cluster=True,
            )
        )

        wide_enough = (est.l_wire_bytes > thin_bytes
                       or est.t_wire_bytes > thin_bytes)
        use = enabled and wide_enough and latemat < classic
        if not enabled:
            rationale = "late materialization is disabled"
        elif not wide_enough:
            rationale = (f"payload rows are no wider than the "
                         f"{thin_bytes:.0f}-byte thin row; nothing to "
                         "defer")
        elif use:
            rationale = (f"selective join (S_T={s_t:g}, S_L={s_l:g}) on "
                         "wide payloads: thin shuffle + stitch beats "
                         "full-row shipping")
        else:
            rationale = (f"join keeps most rows (S_T={s_t:g}, "
                         f"S_L={s_l:g}): page-amplified payload fetches "
                         "would out-cost the full-row transfer")
        return LateMatDecision(
            enabled=enabled, use=use, classic_seconds=classic,
            latemat_seconds=latemat, rationale=rationale,
        )

    # ------------------------------------------------------------------
    # Per-algorithm analytic estimates.  These intentionally use the same
    # JoinCosting primitives as the real traces, composed with the same
    # overlap structure (max() where the engines pipeline).
    # ------------------------------------------------------------------
    def _shuffle_skew(self) -> float:
        """Skew multiplier the HDFS-side shuffle/build estimates pay.

        Mirrors the executed algorithms: the configured analytic factor,
        capped by :meth:`JoinCosting.effective_shuffle_skew` when the
        skew plane is on (the hybrid shuffle spreads the hot keys, so
        the advisor must not over-penalise the repartition family).  No
        measured balance exists at planning time, so the cap is the
        constant :data:`~repro.core.joins.costing.HYBRID_SHUFFLE_SKEW_CAP`.
        """
        from repro.skew import skew_handling_enabled

        return self._costing.effective_shuffle_skew(
            max(1.0, self.config.shuffle_skew),
            hybrid=skew_handling_enabled(),
        )

    def _common(self, est: WorkloadEstimate):
        c = self._costing
        t_prime = est.t_rows * est.sigma_t
        l_prime = est.l_rows * est.sigma_l
        scan = c.hdfs_scan_seconds(
            est.l_rows * est.l_scan_bytes, est.l_rows, est.format_name
        )
        t_meta_bytes = est.t_rows * 65.0
        db_filter = c.db_table_scan_seconds(t_meta_bytes)
        return c, t_prime, l_prime, scan, db_filter

    def _estimate_repartition(self, est: WorkloadEstimate,
                              use_bloom: bool) -> float:
        c, t_prime, l_prime, scan, db_filter = self._common(est)
        shuffled = l_prime
        bloom_cost = 0.0
        if use_bloom:
            shuffled = l_prime * min(1.0, est.s_l + est.bloom_fpr)
            bloom_cost = c.bloom_to_jen_seconds()
        skew = self._shuffle_skew()
        shuffle = c.jen_shuffle_seconds(shuffled, est.l_wire_bytes, skew=skew)
        build = c.hash_build_seconds(shuffled, skew=skew)
        export = c.db_export_seconds(t_prime, est.t_wire_bytes)
        output = self._join_output(est)
        tail = (c.probe_seconds(t_prime, output)
                + c.jen_aggregate_seconds(output))
        hdfs_path = bloom_cost + max(scan, shuffle) + build
        db_path = db_filter + export
        return (c.startup_seconds() + max(hdfs_path, db_path) + tail
                + c.result_return_seconds())

    def _estimate_zigzag(self, est: WorkloadEstimate) -> float:
        c, t_prime, l_prime, scan, db_filter = self._common(est)
        shuffled = l_prime * min(1.0, est.s_l + est.bloom_fpr)
        t_sent = t_prime * min(1.0, est.s_t + est.bloom_fpr)
        skew = self._shuffle_skew()
        shuffle = c.jen_shuffle_seconds(shuffled, est.l_wire_bytes, skew=skew)
        build = c.hash_build_seconds(shuffled, skew=skew)
        output = self._join_output(est)
        tail = (c.probe_seconds(t_sent, output)
                + c.jen_aggregate_seconds(output))
        hdfs_path = (c.bloom_to_jen_seconds() + max(scan, shuffle)
                     + c.bloom_merge_intra_jen_seconds()
                     + c.bloom_to_db_seconds()
                     + c.db_second_access_seconds(t_prime)
                     + c.db_export_seconds(t_sent, est.t_wire_bytes))
        return (c.startup_seconds() + max(hdfs_path, db_filter + build)
                + tail + c.result_return_seconds())

    def _estimate_broadcast(self, est: WorkloadEstimate) -> float:
        c, t_prime, l_prime, scan, db_filter = self._common(est)
        n = self.config.cluster.jen_workers()
        broadcast = c.db_export_seconds(t_prime, est.t_wire_bytes, copies=n)
        build = c.hash_build_seconds(t_prime, per_worker_full_copy=True)
        output = self._join_output(est)
        tail = (c.probe_seconds(l_prime, output)
                + c.jen_aggregate_seconds(output))
        return (c.startup_seconds()
                + max(scan, db_filter + broadcast + build)
                + tail + c.result_return_seconds())

    def _estimate_db_side(self, est: WorkloadEstimate,
                          use_bloom: bool) -> float:
        c, t_prime, l_prime, scan, db_filter = self._common(est)
        shipped = l_prime
        bloom_cost = 0.0
        if use_bloom:
            shipped = l_prime * min(1.0, est.s_l + est.bloom_fpr)
            bloom_cost = c.bloom_to_jen_seconds()
        ingest = c.db_ingest_seconds(shipped, est.l_wire_bytes)
        internal = c.db_internal_shuffle_seconds(
            shipped * est.l_wire_bytes + t_prime * est.t_wire_bytes
        )
        output = self._join_output(est)
        join = c.db_join_seconds(t_prime + shipped, output)
        return (c.startup_seconds() + bloom_cost
                + max(scan, db_filter) + ingest + internal + join)

    def _join_output(self, est: WorkloadEstimate) -> float:
        """Expected join cardinality under uniform keys."""
        keys = self.config.paper.unique_join_keys
        t_per_key = est.t_rows * est.sigma_t / keys
        l_per_key = est.l_rows * est.sigma_l / keys
        # Overlapping keys: S_T' of JK(T'); JK sizes cancel out of the
        # per-key multiplicities under uniformity.
        common = keys * min(est.sigma_t * est.s_t, 1.0)
        return common * t_per_key * l_per_key

    def _rationale(self, est: WorkloadEstimate, best: str) -> str:
        t_prime_mb = est.t_rows * est.sigma_t * est.t_wire_bytes / 1e6
        if best == "broadcast":
            return (f"T' is tiny ({t_prime_mb:.0f} MB wire): broadcasting "
                    "avoids any HDFS shuffle (paper Section 5.1.2)")
        if best.startswith("db"):
            return (f"sigma_L={est.sigma_l:g} leaves the filtered HDFS "
                    "table small enough to ship into the EDW "
                    "(paper Section 5.3)")
        if best == "zigzag":
            return ("no highly selective local predicate: exploit the "
                    "join-key predicates on both sides "
                    "(paper Sections 3.4, 5.5)")
        return "repartition-based HDFS-side join is the robust default"
