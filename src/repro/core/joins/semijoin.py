"""Related-work baselines: the classic semi-join and the PERF join.

The paper positions the Bloom-filtered algorithms against two classical
alternatives (Section 6): Mackert & Lohman's semijoin — ship the exact
distinct join-key *list* instead of a Bloom filter — and Li & Ross's
PERF join, whose second phase returns a positional bitmap in tuple-scan
order instead of a value filter.

Both are implemented as HDFS-side repartition variants so the comparison
isolates exactly the filter representation:

* :class:`SemiJoin` ships ``|JK(T')| * 4`` bytes of exact keys instead
  of a 16 MB Bloom filter; pruning is exact (no false positives) but the
  transfer grows with the key count.
* :class:`PerfJoin` additionally sends back a one-*bit*-per-tuple map of
  T′ (in scan order) instead of any value structure — the cheapest
  possible second-phase filter, at the price of a second coordinated
  pass.  Mirroring the zigzag join's shape makes the "2-way exchange"
  comparison direct.
"""

from __future__ import annotations

import numpy as np

from repro.core.joins.base import (
    JoinAlgorithm,
    JoinResult,
    JoinStats,
    register_algorithm,
)
from repro.core.joins.repartition import _route_db_rows
from repro.latemat import LateMatPlan
from repro.relational.operators import semi_join_mask, unique_keys
from repro.sim.trace import Trace
from repro.query.query import HybridQuery

#: Bytes per exact join key on the wire.
KEY_BYTES = 4


class _ExactFilterJoin(JoinAlgorithm):
    """Shared machinery of the two exact-filter baselines."""

    #: Whether the second phase sends a positional bitmap back and prunes
    #: the database side too (PERF join) or not (plain semijoin).
    two_way = False

    def run(self, warehouse, query: HybridQuery) -> JoinResult:
        costing = self._costing(warehouse)
        database = warehouse.database
        jen = warehouse.jen
        stats = JoinStats()
        trace = Trace(label=self.name)
        trace.add("startup", "latency", costing.startup_seconds())

        t_parts = self._run_db_filter(
            warehouse, query, costing, trace, stats,
            description="apply local predicates + projection on T",
        )

        # Exact distinct key set instead of a Bloom filter.
        t_keys = unique_keys(np.concatenate([
            part.column(query.db_join_key) for part in t_parts
        ]))
        key_list_bytes = (
            len(t_keys) * costing.scale_up * KEY_BYTES * jen.num_workers
        )
        trace.add("keys_db_send", "transfer",
                  key_list_bytes / costing.topology.switch_bytes_per_s,
                  after=["db_filter"],
                  description="multicast exact JK(T') list to JEN workers",
                  volume_bytes=key_list_bytes)
        stats.bloom_bytes_moved += key_list_bytes

        scan = self._run_hdfs_scan(
            warehouse, query, costing, trace, stats,
            gate=["startup", "keys_db_send"],
        )
        pruned = [
            wire.filter(
                semi_join_mask(wire.column(query.hdfs_join_key), t_keys)
            )
            for wire in scan.wire_tables
        ]
        stats.hdfs_rows_after_bloom = sum(p.num_rows for p in pruned)
        hot_keys = scan.hot_keys
        l_store, l_ship = self._latemat_store(query, pruned, "hdfs")
        shuffled = jen.shuffle_by_key(l_ship, query.hdfs_join_key,
                                      hot_keys=hot_keys)
        stats.hdfs_tuples_shuffled = shuffled.tuples_shuffled
        self._record_hot_shuffle(stats, trace, hot_keys, shuffled)
        l_wire_bytes = self._wire_row_bytes(l_ship)
        shuffle_skew = self._effective_shuffle_skew(
            warehouse, costing, shuffled, hot_keys
        )
        trace.add("jen_shuffle", "shuffle",
                  costing.jen_shuffle_seconds(
                      shuffled.tuples_shuffled, l_wire_bytes,
                      skew=shuffle_skew,
                  ),
                  streams_from=["hdfs_scan"],
                  description="agreed-hash shuffle of exactly pruned L'",
                  tuples=shuffled.tuples_shuffled,
                  volume_bytes=shuffled.tuples_shuffled * l_wire_bytes)

        if self.two_way:
            outgoing, export_gate = self._perf_second_phase(
                costing, trace, stats, query, t_parts, pruned
            )
        else:
            outgoing, export_gate = t_parts, ["db_filter"]

        t_store, t_ship = self._latemat_store(query, outgoing, "db",
                                              stats=stats)
        t_wire_bytes = self._wire_row_bytes(t_ship)
        t_dest, hot_t_tuples, hot_copy_tuples = _route_db_rows(
            t_ship, query.db_join_key, jen.num_workers,
            hot_keys=hot_keys,
        )
        t_tuples = sum(part.num_rows for part in outgoing)
        stats.db_tuples_sent = t_tuples
        stats.hot_tuples_broadcast += hot_copy_tuples
        trace.add("db_export", "transfer",
                  costing.db_export_seconds(t_tuples, t_wire_bytes),
                  after=export_gate,
                  tuples=t_tuples,
                  volume_bytes=t_tuples * t_wire_bytes,
                  description="DB workers send their rows via agreed hash")
        export_names = ["db_export"]
        extra_hot_copies = hot_copy_tuples - hot_t_tuples
        if extra_hot_copies > 0:
            trace.add("jen_hot_relay", "transfer",
                      costing.jen_duplicate_seconds(
                          extra_hot_copies, t_wire_bytes
                      ),
                      streams_from=["db_export"],
                      tuples=extra_hot_copies,
                      volume_bytes=extra_hot_copies * t_wire_bytes,
                      description="home workers relay hot-key rows to "
                                  "their spread worker sets")
            export_names.append("jen_hot_relay")

        latemat_plan = LateMatPlan(l_store=l_store, t_store=t_store)
        result, join_stats = jen.join_and_aggregate(
            shuffled.per_destination, t_dest, query,
            memory_budget_rows=self._memory_budget_rows(warehouse),
            latemat_plan=latemat_plan,
        )
        stats.join_output_tuples = join_stats.join_output_tuples
        stats.result_rows = join_stats.result_rows
        self._add_steal_and_build_phases(
            costing, trace, stats, join_stats, shuffled, l_wire_bytes,
            shuffle_skew,
            description="build hash tables on received pruned L' rows",
        )
        probe_gate = self._add_spill_phase(
            costing, trace, stats, join_stats, l_wire_bytes,
            ["hash_build"],
        )
        trace.add("probe", "cpu",
                  costing.probe_seconds(
                      t_tuples, join_stats.join_output_tuples
                  ),
                  after=probe_gate, streams_from=export_names)
        agg_gate = self._add_payload_fetch_phases(
            costing, trace, latemat_plan, ["probe"]
        )
        trace.add("aggregate", "cpu",
                  costing.jen_aggregate_seconds(
                      join_stats.join_output_tuples
                  ),
                  streams_from=agg_gate)
        trace.add("result_return", "latency",
                  costing.result_return_seconds(), after=["aggregate"])
        return self._finish(warehouse, query, result, stats, trace)

    def _perf_second_phase(self, costing, trace, stats, query,
                           t_parts, pruned):
        """PERF: positional bitmap back, then prune the database side."""
        if any(p.num_rows for p in pruned):
            l_keys = unique_keys(np.concatenate([
                part.column(query.hdfs_join_key) for part in pruned
            ]))
        else:
            l_keys = np.empty(0, dtype=np.int64)
        t_prime_tuples = sum(part.num_rows for part in t_parts)
        bitmap_bytes = t_prime_tuples * costing.scale_up / 8.0
        trace.add("perf_bitmap_send", "transfer",
                  bitmap_bytes / min(
                      costing.topology.hdfs.nic_bytes_per_s,
                      costing.topology.switch_bytes_per_s,
                  ),
                  after=["hdfs_scan"],
                  description="positional bitmap of matching T' tuples",
                  volume_bytes=bitmap_bytes)
        stats.bloom_bytes_moved += bitmap_bytes
        outgoing = [
            part.filter(
                semi_join_mask(part.column(query.db_join_key), l_keys)
            )
            for part in t_parts
        ]
        return outgoing, ["perf_bitmap_send", "db_filter"]


@register_algorithm
class SemiJoin(_ExactFilterJoin):
    """Repartition join pruned by the exact key set of T′."""

    name = "semijoin"
    two_way = False


@register_algorithm
class PerfJoin(_ExactFilterJoin):
    """Two-way exchange with an exact positional bitmap (PERF join)."""

    name = "perf"
    two_way = True
