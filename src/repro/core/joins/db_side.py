"""DB-side join, with or without a Bloom filter (paper Section 3.1).

The strategy every commercial hybrid system of the paper's era used
(PolyBase, HAWQ, SQL-H, Big Data SQL): filter the HDFS table remotely,
ship the survivors *into* the database, and join there.

Steps (Figure 1):

1. DB workers apply local predicates and projection on T; with the
   Bloom-filter variant they build BF_DB (index-only) and multicast it
   to the JEN workers.
2. JEN workers scan L, applying predicates, projection and (optionally)
   BF_DB, and stream the survivors to their paired DB workers — the
   grouped ingest pattern of Figure 5.
3. The database optimizer picks broadcast or repartition for the final
   join; because JEN cannot use the database's private partitioning
   hash, a repartition plan reshuffles the freshly ingested rows again.
4. Join, post-join predicate, group-by and aggregation run in the
   database; the result is already where the user wants it.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.core.joins.base import (
    JoinAlgorithm,
    JoinResult,
    JoinStats,
    register_algorithm,
)
from repro.edw.optimizer import choose_db_join_strategy
from repro.latemat import StitchStats, stitch_parts
from repro.relational.table import Table
from repro.sim.trace import Trace
from repro.query.query import HybridQuery


@register_algorithm
class DbSideJoin(JoinAlgorithm):
    """Ship filtered HDFS rows into the EDW and join there."""

    name = "db"

    def __init__(self, use_bloom: bool = False):
        self.use_bloom = use_bloom
        self.uses_db_bloom = use_bloom

    @property
    def display_name(self) -> str:
        """Paper-style label."""
        return "db(BF)" if self.use_bloom else "db"

    def run(self, warehouse, query: HybridQuery) -> JoinResult:
        costing = self._costing(warehouse)
        database = warehouse.database
        stats = JoinStats()
        trace = Trace(label=self.display_name)
        trace.add("startup", "latency", costing.startup_seconds(),
                  description="read_hdfs UDF, coordinator handshakes")

        # -- T' locally (overlaps the remote scan) -----------------------
        t_parts = self._run_db_filter(
            warehouse, query, costing, trace, stats,
            description="apply local predicates + projection on T",
        )

        # -- Optional BF_DB -----------------------------------------------
        db_bloom = None
        scan_gate = ["startup"]
        if self.use_bloom:
            db_bloom = self._run_bf_db(warehouse, query, costing, trace,
                                       stats)
            scan_gate = ["startup", "bf_db_send"]

        # -- Remote scan + grouped ingest ---------------------------------
        scan = self._run_hdfs_scan(
            warehouse, query, costing, trace, stats, scan_gate,
            db_bloom=db_bloom,
        )
        l_store, l_ship = self._latemat_store(
            query, scan.wire_tables, "hdfs"
        )
        ingested = _group_ingest(l_ship, database.num_workers)
        l_tuples = sum(part.num_rows for part in ingested)
        l_wire_bytes = self._wire_row_bytes(l_ship)
        stats.hdfs_tuples_to_db = l_tuples
        trace.add("hdfs_to_db", "transfer",
                  costing.db_ingest_seconds(l_tuples, l_wire_bytes),
                  streams_from=["hdfs_scan"],
                  description="JEN workers stream filtered L into paired "
                              "DB workers",
                  tuples=l_tuples,
                  volume_bytes=l_tuples * l_wire_bytes)
        shuffle_gate = ["hdfs_to_db"]
        if l_store is not None:
            # Grouped ingest has no hash alignment with the database's
            # private partitioning, so thin rows are pruned against the
            # global key set of T' — exact whatever join strategy the
            # optimizer picks below — before fetching payloads HDFS->EDW.
            from repro.edw.worker import DbWorker

            stats.encoded_wire_bytes += DbWorker.encoded_export_bytes(
                l_ship
            )
            t_keys = np.unique(np.concatenate([
                part.column(query.db_join_key) for part in t_parts
            ]))
            stitch_stats = StitchStats()
            ingested = stitch_parts(
                l_store, ingested, query.hdfs_join_key, t_keys,
                stitch_stats, side="l",
            )
            if stitch_stats.fetched_wire_bytes:
                trace.metadata["stitch_fetched_wire_bytes"] = \
                    stitch_stats.fetched_wire_bytes
            l_payload_bytes = l_store.payload_row_bytes()
            trace.add("payload_fetch_l", "transfer",
                      costing.payload_fetch_seconds(
                          stitch_stats.l_fetched_tuples, l_payload_bytes,
                          stitch_stats.l_amplification,
                          cross_cluster=True, to_db=True,
                      ),
                      streams_from=["hdfs_to_db"],
                      description="fetch surviving L payload rows into "
                                  "the database",
                      tuples=stitch_stats.l_fetched_tuples,
                      volume_bytes=(
                          stitch_stats.l_fetched_tuples * l_payload_bytes
                          * stitch_stats.l_amplification
                      ))
            shuffle_gate = ["payload_fetch_l"]

        # -- Optimizer choice + in-database join --------------------------
        t_tuples = sum(part.num_rows for part in t_parts)
        raw_t_wire = t_tuples * t_parts[0].row_bytes()
        raw_l_wire = sum(
            part.num_rows * part.row_bytes() for part in ingested
        )
        choice = choose_db_join_strategy(
            raw_t_wire, raw_l_wire, database.num_workers
        )
        stats.db_internal_shuffle_bytes = choice.internal_bytes
        trace.add("db_internal_shuffle", "db_shuffle",
                  costing.db_internal_shuffle_seconds(choice.internal_bytes),
                  after=["db_filter"],
                  streams_from=shuffle_gate,
                  description=f"in-database {choice.strategy.value} "
                              "(JEN cannot target the private hash)",
                  volume_bytes=choice.internal_bytes)

        result, join_stats = database.execute_hybrid_join(
            t_parts, ingested, query, choice
        )
        stats.join_output_tuples = join_stats.join_output_tuples
        stats.result_rows = join_stats.result_rows
        trace.add("db_join", "db_cpu",
                  costing.db_join_seconds(
                      join_stats.build_tuples + join_stats.probe_tuples,
                      join_stats.join_output_tuples,
                  ),
                  streams_from=["db_internal_shuffle"],
                  description="in-database hash join, post-join predicate, "
                              "group-by + aggregation",
                  tuples=join_stats.build_tuples + join_stats.probe_tuples)
        return self._finish(warehouse, query, result, stats, trace)


def _group_ingest(wire_tables: List[Table], num_db_workers: int
                  ) -> List[Table]:
    """Assign each JEN worker's output to one DB worker (Fig. 5 groups)."""
    per_db: List[List[Table]] = [[] for _ in range(num_db_workers)]
    for jen_worker, wire in enumerate(wire_tables):
        per_db[jen_worker % num_db_workers].append(wire)
    grouped: List[Table] = []
    empty_template = wire_tables[0].slice(0, 0)
    for pieces in per_db:
        grouped.append(Table.concat(pieces) if pieces else empty_template)
    return grouped
