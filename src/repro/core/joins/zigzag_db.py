"""The DB-side zigzag variant — the strawman the paper rejects.

Section 3.4 closes with: "a variant version of the zigzag join algorithm
which executes the final join on the database side will not perform
well, because scanning the HDFS table twice, without the help of
indexes, is expected to introduce significant overhead."

This module implements exactly that variant so the claim can be
verified rather than assumed (see the ``ablation_zigzag_site``
experiment):

1. DB workers filter/project T, build BF_DB, multicast it.
2. JEN workers scan L once, applying predicates + BF_DB, *only* to build
   BF_H — nothing is shuffled or retained (the join will not happen
   here, and JEN has no indexes to avoid the later re-read).
3. BF_H prunes T′ in the database (cheap, indexed).
4. JEN workers scan L a *second* time, applying predicates + BF_DB
   again, and ship the survivors into the database.
5. The database joins T″ with the ingested rows and aggregates.

Data movement is exactly as frugal as the HDFS-side zigzag join — both
directions are Bloom-filtered — but the second full scan of L is pure
overhead, which is why the paper's zigzag executes the final join where
the big data already is.
"""

from __future__ import annotations

from repro.core.joins.base import (
    JoinAlgorithm,
    JoinResult,
    JoinStats,
    register_algorithm,
)
import numpy as np

from repro.core.joins.db_side import _group_ingest
from repro.edw.optimizer import choose_db_join_strategy
from repro.edw.worker import DbWorker
from repro.latemat import StitchStats, stitch_parts
from repro.sim.trace import Trace
from repro.query.query import HybridQuery


@register_algorithm
class ZigzagDbJoin(JoinAlgorithm):
    """Two-way Bloom filters, but the final join runs in the EDW."""

    name = "zigzag-db"
    uses_db_bloom = True
    uses_hdfs_bloom = True

    def run(self, warehouse, query: HybridQuery) -> JoinResult:
        costing = self._costing(warehouse)
        database = warehouse.database
        jen = warehouse.jen
        stats = JoinStats()
        trace = Trace(label=self.name)
        trace.add("startup", "latency", costing.startup_seconds(),
                  description="UDF invocation, DB<->JEN connections")

        # -- T' and BF_DB --------------------------------------------------
        t_parts = self._run_db_filter(
            warehouse, query, costing, trace, stats,
            description="apply local predicates + projection on T",
        )
        db_bloom = self._run_bf_db(warehouse, query, costing, trace, stats)

        # -- First HDFS scan: only to build BF_H ---------------------------
        first_scan = self._run_hdfs_scan(
            warehouse, query, costing, trace, stats,
            gate=["startup", "bf_db_send"],
            db_bloom=db_bloom,
            build_local_blooms=True,
        )
        hdfs_bloom = first_scan.global_bloom()
        trace.add("bf_h_merge", "bloom",
                  costing.bloom_merge_intra_jen_seconds(),
                  after=["hdfs_scan"],
                  description="merge local BF_H at designated worker")
        trace.add("bf_h_send", "bloom", costing.bloom_to_db_seconds(),
                  after=["bf_h_merge"],
                  description="broadcast BF_H to all DB workers")
        stats.bloom_bytes_moved += (
            costing.bloom_bytes() * max(0, jen.num_workers - 1)
            + costing.bloom_bytes() * database.num_workers
        )

        # -- Prune T' with BF_H (indexed, cheap) ----------------------------
        t_pruned = [
            DbWorker.apply_bloom(part, query.db_join_key, hdfs_bloom)
            for part in t_parts
        ]
        t_prime_tuples = sum(part.num_rows for part in t_parts)
        trace.add("db_second_access", "db_scan",
                  costing.db_second_access_seconds(t_prime_tuples),
                  after=["bf_h_send", "db_filter"],
                  description="apply BF_H to T' (index-assisted)",
                  tuples=t_prime_tuples)

        # -- Second HDFS scan: no indexes, pay the full scan again ---------
        second_scan = jen.distributed_scan(query, db_bloom=db_bloom)
        meta = warehouse.hdfs.table_meta(query.hdfs_table)
        stats.hdfs_rows_scanned += second_scan.stats.rows_scanned
        stats.hdfs_stored_bytes_scanned += \
            second_scan.stats.stored_bytes_scanned
        trace.add("hdfs_scan_2", "hdfs_scan",
                  costing.hdfs_scan_seconds(
                      second_scan.stats.stored_bytes_scanned,
                      second_scan.stats.rows_scanned,
                      meta.format_name,
                  ),
                  after=["hdfs_scan"],
                  description="second full scan of L (no indexes on "
                              "HDFS): predicates + BF_DB again",
                  tuples=second_scan.stats.rows_scanned)

        l_store, l_ship = self._latemat_store(
            query, second_scan.wire_tables, "hdfs"
        )
        ingested = _group_ingest(l_ship, database.num_workers)
        l_tuples = sum(part.num_rows for part in ingested)
        l_wire_bytes = self._wire_row_bytes(l_ship)
        stats.hdfs_tuples_to_db = l_tuples
        trace.add("hdfs_to_db", "transfer",
                  costing.db_ingest_seconds(l_tuples, l_wire_bytes),
                  streams_from=["hdfs_scan_2"],
                  description="ship doubly filtered L'' into the database",
                  tuples=l_tuples,
                  volume_bytes=l_tuples * l_wire_bytes)
        shuffle_gate = ["hdfs_to_db"]
        if l_store is not None:
            # Same exact global-key prune as the plain DB-side join:
            # grouped ingest is not co-partitioned with T''.
            stats.encoded_wire_bytes += DbWorker.encoded_export_bytes(
                l_ship
            )
            t_keys = np.unique(np.concatenate([
                part.column(query.db_join_key) for part in t_pruned
            ]))
            stitch_stats = StitchStats()
            ingested = stitch_parts(
                l_store, ingested, query.hdfs_join_key, t_keys,
                stitch_stats, side="l",
            )
            if stitch_stats.fetched_wire_bytes:
                trace.metadata["stitch_fetched_wire_bytes"] = \
                    stitch_stats.fetched_wire_bytes
            l_payload_bytes = l_store.payload_row_bytes()
            trace.add("payload_fetch_l", "transfer",
                      costing.payload_fetch_seconds(
                          stitch_stats.l_fetched_tuples, l_payload_bytes,
                          stitch_stats.l_amplification,
                          cross_cluster=True, to_db=True,
                      ),
                      streams_from=["hdfs_to_db"],
                      description="fetch surviving L'' payload rows into "
                                  "the database",
                      tuples=stitch_stats.l_fetched_tuples,
                      volume_bytes=(
                          stitch_stats.l_fetched_tuples * l_payload_bytes
                          * stitch_stats.l_amplification
                      ))
            shuffle_gate = ["payload_fetch_l"]

        # -- Final join in the database -------------------------------------
        t_tuples = sum(part.num_rows for part in t_pruned)
        choice = choose_db_join_strategy(
            t_tuples * t_parts[0].row_bytes(),
            sum(part.num_rows * part.row_bytes() for part in ingested),
            database.num_workers,
        )
        stats.db_internal_shuffle_bytes = choice.internal_bytes
        trace.add("db_internal_shuffle", "db_shuffle",
                  costing.db_internal_shuffle_seconds(choice.internal_bytes),
                  after=["db_second_access"],
                  streams_from=shuffle_gate,
                  description=f"in-database {choice.strategy.value}",
                  volume_bytes=choice.internal_bytes)
        result, join_stats = database.execute_hybrid_join(
            t_pruned, ingested, query, choice
        )
        stats.join_output_tuples = join_stats.join_output_tuples
        stats.result_rows = join_stats.result_rows
        trace.add("db_join", "db_cpu",
                  costing.db_join_seconds(
                      join_stats.build_tuples + join_stats.probe_tuples,
                      join_stats.join_output_tuples,
                  ),
                  streams_from=["db_internal_shuffle"],
                  description="in-database hash join + aggregation")
        return self._finish(warehouse, query, result, stats, trace)
