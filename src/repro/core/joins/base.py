"""Join algorithm interface, statistics and results.

A :class:`JoinAlgorithm` takes a :class:`~repro.warehouse.HybridWarehouse`
and a :class:`~repro.query.query.HybridQuery`, executes the real data
plane, prices a :class:`~repro.sim.trace.Trace`, replays it, and returns
a :class:`JoinResult` bundling the answer, the movement statistics (the
paper's Table 1 numbers) and the simulated timing (the paper's figures).
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass, fields
from typing import Dict, List, Tuple, Type

from repro.adaptive import hooks as adaptive_hooks
from repro.errors import JoinError
from repro.relational.table import Table
from repro.sim.replay import TimingResult, replay_trace
from repro.sim.trace import Trace
from repro.core.joins.costing import JoinCosting
from repro.query.query import HybridQuery


@dataclass
class JoinStats:
    """Raw data-plane movement counts for one run.

    All counts are at the *materialised* scale; use :meth:`scaled` with
    the run's scale-up factor for paper-scale numbers (what Table 1
    reports).
    """

    hdfs_rows_scanned: float = 0.0
    hdfs_stored_bytes_scanned: float = 0.0
    hdfs_rows_after_predicates: float = 0.0
    hdfs_rows_after_bloom: float = 0.0
    #: Tuples entering the JEN-to-JEN shuffle (Table 1, column 1).
    hdfs_tuples_shuffled: float = 0.0
    #: Filtered HDFS tuples shipped into the database (DB-side join).
    hdfs_tuples_to_db: float = 0.0
    #: Database tuples shipped to the HDFS side (Table 1, column 2).
    db_tuples_sent: float = 0.0
    #: Copies each exported DB tuple takes (broadcast join: one per JEN
    #: worker).  Not rescaled.
    db_send_copies: float = 1.0
    db_rows_scanned: float = 0.0
    #: Bloom filter bytes moved, already at paper scale.
    bloom_bytes_moved: float = 0.0
    db_internal_shuffle_bytes: float = 0.0
    join_output_tuples: float = 0.0
    result_rows: float = 0.0
    #: Tuples written to and re-read from disk by spilling JEN joins.
    spilled_tuples: float = 0.0
    #: Partial scan output lost to injected worker crashes (wasted work,
    #: not double-counted in ``hdfs_rows_scanned``).
    hdfs_rows_discarded: float = 0.0
    #: Heavy-hitter join keys the skew plane detected.  Not rescaled (a
    #: key count, not a tuple volume).
    hot_keys_detected: float = 0.0
    #: Build-side (L) rows spread off the agreed hash by the hybrid
    #: shuffle.
    hot_tuples_rerouted: float = 0.0
    #: Probe-side (T′) rows broadcast to every JEN worker (counted
    #: once; the trace's ``db_broadcast_hot`` phase carries the copies).
    hot_tuples_broadcast: float = 0.0
    #: Build + probe rows re-dealt across workers by work stealing.
    stolen_tuples: float = 0.0
    #: Measured wire-codec bytes of this run's compact transfers (thin
    #: exports, remote shuffle partitions, stitch fetches).  0 unless
    #: late materialization ran.
    encoded_wire_bytes: float = 0.0

    def scaled(self, multiplier: float) -> "JoinStats":
        """Counts multiplied up to paper scale (Bloom bytes unchanged)."""
        unscaled = {"bloom_bytes_moved", "db_send_copies",
                    "hot_keys_detected"}
        values: Dict[str, float] = {}
        for spec in fields(self):
            value = getattr(self, spec.name)
            values[spec.name] = (
                value if spec.name in unscaled else value * multiplier
            )
        return JoinStats(**values)


@dataclass
class JoinResult:
    """Everything one algorithm run produced."""

    algorithm: str
    result: Table
    stats: JoinStats
    trace: Trace
    timing: TimingResult
    scale_up: float

    @property
    def total_seconds(self) -> float:
        """Simulated end-to-end execution time at paper scale."""
        return self.timing.total_seconds

    def paper_stats(self) -> JoinStats:
        """Movement statistics scaled to paper size."""
        return self.stats.scaled(self.scale_up)

    def critical_path(self) -> List[str]:
        """The phase chain that determined the simulated makespan."""
        return self.timing.critical_path(self.trace)

    def summary(self) -> str:
        """One-line human-readable outcome."""
        paper = self.paper_stats()
        return (
            f"{self.algorithm:<18s} {self.total_seconds:7.1f}s  "
            f"shuffled={paper.hdfs_tuples_shuffled / 1e6:10.1f}M  "
            f"db_sent={paper.db_tuples_sent / 1e6:8.1f}M  "
            f"rows={int(self.result.num_rows)}"
        )


class JoinAlgorithm:
    """Base class: one hybrid-warehouse join strategy."""

    #: Registry / display name (e.g. ``"zigzag"``).
    name: str = "base"
    #: Whether this algorithm uses a database-side Bloom filter.
    uses_db_bloom: bool = False
    #: Whether this algorithm uses an HDFS-side Bloom filter.
    uses_hdfs_bloom: bool = False

    def run(self, warehouse, query: HybridQuery) -> JoinResult:
        """Execute the algorithm end to end."""
        raise NotImplementedError

    # ------------------------------------------------------------------
    # Shared plumbing for subclasses
    # ------------------------------------------------------------------
    def _costing(self, warehouse) -> JoinCosting:
        return JoinCosting(warehouse.config, warehouse.topology)

    def _finish(self, warehouse, query: HybridQuery, result: Table,
                stats: JoinStats, trace: Trace) -> JoinResult:
        """Replay the trace and assemble the result object.

        If a fault plan is armed, the recovery actions the engine
        accumulated (re-scans, retries, speculation) are materialised as
        ``recovery`` phases first, so the replayed makespan pays for
        them and the Gantt timeline shows them.
        """
        injector = getattr(warehouse.jen, "injector", None)
        if injector is not None and injector.armed:
            injector.charge_trace(trace)
        from repro import parallel

        fallbacks = parallel.drain_fallback_events()
        if fallbacks:
            trace.metadata["parallel_fallbacks"] = fallbacks
        trace.metadata["bytes_shipped"] = classify_bytes_shipped(trace)
        timing = replay_trace(trace)
        return JoinResult(
            algorithm=self.name,
            result=result,
            stats=stats,
            trace=trace,
            timing=timing,
            scale_up=1.0 / warehouse.config.scale,
        )

    @staticmethod
    def _wire_row_bytes(tables: List[Table]) -> float:
        """Row width the transfer phases price one wire row at.

        Classic row shipping moves decoded rows, so the logical width
        applies.  With late materialization on, transfers run through
        the compact wire codec (dictionary columns travel as ids), so
        the honest width is :meth:`Table.wire_row_bytes`.
        """
        if not tables:
            raise JoinError("no wire tables")
        from repro.latemat import late_materialization_enabled

        if late_materialization_enabled():
            return tables[0].wire_row_bytes()
        return float(tables[0].row_bytes())

    def _latemat_store(self, query: HybridQuery, tables: List[Table],
                       side: str, stats: JoinStats = None):
        """Thin ``tables`` for a transfer edge if late mat says to.

        Returns ``(store, tables_to_ship)``: the payload store plus the
        thin twins when thinning applies, else ``(None, tables)`` — the
        classic full-width path.  With ``stats``, a database-side thin
        export is measured through the real wire codec.
        """
        from repro.latemat import thin_for_transfer
        from repro.query.plan import needed_wire_columns

        key = (query.hdfs_join_key if side == "hdfs"
               else query.db_join_key)
        store = thin_for_transfer(
            tables, key, needed=needed_wire_columns(query, side)
        )
        if store is None:
            return None, list(tables)
        thin = store.thin_tables()
        if stats is not None and side == "db":
            from repro.edw.worker import DbWorker

            stats.encoded_wire_bytes += DbWorker.encoded_export_bytes(thin)
        return store, thin

    def _add_payload_fetch_phases(self, costing, trace, latemat_plan,
                                  gate, l_cross: bool = False,
                                  t_cross: bool = True) -> List[str]:
        """Emit ``payload_fetch_*`` phases for an executed stitch.

        ``gate`` is what the fetches stream from (typically the probe —
        matches are decided there); returns the gate the aggregate must
        wait on.  ``l_cross``/``t_cross`` say whether that side's
        payload store sits across the EDW<->HDFS boundary.
        """
        if latemat_plan is None or not latemat_plan.active():
            return list(gate)
        stitch = latemat_plan.stats
        if stitch.fetched_wire_bytes:
            trace.metadata["stitch_fetched_wire_bytes"] = \
                stitch.fetched_wire_bytes
        fetch_names: List[str] = []
        sides = (
            ("payload_fetch_l", latemat_plan.l_store, l_cross,
             stitch.l_fetched_tuples, stitch.l_amplification),
            ("payload_fetch_t", latemat_plan.t_store, t_cross,
             stitch.t_fetched_tuples, stitch.t_amplification),
        )
        for name, store, cross, fetched, amplification in sides:
            if store is None:
                continue
            row_bytes = store.payload_row_bytes()
            trace.add(name, "transfer" if cross else "shuffle",
                      costing.payload_fetch_seconds(
                          fetched, row_bytes,
                          amplification=amplification,
                          cross_cluster=cross,
                      ),
                      streams_from=list(gate),
                      description="batched stitch: fetch surviving "
                                  f"{name[-1].upper()} payloads "
                                  f"(x{amplification:.2f} page "
                                  "amplification)",
                      tuples=fetched,
                      volume_bytes=fetched * row_bytes * amplification)
            fetch_names.append(name)
        return fetch_names or list(gate)

    def _memory_budget_rows(self, warehouse) -> float:
        """Per-worker build-side memory limit at data-plane scale."""
        budget = warehouse.config.jen_memory_budget_rows
        if budget <= 0:
            return 0.0
        return budget * warehouse.config.scale

    # ------------------------------------------------------------------
    # Skew plane (shared by the shuffle-using algorithms)
    # ------------------------------------------------------------------
    def _effective_shuffle_skew(self, warehouse, costing, shuffled,
                                hot_keys) -> float:
        """The shuffle-skew multiplier this run's trace should pay.

        ``hot_keys is None`` means skew handling is off — pay the
        configured analytic factor exactly as before.  With handling on
        (even when detection found nothing hot) the hybrid shuffle ran,
        so the factor is capped at the *measured* receiver balance.
        """
        configured = max(1.0, warehouse.config.shuffle_skew)
        if hot_keys is None:
            return configured
        return costing.effective_shuffle_skew(
            configured, hybrid=True, measured=shuffled.balance_factor()
        )

    def _record_hot_shuffle(self, stats: JoinStats, trace, hot_keys,
                            shuffled) -> None:
        """Account the hybrid shuffle's detection and L-side spread."""
        trace.metadata["shuffle_partition_rows"] = [
            table.num_rows for table in shuffled.per_destination
        ]
        stats.encoded_wire_bytes += getattr(
            shuffled, "encoded_wire_bytes", 0
        )
        if hot_keys is None:
            return
        stats.hot_keys_detected = float(len(hot_keys))
        stats.hot_tuples_rerouted = float(shuffled.hot_tuples)

    def _add_steal_and_build_phases(self, costing, trace,
                                    stats: JoinStats, join_stats,
                                    shuffled, row_bytes: float,
                                    shuffle_skew: float,
                                    description: str) -> None:
        """Emit ``work_steal`` (if any) and ``hash_build`` phases.

        Called *after* the local joins ran so the build can be priced
        with the post-steal balance: stolen fragments move first (a
        transfer overlapped with the shuffle), then every worker builds
        its now-balanced share.  Without stealing this emits exactly
        the pre-skew-plane ``hash_build`` phase.
        """
        build_gate = ["jen_shuffle"]
        build_skew = shuffle_skew
        if join_stats.stolen_tuples > 0:
            stats.stolen_tuples = float(join_stats.stolen_tuples)
            trace.add("work_steal", "shuffle",
                      costing.work_steal_seconds(
                          join_stats.stolen_tuples, row_bytes
                      ),
                      streams_from=["jen_shuffle"],
                      description="re-deal straggler join fragments to "
                                  "idle workers",
                      tuples=join_stats.stolen_tuples,
                      volume_bytes=join_stats.stolen_tuples * row_bytes)
            build_gate = ["jen_shuffle", "work_steal"]
            build_skew = min(
                build_skew, max(1.0, join_stats.post_steal_balance)
            )
        trace.add("hash_build", "cpu",
                  costing.hash_build_seconds(
                      shuffled.tuples_shuffled, skew=build_skew
                  ),
                  streams_from=build_gate,
                  description=description,
                  tuples=shuffled.tuples_shuffled)
        if join_stats.per_slot_loads is not None:
            trace.metadata["join_slot_loads"] = list(
                join_stats.per_slot_loads
            )

    def _add_spill_phase(self, costing, trace, stats: JoinStats,
                         join_stats, row_bytes: float, gate):
        """Record a spill phase if the local joins fragmented.

        Returns the gate the probe phase must wait on.
        """
        if join_stats.spilled_tuples <= 0:
            return gate
        stats.spilled_tuples = join_stats.spilled_tuples
        trace.add("spill_io", "disk",
                  costing.jen_spill_seconds(
                      join_stats.spilled_tuples, row_bytes
                  ),
                  after=list(gate),
                  description=f"Grace-hash spill "
                              f"({join_stats.max_fragments} fragments)",
                  tuples=join_stats.spilled_tuples)
        return ["spill_io"]

    # The three steps every algorithm shares: filtering T locally,
    # building/multicasting BF_DB, and the distributed HDFS scan.  Keeping
    # them here guarantees all algorithms price them identically.

    def _run_db_filter(self, warehouse, query: HybridQuery, costing, trace,
                       stats: JoinStats, description: str
                       ) -> List[Table]:
        """Step 1 on the database: local predicates + projection on T."""
        database = warehouse.database
        t_meta = database.table_meta(query.db_table)
        stats.db_rows_scanned = t_meta.num_rows
        banked = adaptive_hooks.banked_db_filter(query.db_table)
        if banked is not None:
            # A switched-away plan already materialised T' for this
            # query; the data plane is deterministic, so the partitions
            # are bit-identical to a re-run and cost nothing here.
            t_parts, matched = banked
            trace.add("db_filter", "db_scan", 0.0,
                      after=["startup"],
                      description=description
                      + " (reused T' banked before the switch)",
                      tuples=matched)
            adaptive_hooks.checkpoint("t_prime_built")
            return t_parts
        t_parts, worker_stats = database.filter_project(
            query.db_table, query.db_predicate, list(query.db_projection)
        )
        raw_t_bytes = t_meta.num_rows * t_meta.schema.row_width()
        matched = sum(s.rows_out for s in worker_stats)
        index_available = database.workers[0].find_covering_index(
            query.db_table, list(query.db_predicate.columns())
        ) is not None
        adaptive_hooks.bank_db_filter(query.db_table, t_parts, matched)
        trace.add("db_filter", "db_scan",
                  costing.db_table_scan_seconds(
                      raw_t_bytes, matched, index_available
                  ),
                  after=["startup"],
                  description=description,
                  volume_bytes=raw_t_bytes,
                  tuples=matched)
        adaptive_hooks.checkpoint("t_prime_built")
        return t_parts

    def _run_bf_db(self, warehouse, query: HybridQuery, costing, trace,
                   stats: JoinStats):
        """Build BF_DB (index-only when possible) and multicast it."""
        bank_key = (query.db_table, query.db_join_key,
                    warehouse.config.bloom_bits())
        banked = adaptive_hooks.banked_bloom(bank_key)
        if banked is not None:
            # BF_DB built by a switched-away plan: the same bits would
            # come out of a rebuild, so reuse the object (its invariant
            # shadow keys included) and charge nothing for the build.
            bloom_result = banked
            build_seconds = 0.0
            build_description = "reuse BF_DB banked before the switch"
        else:
            bloom_result = warehouse.database.build_global_bloom(
                query.db_table,
                query.db_predicate,
                query.db_join_key,
                num_bits=warehouse.config.bloom_bits(),
                num_hashes=warehouse.config.bloom.num_hashes,
            )
            adaptive_hooks.bank_bloom(bank_key, bloom_result)
            build_seconds = costing.db_bloom_build_seconds(
                bloom_result.rows_accessed * 16.0,
                bloom_result.keys_added,
                bloom_result.index_only,
            )
            build_description = (
                "local BF build "
                + ("(index-only)" if bloom_result.index_only
                   else "(table scan)")
                + " + OR-merge"
            )
        trace.add("bf_db_build", "bloom", build_seconds,
                  after=["startup"],
                  description=build_description)
        trace.add("bf_db_send", "bloom",
                  costing.bloom_to_jen_seconds(),
                  after=["bf_db_build"],
                  description="multicast BF_DB to JEN workers")
        stats.bloom_bytes_moved += (
            costing.bloom_bytes() * warehouse.jen.num_workers
        )
        return bloom_result.bloom

    def _run_hdfs_scan(self, warehouse, query: HybridQuery, costing, trace,
                       stats: JoinStats, gate, db_bloom=None,
                       build_local_blooms: bool = False):
        """Distributed scan of L through the JEN process pipeline."""
        scan = warehouse.jen.distributed_scan(
            query, db_bloom=db_bloom, build_local_blooms=build_local_blooms
        )
        stats.hdfs_rows_scanned = scan.stats.rows_scanned
        stats.hdfs_stored_bytes_scanned = scan.stats.stored_bytes_scanned
        stats.hdfs_rows_after_predicates = scan.stats.rows_after_predicates
        stats.hdfs_rows_after_bloom = scan.stats.rows_after_bloom
        stats.hdfs_rows_discarded += scan.stats.rows_discarded
        meta = warehouse.hdfs.table_meta(query.hdfs_table)
        total_blocks = scan.stats.local_blocks + scan.stats.remote_blocks
        remote_fraction = (
            scan.stats.remote_blocks / total_blocks if total_blocks else 0.0
        )
        trace.add("hdfs_scan", "hdfs_scan",
                  costing.hdfs_scan_seconds(
                      scan.stats.stored_bytes_scanned,
                      scan.stats.rows_scanned,
                      meta.format_name,
                      remote_fraction=remote_fraction,
                  ),
                  after=list(gate),
                  description=f"scan L ({meta.format_name}): predicates, "
                              "projection"
                              + (", BF_DB" if db_bloom is not None else "")
                              + (", build BF_H" if build_local_blooms
                                 else ""),
                  volume_bytes=scan.stats.stored_bytes_scanned,
                  tuples=scan.stats.rows_scanned)
        return scan


#: Phase name -> (bytes-shipped category, crosses the EDW<->HDFS
#: boundary).  Stitch phases decide the boundary per run from their
#: kind (``transfer`` = cross-cluster, ``shuffle`` = intra-HDFS).
_BYTES_SHIPPED_CATEGORY: Dict[str, Tuple[str, bool]] = {
    "db_export": ("export", True),
    "db_broadcast": ("export", True),
    "db_send_once": ("export", True),
    "hdfs_to_db": ("export", True),
    "jen_shuffle": ("shuffle", False),
    "db_internal_shuffle": ("shuffle", False),
    "jen_hot_relay": ("relay", False),
    "jen_rebroadcast": ("relay", False),
    "work_steal": ("relay", False),
    "payload_fetch_l": ("stitch", False),
    "payload_fetch_t": ("stitch", False),
}


def classify_bytes_shipped(trace: Trace) -> Dict[str, float]:
    """Per-category row bytes the trace's transfer phases moved.

    Data-plane-scale bytes (multiply by ``scale_up`` for paper scale;
    ratios are scale-free, which is what the bench gate compares).
    ``cross_cluster`` totals everything that crossed the EDW<->HDFS
    boundary — the number the paper's algorithms exist to shrink.
    """
    shipped = {"export": 0.0, "shuffle": 0.0, "relay": 0.0, "stitch": 0.0}
    cross_cluster = 0.0
    for phase in trace:
        entry = _BYTES_SHIPPED_CATEGORY.get(phase.name)
        if entry is None:
            continue
        category, crosses = entry
        if category == "stitch":
            crosses = phase.kind == "transfer"
        shipped[category] += phase.volume_bytes
        if crosses:
            cross_cluster += phase.volume_bytes
    shipped["cross_cluster"] = cross_cluster
    shipped["total"] = (shipped["export"] + shipped["shuffle"]
                        + shipped["relay"] + shipped["stitch"])
    return shipped


#: Registry of available algorithms by name.
ALGORITHMS: Dict[str, Type[JoinAlgorithm]] = {}


def register_algorithm(cls: Type[JoinAlgorithm]) -> Type[JoinAlgorithm]:
    """Class decorator adding an algorithm to the registry."""
    if cls.name in ALGORITHMS:
        raise JoinError(f"duplicate algorithm name {cls.name!r}")
    ALGORITHMS[cls.name] = cls
    return cls


def valid_algorithm_names() -> List[str]:
    """Every name :func:`algorithm_by_name` accepts, sorted.

    The plain registry names plus the paper's ``(BF)`` convention for
    the algorithms that take an optional Bloom filter.
    """
    names = list(ALGORITHMS)
    for name, cls in ALGORITHMS.items():
        if "use_bloom" in inspect.signature(cls).parameters:
            names.append(f"{name}(BF)")
    return sorted(names)


def algorithm_by_name(name: str, **kwargs) -> JoinAlgorithm:
    """Instantiate a registered algorithm.

    Accepts the plain names plus the paper's ``(BF)`` suffix convention:
    ``"repartition(BF)"`` and ``"db(BF)"`` enable the Bloom filter on the
    corresponding base algorithm.  Unknown names — including a ``(BF)``
    suffix on an algorithm with no optional Bloom filter — raise
    :class:`~repro.errors.JoinError` listing every valid name.
    """
    requested = name
    if name.endswith("(BF)"):
        base = name[:-4].rstrip()
        kwargs.setdefault("use_bloom", True)
        name = base
    try:
        cls = ALGORITHMS[name]
    except KeyError:
        raise JoinError(
            f"unknown join algorithm {requested!r}; "
            f"valid names: {', '.join(valid_algorithm_names())}"
        ) from None
    try:
        return cls(**kwargs)
    except TypeError:
        raise JoinError(
            f"join algorithm {requested!r} does not accept "
            f"{sorted(kwargs)}; valid names: "
            f"{', '.join(valid_algorithm_names())}"
        ) from None
