"""Pricing measured volumes into paper-scale phase durations.

The data plane runs at a reduced scale (``HybridConfig.scale``); every
count it measures is multiplied back up before being divided by the
calibrated throughputs of :class:`~repro.config.CostModel`.  One
:class:`JoinCosting` instance is shared by all phases of one run, so the
scale factor and topology cannot drift within a trace.

All methods return **seconds at paper scale**.
"""

from __future__ import annotations

from typing import Optional

from repro.config import HybridConfig
from repro.net.topology import HybridTopology, default_topology
from repro.net.transfer import shuffle_seconds

#: Residual receiver imbalance a hybrid shuffle still pays when no
#: measured balance is available: the cold tail is hash-balanced and the
#: hot keys are spread/broadcast, so the hottest receiver ends within
#: ~50% of the mean regardless of how extreme the key distribution is.
HYBRID_SHUFFLE_SKEW_CAP = 1.5


class JoinCosting:
    """Converts raw data-plane volumes into simulated phase durations."""

    def __init__(self, config: HybridConfig,
                 topology: HybridTopology = None):
        self.config = config
        self.cost = config.cost
        self.cluster = config.cluster
        self.topology = topology or default_topology(config.cluster)
        #: Multiplier from data-plane counts to paper-scale counts.
        self.scale_up = 1.0 / config.scale
        self._n = self.cluster.jen_workers()
        self._m = self.cluster.db_workers

    # ------------------------------------------------------------------
    # Fixed latencies
    # ------------------------------------------------------------------
    def startup_seconds(self) -> float:
        """Coordinator handshakes and DB↔JEN connection setup (Fig. 5)."""
        return self.cost.startup_seconds

    def result_return_seconds(self) -> float:
        """Shipping the small final aggregate back to the database."""
        return self.cost.result_return_seconds

    # ------------------------------------------------------------------
    # Database side
    # ------------------------------------------------------------------
    def db_table_scan_seconds(self, raw_bytes: float,
                              raw_matched_rows: Optional[float] = None,
                              index_available: bool = False) -> float:
        """Applying the local predicates on T across the DB workers.

        With an index covering the predicate columns the database
        optimizer can switch to an index + RID-fetch plan, which wins
        for very selective predicates — this is what keeps the broadcast
        join's tiny-σ_T case from paying a full table scan.
        """
        scaled = raw_bytes * self.scale_up
        scan_time = scaled / (self._m * self.cost.db_scan_bytes_per_s)
        if not index_available or raw_matched_rows is None:
            return scan_time
        fetch_time = (raw_matched_rows * self.scale_up
                      / (self._m * self.cost.db_rid_fetch_tuples_per_s))
        return min(scan_time, fetch_time)

    def db_bloom_build_seconds(self, raw_entry_bytes: float,
                               raw_keys: float,
                               index_only: bool) -> float:
        """Local BF builds on every DB worker plus the OR-merge.

        Index-only plans read compact index entries; otherwise the build
        rides on the base-table scan already priced separately and only
        the hashing cost remains.
        """
        hash_cost = (raw_keys * self.scale_up
                     / (self._m * self.cost.bf_build_tuples_per_s))
        if not index_only:
            return hash_cost
        read_cost = (raw_entry_bytes * self.scale_up
                     / (self._m * self.cost.db_scan_bytes_per_s))
        return read_cost + hash_cost

    def db_second_access_seconds(self, raw_rows: float) -> float:
        """Re-access T′ to apply BF_H (zigzag step 5): index-assisted."""
        scaled = raw_rows * self.scale_up
        index_time = scaled / (self._m * self.cost.db_index_tuples_per_s)
        probe_time = scaled / (self._m * self.cost.bf_probe_tuples_per_s)
        return index_time + probe_time

    def db_export_seconds(self, raw_tuples: float, row_bytes: float,
                          copies: int = 1) -> float:
        """DB workers pushing rows out through the UDF socket path.

        ``copies`` > 1 models the broadcast join, where each worker sends
        its partition to every JEN worker.  The bottleneck is the larger
        of the per-worker export rate and the inter-cluster network.
        """
        base_tuples = raw_tuples * self.scale_up
        # First copy pays full serialization; additional copies reuse the
        # serialized buffer and only pay the socket write.
        effective = base_tuples * (
            1.0 + (copies - 1) * self.cost.export_copy_factor
        )
        volume = base_tuples * copies * row_bytes
        export_time = effective / (self._m * self.cost.db_export_tuples_per_s)
        network = self.topology.inter_cluster_bandwidth(
            senders=self.cluster.db_servers,
            receivers=self._n,
            sender_side="db",
        )
        return max(export_time, volume / network)

    def db_ingest_seconds(self, raw_tuples: float, row_bytes: float) -> float:
        """HDFS rows arriving into the database through UDF readers."""
        tuples = raw_tuples * self.scale_up
        volume = tuples * row_bytes
        ingest_time = tuples / (self._m * self.cost.db_ingest_tuples_per_s)
        network = self.topology.inter_cluster_bandwidth(
            senders=self._n,
            receivers=self.cluster.db_servers,
            sender_side="hdfs",
        )
        return max(ingest_time, volume / network)

    def db_internal_shuffle_seconds(self, raw_bytes: float) -> float:
        """Reshuffling rows among DB workers (the optimizer's plan)."""
        scaled = raw_bytes * self.scale_up
        return scaled / (self._m * self.cost.db_shuffle_bytes_per_s)

    def db_join_seconds(self, raw_input_tuples: float,
                        raw_output_tuples: float) -> float:
        """In-database hash join plus aggregation."""
        scaled = (raw_input_tuples + raw_output_tuples) * self.scale_up
        return scaled / (self._m * self.cost.db_join_tuples_per_s)

    # ------------------------------------------------------------------
    # Bloom filter movement (paper-scale 16 MB filters)
    # ------------------------------------------------------------------
    def bloom_bytes(self) -> float:
        """Serialized size of one filter at paper scale."""
        return float(self.config.bloom.size_bytes())

    def bloom_to_jen_seconds(self) -> float:
        """Multicasting BF_DB to every JEN worker (Fig. 5 pattern)."""
        volume = self.bloom_bytes() * self._n
        return volume / self.topology.switch_bytes_per_s

    def bloom_merge_intra_jen_seconds(self) -> float:
        """Local BF_H filters converging on the designated worker."""
        volume = self.bloom_bytes() * max(0, self._n - 1)
        return volume / self.topology.hdfs.nic_bytes_per_s

    def bloom_to_db_seconds(self) -> float:
        """Designated JEN worker broadcasting BF_H to all DB workers."""
        volume = self.bloom_bytes() * self._m
        return volume / min(
            self.topology.hdfs.nic_bytes_per_s,
            self.topology.switch_bytes_per_s,
        )

    # ------------------------------------------------------------------
    # HDFS side
    # ------------------------------------------------------------------
    def hdfs_scan_seconds(self, raw_stored_bytes: float, raw_rows: float,
                          format_name: str,
                          remote_fraction: float = 0.0) -> float:
        """Format-aware distributed scan: max of I/O and process thread.

        ``remote_fraction`` is the share of blocks read over the network
        instead of a local replica; remote reads are capped by the 1 Gbit
        NIC, which is what the locality-aware scheduler (Section 4.2)
        exists to avoid.
        """
        rates = {
            "text": self.cost.text_scan_bytes_per_s,
            "parquet": self.cost.parquet_scan_bytes_per_s,
            "orc": self.cost.orc_scan_bytes_per_s,
        }
        rate = rates.get(format_name, self.cost.text_scan_bytes_per_s)
        remote_rate = min(rate, self.topology.hdfs.nic_bytes_per_s)
        scaled = raw_stored_bytes * self.scale_up
        local_bytes = scaled * (1.0 - remote_fraction)
        remote_bytes = scaled * remote_fraction
        io_time = (local_bytes / (self._n * rate)
                   + remote_bytes / (self._n * remote_rate))
        cpu_time = (raw_rows * self.scale_up
                    / (self._n * self.cost.jen_process_tuples_per_s))
        return max(io_time, cpu_time)

    def jen_shuffle_seconds(self, raw_tuples: float, row_bytes: float,
                            skew: float = 1.0) -> float:
        """All-to-all shuffle of wire rows among JEN workers.

        ``skew`` is the ratio of the most-loaded receiver's volume to the
        mean (1.0 for uniform keys): the shuffle finishes when the hottest
        worker has received everything addressed to it.
        """
        volume = raw_tuples * self.scale_up * row_bytes
        balanced = shuffle_seconds(
            volume, self.topology, self._n, self.cost.shuffle_bytes_per_s
        )
        return balanced * max(1.0, skew)

    def effective_shuffle_skew(self, configured: float,
                               hybrid: bool = False,
                               measured: Optional[float] = None) -> float:
        """The skew multiplier the shuffle/build phases actually pay.

        Hash-only runs pay the configured (analytic) factor — the
        hottest key's whole mass lands on one receiver.  A hybrid
        shuffle spreads that mass, so the factor is capped: at the
        *measured* receiver balance of the data plane when available,
        else at :data:`HYBRID_SHUFFLE_SKEW_CAP`.  The measured cap is
        honest both ways — a run whose detection missed (measured high)
        pays what it measured, never the optimistic constant.
        """
        configured = max(1.0, configured)
        if not hybrid:
            return configured
        cap = (
            max(1.0, measured) if measured is not None
            else HYBRID_SHUFFLE_SKEW_CAP
        )
        return min(configured, cap)

    def jen_duplicate_seconds(self, raw_tuples: float,
                              row_bytes: float) -> float:
        """Extra hot-key probe-row copies relayed inside the JEN cluster.

        The first copy of a hot T row crosses the inter-cluster link on
        the agreed hash like any other row (priced in ``db_export``);
        the key's home worker then re-sends it to the other workers of
        the key's spread set over the HDFS-side NICs — the cheap link,
        which is the whole point of relaying instead of asking the DB
        to export every copy.
        """
        volume = raw_tuples * self.scale_up * row_bytes
        return volume / self.topology.hdfs.nic_bytes_per_s

    def work_steal_seconds(self, raw_tuples: float,
                           row_bytes: float) -> float:
        """Straggler fragments re-dealt worker-to-worker (skew plane).

        Stolen work moves point-to-point over the HDFS-side NICs — the
        straggler streams its surplus fragments out while the idle
        workers receive, so the transfer is bounded by one NIC.
        """
        volume = raw_tuples * self.scale_up * row_bytes
        return volume / self.topology.hdfs.nic_bytes_per_s

    def hash_build_seconds(self, raw_tuples: float,
                           per_worker_full_copy: bool = False,
                           skew: float = 1.0) -> float:
        """Hash-table inserts; a broadcast join builds the *full* T′ on
        every worker, so its build does not parallelise.  ``skew`` is the
        hottest worker's share relative to the mean."""
        scaled = raw_tuples * self.scale_up
        divisor = 1 if per_worker_full_copy else self._n
        return scaled * max(1.0, skew) / (
            divisor * self.cost.hash_build_tuples_per_s
        )

    def probe_seconds(self, raw_probe_tuples: float,
                      raw_output_tuples: float) -> float:
        """Probing the hash tables and emitting matches."""
        scaled_probe = raw_probe_tuples * self.scale_up
        scaled_out = raw_output_tuples * self.scale_up
        return (scaled_probe + scaled_out) / (
            self._n * self.cost.hash_probe_tuples_per_s
        )

    def jen_aggregate_seconds(self, raw_output_tuples: float) -> float:
        """Residual predicate plus hash aggregation over join output."""
        scaled = raw_output_tuples * self.scale_up
        return scaled / (self._n * self.cost.jen_agg_tuples_per_s)

    def jen_spill_seconds(self, raw_spilled_tuples: float,
                          row_bytes: float) -> float:
        """Writing spilled join fragments to disk and reading them back."""
        volume = raw_spilled_tuples * self.scale_up * row_bytes * 2.0
        return volume / (self._n * self.cost.jen_spill_bytes_per_s)

    def jen_rebroadcast_seconds(self, raw_tuples: float,
                                row_bytes: float) -> float:
        """Relay-style broadcast: one worker fanning T′ back out."""
        volume = raw_tuples * self.scale_up * row_bytes * (self._n - 1)
        return volume / self.topology.hdfs.nic_bytes_per_s

    # ------------------------------------------------------------------
    # Late materialization (payload stitching)
    # ------------------------------------------------------------------
    def payload_fetch_seconds(self, raw_tuples: float, row_bytes: float,
                              amplification: float = 1.0,
                              cross_cluster: bool = False,
                              to_db: bool = False) -> float:
        """Batched stitch fetch of surviving payload rows.

        The store side serves fetches in whole pages, so scattered row
        ids read ``amplification``× the returned volume (see
        :func:`repro.latemat.fetch_amplification`).  A cross-cluster
        fetch moves over the same export/ingest path and inter-cluster
        link ``db_export``/``db_ingest`` price (``to_db`` picks the
        HDFS->EDW direction); an intra-HDFS fetch is an all-to-all
        exchange over the same NICs the shuffle used.
        """
        tuples = raw_tuples * self.scale_up
        volume = tuples * row_bytes * max(1.0, amplification)
        if cross_cluster:
            if to_db:
                serve_time = tuples / (
                    self._m * self.cost.db_ingest_tuples_per_s
                )
                network = self.topology.inter_cluster_bandwidth(
                    senders=self._n,
                    receivers=self.cluster.db_servers,
                    sender_side="hdfs",
                )
            else:
                serve_time = tuples / (
                    self._m * self.cost.db_export_tuples_per_s
                )
                network = self.topology.inter_cluster_bandwidth(
                    senders=self.cluster.db_servers,
                    receivers=self._n,
                    sender_side="db",
                )
            return max(serve_time, volume / network)
        return shuffle_seconds(
            volume, self.topology, self._n, self.cost.shuffle_bytes_per_s
        )
