"""HDFS-side broadcast join (paper Section 3.2).

Rationale: when the database predicates are highly selective, T′ is
small enough to send to *every* JEN worker, so the HDFS table needs no
shuffle at all — each worker joins its local scan output against the
full T′ and partially aggregates.

The paper evaluated two broadcast schemes (Section 4.3): every DB worker
sending to every JEN worker directly, or sending once and relaying
inside the HDFS cluster.  It chose the direct scheme (relaying adds a
round of latency); this implementation supports both so the ablation
benchmark can reproduce the comparison.
"""

from __future__ import annotations

from repro.core.joins.base import (
    JoinAlgorithm,
    JoinResult,
    JoinStats,
    register_algorithm,
)
from repro.latemat import LateMatPlan
from repro.net.transfer import TransferPattern
from repro.relational.table import Table
from repro.sim.trace import Trace
from repro.query.query import HybridQuery


@register_algorithm
class BroadcastJoin(JoinAlgorithm):
    """Send filtered T′ to every JEN worker; no HDFS shuffle."""

    name = "broadcast"

    def __init__(self,
                 pattern: TransferPattern = TransferPattern.BROADCAST_DIRECT):
        if pattern not in (TransferPattern.BROADCAST_DIRECT,
                           TransferPattern.BROADCAST_RELAY):
            raise ValueError(f"not a broadcast pattern: {pattern}")
        self.pattern = pattern

    def run(self, warehouse, query: HybridQuery) -> JoinResult:
        costing = self._costing(warehouse)
        jen = warehouse.jen
        stats = JoinStats()
        trace = Trace(label=self.name)
        trace.add("startup", "latency", costing.startup_seconds(),
                  description="UDF invocation, DB<->JEN connections")

        # -- Step 1: local predicates + projection on T ------------------
        t_parts = self._run_db_filter(
            warehouse, query, costing, trace, stats,
            description="apply local predicates + projection on T",
        )

        # -- Step 2: broadcast T' to every JEN worker --------------------
        t_full = Table.concat(t_parts)
        t_store, t_ship = self._latemat_store(query, [t_full], "db",
                                              stats=stats)
        t_broadcast = t_ship[0]
        t_tuples = t_full.num_rows
        t_wire_bytes = self._wire_row_bytes(t_ship)
        stats.db_tuples_sent = t_tuples
        stats.db_send_copies = jen.num_workers
        if self.pattern is TransferPattern.BROADCAST_DIRECT:
            trace.add("db_broadcast", "transfer",
                      costing.db_export_seconds(
                          t_tuples, t_wire_bytes, copies=jen.num_workers
                      ),
                      after=["db_filter"],
                      description="each DB worker sends T' to every "
                                  "JEN worker",
                      tuples=t_tuples * jen.num_workers,
                      volume_bytes=(
                          t_tuples * t_wire_bytes * jen.num_workers
                      ))
            build_gate = ["db_broadcast"]
        else:
            trace.add("db_send_once", "transfer",
                      costing.db_export_seconds(t_tuples, t_wire_bytes),
                      after=["db_filter"],
                      description="DB workers send T' once to paired "
                                  "JEN workers",
                      tuples=t_tuples,
                      volume_bytes=t_tuples * t_wire_bytes)
            trace.add("jen_rebroadcast", "transfer",
                      costing.jen_rebroadcast_seconds(
                          t_tuples, t_wire_bytes
                      ),
                      after=["db_send_once"],
                      description="JEN workers relay T' to all peers",
                      tuples=t_tuples * (jen.num_workers - 1),
                      volume_bytes=(
                          t_tuples * t_wire_bytes * (jen.num_workers - 1)
                      ))
            build_gate = ["jen_rebroadcast"]
        trace.add("hash_build_t", "cpu",
                  costing.hash_build_seconds(
                      t_tuples, per_worker_full_copy=True
                  ),
                  after=build_gate,
                  description="every worker builds a hash table on the "
                              "full T'",
                  tuples=t_tuples)

        # -- Step 3: scan L and join locally (no shuffle) -----------------
        scan = self._run_hdfs_scan(
            warehouse, query, costing, trace, stats, gate=["startup"],
        )
        latemat_plan = LateMatPlan(t_store=t_store)
        result, join_stats = jen.join_and_aggregate(
            scan.wire_tables,
            [t_broadcast] * jen.num_workers,
            query,
            memory_budget_rows=self._memory_budget_rows(warehouse),
            latemat_plan=latemat_plan,
        )
        stats.join_output_tuples = join_stats.join_output_tuples
        stats.result_rows = join_stats.result_rows
        probe_gate = self._add_spill_phase(
            costing, trace, stats, join_stats,
            scan.wire_tables[0].row_bytes(), ["hash_build_t"],
        )
        # Every scanned-and-filtered L row probes the local T' table.
        trace.add("probe", "cpu",
                  costing.probe_seconds(
                      scan.stats.rows_after_predicates,
                      join_stats.join_output_tuples,
                  ),
                  after=probe_gate,
                  streams_from=["hdfs_scan"],
                  description="probe T' hash table with streaming L rows",
                  tuples=scan.stats.rows_after_predicates)
        agg_gate = self._add_payload_fetch_phases(
            costing, trace, latemat_plan, ["probe"]
        )
        trace.add("aggregate", "cpu",
                  costing.jen_aggregate_seconds(
                      join_stats.join_output_tuples
                  ),
                  streams_from=agg_gate,
                  description="post-join predicate, partial + final agg",
                  tuples=join_stats.join_output_tuples)
        trace.add("result_return", "latency",
                  costing.result_return_seconds(),
                  after=["aggregate"],
                  description="return final aggregate to the database")
        return self._finish(warehouse, query, result, stats, trace)
