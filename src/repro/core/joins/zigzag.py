"""The zigzag join: 2-way Bloom filters (paper Sections 3.4 and 4.4).

The only algorithm that exploits the join-key predicates *and* the local
predicates on both sides.  Data flow (Figure 4):

1. DB workers filter/project T and build BF_DB (index-only plan).
2. BF_DB is multicast to the JEN workers — a blocking prerequisite for
   the scan.
3. JEN workers scan L, applying predicates, projection and BF_DB; they
   populate local HDFS Bloom filters *during* the scan and shuffle the
   surviving rows with the agreed hash, interleaved with the scan.
4. The local filters are merged into BF_H at a designated worker and
   sent to all DB workers — a hard barrier: BF_H cannot exist before the
   scan has seen every row.
5. DB workers apply BF_H to T′ (cheap, index-assisted re-access).
6. The doubly filtered T″ is sent via the agreed hash.
7-9. JEN workers probe, aggregate, and return the result.

Because the HDFS scan dominates and the database supports indexed
re-access, the second pass over T′ costs little — the asymmetry that
makes two-way Bloom filters worthwhile in a hybrid warehouse even though
they rarely pay off inside one homogeneous system.
"""

from __future__ import annotations

from repro.core.joins.base import (
    JoinAlgorithm,
    JoinResult,
    JoinStats,
    register_algorithm,
)
from repro.core.joins.repartition import _route_db_rows
from repro.edw.worker import DbWorker
from repro.latemat import LateMatPlan
from repro.sim.trace import Trace
from repro.query.query import HybridQuery


@register_algorithm
class ZigzagJoin(JoinAlgorithm):
    """The paper's new algorithm: Bloom filters both ways."""

    name = "zigzag"
    uses_db_bloom = True
    uses_hdfs_bloom = True

    def run(self, warehouse, query: HybridQuery) -> JoinResult:
        costing = self._costing(warehouse)
        database = warehouse.database
        jen = warehouse.jen
        stats = JoinStats()
        trace = Trace(label=self.name)
        trace.add("startup", "latency", costing.startup_seconds(),
                  description="UDF invocation, DB<->JEN connections")

        # -- Step 1: T' and BF_DB ----------------------------------------
        t_parts = self._run_db_filter(
            warehouse, query, costing, trace, stats,
            description="apply local predicates + projection on T "
                        "(T' materialised)",
        )
        db_bloom = self._run_bf_db(warehouse, query, costing, trace, stats)

        # -- Step 3: scan with BF_DB, building BF_H during the scan ------
        scan = self._run_hdfs_scan(
            warehouse, query, costing, trace, stats,
            gate=["startup", "bf_db_send"],
            db_bloom=db_bloom,
            build_local_blooms=True,
        )
        hot_keys = scan.hot_keys
        l_store, l_ship = self._latemat_store(
            query, scan.wire_tables, "hdfs"
        )
        shuffled = jen.shuffle_by_key(l_ship,
                                      query.hdfs_join_key,
                                      hot_keys=hot_keys)
        stats.hdfs_tuples_shuffled = shuffled.tuples_shuffled
        self._record_hot_shuffle(stats, trace, hot_keys, shuffled)
        l_wire_bytes = self._wire_row_bytes(l_ship)
        shuffle_skew = self._effective_shuffle_skew(
            warehouse, costing, shuffled, hot_keys
        )
        trace.add("jen_shuffle", "shuffle",
                  costing.jen_shuffle_seconds(
                      shuffled.tuples_shuffled, l_wire_bytes,
                      skew=shuffle_skew,
                  ),
                  streams_from=["hdfs_scan"],
                  description="agreed-hash shuffle of doubly filtered L''",
                  tuples=shuffled.tuples_shuffled,
                  volume_bytes=shuffled.tuples_shuffled * l_wire_bytes)

        # -- Step 4: merge BF_H, send to the database ---------------------
        hdfs_bloom = scan.global_bloom()
        trace.add("bf_h_merge", "bloom",
                  costing.bloom_merge_intra_jen_seconds(),
                  after=["hdfs_scan"],
                  description="merge local BF_H at designated worker")
        trace.add("bf_h_send", "bloom", costing.bloom_to_db_seconds(),
                  after=["bf_h_merge"],
                  description="broadcast BF_H to all DB workers")
        stats.bloom_bytes_moved += (
            costing.bloom_bytes() * max(0, jen.num_workers - 1)
            + costing.bloom_bytes() * database.num_workers
        )

        # -- Steps 5-6: apply BF_H to T', ship T'' ------------------------
        t_pruned = [
            DbWorker.apply_bloom(part, query.db_join_key, hdfs_bloom)
            for part in t_parts
        ]
        t_prime_tuples = sum(part.num_rows for part in t_parts)
        t_tuples = sum(part.num_rows for part in t_pruned)
        stats.db_tuples_sent = t_tuples
        trace.add("db_second_access", "db_scan",
                  costing.db_second_access_seconds(t_prime_tuples),
                  after=["bf_h_send", "db_filter"],
                  description="apply BF_H to T' (index-assisted)",
                  tuples=t_prime_tuples)
        t_store, t_ship = self._latemat_store(query, t_pruned, "db",
                                              stats=stats)
        t_wire_bytes = self._wire_row_bytes(t_ship)
        t_dest, hot_t_tuples, hot_copy_tuples = _route_db_rows(
            t_ship, query.db_join_key, jen.num_workers,
            hot_keys=hot_keys,
        )
        stats.hot_tuples_broadcast += hot_copy_tuples
        trace.add("db_export", "transfer",
                  costing.db_export_seconds(t_tuples, t_wire_bytes),
                  streams_from=["db_second_access"],
                  description="DB workers send T'' via agreed hash",
                  tuples=t_tuples,
                  volume_bytes=t_tuples * t_wire_bytes)
        export_names = ["db_export"]
        extra_hot_copies = hot_copy_tuples - hot_t_tuples
        if extra_hot_copies > 0:
            trace.add("jen_hot_relay", "transfer",
                      costing.jen_duplicate_seconds(
                          extra_hot_copies, t_wire_bytes
                      ),
                      streams_from=["db_export"],
                      description="home workers relay hot-key T'' rows "
                                  "to their spread worker sets",
                      tuples=extra_hot_copies,
                      volume_bytes=extra_hot_copies * t_wire_bytes)
            export_names.append("jen_hot_relay")

        # -- Steps 7-9: probe, aggregate, return --------------------------
        latemat_plan = LateMatPlan(l_store=l_store, t_store=t_store)
        result, join_stats = jen.join_and_aggregate(
            shuffled.per_destination, t_dest, query,
            memory_budget_rows=self._memory_budget_rows(warehouse),
            latemat_plan=latemat_plan,
        )
        stats.join_output_tuples = join_stats.join_output_tuples
        stats.result_rows = join_stats.result_rows
        self._add_steal_and_build_phases(
            costing, trace, stats, join_stats, shuffled, l_wire_bytes,
            shuffle_skew,
            description="build hash tables on received L'' rows",
        )
        probe_gate = self._add_spill_phase(
            costing, trace, stats, join_stats, l_wire_bytes,
            ["hash_build"],
        )
        trace.add("probe", "cpu",
                  costing.probe_seconds(
                      t_tuples, join_stats.join_output_tuples
                  ),
                  after=probe_gate,
                  streams_from=export_names,
                  description="probe with doubly filtered database rows",
                  tuples=t_tuples)
        agg_gate = self._add_payload_fetch_phases(
            costing, trace, latemat_plan, ["probe"]
        )
        trace.add("aggregate", "cpu",
                  costing.jen_aggregate_seconds(
                      join_stats.join_output_tuples
                  ),
                  streams_from=agg_gate,
                  description="post-join predicate, partial + final agg",
                  tuples=join_stats.join_output_tuples)
        trace.add("result_return", "latency",
                  costing.result_return_seconds(),
                  after=["aggregate"],
                  description="return final aggregate to the database")
        return self._finish(warehouse, query, result, stats, trace)
