"""The five hybrid-warehouse join algorithms (paper Section 3).

========================  ======================================  =========
Algorithm                  Bloom filters                          Join site
========================  ======================================  =========
:class:`DbSideJoin`        optional BF(T′) pushed to HDFS          database
:class:`BroadcastJoin`     none (T′ must be tiny)                  HDFS
:class:`RepartitionJoin`   optional BF(T′) pushed to HDFS          HDFS
:class:`ZigzagJoin`        BF(T′) *and* BF(L″) — both directions   HDFS
========================  ======================================  =========

Every algorithm executes the real data plane (rows actually move between
the simulated engines) and emits a priced execution trace that the time
plane replays with pipelining.
"""

from repro.core.joins.base import (
    ALGORITHMS,
    JoinAlgorithm,
    JoinResult,
    JoinStats,
    algorithm_by_name,
    register_algorithm,
    valid_algorithm_names,
)
from repro.core.joins.db_side import DbSideJoin
from repro.core.joins.broadcast import BroadcastJoin
from repro.core.joins.repartition import RepartitionJoin
from repro.core.joins.zigzag import ZigzagJoin
from repro.core.joins.zigzag_db import ZigzagDbJoin
from repro.core.joins.semijoin import PerfJoin, SemiJoin
# Registered last: the adaptive wrapper re-dispatches through the
# registry the static algorithms just filled, and the approximate join
# layers block sampling over the shared exact plumbing.
from repro.adaptive.algorithm import AdaptiveJoin
from repro.approx.algorithm import ApproxJoin

__all__ = [
    "ALGORITHMS",
    "AdaptiveJoin",
    "ApproxJoin",
    "BroadcastJoin",
    "DbSideJoin",
    "JoinAlgorithm",
    "JoinResult",
    "JoinStats",
    "PerfJoin",
    "RepartitionJoin",
    "SemiJoin",
    "ZigzagDbJoin",
    "ZigzagJoin",
    "algorithm_by_name",
    "register_algorithm",
    "valid_algorithm_names",
]
