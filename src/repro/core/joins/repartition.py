"""HDFS-side repartition join, with or without a Bloom filter
(paper Sections 3.3 and 4.4).

Steps (Figure 3):

1. DB workers apply local predicates and projection; with the Bloom
   filter variant they also build local filters that merge into BF_DB.
2. BF_DB is multicast to the JEN workers; the DB workers send T′ using
   the *agreed* hash function, so rows land directly on the JEN worker
   that will join them.
3. JEN workers scan L, apply predicates, projection and BF_DB, and
   shuffle the survivors with the same hash — interleaved with the scan.
4. Each worker builds a hash table on the L rows it receives (while the
   shuffle is still running), buffers arriving database rows, then
   probes, applies the post-join predicate and partially aggregates.
5. A designated worker computes the final aggregate and returns it.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.core.joins.base import (
    JoinAlgorithm,
    JoinResult,
    JoinStats,
    register_algorithm,
)
from repro.latemat import LateMatPlan
from repro.relational.table import Table
from repro.sim.trace import Trace
from repro.testkit import invariants
from repro.query.query import HybridQuery


@register_algorithm
class RepartitionJoin(JoinAlgorithm):
    """Repartition-based HDFS-side join; ``use_bloom`` adds BF_DB."""

    name = "repartition"

    def __init__(self, use_bloom: bool = False):
        self.use_bloom = use_bloom
        self.uses_db_bloom = use_bloom

    @property
    def display_name(self) -> str:
        """Paper-style label."""
        return "repartition(BF)" if self.use_bloom else "repartition"

    def run(self, warehouse, query: HybridQuery) -> JoinResult:
        costing = self._costing(warehouse)
        jen = warehouse.jen
        stats = JoinStats()
        trace = Trace(label=self.display_name)
        trace.add("startup", "latency", costing.startup_seconds(),
                  description="UDF invocation, DB<->JEN connections")

        # -- Step 1: local predicates + projection on T ------------------
        t_parts = self._run_db_filter(
            warehouse, query, costing, trace, stats,
            description="apply local predicates + projection on T",
        )

        # -- Optional: BF_DB build + multicast ---------------------------
        db_bloom = None
        scan_gate = ["startup"]
        if self.use_bloom:
            db_bloom = self._run_bf_db(warehouse, query, costing, trace,
                                       stats)
            scan_gate = ["startup", "bf_db_send"]

        # -- Step 3: scan L with predicates (+ BF_DB), shuffle -----------
        scan = self._run_hdfs_scan(
            warehouse, query, costing, trace, stats, scan_gate,
            db_bloom=db_bloom,
        )
        hot_keys = scan.hot_keys
        l_store, l_ship = self._latemat_store(
            query, scan.wire_tables, "hdfs"
        )
        shuffled = jen.shuffle_by_key(l_ship,
                                      query.hdfs_join_key,
                                      hot_keys=hot_keys)
        stats.hdfs_tuples_shuffled = shuffled.tuples_shuffled
        self._record_hot_shuffle(stats, trace, hot_keys, shuffled)
        l_wire_bytes = self._wire_row_bytes(l_ship)
        shuffle_skew = self._effective_shuffle_skew(
            warehouse, costing, shuffled, hot_keys
        )
        trace.add("jen_shuffle", "shuffle",
                  costing.jen_shuffle_seconds(
                      shuffled.tuples_shuffled, l_wire_bytes,
                      skew=shuffle_skew,
                  ),
                  streams_from=["hdfs_scan"],
                  description="agreed-hash shuffle of L' among JEN workers",
                  tuples=shuffled.tuples_shuffled,
                  volume_bytes=shuffled.tuples_shuffled * l_wire_bytes)

        # -- Step 2 (concurrent): ship T' by the agreed hash -------------
        t_store, t_ship = self._latemat_store(query, t_parts, "db",
                                              stats=stats)
        t_dest, hot_t_tuples, hot_copy_tuples = _route_db_rows(
            t_ship, query.db_join_key, jen.num_workers, hot_keys=hot_keys
        )
        t_tuples = sum(part.num_rows for part in t_ship)
        t_wire_bytes = self._wire_row_bytes(t_ship)
        stats.db_tuples_sent = t_tuples
        stats.hot_tuples_broadcast += hot_copy_tuples
        trace.add("db_export", "transfer",
                  costing.db_export_seconds(t_tuples, t_wire_bytes),
                  after=["db_filter"],
                  description="DB workers send T' via agreed hash",
                  tuples=t_tuples,
                  volume_bytes=t_tuples * t_wire_bytes)
        export_names = ["db_export"]
        extra_hot_copies = hot_copy_tuples - hot_t_tuples
        if extra_hot_copies > 0:
            trace.add("jen_hot_relay", "transfer",
                      costing.jen_duplicate_seconds(
                          extra_hot_copies, t_wire_bytes
                      ),
                      streams_from=["db_export"],
                      description="home workers relay hot-key T' rows "
                                  "to their spread worker sets",
                      tuples=extra_hot_copies,
                      volume_bytes=extra_hot_copies * t_wire_bytes)
            export_names.append("jen_hot_relay")

        # -- Steps 4-6: probe, aggregate, return -------------------------
        latemat_plan = LateMatPlan(l_store=l_store, t_store=t_store)
        result, join_stats = jen.join_and_aggregate(
            shuffled.per_destination, t_dest, query,
            memory_budget_rows=self._memory_budget_rows(warehouse),
            latemat_plan=latemat_plan,
        )
        stats.join_output_tuples = join_stats.join_output_tuples
        stats.result_rows = join_stats.result_rows
        self._add_steal_and_build_phases(
            costing, trace, stats, join_stats, shuffled, l_wire_bytes,
            shuffle_skew,
            description="build hash tables on received L' rows",
        )
        probe_gate = self._add_spill_phase(
            costing, trace, stats, join_stats, l_wire_bytes,
            ["hash_build"],
        )
        trace.add("probe", "cpu",
                  costing.probe_seconds(
                      t_tuples, join_stats.join_output_tuples
                  ),
                  after=probe_gate,
                  streams_from=export_names,
                  description="probe with database rows",
                  tuples=t_tuples)
        agg_gate = self._add_payload_fetch_phases(
            costing, trace, latemat_plan, ["probe"]
        )
        trace.add("aggregate", "cpu",
                  costing.jen_aggregate_seconds(
                      join_stats.join_output_tuples
                  ),
                  streams_from=agg_gate,
                  description="post-join predicate, partial + final agg",
                  tuples=join_stats.join_output_tuples)
        trace.add("result_return", "latency",
                  costing.result_return_seconds(),
                  after=["aggregate"],
                  description="return final aggregate to the database")
        return self._finish(warehouse, query, result, stats, trace)


def _route_db_rows(t_parts: List[Table], key: str,
                   num_jen_workers: int,
                   hot_keys=None) -> Tuple[List[Table], int, int]:
    """Regroup DB workers' outgoing rows by the agreed hash destination.

    With a :class:`repro.skew.HotKeySet` (the hybrid shuffle), rows of
    a detected heavy-hitter key are *duplicated* to that key's bounded
    destination set — one copy per worker that holds a spread slice of
    the matching build-side rows; the cold tail keeps the agreed hash.
    Returns the per-destination tables, the number of hot rows (each
    counted once), and the total delivered hot copies (what the
    duplication actually costs on the wire).
    """
    from repro.edw.partitioner import agreed_hash_partition
    from repro.edw.worker import DbWorker

    use_hybrid = hot_keys is not None and len(hot_keys) > 0
    per_destination: List[List[Table]] = [[] for _ in range(num_jen_workers)]
    hot_tuples = 0
    copy_tuples = 0
    dest_lists = (
        hot_keys.destination_lists(num_jen_workers, agreed_hash_partition)
        if use_hybrid else []
    )
    for part in t_parts:
        cold = part
        if use_hybrid:
            keys_column = part.column(key)
            cold = part.filter(~np.isin(keys_column, hot_keys.keys))
            for hot_key, dests in zip(hot_keys.keys, dest_lists):
                hot_rows = part.filter(keys_column == hot_key)
                if hot_rows.num_rows == 0:
                    continue
                hot_tuples += hot_rows.num_rows
                copy_tuples += hot_rows.num_rows * int(dests.size)
                for destination in dests:
                    per_destination[int(destination)].append(hot_rows)
        routed = DbWorker.partition_for_send(cold, key, num_jen_workers)
        for destination, piece in enumerate(routed):
            per_destination[destination].append(piece)
    destinations = [Table.concat(pieces) for pieces in per_destination]
    if use_hybrid and invariants.checking_enabled():
        invariants.check_broadcast_routing(
            t_parts, key, destinations, num_jen_workers,
            agreed_hash_partition, hot_keys.keys,
            fanouts=hot_keys.fanouts,
        )
    return destinations, hot_tuples, copy_tuples
