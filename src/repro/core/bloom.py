"""Bloom filters over integer join keys.

A Bloom filter here is exactly the structure the paper describes in
Section 3: an ``m``-bit array with ``k`` hash functions.  Adding a key
sets the ``k`` hashed bit positions; membership tests check them, with a
tunable false-positive rate and *no* false negatives.  Local filters
built by individual workers are combined into a global filter with
bitwise OR, mirroring the ``cal_filter`` / ``get_filter`` /
``combine_filter`` UDF pipeline the paper implements in DB2.

The paper's configuration (Section 5) is 128 M bits with 2 hash
functions over 16 M unique keys, which it quotes as roughly a 5%
false-positive rate; :meth:`BloomFilter.expected_fpr` reproduces the
standard formula behind that number.

Keys are hashed with two independent splitmix64-style mixers and the
``k`` positions are derived via double hashing (h1 + i*h2), the standard
technique from Kirsch & Mitzenmacher that keeps vectorised hashing cheap
without measurable FPR penalty.
"""

from __future__ import annotations

import math
from typing import Iterable

import numpy as np

from repro.errors import BloomFilterError
from repro.kernels.bloomops import popcount, scatter_or, test_bits
from repro.testkit import invariants

_MIX_MULT_1 = np.uint64(0xBF58476D1CE4E5B9)
_MIX_MULT_2 = np.uint64(0x94D049BB133111EB)
_GOLDEN = np.uint64(0x9E3779B97F4A7C15)


def _splitmix64(values: np.ndarray, seed: int) -> np.ndarray:
    """Vectorised splitmix64 finaliser, seeded."""
    x = values.astype(np.uint64, copy=True)
    with np.errstate(over="ignore"):
        x += np.uint64(seed) * _GOLDEN
        x ^= x >> np.uint64(30)
        x *= _MIX_MULT_1
        x ^= x >> np.uint64(27)
        x *= _MIX_MULT_2
        x ^= x >> np.uint64(31)
    return x


class BloomFilter:
    """A fixed-size Bloom filter over integer keys.

    Parameters
    ----------
    num_bits:
        Size of the bit array ``m``.
    num_hashes:
        Number of hash functions ``k``.
    seed:
        Base seed; two filters must share ``num_bits``, ``num_hashes`` and
        ``seed`` to be merged or for one side's filter to be probed by the
        other side (the "agreed" configuration of the algorithms).
    """

    def __init__(self, num_bits: int, num_hashes: int = 2, seed: int = 7):
        if num_bits <= 0:
            raise BloomFilterError("num_bits must be positive")
        if num_hashes <= 0:
            raise BloomFilterError("num_hashes must be positive")
        self.num_bits = int(num_bits)
        self.num_hashes = int(num_hashes)
        self.seed = int(seed)
        self._words = np.zeros((self.num_bits + 63) // 64, dtype=np.uint64)
        self._num_added = 0

    # ------------------------------------------------------------------
    # Hashing
    # ------------------------------------------------------------------
    def _positions(self, keys: np.ndarray) -> np.ndarray:
        """(k, n) array of bit positions via double hashing."""
        keys = np.asarray(keys).astype(np.uint64)
        h1 = _splitmix64(keys, self.seed)
        h2 = _splitmix64(keys, self.seed + 0x5BD1)
        # Force h2 odd so strides cover the table.
        h2 |= np.uint64(1)
        m = np.uint64(self.num_bits)
        positions = np.empty((self.num_hashes, len(keys)), dtype=np.uint64)
        with np.errstate(over="ignore"):
            for i in range(self.num_hashes):
                positions[i] = (h1 + np.uint64(i) * h2) % m
        return positions

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def add(self, keys: Iterable[int]) -> None:
        """Insert keys (any integer iterable or numpy array).

        Runs the word-level scatter kernel: duplicate positions (hash
        collisions and the k hashes of repeated keys) collapse in a
        presence-array scatter and the words are built with one fused
        bit-pack — no serial ``bitwise_or.at`` scatter.
        """
        keys = np.asarray(list(keys) if not isinstance(keys, np.ndarray) else keys)
        if keys.size == 0:
            return
        scatter_or(self._words, self._positions(keys))
        self._num_added += len(keys)
        if invariants.checking_enabled():
            invariants.record_bloom_add(self, keys)

    def union_in_place(self, other: "BloomFilter") -> "BloomFilter":
        """Bitwise-OR ``other`` into this filter (the global-merge step)."""
        self._check_compatible(other)
        self._words |= other._words
        self._num_added += other._num_added
        if invariants.checking_enabled():
            invariants.record_bloom_merge(self, other)
        return self

    @classmethod
    def combine(cls, filters: Iterable["BloomFilter"]) -> "BloomFilter":
        """OR a collection of local filters into one global filter.

        This is the reproduction of the paper's ``combine_filter`` UDF:
        each worker computes a filter over its local partition and a
        single worker reduces them.
        """
        filters = list(filters)
        if not filters:
            raise BloomFilterError("combine requires at least one filter")
        merged = filters[0].copy()
        for other in filters[1:]:
            merged.union_in_place(other)
        return merged

    def copy(self) -> "BloomFilter":
        """An independent copy of this filter."""
        duplicate = BloomFilter(self.num_bits, self.num_hashes, self.seed)
        duplicate._words = self._words.copy()
        duplicate._num_added = self._num_added
        if invariants.checking_enabled():
            invariants.record_bloom_merge(duplicate, self)
        return duplicate

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def contains(self, keys: np.ndarray) -> np.ndarray:
        """Boolean mask: which keys *may* be in the set.

        False entries are guaranteed absent; True entries are present up
        to the false-positive rate.
        """
        keys = np.asarray(keys)
        if keys.size == 0:
            return np.zeros(0, dtype=bool)
        mask = test_bits(self._words, self._positions(keys))
        if invariants.checking_enabled():
            invariants.check_bloom_contains(self, keys, mask)
        return mask

    def __contains__(self, key: int) -> bool:
        return bool(self.contains(np.asarray([key]))[0])

    @property
    def num_added(self) -> int:
        """How many insertions this filter (and its merged parts) saw."""
        return self._num_added

    def bits_set(self) -> int:
        """Number of 1 bits in the filter.

        Word-level popcount (hardware ``popcnt`` where numpy exposes
        it) — the advisor calls :meth:`estimated_fpr` per decision, so
        this must not materialise every bit the way ``unpackbits``
        does.
        """
        return popcount(self._words)

    def fill_ratio(self) -> float:
        """Fraction of bits set."""
        return self.bits_set() / self.num_bits

    def size_bytes(self) -> int:
        """Serialized size (what crosses the network when shipped)."""
        return self._words.nbytes

    def is_empty(self) -> bool:
        """True if no bit is set."""
        return not self._words.any()

    # ------------------------------------------------------------------
    # Analytics
    # ------------------------------------------------------------------
    @staticmethod
    def expected_fpr(num_bits: int, num_hashes: int, num_keys: int) -> float:
        """Textbook false-positive rate ``(1 - e^{-kn/m})^k``.

        With the paper's m=128 M bits, k=2, n=16 M this evaluates to about
        4.9%, matching the "roughly 5%" quoted in Section 5.
        """
        if num_keys <= 0:
            return 0.0
        exponent = -num_hashes * num_keys / num_bits
        return float((1.0 - math.exp(exponent)) ** num_hashes)

    def estimated_fpr(self) -> float:
        """FPR estimate from the observed fill ratio."""
        return float(self.fill_ratio() ** self.num_hashes)

    @staticmethod
    def optimal_num_hashes(num_bits: int, num_keys: int) -> int:
        """FPR-minimising hash count ``(m/n) ln 2`` (at least 1)."""
        if num_keys <= 0:
            return 1
        return max(1, round(num_bits / num_keys * math.log(2.0)))

    # ------------------------------------------------------------------
    def _check_compatible(self, other: "BloomFilter") -> None:
        same = (
            self.num_bits == other.num_bits
            and self.num_hashes == other.num_hashes
            and self.seed == other.seed
        )
        if not same:
            raise BloomFilterError(
                "incompatible Bloom filters: "
                f"(m={self.num_bits}, k={self.num_hashes}, seed={self.seed}) vs "
                f"(m={other.num_bits}, k={other.num_hashes}, seed={other.seed})"
            )

    def __repr__(self) -> str:
        return (
            f"BloomFilter(m={self.num_bits}, k={self.num_hashes}, "
            f"added={self._num_added}, fill={self.fill_ratio():.3f})"
        )


def probe_and_insert(keys: np.ndarray, probe: BloomFilter,
                     insert: BloomFilter) -> np.ndarray:
    """Fused probe of one filter + insert of survivors into another.

    This is the zigzag join's two-way filter step inside the JEN scan
    (paper Section 4.4): test each key against the pushed-down BF_DB
    and add exactly the keys that pass to the local BF_H, in one pass
    over the key column — no intermediate table gather between the two
    filter operations.  Returns the keep mask; ``insert`` ends up
    bit-identical to ``insert.add(keys[mask])``.
    """
    keys = np.asarray(keys)
    if keys.size == 0:
        return np.zeros(0, dtype=bool)
    mask = probe.contains(keys)
    insert.add(keys[mask])
    return mask
