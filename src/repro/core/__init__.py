"""The paper's primary contribution: Bloom-filtered hybrid-warehouse joins.

``repro.core`` holds the Bloom filter implementation, the five join
algorithms of Section 3 (DB-side with and without Bloom filter,
HDFS-side broadcast, HDFS-side repartition with and without Bloom
filter, and the new zigzag join), the semi-join baselines from the
related-work discussion, and the join-site advisor distilled from the
paper's experimental conclusions (Section 5.5).
"""

from repro.core.bloom import BloomFilter
from repro.core.joins import (
    ALGORITHMS,
    BroadcastJoin,
    DbSideJoin,
    JoinAlgorithm,
    JoinResult,
    JoinStats,
    RepartitionJoin,
    ZigzagJoin,
    algorithm_by_name,
    valid_algorithm_names,
)
from repro.core.advisor import AdvisorDecision, JoinAdvisor

__all__ = [
    "ALGORITHMS",
    "AdvisorDecision",
    "BloomFilter",
    "BroadcastJoin",
    "DbSideJoin",
    "JoinAdvisor",
    "JoinAlgorithm",
    "JoinResult",
    "JoinStats",
    "RepartitionJoin",
    "ZigzagJoin",
    "algorithm_by_name",
    "valid_algorithm_names",
]
