"""HDFS blocks: contiguous row ranges of a stored table.

A block is metadata only — the actual rows are numpy slices held by the
DataNodes that store replicas.  Block sizing follows the format's stored
row width so a 128 MB text block holds fewer rows than a 128 MB Parquet
block, exactly as on a real cluster.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.errors import StorageError

#: Globally unique block identifier.
BlockId = int


@dataclass(frozen=True)
class Block:
    """One block of one HDFS file."""

    block_id: BlockId
    path: str
    start_row: int
    num_rows: int
    stored_bytes: float
    replicas: Tuple[int, ...]

    def __post_init__(self):
        if self.num_rows <= 0:
            raise StorageError(f"block {self.block_id} has no rows")
        if not self.replicas:
            raise StorageError(f"block {self.block_id} has no replicas")
        if len(set(self.replicas)) != len(self.replicas):
            raise StorageError(
                f"block {self.block_id} replicated twice on one node"
            )

    @property
    def end_row(self) -> int:
        """One past the last row in this block."""
        return self.start_row + self.num_rows
