"""DataNodes: replica storage and local block reads.

Replicas are zero-copy views into the loaded table, so replication does
not multiply memory; what matters is the *placement*, which drives the
scheduler's locality decisions, and the per-node disk count, which
drives scan parallelism in the cost model.
"""

from __future__ import annotations

from typing import Dict

from repro.errors import StorageError
from repro.hdfs.blocks import Block, BlockId
from repro.relational.table import Table


class DataNode:
    """One storage node of the simulated HDFS cluster."""

    def __init__(self, node_id: int, num_disks: int = 4):
        if num_disks <= 0:
            raise StorageError("a DataNode needs at least one disk")
        self.node_id = node_id
        self.num_disks = num_disks
        self._replicas: Dict[BlockId, Table] = {}

    def store_replica(self, block: Block, rows: Table) -> None:
        """Accept a replica of ``block`` with its row data."""
        if self.node_id not in block.replicas:
            raise StorageError(
                f"node {self.node_id} is not a replica target of "
                f"block {block.block_id}"
            )
        if rows.num_rows != block.num_rows:
            raise StorageError(
                f"block {block.block_id} expects {block.num_rows} rows, "
                f"got {rows.num_rows}"
            )
        self._replicas[block.block_id] = rows

    def has_replica(self, block_id: BlockId) -> bool:
        """True if this node stores the block."""
        return block_id in self._replicas

    def read_block(self, block: Block) -> Table:
        """Read a locally stored replica (short-circuit read)."""
        try:
            return self._replicas[block.block_id]
        except KeyError:
            raise StorageError(
                f"node {self.node_id} has no replica of block "
                f"{block.block_id}"
            ) from None

    def evict(self, block_id: BlockId) -> None:
        """Drop a replica if present."""
        self._replicas.pop(block_id, None)

    def stored_blocks(self) -> int:
        """Number of replicas this node holds."""
        return len(self._replicas)
