"""Simulated HDFS: NameNode, DataNodes, blocks and storage formats.

The click-log table of the paper lives here.  Tables are written as
replicated blocks across DataNodes; scans are block-oriented and
format-aware — the text format must read whole rows, while the
Parquet-like columnar format compresses and prunes columns, which is the
asymmetry behind the paper's Section 5.4 experiments.
"""

from repro.hdfs.blocks import Block, BlockId
from repro.hdfs.namenode import NameNode
from repro.hdfs.datanode import DataNode
from repro.hdfs.filesystem import HCatalog, HdfsFileSystem, HdfsTableMeta
from repro.hdfs.formats import (
    FORMATS,
    ParquetFormat,
    StorageFormat,
    TextFormat,
    format_by_name,
)

__all__ = [
    "Block",
    "BlockId",
    "DataNode",
    "FORMATS",
    "HCatalog",
    "HdfsFileSystem",
    "HdfsTableMeta",
    "NameNode",
    "ParquetFormat",
    "StorageFormat",
    "TextFormat",
    "format_by_name",
]
