"""Parquet-like columnar format with Snappy-style compression.

Models the two properties the paper exploits (Section 5 / 5.4):

* **column pruning** — a scan touches only the projected columns' bytes
  (JEN's I/O layer "is able to push down projections when reading from
  this columnar format");
* **lightweight compression** — dictionary/RLE plus Snappy shrink the
  stored bytes; the paper's 1 TB text table becomes 421 GB, a factor of
  about 2.4, which the default ratios reproduce for the log-table schema.
"""

from __future__ import annotations

from repro.hdfs.formats.base import StorageFormat
from repro.relational.schema import Column, DataType


class ParquetFormat(StorageFormat):
    """Columnar storage: compressed columns, projection pushdown."""

    name = "parquet"
    supports_projection_pushdown = True

    def __init__(self, numeric_ratio: float = 0.55, string_ratio: float = 0.55,
                 date_ratio: float = 0.50):
        #: Compressed bytes per stored byte for plain numeric columns.
        self.numeric_ratio = numeric_ratio
        #: Compressed bytes per logical character for string columns
        #: (dictionary encoding plus Snappy).
        self.string_ratio = string_ratio
        #: Dates RLE-compress well (the log is roughly time-ordered).
        self.date_ratio = date_ratio

    def column_stored_bytes(self, column: Column) -> float:
        if column.dtype is DataType.DICT_STRING:
            return column.width() * self.string_ratio
        if column.dtype is DataType.DATE:
            return column.dtype.default_width() * self.date_ratio
        return column.dtype.default_width() * self.numeric_ratio
