"""HDFS storage formats: delimited text and Parquet-like columnar."""

from repro.hdfs.formats.base import StorageFormat
from repro.hdfs.formats.text import TextFormat
from repro.hdfs.formats.parquet import ParquetFormat
from repro.hdfs.formats.orc import OrcFormat

from typing import Dict

from repro.errors import StorageError

#: Registry of built-in formats by name.
FORMATS: Dict[str, StorageFormat] = {
    "text": TextFormat(),
    "parquet": ParquetFormat(),
    "orc": OrcFormat(),
}


def format_by_name(name: str) -> StorageFormat:
    """Look up a registered storage format."""
    try:
        return FORMATS[name]
    except KeyError:
        raise StorageError(
            f"unknown storage format {name!r}; have {sorted(FORMATS)}"
        ) from None


__all__ = ["FORMATS", "OrcFormat", "ParquetFormat", "StorageFormat",
           "TextFormat", "format_by_name"]
