"""Delimited text format.

The baseline format of the paper's Section 5.4: rows are stored as
delimited ASCII, so a scan must read (and parse) every byte of every row
regardless of which columns the query needs.  Numeric values cost their
printed width plus a delimiter; the paper's 15 B-row log table comes out
around 1 TB, matching the reported size.
"""

from __future__ import annotations

from repro.hdfs.formats.base import StorageFormat
from repro.relational.schema import Column, DataType


class TextFormat(StorageFormat):
    """Row-oriented delimited text: no compression, no column pruning."""

    name = "text"
    supports_projection_pushdown = False

    #: Average printed width (digits plus one delimiter) per type.
    _NUMERIC_WIDTHS = {
        DataType.INT32: 8.0,
        DataType.INT64: 12.0,
        DataType.FLOAT64: 13.0,
        DataType.DATE: 11.0,  # ISO date plus delimiter
    }

    def column_stored_bytes(self, column: Column) -> float:
        if column.dtype is DataType.DICT_STRING:
            # Actual characters plus a delimiter.
            return column.width() + 1.0
        return self._NUMERIC_WIDTHS[column.dtype]
