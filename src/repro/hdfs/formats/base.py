"""Storage format interface.

A format answers two questions for the rest of the system:

* how many *stored* bytes does a table (or a projection of it) occupy —
  which sizes the blocks on disk and prices the scans; and
* does a scan of a projection have to read whole rows (text) or only the
  projected columns (columnar with projection pushdown)?

Formats do not own any data: blocks store numpy-backed
:class:`~repro.relational.table.Table` slices, and the format only
describes their on-disk footprint.  That keeps the data plane fast while
the byte accounting remains faithful.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.relational.schema import Column, Schema


class StorageFormat:
    """Base class for HDFS storage formats."""

    #: Registry/display name.
    name: str = "base"
    #: Whether a scan of a projection can skip non-projected columns.
    supports_projection_pushdown: bool = False

    def column_stored_bytes(self, column: Column) -> float:
        """Stored bytes per value of ``column``."""
        raise NotImplementedError

    def row_stored_bytes(self, schema: Schema,
                         columns: Optional[Sequence[str]] = None) -> float:
        """Stored bytes per row, optionally projected.

        For formats without projection pushdown the projection is
        irrelevant for *scan* sizing (whole rows are read regardless), so
        callers use :meth:`scan_bytes_per_row` for pricing scans.
        """
        selected = list(schema) if columns is None else [
            schema.column(name) for name in columns
        ]
        return sum(self.column_stored_bytes(column) for column in selected)

    def scan_bytes_per_row(self, schema: Schema,
                           projected: Optional[Sequence[str]] = None) -> float:
        """Bytes that must be read per row to scan ``projected`` columns."""
        if self.supports_projection_pushdown:
            return self.row_stored_bytes(schema, projected)
        return self.row_stored_bytes(schema, None)

    def table_stored_bytes(self, schema: Schema, num_rows: int) -> float:
        """Total stored size of a table in this format."""
        return self.row_stored_bytes(schema) * num_rows

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"
