"""ORC-like columnar format.

The paper's column-store discussion cites the ORC file format alongside
Parquet (references [29] and [31]).  ORC of that era used aggressive
run-length and dictionary encoding with larger stripes, which typically
compressed the low-cardinality integer columns of a click log a bit
harder than Parquet+Snappy, at slightly higher decode cost (captured by
the scan-rate table in the cost model falling back to the text rate for
unknown formats unless configured).

Included so format studies can compare three points, and as the natural
extension target for new formats: subclass :class:`StorageFormat`,
register in :data:`repro.hdfs.formats.FORMATS`.
"""

from __future__ import annotations

from repro.hdfs.formats.base import StorageFormat
from repro.relational.schema import Column, DataType


class OrcFormat(StorageFormat):
    """Columnar storage with RLE-heavy compression, projection pushdown."""

    name = "orc"
    supports_projection_pushdown = True

    def __init__(self, numeric_ratio: float = 0.45,
                 string_ratio: float = 0.50, date_ratio: float = 0.35):
        #: Compressed bytes per stored byte for numeric columns.
        self.numeric_ratio = numeric_ratio
        #: Compressed bytes per logical character for string columns.
        self.string_ratio = string_ratio
        #: Dates RLE-compress extremely well in time-ordered logs.
        self.date_ratio = date_ratio

    def column_stored_bytes(self, column: Column) -> float:
        if column.dtype is DataType.DICT_STRING:
            return column.width() * self.string_ratio
        if column.dtype is DataType.DATE:
            return column.dtype.default_width() * self.date_ratio
        return column.dtype.default_width() * self.numeric_ratio
