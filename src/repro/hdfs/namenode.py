"""The NameNode: file-to-block mapping and replica placement.

Placement follows the classic HDFS policy in spirit: the first replica
round-robins across DataNodes (there is no single "writer" node in our
bulk loads) and each additional replica goes to a distinct node chosen
deterministically from the block id, so layouts are reproducible across
runs and tests.
"""

from __future__ import annotations

import itertools
from typing import Dict, List, Tuple

from repro.errors import StorageError
from repro.hdfs.blocks import Block, BlockId


class NameNode:
    """Block metadata authority for one simulated HDFS instance."""

    def __init__(self, num_datanodes: int, replication: int = 2):
        if num_datanodes <= 0:
            raise StorageError("need at least one DataNode")
        if not 1 <= replication <= num_datanodes:
            raise StorageError(
                f"replication {replication} impossible with "
                f"{num_datanodes} DataNodes"
            )
        self.num_datanodes = num_datanodes
        self.replication = replication
        self._files: Dict[str, List[Block]] = {}
        self._next_block_id = itertools.count()
        self._first_replica = itertools.count()

    def allocate_blocks(
        self, path: str, row_counts: List[int], bytes_per_row: float
    ) -> List[Block]:
        """Create block metadata for a new file of the given row layout."""
        if path in self._files:
            raise StorageError(f"file already exists: {path!r}")
        blocks: List[Block] = []
        start = 0
        for rows in row_counts:
            block_id = next(self._next_block_id)
            blocks.append(
                Block(
                    block_id=block_id,
                    path=path,
                    start_row=start,
                    num_rows=rows,
                    stored_bytes=rows * bytes_per_row,
                    replicas=self._place_replicas(block_id),
                )
            )
            start += rows
        self._files[path] = blocks
        return blocks

    def _place_replicas(self, block_id: BlockId) -> Tuple[int, ...]:
        first = next(self._first_replica) % self.num_datanodes
        replicas = [first]
        # Deterministic spread for the remaining replicas: stride derived
        # from the block id, never colliding with already-chosen nodes.
        stride = 1 + (block_id * 2654435761) % (self.num_datanodes - 1) \
            if self.num_datanodes > 1 else 0
        node = first
        while len(replicas) < self.replication:
            node = (node + stride) % self.num_datanodes
            if node not in replicas:
                replicas.append(node)
            else:
                node = (node + 1) % self.num_datanodes
        return tuple(replicas)

    def blocks(self, path: str) -> List[Block]:
        """All blocks of a file, in row order."""
        try:
            return list(self._files[path])
        except KeyError:
            raise StorageError(f"no such file: {path!r}") from None

    def exists(self, path: str) -> bool:
        """True if the file is known."""
        return path in self._files

    def delete(self, path: str) -> List[Block]:
        """Forget a file, returning its blocks so DataNodes can evict."""
        if path not in self._files:
            raise StorageError(f"no such file: {path!r}")
        return self._files.pop(path)

    def files(self) -> List[str]:
        """All known file paths."""
        return sorted(self._files)
