"""The HDFS facade plus the HCatalog metadata service.

:class:`HdfsFileSystem` bundles a NameNode and its DataNodes, exposing
table-level writes (split into format-sized, replicated blocks) and
block-level reads.  :class:`HCatalog` stores the table-level metadata —
path, schema, format — that the paper's JEN coordinator retrieves before
scheduling a scan (Section 4.1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.config import ClusterConfig
from repro.errors import CatalogError, StorageError
from repro.hdfs.blocks import Block
from repro.hdfs.datanode import DataNode
from repro.hdfs.formats import StorageFormat, format_by_name
from repro.hdfs.namenode import NameNode
from repro.relational.schema import Schema
from repro.relational.table import Table


@dataclass(frozen=True)
class HdfsTableMeta:
    """HCatalog entry for one HDFS-resident table."""

    name: str
    path: str
    schema: Schema
    format_name: str
    num_rows: int

    def storage_format(self) -> StorageFormat:
        """Resolve the format object."""
        return format_by_name(self.format_name)


class HCatalog:
    """Table metadata service (the paper uses Apache HCatalog)."""

    def __init__(self):
        self._tables: Dict[str, HdfsTableMeta] = {}

    def register(self, meta: HdfsTableMeta) -> None:
        """Add a table, rejecting duplicates."""
        if meta.name in self._tables:
            raise CatalogError(f"HDFS table already registered: {meta.name!r}")
        self._tables[meta.name] = meta

    def lookup(self, name: str) -> HdfsTableMeta:
        """Metadata for ``name``."""
        try:
            return self._tables[name]
        except KeyError:
            raise CatalogError(f"unknown HDFS table: {name!r}") from None

    def tables(self) -> List[str]:
        """Registered table names."""
        return sorted(self._tables)


class HdfsFileSystem:
    """A NameNode plus its DataNodes, with table-level convenience."""

    def __init__(self, cluster: Optional[ClusterConfig] = None):
        self.cluster = cluster or ClusterConfig()
        self.namenode = NameNode(
            num_datanodes=self.cluster.hdfs_nodes,
            replication=self.cluster.hdfs_replication,
        )
        self.datanodes = [
            DataNode(node_id, num_disks=self.cluster.hdfs_disks_per_node)
            for node_id in range(self.cluster.hdfs_nodes)
        ]
        self.catalog = HCatalog()

    # ------------------------------------------------------------------
    def write_table(
        self, name: str, path: str, table: Table, format_name: str,
        target_blocks: Optional[int] = None,
    ) -> List[Block]:
        """Store ``table`` at ``path`` in the given format and register it.

        The table is split into blocks sized by the format's stored row
        width against the configured HDFS block size, then each block's
        replicas are materialised on their DataNodes.

        ``target_blocks`` overrides the byte-based sizing — the warehouse
        uses it to keep the *block count* representative when the data
        plane runs at a small fraction of paper scale, so the
        locality-aware scheduler has something real to balance.
        """
        storage_format = format_by_name(format_name)
        bytes_per_row = storage_format.row_stored_bytes(table.schema)
        if table.num_rows == 0:
            raise StorageError(f"refusing to write empty table {name!r}")
        if target_blocks is not None:
            if target_blocks <= 0:
                raise StorageError("target_blocks must be positive")
            rows_per_block = max(
                1, -(-table.num_rows // target_blocks)
            )
        else:
            rows_per_block = max(
                1, int(self.cluster.hdfs_block_size / bytes_per_row)
            )
        row_counts = []
        remaining = table.num_rows
        while remaining > 0:
            count = min(rows_per_block, remaining)
            row_counts.append(count)
            remaining -= count

        blocks = self.namenode.allocate_blocks(path, row_counts, bytes_per_row)
        for block in blocks:
            rows = table.slice(block.start_row, block.end_row)
            for node_id in block.replicas:
                self.datanodes[node_id].store_replica(block, rows)
        self.catalog.register(
            HdfsTableMeta(
                name=name,
                path=path,
                schema=table.schema,
                format_name=format_name,
                num_rows=table.num_rows,
            )
        )
        return blocks

    def read_block(self, block: Block, preferred_node: Optional[int] = None
                   ) -> Table:
        """Read one block, preferring a given (usually local) replica."""
        if preferred_node is not None and preferred_node in block.replicas:
            return self.datanodes[preferred_node].read_block(block)
        return self.datanodes[block.replicas[0]].read_block(block)

    def table_blocks(self, name: str) -> List[Block]:
        """All blocks of a registered table."""
        meta = self.catalog.lookup(name)
        return self.namenode.blocks(meta.path)

    def table_meta(self, name: str) -> HdfsTableMeta:
        """HCatalog metadata for a table."""
        return self.catalog.lookup(name)
