"""Workload persistence: save/load generated tables as ``.npz`` bundles.

Regenerating the synthetic tables is cheap at test scale but takes
seconds at larger data planes; examples and long benchmark campaigns can
persist a generated :class:`~repro.workload.generator.Workload` once and
reload it instantly.  The bundle stores every column array, the
dictionaries of dict-string columns, and the spec/threshold metadata
needed to rebuild the paper query.
"""

from __future__ import annotations

import json
import pathlib
from typing import Union

import numpy as np

from repro.errors import WorkloadError
from repro.relational.schema import DataType
from repro.relational.table import Table
from repro.workload.generator import (
    KeyLayout,
    PredicateThresholds,
    Workload,
    WorkloadSpec,
)
from repro.workload.scenario import log_schema, transaction_schema

#: Bundle format version.
FORMAT_VERSION = 1


def save_workload(workload: Workload,
                  path: Union[str, pathlib.Path]) -> pathlib.Path:
    """Write a workload to ``path`` (a single ``.npz`` file)."""
    path = pathlib.Path(path)
    arrays = {}
    for prefix, table in (("t", workload.t_table),
                          ("l", workload.l_table)):
        for column in table.schema:
            arrays[f"{prefix}__{column.name}"] = table.column(column.name)
            if column.dtype is DataType.DICT_STRING:
                arrays[f"{prefix}__dict__{column.name}"] = \
                    table.dictionary(column.name).astype(str)
    metadata = {
        "format_version": FORMAT_VERSION,
        "spec": workload.spec.__dict__,
        "layout": workload.layout.__dict__,
        "t_thresholds": workload.t_thresholds.__dict__,
        "l_thresholds": workload.l_thresholds.__dict__,
    }
    arrays["__meta__"] = np.array(json.dumps(metadata))
    np.savez_compressed(path, **arrays)
    return path


def load_workload(path: Union[str, pathlib.Path]) -> Workload:
    """Load a workload previously written by :func:`save_workload`."""
    path = pathlib.Path(path)
    if not path.exists():
        raise WorkloadError(f"no workload bundle at {path}")
    with np.load(path, allow_pickle=False) as bundle:
        metadata = json.loads(str(bundle["__meta__"]))
        if metadata.get("format_version") != FORMAT_VERSION:
            raise WorkloadError(
                f"unsupported workload bundle version "
                f"{metadata.get('format_version')!r}"
            )
        tables = {}
        for prefix, schema in (("t", transaction_schema()),
                               ("l", log_schema())):
            columns = {}
            dictionaries = {}
            for column in schema:
                columns[column.name] = bundle[f"{prefix}__{column.name}"]
                if column.dtype is DataType.DICT_STRING:
                    dictionaries[column.name] = bundle[
                        f"{prefix}__dict__{column.name}"
                    ].astype(object)
            tables[prefix] = Table(schema, columns, dictionaries)
    return Workload(
        spec=WorkloadSpec(**metadata["spec"]),
        layout=KeyLayout(**metadata["layout"]),
        t_table=tables["t"],
        l_table=tables["l"],
        t_thresholds=PredicateThresholds(**metadata["t_thresholds"]),
        l_thresholds=PredicateThresholds(**metadata["l_thresholds"]),
    )
