"""Synthetic T and L tables with controlled selectivities.

The paper's trick (Section 5): each table's local predicate is a
conjunction over two columns — ``corPred``, *correlated* with the join
key, and ``indPred``, independent of it — so the experimenters can vary
the join-key selectivities S_T′/S_L′ while holding the combined tuple
selectivities σ_T/σ_L fixed, and vice versa.

We reproduce that construction exactly:

1. The join-key universe ``[0, n_keys)`` is carved into four regions —
   keys that survive both tables' predicates (the *overlap*), keys in
   T′ only, keys in L′ only, and the rest::

       [0 ... o)           overlap   (JK(T') ∩ JK(L'))
       [o ... kt)          T'-only
       [kt ... kt+kl-o)    L'-only
       [kt+kl-o ... n)     neither

   where ``kt = |JK(T')|``, ``kl = |JK(L')|`` and the sizes are solved
   from the requested selectivities (``o = S_T'*kt = S_L'*kl``).

2. Each table maps keys through a piecewise *rank* permutation putting
   its surviving keys first, and draws ``corPred`` from the key's rank —
   so ``corPred <= a`` selects exactly that table's surviving key
   region.  ``indPred`` is drawn independently and thresholded to make
   the *combined* tuple selectivity come out at σ.

Row values are uniform, as in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.errors import WorkloadError
from repro.relational.table import Table

#: Domain of the independent predicate column.
IND_DOMAIN = 1_000_000
#: Number of days the date columns span; the paper's post-join predicate
#: (within one day) then has selectivity about 2/DATE_DOMAIN.
DATE_DOMAIN = 30


@dataclass(frozen=True)
class WorkloadSpec:
    """Requested shape of one synthetic workload.

    ``s_t``/``s_l`` are the join-key selectivities S_T′/S_L′.  At least
    one must be given; a missing one is derived by fixing the other
    table's correlated-key region to exactly its σ (full correlation).
    """

    sigma_t: float
    sigma_l: float
    s_t: Optional[float] = None
    s_l: Optional[float] = None
    t_rows: int = 160_000
    l_rows: int = 1_500_000
    n_keys: int = 1_600
    n_urls: int = 400
    seed: int = 42
    #: Zipf exponent for the join-key popularity distribution.  0 (the
    #: paper's setting) draws keys uniformly; larger values concentrate
    #: rows on few keys, the robustness extension studied by the
    #: ``ext_skew`` experiment.
    key_skew: float = 0.0

    def __post_init__(self):
        for label, value in (("sigma_t", self.sigma_t),
                             ("sigma_l", self.sigma_l)):
            if not 0.0 < value <= 1.0:
                raise WorkloadError(f"{label} must be in (0, 1], got {value}")
        for label, value in (("s_t", self.s_t), ("s_l", self.s_l)):
            if value is not None and not 0.0 < value <= 1.0:
                raise WorkloadError(f"{label} must be in (0, 1], got {value}")
        if self.s_t is None and self.s_l is None:
            raise WorkloadError("at least one of s_t / s_l must be given")
        if min(self.t_rows, self.l_rows, self.n_keys) <= 0:
            raise WorkloadError("row and key counts must be positive")
        if self.key_skew < 0:
            raise WorkloadError("key_skew must be non-negative")


@dataclass(frozen=True)
class KeyLayout:
    """Solved key-region sizes for a spec.

    ``clamped`` marks specs that are *mathematically* infeasible with
    exact disjoint key regions (e.g. the paper's Fig. 9b point σ_T=0.1,
    σ_L=0.4, S_T′=0.2, S_L′=0.4 needs |JK(T')∪JK(L')| = 1.04·n_keys) and
    were approximated by shrinking the overlap to the boundary; the
    achieved σ values then land slightly below the request, just as the
    paper's own measured selectivities are approximate.
    """

    n_keys: int
    kt: int        # |JK(T')|
    kl: int        # |JK(L')|
    overlap: int   # |JK(T') ∩ JK(L')|
    clamped: bool = False

    def __post_init__(self):
        if not (0 < self.overlap <= min(self.kt, self.kl)):
            raise WorkloadError(
                f"invalid layout: overlap={self.overlap}, kt={self.kt}, "
                f"kl={self.kl}"
            )
        if self.kt + self.kl - self.overlap > self.n_keys:
            raise WorkloadError(
                "key regions exceed the universe: "
                f"kt={self.kt} + kl={self.kl} - o={self.overlap} "
                f"> n={self.n_keys}"
            )

    @property
    def s_t(self) -> float:
        """Achieved S_T′."""
        return self.overlap / self.kt

    @property
    def s_l(self) -> float:
        """Achieved S_L′."""
        return self.overlap / self.kl


def solve_key_layout(spec: WorkloadSpec) -> KeyLayout:
    """Solve the key-region sizes from the requested selectivities.

    Raises :class:`WorkloadError` with a diagnostic when the requested
    combination is infeasible (e.g. σ_L·S_L′ too large relative to σ_T
    and the key universe).
    """
    n = spec.n_keys
    clamped = False
    if spec.s_t is not None and spec.s_l is not None:
        # o = s_t*kt = s_l*kl; kt >= sigma_t*n, kl >= sigma_l*n,
        # kt + kl - o <= n.
        o_min = max(spec.sigma_t * spec.s_t, spec.sigma_l * spec.s_l) * n
        o_max = n / (1.0 / spec.s_t + 1.0 / spec.s_l - 1.0)
        if o_min > o_max * (1 + 1e-9):
            # Mildly over-constrained combinations (the paper itself uses
            # one in Fig. 9b) are approximated at the feasibility
            # boundary; grossly infeasible requests are rejected.
            if o_min > o_max * 1.3:
                raise WorkloadError(
                    "infeasible selectivity combination: "
                    f"sigma_t={spec.sigma_t}, sigma_l={spec.sigma_l}, "
                    f"s_t={spec.s_t}, s_l={spec.s_l} (required overlap "
                    f"{o_min:.1f} > available {o_max:.1f} keys)"
                )
            clamped = True
            o_min = o_max
        # The smallest feasible overlap keeps each table's correlated key
        # region as close to sigma*n as possible, which keeps per-key row
        # multiplicities (and hence the join output) steady across sweeps.
        overlap = max(1, round(min(o_min, o_max)))
        kt = max(1, round(overlap / spec.s_t))
        kl = max(1, round(overlap / spec.s_l))
        overlap = min(overlap, kt, kl)
        if kt + kl - overlap > n:
            # Integer rounding can nudge past the boundary; pull the
            # regions back inside the universe.
            excess = kt + kl - overlap - n
            kl = max(overlap, kl - excess)
            clamped = True
    elif spec.s_l is not None:
        # Fix L's regions exactly; grow JK(T') beyond sigma_t*n if the
        # requested overlap demands it (the independent predicate column
        # absorbs the difference, keeping sigma_t intact).
        kl = max(1, round(spec.sigma_l * n))
        overlap = max(1, round(spec.s_l * kl))
        kt = max(max(1, round(spec.sigma_t * n)), overlap)
        if kt + kl - overlap > n:
            raise WorkloadError(
                f"infeasible: s_l={spec.s_l} with sigma_l={spec.sigma_l} "
                f"and sigma_t={spec.sigma_t} does not fit in "
                f"{n} join keys; reduce s_l or the sigmas"
            )
    else:
        kt = max(1, round(spec.sigma_t * n))
        overlap = max(1, round(spec.s_t * kt))
        kl = max(max(1, round(spec.sigma_l * n)), overlap)
        if kt + kl - overlap > n:
            raise WorkloadError(
                f"infeasible: s_t={spec.s_t} with sigma_t={spec.sigma_t} "
                f"and sigma_l={spec.sigma_l} does not fit in "
                f"{n} join keys; reduce s_t or the sigmas"
            )
    return KeyLayout(n_keys=n, kt=kt, kl=kl, overlap=overlap,
                     clamped=clamped)


@dataclass(frozen=True)
class PredicateThresholds:
    """The constants a/b (or c/d) of one table's local predicate."""

    cor_threshold: int
    ind_threshold: int
    cor_scale: int  # corPred = rank * cor_scale + noise


@dataclass
class Workload:
    """Generated tables plus everything needed to query them."""

    spec: WorkloadSpec
    layout: KeyLayout
    t_table: Table
    l_table: Table
    t_thresholds: PredicateThresholds
    l_thresholds: PredicateThresholds


def _rank_to_l(keys: np.ndarray, layout: KeyLayout) -> np.ndarray:
    """The L-side piecewise rank permutation.

    Maps overlap keys to ranks ``[0, o)``, L'-only keys to
    ``[o, kl)``, T'-only keys to ``[kl, kl + kt - o)`` and the rest
    beyond, so that ``rank < kl`` selects exactly JK(L').
    """
    kt, kl, o = layout.kt, layout.kl, layout.overlap
    ranks = np.empty(len(keys), dtype=np.int64)
    in_overlap = keys < o
    in_t_only = (keys >= o) & (keys < kt)
    in_l_only = (keys >= kt) & (keys < kt + kl - o)
    in_rest = keys >= kt + kl - o
    ranks[in_overlap] = keys[in_overlap]
    ranks[in_l_only] = o + (keys[in_l_only] - kt)
    ranks[in_t_only] = kl + (keys[in_t_only] - o)
    ranks[in_rest] = kl + (kt - o) + (keys[in_rest] - (kt + kl - o))
    return ranks


def _cor_pred_from_ranks(
    ranks: np.ndarray, n_keys: int, rng: np.random.Generator
) -> Tuple[np.ndarray, int]:
    """Correlated predicate values plus the rank→value scale."""
    scale = max(1, min(1000, (2**31 - 2) // max(n_keys, 1)))
    noise = rng.integers(0, scale, size=len(ranks))
    return (ranks * scale + noise).astype(np.int32), scale


def _thresholds(
    region_keys: int, n_keys: int, sigma: float, scale: int,
    cor_mass: Optional[float] = None,
) -> PredicateThresholds:
    """Predicate constants selecting the first ``region_keys`` ranks with
    combined tuple selectivity ``sigma``.

    ``cor_mass`` is the probability a row's key falls in the region —
    ``region_keys / n_keys`` for uniform keys, but larger/smaller under
    key skew, where it must be measured from the key distribution.
    """
    sigma_cor = cor_mass if cor_mass is not None else region_keys / n_keys
    if cor_mass is not None and sigma_cor < sigma * 0.9:
        # Integer rounding on tiny key universes can undershoot a little
        # (the achieved sigma then lands slightly low, as before); a gap
        # beyond 10% means the skew genuinely starves the region.
        raise WorkloadError(
            f"requested sigma={sigma} but the correlated key region only "
            f"carries probability mass {sigma_cor:.4f} under this key "
            "skew; reduce key_skew or sigma"
        )
    sigma_ind = min(1.0, sigma / sigma_cor)
    return PredicateThresholds(
        cor_threshold=region_keys * scale - 1,
        ind_threshold=max(0, round(sigma_ind * IND_DOMAIN) - 1),
        cor_scale=scale,
    )


def zipf_skew_factor(key_skew: float, n_keys: int,
                     workers: int) -> float:
    """Expected hottest-worker load over the mean for Zipf(s) keys.

    Under a hash shuffle each worker owns ~``n_keys/workers`` keys; the
    worker that owns the single hottest key carries that key's whole
    probability mass ``p1`` plus its fair share of the rest, so the
    hottest-to-mean ratio is about ``workers*p1 + (1 - p1)``.  Evaluated
    at *paper-scale* key counts this is the multiplier the time plane
    applies to shuffles and hash builds (``HybridConfig.shuffle_skew``).
    """
    if key_skew <= 0 or n_keys <= 0 or workers <= 1:
        return 1.0
    ranks = np.arange(1, n_keys + 1, dtype=np.float64)
    weights = ranks ** (-key_skew)
    p1 = float(weights[0] / weights.sum())
    return workers * p1 + (1.0 - p1)


def _key_probabilities(spec: WorkloadSpec) -> Optional[np.ndarray]:
    """Zipf key-popularity vector, or None for uniform keys."""
    if spec.key_skew <= 0:
        return None
    ranks = np.arange(1, spec.n_keys + 1, dtype=np.float64)
    weights = ranks ** (-spec.key_skew)
    return weights / weights.sum()


def _draw_keys(rng, spec: WorkloadSpec, size: int,
               probabilities: Optional[np.ndarray]) -> np.ndarray:
    if probabilities is None:
        return rng.integers(0, spec.n_keys, size=size)
    return rng.choice(spec.n_keys, size=size, p=probabilities)


def generate_workload(spec: WorkloadSpec) -> Workload:
    """Generate T and L for ``spec`` (deterministic given the seed)."""
    layout = solve_key_layout(spec)
    rng = np.random.default_rng(spec.seed)
    probabilities = _key_probabilities(spec)
    from repro.workload.scenario import (
        log_schema,
        make_url_dictionary,
        transaction_schema,
    )

    # ------------------------------------------------------------- T --
    t_keys = _draw_keys(rng, spec, spec.t_rows, probabilities)
    t_ranks = t_keys.astype(np.int64)  # T's permutation is the identity.
    t_cor, t_scale = _cor_pred_from_ranks(t_ranks, spec.n_keys, rng)
    t_cor_mass = (
        float(probabilities[:layout.kt].sum())
        if probabilities is not None else None
    )
    t_thresholds = _thresholds(layout.kt, spec.n_keys, spec.sigma_t,
                               t_scale, cor_mass=t_cor_mass)
    t_columns = {
        "uniqKey": np.arange(spec.t_rows, dtype=np.int64),
        "joinKey": t_keys.astype(np.int32),
        "corPred": t_cor,
        "indPred": rng.integers(
            0, IND_DOMAIN, size=spec.t_rows
        ).astype(np.int32),
        "predAfterJoin": rng.integers(
            0, DATE_DOMAIN, size=spec.t_rows
        ).astype(np.int32),
        "dummy1": rng.integers(0, 64, size=spec.t_rows).astype(np.int32),
        "dummy2": rng.integers(0, 1 << 20, size=spec.t_rows).astype(np.int32),
        "dummy3": rng.integers(0, 86_400, size=spec.t_rows).astype(np.int32),
    }
    t_schema = transaction_schema()
    t_dictionary = np.array(
        [f"promo-code-{index:04d}-{'x' * 18}" for index in range(64)],
        dtype=object,
    )
    t_table = Table(t_schema, t_columns, {"dummy1": t_dictionary})

    # ------------------------------------------------------------- L --
    l_keys = _draw_keys(rng, spec, spec.l_rows, probabilities)
    l_ranks = _rank_to_l(l_keys.astype(np.int64), layout)
    l_cor, l_scale = _cor_pred_from_ranks(l_ranks, spec.n_keys, rng)
    if probabilities is not None:
        all_ranks = _rank_to_l(
            np.arange(spec.n_keys, dtype=np.int64), layout
        )
        l_cor_mass = float(probabilities[all_ranks < layout.kl].sum())
    else:
        l_cor_mass = None
    l_thresholds = _thresholds(layout.kl, spec.n_keys, spec.sigma_l,
                               l_scale, cor_mass=l_cor_mass)
    url_dictionary = make_url_dictionary(spec.n_urls)
    l_columns = {
        "joinKey": l_keys.astype(np.int32),
        "corPred": l_cor,
        "indPred": rng.integers(
            0, IND_DOMAIN, size=spec.l_rows
        ).astype(np.int32),
        "predAfterJoin": rng.integers(
            0, DATE_DOMAIN, size=spec.l_rows
        ).astype(np.int32),
        "groupByExtractCol": rng.integers(
            0, spec.n_urls, size=spec.l_rows
        ).astype(np.int32),
        "dummy": rng.integers(0, 16, size=spec.l_rows).astype(np.int32),
    }
    l_schema = log_schema()
    l_dummy_dictionary = np.array(
        [f"tag{index:05d}" for index in range(16)], dtype=object
    )
    l_table = Table(
        l_schema,
        l_columns,
        {
            "groupByExtractCol": url_dictionary,
            "dummy": l_dummy_dictionary,
        },
    )

    return Workload(
        spec=spec,
        layout=layout,
        t_table=t_table,
        l_table=l_table,
        t_thresholds=t_thresholds,
        l_thresholds=l_thresholds,
    )
