"""Synthetic workload generation (paper Section 5, "Dataset").

Generates the transaction table ``T`` and the click-log table ``L`` with
exact, independent control over the paper's four experimental knobs:
local-predicate selectivities σ_T and σ_L and join-key selectivities
S_T′ and S_L′.
"""

from repro.workload.generator import (
    KeyLayout,
    Workload,
    WorkloadSpec,
    generate_workload,
    zipf_skew_factor,
)
from repro.workload.cache import load_workload, save_workload
from repro.workload.scenario import (
    build_paper_query,
    log_schema,
    transaction_schema,
)

__all__ = [
    "KeyLayout",
    "Workload",
    "WorkloadSpec",
    "build_paper_query",
    "generate_workload",
    "load_workload",
    "save_workload",
    "zipf_skew_factor",
    "log_schema",
    "transaction_schema",
]
