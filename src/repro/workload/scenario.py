"""The paper's retail scenario: schemas and the example query.

Section 2's motivating query — correlate online click logs (HDFS) with
sales transactions (EDW) — with the Section 5 schemas::

    T(uniqKey bigint, joinKey int, corPred int, indPred int,
      predAfterJoin date, dummy1 varchar(50), dummy2 int, dummy3 time)
    L(joinKey int, corPred int, indPred int, predAfterJoin date,
      groupByExtractCol varchar(46), dummy char(8))

and the benchmark query::

    SELECT extract_group(L.groupByExtractCol), COUNT(*)
    FROM T, L
    WHERE T.corPred <= a AND T.indPred <= b
      AND L.corPred <= c AND L.indPred <= d
      AND T.joinKey = L.joinKey
      AND days(T.predAfterJoin) - days(L.predAfterJoin) BETWEEN 0 AND 1
    GROUP BY extract_group(L.groupByExtractCol)
"""

from __future__ import annotations

import numpy as np

from repro.edw.udf import _extract_group
from repro.relational.aggregates import AggregateSpec
from repro.relational.expressions import BetweenDayDiff, compare
from repro.relational.schema import Column, DataType, Schema
from repro.query.query import DerivedColumn, HybridQuery
from repro.workload.generator import Workload


def transaction_schema() -> Schema:
    """Schema of the database transaction table T (paper Section 5)."""
    return Schema([
        Column("uniqKey", DataType.INT64),
        Column("joinKey", DataType.INT32),
        Column("corPred", DataType.INT32),
        Column("indPred", DataType.INT32),
        Column("predAfterJoin", DataType.DATE),
        Column("dummy1", DataType.DICT_STRING, width_bytes=30),
        Column("dummy2", DataType.INT32),
        Column("dummy3", DataType.INT32),  # time-of-day seconds
    ])


def log_schema() -> Schema:
    """Schema of the HDFS click-log table L (paper Section 5).

    ``groupByExtractCol`` is declared varchar(46); the generated URLs
    average about 30 characters, which puts the text-format table at
    roughly the paper's "about 1 TB" for 15 B rows.
    """
    return Schema([
        Column("joinKey", DataType.INT32),
        Column("corPred", DataType.INT32),
        Column("indPred", DataType.INT32),
        Column("predAfterJoin", DataType.DATE),
        Column("groupByExtractCol", DataType.DICT_STRING, width_bytes=30),
        Column("dummy", DataType.DICT_STRING, width_bytes=8),
    ])


def make_url_dictionary(n_urls: int) -> np.ndarray:
    """Distinct click URLs; several share each host so the grouping UDF
    genuinely reduces cardinality."""
    hosts = max(1, n_urls // 8)
    urls = [
        f"http://shop{index % hosts:03d}.example.com/item/p{index:05d}"
        for index in range(n_urls)
    ]
    return np.array(urls, dtype=object)


def build_paper_query(workload: Workload) -> HybridQuery:
    """The Section 5 benchmark query over a generated workload.

    The predicate constants come straight from the workload's solved
    thresholds, so the query hits the spec's σ and S values.
    """
    t_thresholds = workload.t_thresholds
    l_thresholds = workload.l_thresholds
    return HybridQuery(
        db_table="T",
        hdfs_table="L",
        db_join_key="joinKey",
        hdfs_join_key="joinKey",
        db_projection=("joinKey", "predAfterJoin"),
        hdfs_projection=("joinKey", "predAfterJoin", "groupByExtractCol"),
        db_predicate=(
            compare("corPred", "<=", t_thresholds.cor_threshold)
            & compare("indPred", "<=", t_thresholds.ind_threshold)
        ),
        hdfs_predicate=(
            compare("corPred", "<=", l_thresholds.cor_threshold)
            & compare("indPred", "<=", l_thresholds.ind_threshold)
        ),
        hdfs_derived=(
            DerivedColumn(
                name="urlPrefix",
                source="groupByExtractCol",
                udf_name="extract_group",
                function=_extract_group,
                width_bytes=24,
            ),
        ),
        post_join_predicate=BetweenDayDiff(
            "t_predAfterJoin", "l_predAfterJoin", low=0, high=1
        ),
        group_by=("l_urlPrefix",),
        aggregates=(AggregateSpec("count"),),
    )
