"""Exception hierarchy for the hybrid-warehouse reproduction.

Every error raised by :mod:`repro` derives from :class:`ReproError`, so
applications can catch the whole family with a single ``except`` clause
while tests can assert on the precise subtype.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class SchemaError(ReproError):
    """A schema is malformed or an operation referenced an unknown column."""


class TableError(ReproError):
    """Columnar table construction or manipulation failed."""


class ExpressionError(ReproError):
    """A predicate or scalar expression is invalid for the given schema."""


class PartitioningError(ReproError):
    """Hash partitioning was asked to do something impossible."""


class CatalogError(ReproError):
    """A database or HDFS catalog lookup failed (unknown table, duplicate)."""


class StorageError(ReproError):
    """HDFS block storage or format encoding/decoding failed."""


class BloomFilterError(ReproError):
    """Bloom filter construction or merging was given incompatible inputs."""


class WorkloadError(ReproError):
    """A synthetic workload specification is infeasible or inconsistent."""


class SimulationError(ReproError):
    """The discrete-event simulator detected an invalid trace or deadlock."""


class JoinError(ReproError):
    """A join algorithm was invoked with an unsupported configuration."""


class OptimizerError(ReproError):
    """The query optimizer could not produce a plan."""


class UdfError(ReproError):
    """A user-defined function was misused (unknown name, bad arity)."""


class FaultError(ReproError):
    """Base of the injected-fault taxonomy (:mod:`repro.faults`).

    Raised when a deterministically injected fault could *not* be
    recovered from inside the data plane (retries exhausted, no
    survivors to re-assign work to) or when the fault machinery itself
    is misused.  Recoverable faults never surface as exceptions — they
    turn into recovery actions and extra trace phases instead.
    """


class FaultSpecError(FaultError):
    """A fault-plan spec string (``crash:w7@scan,...``) is malformed."""


class WorkerCrashError(FaultError):
    """A JEN worker died mid-query and its work could not be recovered.

    Carries the crashed ``worker_id``, the ``phase`` it died in and the
    number of already-produced rows lost with it.
    """

    def __init__(self, message: str, worker_id: int = -1,
                 phase: str = "", rows_lost: int = 0):
        super().__init__(message)
        self.worker_id = worker_id
        self.phase = phase
        self.rows_lost = rows_lost


class TransferFaultError(FaultError):
    """A transfer kept failing past its retry budget.

    Carries the logical ``channel`` (``"shuffle"`` or ``"transfer"``),
    the endpoints and the number of attempts made.
    """

    def __init__(self, message: str, channel: str = "",
                 sender: int = -1, destination: int = -1,
                 attempts: int = 0):
        super().__init__(message)
        self.channel = channel
        self.sender = sender
        self.destination = destination
        self.attempts = attempts


class QueryAbortError(FaultError):
    """An injected coordinator-level abort killed the whole query.

    The service plane catches this (and every other
    :class:`FaultError`) and re-admits the query once before surfacing
    the failure to the client.
    """

    def __init__(self, message: str, phase: str = ""):
        super().__init__(message)
        self.phase = phase


class InvariantViolation(ReproError):
    """An engine-internal invariant check failed (:mod:`repro.testkit`).

    Only raised while :func:`repro.testkit.checking` is active: the
    testkit's assertion hooks inside the shuffle, the partitioners, the
    Bloom filters and the spill path verify exactly-once delivery,
    partition completeness/disjointness, no-false-negative membership
    and spill round-trip fidelity.  Production runs never see this.
    """


class ServiceError(ReproError):
    """The query-service plane was misconfigured or misused."""


class AdmissionError(ServiceError):
    """A query was refused by admission control (queue full, quota,
    timeout).  Carries the machine-readable rejection ``reason``."""

    def __init__(self, message: str, reason: str = "rejected"):
        super().__init__(message)
        self.reason = reason


class ShmError(ReproError):
    """Shared-memory table export/attach failed (:mod:`repro.parallel`).

    Raised for malformed handles, segments that disappeared before
    attach, and registry misuse.  Segment lifecycle bugs surface here
    instead of as interpreter-level ``FileNotFoundError`` noise.
    """


class ParallelExecutionError(ReproError):
    """The process-pool execution backend failed mid-query.

    Typically a worker process died (OOM-killed, crashed C extension,
    or a forced kill in tests) while tasks were in flight.  The backend
    reclaims every shared-memory segment of the failed run before
    raising, so a caller that catches this and retries on the
    sequential backend starts from a clean slate.
    """
