"""Exception hierarchy for the hybrid-warehouse reproduction.

Every error raised by :mod:`repro` derives from :class:`ReproError`, so
applications can catch the whole family with a single ``except`` clause
while tests can assert on the precise subtype.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class SchemaError(ReproError):
    """A schema is malformed or an operation referenced an unknown column."""


class TableError(ReproError):
    """Columnar table construction or manipulation failed."""


class ExpressionError(ReproError):
    """A predicate or scalar expression is invalid for the given schema."""


class PartitioningError(ReproError):
    """Hash partitioning was asked to do something impossible."""


class CatalogError(ReproError):
    """A database or HDFS catalog lookup failed (unknown table, duplicate)."""


class StorageError(ReproError):
    """HDFS block storage or format encoding/decoding failed."""


class BloomFilterError(ReproError):
    """Bloom filter construction or merging was given incompatible inputs."""


class WorkloadError(ReproError):
    """A synthetic workload specification is infeasible or inconsistent."""


class SimulationError(ReproError):
    """The discrete-event simulator detected an invalid trace or deadlock."""


class JoinError(ReproError):
    """A join algorithm was invoked with an unsupported configuration."""


class OptimizerError(ReproError):
    """The query optimizer could not produce a plan."""


class UdfError(ReproError):
    """A user-defined function was misused (unknown name, bad arity)."""


class ServiceError(ReproError):
    """The query-service plane was misconfigured or misused."""


class AdmissionError(ServiceError):
    """A query was refused by admission control (queue full, quota,
    timeout).  Carries the machine-readable rejection ``reason``."""

    def __init__(self, message: str, reason: str = "rejected"):
        super().__init__(message)
        self.reason = reason
