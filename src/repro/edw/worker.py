"""One shared-nothing database worker.

A worker owns a hash-distributed partition of each database table plus
any secondary indexes built on it.  The operations mirror what the
paper's C UDFs drive inside DB2: local filter/project scans, local
Bloom-filter builds (index-only when a covering index exists), applying
a remote Bloom filter to the partition, and partitioning outgoing rows
with the agreed hash function.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.bloom import BloomFilter
from repro.edw.index import SecondaryIndex
from repro.edw.partitioner import agreed_hash_partition
from repro.errors import CatalogError
from repro.kernels.partition import partition_table
from repro.relational.expressions import Predicate
from repro.relational.table import Table
from repro.testkit import invariants


@dataclass
class WorkerAccessStats:
    """What one worker operation touched (for the cost layer)."""

    rows_scanned: int = 0
    bytes_scanned: float = 0.0
    index_only: bool = False
    rows_out: int = 0


class DbWorker:
    """A single database partition server (one of the paper's 30)."""

    def __init__(self, worker_id: int, server_id: int):
        self.worker_id = worker_id
        self.server_id = server_id
        self._partitions: Dict[str, Table] = {}
        self._indexes: Dict[str, Dict[str, SecondaryIndex]] = {}

    # ------------------------------------------------------------------
    # Storage
    # ------------------------------------------------------------------
    def store_partition(self, table_name: str, partition: Table) -> None:
        """Install this worker's partition of a table."""
        if table_name in self._partitions:
            raise CatalogError(
                f"worker {self.worker_id} already stores {table_name!r}"
            )
        self._partitions[table_name] = partition
        self._indexes.setdefault(table_name, {})

    def partition(self, table_name: str) -> Table:
        """This worker's partition of ``table_name``."""
        try:
            return self._partitions[table_name]
        except KeyError:
            raise CatalogError(
                f"worker {self.worker_id} has no partition of "
                f"{table_name!r}"
            ) from None

    def create_index(self, table_name: str, index_name: str,
                     columns: Sequence[str]) -> SecondaryIndex:
        """Build a secondary index on the local partition."""
        partition = self.partition(table_name)
        index = SecondaryIndex(index_name, partition, columns)
        self._indexes[table_name][index_name] = index
        return index

    def find_covering_index(self, table_name: str,
                            columns: Sequence[str]
                            ) -> Optional[SecondaryIndex]:
        """An index materialising all ``columns``, if any."""
        for index in self._indexes.get(table_name, {}).values():
            if index.covers(columns):
                return index
        return None

    # ------------------------------------------------------------------
    # Scans
    # ------------------------------------------------------------------
    @staticmethod
    def filter_rows(partition: Table, predicate: Predicate,
                    projection: Sequence[str]) -> Table:
        """The scan body: predicate plus projection over one partition.

        Shared by the sequential :meth:`filter_project` and the
        process-pool backend's task body, so the two backends run the
        identical pipeline.
        """
        mask = predicate.evaluate(partition)
        return partition.filter(mask).project(list(projection))

    def filter_project(
        self, table_name: str, predicate: Predicate,
        projection: Sequence[str],
    ) -> Tuple[Table, WorkerAccessStats]:
        """Local predicates plus projection over the partition."""
        partition = self.partition(table_name)
        result = self.filter_rows(partition, predicate, projection)
        stats = WorkerAccessStats(
            rows_scanned=partition.num_rows,
            bytes_scanned=float(partition.total_bytes()),
            rows_out=result.num_rows,
        )
        return result, stats

    # ------------------------------------------------------------------
    # Bloom filters (the paper's cal_filter/get_filter pipeline)
    # ------------------------------------------------------------------
    def build_local_bloom(
        self,
        table_name: str,
        predicate: Predicate,
        key_column: str,
        num_bits: int,
        num_hashes: int,
        seed: int,
    ) -> Tuple[BloomFilter, WorkerAccessStats]:
        """Bloom filter over the join keys of the filtered partition.

        Uses an index-only plan when a covering index exists — the paper
        builds an index on ``(corPred, indPred, joinKey)`` precisely to
        "enable calculations of Bloom filters on T using an index-only
        access plan" (Section 5).
        """
        partition = self.partition(table_name)
        needed = list(predicate.columns()) + [key_column]
        index = self.find_covering_index(table_name, needed)
        bloom = BloomFilter(num_bits, num_hashes, seed)
        if index is not None:
            try:
                rows = index.lookup_rows(predicate, partition)
                keys = index.entries_for_rows(key_column, rows)
                bloom.add(keys)
                stats = WorkerAccessStats(
                    rows_scanned=index.num_entries,
                    bytes_scanned=float(
                        index.num_entries * index.entry_bytes(partition)
                    ),
                    index_only=True,
                    rows_out=len(keys),
                )
                return bloom, stats
            except CatalogError:
                pass  # Fall back to a base-table scan.
        mask = predicate.evaluate(partition)
        keys = partition.column(key_column)[mask]
        bloom.add(keys)
        stats = WorkerAccessStats(
            rows_scanned=partition.num_rows,
            bytes_scanned=float(partition.total_bytes()),
            rows_out=len(keys),
        )
        return bloom, stats

    # ------------------------------------------------------------------
    # Outbound data
    # ------------------------------------------------------------------
    @staticmethod
    def apply_bloom(table: Table, key_column: str,
                    bloom: BloomFilter) -> Table:
        """Keep only rows whose key may be in ``bloom``."""
        mask = bloom.contains(table.column(key_column))
        return table.filter(mask)

    @staticmethod
    def encoded_export_bytes(parts: Sequence[Table]) -> int:
        """Bytes the outgoing partitions weigh in the compact wire codec.

        Late materialization exports thin ``(key, rowid)`` tables as
        codec frames; this measures what actually leaves the worker so
        the accounting layer can report honest export volumes.
        """
        from repro.kernels.wirecodec import encoded_table_bytes

        return sum(
            encoded_table_bytes(part) for part in parts if part.num_rows
        )

    @staticmethod
    def partition_for_send(table: Table, key_column: str,
                           num_targets: int) -> List[Table]:
        """Split outgoing rows by the agreed hash function.

        Single-pass kernel: one sort + one gather for all targets.
        """
        assignments = agreed_hash_partition(
            table.column(key_column), num_targets
        )
        parts = partition_table(table, assignments, num_targets)
        if invariants.checking_enabled():
            invariants.check_hash_partition(
                table, key_column, parts, num_targets,
                agreed_hash_partition,
            )
        return parts
