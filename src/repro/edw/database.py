"""The shared-nothing parallel database (the paper's DB2 DPF stand-in).

Owns table metadata, distributes rows across workers with the private
internal hash function, fans parallel operations out to the workers, and
executes the *final* join of the DB-side algorithm with whichever
physical strategy the optimizer picked.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.adaptive import hooks as adaptive_hooks
from repro.config import ClusterConfig
from repro.core.bloom import BloomFilter
from repro.edw.optimizer import DbJoinChoice, DbJoinStrategy
from repro.edw.partitioner import db_internal_partition
from repro.edw.worker import DbWorker, WorkerAccessStats
from repro.errors import CatalogError
from repro.kernels.partition import partition_table
from repro.relational.expressions import Predicate
from repro.relational.schema import Schema
from repro.relational.table import Table
from repro.query.plan import (
    local_join,
    local_partial_aggregate,
    merge_partials,
    partial_tables_nonempty,
)
from repro.query.query import HybridQuery


@dataclass(frozen=True)
class DbTableMeta:
    """Catalog entry for a database-resident table."""

    name: str
    schema: Schema
    distribute_on: str
    num_rows: int


@dataclass
class DbJoinRunStats:
    """Volume accounting of the in-database final join."""

    build_tuples: int = 0
    probe_tuples: int = 0
    join_output_tuples: int = 0
    result_rows: int = 0


@dataclass
class GlobalBloomResult:
    """A merged Bloom filter plus what building it cost."""

    bloom: BloomFilter
    index_only: bool
    rows_accessed: int
    bytes_accessed: float
    keys_added: int


class ParallelDatabase:
    """A cluster of :class:`DbWorker` partitions behind one catalog."""

    def __init__(self, cluster: Optional[ClusterConfig] = None):
        self.cluster = cluster or ClusterConfig()
        workers_per_server = max(
            1, self.cluster.db_workers // self.cluster.db_servers
        )
        self.workers = [
            DbWorker(worker_id, server_id=worker_id // workers_per_server)
            for worker_id in range(self.cluster.db_workers)
        ]
        self._catalog: Dict[str, DbTableMeta] = {}

    @property
    def num_workers(self) -> int:
        """Number of database workers."""
        return len(self.workers)

    # ------------------------------------------------------------------
    # DDL / loading
    # ------------------------------------------------------------------
    def create_table(self, name: str, table: Table,
                     distribute_on: str) -> DbTableMeta:
        """Load ``table``, hash-distributed on ``distribute_on``."""
        if name in self._catalog:
            raise CatalogError(f"database table already exists: {name!r}")
        table.schema.column(distribute_on)
        assignments = db_internal_partition(
            table.column(distribute_on), self.num_workers
        )
        partitions = partition_table(table, assignments, self.num_workers)
        for worker, partition in zip(self.workers, partitions):
            worker.store_partition(name, partition)
        meta = DbTableMeta(
            name=name,
            schema=table.schema,
            distribute_on=distribute_on,
            num_rows=table.num_rows,
        )
        self._catalog[name] = meta
        return meta

    def create_index(self, table_name: str, index_name: str,
                     columns: Sequence[str]) -> None:
        """Create a secondary index on every worker's partition."""
        self.table_meta(table_name)
        for worker in self.workers:
            worker.create_index(table_name, index_name, columns)

    def table_meta(self, name: str) -> DbTableMeta:
        """Catalog lookup."""
        try:
            return self._catalog[name]
        except KeyError:
            raise CatalogError(f"unknown database table: {name!r}") from None

    def register_partitioned_table(self, name: str,
                                   parts: Sequence[Table],
                                   distribute_on: str) -> DbTableMeta:
        """Register pre-partitioned rows as a table (derived tables)."""
        if name in self._catalog:
            raise CatalogError(f"database table already exists: {name!r}")
        if len(parts) != self.num_workers:
            raise CatalogError(
                f"expected {self.num_workers} partitions, got {len(parts)}"
            )
        for worker, part in zip(self.workers, parts):
            worker.store_partition(name, part)
        meta = DbTableMeta(
            name=name,
            schema=parts[0].schema,
            distribute_on=distribute_on,
            num_rows=sum(part.num_rows for part in parts),
        )
        self._catalog[name] = meta
        return meta

    def join_local(
        self,
        left_name: str,
        right_name: str,
        left_key: str,
        right_key: str,
        result_name: str,
        left_predicate: Optional[Predicate] = None,
        right_predicate: Optional[Predicate] = None,
        left_projection: Optional[Sequence[str]] = None,
        right_projection: Optional[Sequence[str]] = None,
    ) -> Tuple[DbTableMeta, DbJoinRunStats]:
        """An entirely in-database equi-join producing a derived table.

        This is the paper's answer to multi-table queries (Section 2):
        "we need to rely on the query optimizer in the database to
        decide on the right join orders, since queries are issued at the
        database side" — star-schema dimension joins run inside the EDW
        first, and the hybrid join then operates on the derived fact
        table.  Both sides are filtered, projected, repartitioned on the
        join key with the internal hash, and joined per worker.

        Output columns are the union of the two projections; collisions
        must be resolved by projecting/renaming beforehand.
        """
        from repro.relational.expressions import TruePredicate
        from repro.relational.operators import join_tables

        left_predicate = left_predicate or TruePredicate()
        right_predicate = right_predicate or TruePredicate()
        left_meta = self.table_meta(left_name)
        right_meta = self.table_meta(right_name)
        left_projection = list(left_projection or left_meta.schema.names)
        right_projection = list(right_projection or right_meta.schema.names)
        if left_key not in left_projection:
            left_projection.append(left_key)
        if right_key not in right_projection:
            right_projection.append(right_key)

        left_parts, _ = self.filter_project(
            left_name, left_predicate, left_projection
        )
        right_parts, _ = self.filter_project(
            right_name, right_predicate, right_projection
        )
        left_sides = self._repartition(left_parts, left_key)
        right_sides = self._repartition(right_parts, right_key)

        stats = DbJoinRunStats()
        joined_parts: List[Table] = []
        # The build side's key duplicates the probe side's foreign key in
        # the output; keep a single copy (the probe side's).
        rhs_key_alias = "__rhs_join_key"
        for left_side, right_side in zip(left_sides, right_sides):
            joined = join_tables(
                build=right_side.rename({right_key: rhs_key_alias}),
                probe=left_side,
                build_key=rhs_key_alias, probe_key=left_key,
            )
            joined = joined.project([
                name for name in joined.schema.names
                if name != rhs_key_alias
            ])
            stats.build_tuples += right_side.num_rows
            stats.probe_tuples += left_side.num_rows
            stats.join_output_tuples += joined.num_rows
            joined_parts.append(joined)
        meta = self.register_partitioned_table(
            result_name, joined_parts, distribute_on=left_key
        )
        stats.result_rows = meta.num_rows
        return meta, stats

    def gather_table(self, name: str) -> Table:
        """All rows of a table, concatenated (tests / reference runs)."""
        self.table_meta(name)
        return Table.concat(
            [worker.partition(name) for worker in self.workers]
        )

    # ------------------------------------------------------------------
    # Parallel operations
    # ------------------------------------------------------------------
    def filter_project(
        self, table_name: str, predicate: Predicate,
        projection: Sequence[str],
    ) -> Tuple[List[Table], List[WorkerAccessStats]]:
        """Apply local predicates + projection on every worker."""
        parts = self._filter_project_parallel(
            table_name, predicate, projection
        )
        if parts is not None:
            stats = [
                WorkerAccessStats(
                    rows_scanned=worker.partition(table_name).num_rows,
                    bytes_scanned=float(
                        worker.partition(table_name).total_bytes()
                    ),
                    rows_out=part.num_rows,
                )
                for worker, part in zip(self.workers, parts)
            ]
        else:
            parts = []
            stats = []
            for worker in self.workers:
                part, worker_stats = worker.filter_project(
                    table_name, predicate, projection
                )
                parts.append(part)
                stats.append(worker_stats)
        adaptive_hooks.record_db_filter(
            sum(s.rows_scanned for s in stats),
            sum(s.rows_out for s in stats),
        )
        return parts, stats

    def _filter_project_parallel(
        self, table_name: str, predicate: Predicate,
        projection: Sequence[str],
    ) -> Optional[List[Table]]:
        """The scan on the process pool, or ``None`` to run sequential."""
        from repro import parallel

        if not parallel.parallel_enabled():
            return None
        self.table_meta(table_name)
        from repro.parallel.scan import parallel_db_filter

        try:
            return parallel_db_filter(
                self.workers, table_name, predicate, projection,
                parallel.get_backend(parallel.pool_workers()),
            )
        except parallel.ParallelUnsupported:
            parallel.record_fallback("db.filter", "unsupported-payload")
            return None

    def build_global_bloom(
        self,
        table_name: str,
        predicate: Predicate,
        key_column: str,
        num_bits: int,
        num_hashes: int = 2,
        seed: int = 7,
    ) -> GlobalBloomResult:
        """Local Bloom filters on every worker, OR-merged into one.

        This is the ``cal_filter`` → ``get_filter`` → ``combine_filter``
        pipeline from the paper's example SQL (Section 4.1.1).
        """
        locals_and_stats = [
            worker.build_local_bloom(
                table_name, predicate, key_column, num_bits, num_hashes, seed
            )
            for worker in self.workers
        ]
        merged = BloomFilter.combine(
            [bloom for bloom, _stats in locals_and_stats]
        )
        all_stats = [stats for _bloom, stats in locals_and_stats]
        return GlobalBloomResult(
            bloom=merged,
            index_only=all(stats.index_only for stats in all_stats),
            rows_accessed=sum(stats.rows_scanned for stats in all_stats),
            bytes_accessed=sum(stats.bytes_scanned for stats in all_stats),
            keys_added=sum(stats.rows_out for stats in all_stats),
        )

    # ------------------------------------------------------------------
    # The DB-side final join
    # ------------------------------------------------------------------
    def execute_hybrid_join(
        self,
        t_parts: List[Table],
        ingested_l_parts: List[Table],
        query: HybridQuery,
        choice: DbJoinChoice,
    ) -> Tuple[Table, DbJoinRunStats]:
        """Join filtered T′ partitions with ingested HDFS rows.

        ``ingested_l_parts`` are grouped by receiving DB worker — an
        arbitrary grouping from the network's point of view, since JEN
        does not know the database's internal hash (the paper's reason
        the DB side may have to reshuffle the data it just received).
        """
        if len(t_parts) != self.num_workers:
            raise CatalogError(
                f"expected {self.num_workers} T partitions, "
                f"got {len(t_parts)}"
            )
        if len(ingested_l_parts) != self.num_workers:
            raise CatalogError(
                f"expected {self.num_workers} ingested partitions, "
                f"got {len(ingested_l_parts)}"
            )

        if choice.strategy is DbJoinStrategy.REPARTITION_BOTH:
            t_sides = self._repartition(t_parts, query.db_join_key)
            l_sides = self._repartition(ingested_l_parts, query.hdfs_join_key)
        elif choice.strategy is DbJoinStrategy.BROADCAST_HDFS_SIDE:
            full_l = Table.concat(ingested_l_parts)
            t_sides = t_parts
            l_sides = [full_l] * self.num_workers
        else:  # BROADCAST_DB_SIDE
            full_t = Table.concat(t_parts)
            t_sides = [full_t] * self.num_workers
            l_sides = ingested_l_parts
            if choice.strategy is not DbJoinStrategy.BROADCAST_DB_SIDE:
                raise CatalogError(f"unknown strategy {choice.strategy}")

        stats = DbJoinRunStats()
        partials = []
        for t_side, l_side in zip(t_sides, l_sides):
            joined = local_join(t_side, l_side, query)
            stats.build_tuples += l_side.num_rows
            stats.probe_tuples += t_side.num_rows
            stats.join_output_tuples += joined.num_rows
            partials.append(local_partial_aggregate(joined, query))
        result = merge_partials(partial_tables_nonempty(partials), query)
        stats.result_rows = result.num_rows
        return result, stats

    def _repartition(self, parts: List[Table], key: str) -> List[Table]:
        """Redistribute row parts on ``key`` with the internal hash.

        Single-pass kernel: one sort + one gather instead of one
        full-table boolean filter per worker.
        """
        combined = Table.concat(parts)
        assignments = db_internal_partition(
            combined.column(key), self.num_workers
        )
        return partition_table(combined, assignments, self.num_workers)
