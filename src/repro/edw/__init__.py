"""Shared-nothing parallel database substrate (the paper's DB2 DPF role).

The database owns the up-to-date transaction table: it is hash-distributed
across workers on a distribution key, each worker can scan, filter and
project its partition, build local Bloom filters that are OR-merged into
a global one (the ``cal_filter``/``get_filter``/``combine_filter`` UDF
pipeline), and the optimizer picks broadcast vs. repartition for joins
executed inside the database.
"""

from repro.edw.partitioner import agreed_hash_partition, db_internal_partition
from repro.edw.index import SecondaryIndex
from repro.edw.worker import DbWorker
from repro.edw.database import DbTableMeta, ParallelDatabase
from repro.edw.optimizer import DbJoinStrategy, choose_db_join_strategy
from repro.edw.udf import UdfRegistry, default_udf_registry

__all__ = [
    "DbJoinStrategy",
    "DbTableMeta",
    "DbWorker",
    "ParallelDatabase",
    "SecondaryIndex",
    "UdfRegistry",
    "agreed_hash_partition",
    "choose_db_join_strategy",
    "db_internal_partition",
    "default_udf_registry",
]
