"""Secondary indexes on database worker partitions.

The paper builds two indexes on the transaction table: one on
``(corPred, indPred)`` to evaluate local predicates, and one on
``(corPred, indPred, joinKey)`` that makes the Bloom-filter build an
*index-only* plan — and makes the zigzag join's second table access
cheap, which is central to why two-way Bloom filters pay off in the
hybrid warehouse but not in a homogeneous one (Section 3.4).

The index is a real data structure (sorted projection with binary
search), not a cost-model flag: lookups return row ids without touching
the base table, and :attr:`covers` reports whether a requested column
list can be answered index-only.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from repro.errors import CatalogError
from repro.relational.expressions import (
    ColumnPredicate,
    CompareOp,
    Conjunction,
    Predicate,
    TruePredicate,
)
from repro.relational.table import Table


class SecondaryIndex:
    """A covering index over one worker's partition."""

    def __init__(self, name: str, table: Table, key_columns: Sequence[str]):
        if not key_columns:
            raise CatalogError(f"index {name!r} needs at least one column")
        for column in key_columns:
            table.schema.column(column)
        self.name = name
        self.key_columns: Tuple[str, ...] = tuple(key_columns)
        # Sort row ids by the leading key column; the entries arrays are
        # the index's leaf pages.
        leading = table.column(self.key_columns[0])
        self._order = np.argsort(leading, kind="stable").astype(np.int64)
        self._leading_sorted = leading[self._order]
        self._entries: Dict[str, np.ndarray] = {
            column: table.column(column)[self._order]
            for column in self.key_columns
        }
        self.num_entries = table.num_rows

    def covers(self, columns: Sequence[str]) -> bool:
        """True if all ``columns`` are materialised in the index."""
        return set(columns) <= set(self.key_columns)

    def entry_bytes(self, table: Table) -> int:
        """Logical width of one index entry (for cost accounting)."""
        return table.schema.row_width(self.key_columns) + 8  # plus row id

    # ------------------------------------------------------------------
    def lookup_rows(self, predicate: Optional[Predicate],
                    source: Table) -> np.ndarray:
        """Row ids (into the base partition) satisfying ``predicate``.

        Uses a range scan on the leading column when the predicate allows
        it, then filters the remaining conjuncts against the index
        entries; conjuncts on non-indexed columns raise, since this index
        cannot answer them alone.
        """
        if predicate is None or isinstance(predicate, TruePredicate):
            return self._order.copy()
        conjuncts = _flatten_conjuncts(predicate)
        for conjunct in conjuncts:
            if not isinstance(conjunct, ColumnPredicate):
                raise CatalogError(
                    f"index {self.name!r} cannot evaluate {conjunct!r}"
                )
            if conjunct.column not in self.key_columns:
                raise CatalogError(
                    f"index {self.name!r} does not cover column "
                    f"{conjunct.column!r}"
                )
        lo, hi = self._leading_range(conjuncts)
        candidates = slice(lo, hi)
        mask = np.ones(hi - lo, dtype=bool)
        for conjunct in conjuncts:
            values = self._entries[conjunct.column][candidates]
            mask &= conjunct.op.apply(values, conjunct.literal)
        return self._order[candidates][mask]

    def entries_for_rows(self, column: str, rows: np.ndarray) -> np.ndarray:
        """Index-only fetch of ``column`` values for base-table row ids."""
        if column not in self.key_columns:
            raise CatalogError(
                f"index {self.name!r} does not materialise {column!r}"
            )
        # Invert the order permutation lazily.
        inverse = np.empty_like(self._order)
        inverse[self._order] = np.arange(len(self._order))
        return self._entries[column][inverse[rows]]

    def _leading_range(self, conjuncts) -> Tuple[int, int]:
        lo, hi = 0, self.num_entries
        leading = self.key_columns[0]
        for conjunct in conjuncts:
            if conjunct.column != leading:
                continue
            literal = conjunct.literal
            if conjunct.op in (CompareOp.LE,):
                hi = min(hi, int(np.searchsorted(
                    self._leading_sorted, literal, side="right")))
            elif conjunct.op in (CompareOp.LT,):
                hi = min(hi, int(np.searchsorted(
                    self._leading_sorted, literal, side="left")))
            elif conjunct.op in (CompareOp.GE,):
                lo = max(lo, int(np.searchsorted(
                    self._leading_sorted, literal, side="left")))
            elif conjunct.op in (CompareOp.GT,):
                lo = max(lo, int(np.searchsorted(
                    self._leading_sorted, literal, side="right")))
            elif conjunct.op is CompareOp.EQ:
                lo = max(lo, int(np.searchsorted(
                    self._leading_sorted, literal, side="left")))
                hi = min(hi, int(np.searchsorted(
                    self._leading_sorted, literal, side="right")))
        return lo, max(lo, hi)


def _flatten_conjuncts(predicate: Predicate):
    if isinstance(predicate, Conjunction):
        flattened = []
        for child in predicate.children:
            flattened.extend(_flatten_conjuncts(child))
        return flattened
    return [predicate]
