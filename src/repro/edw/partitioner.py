"""Hash partitioning functions.

Two distinct hash functions exist on purpose:

* :func:`db_internal_partition` is the database's private distribution
  hash.  The paper stresses that JEN has no access to it, which is why
  HDFS data ingested by the DB-side join may need a second shuffle
  inside the database.
* :func:`agreed_hash_partition` is the hash function the database and
  JEN *agree on* for the repartition and zigzag joins, so records sent
  from the database land directly on the JEN worker that will join them
  (Section 3.3/3.4).
"""

from __future__ import annotations

import numpy as np

from repro.errors import PartitioningError

_AGREED_MULT = np.uint64(0x9E3779B97F4A7C15)
_DB_MULT = np.uint64(0xC2B2AE3D27D4EB4F)


def _check(num_partitions: int) -> None:
    if num_partitions <= 0:
        raise PartitioningError(
            f"num_partitions must be positive, got {num_partitions}"
        )


def _mix(keys: np.ndarray, multiplier: np.uint64) -> np.ndarray:
    x = np.asarray(keys).astype(np.uint64)
    with np.errstate(over="ignore"):
        x = x * multiplier
        x ^= x >> np.uint64(29)
        x = x * np.uint64(0xBF58476D1CE4E5B9)
        x ^= x >> np.uint64(32)
    return x


def agreed_hash_partition(keys: np.ndarray, num_partitions: int) -> np.ndarray:
    """Partition numbers under the DB↔JEN agreed hash function."""
    _check(num_partitions)
    return (_mix(keys, _AGREED_MULT) % np.uint64(num_partitions)).astype(
        np.int64
    )


def db_internal_partition(keys: np.ndarray, num_partitions: int) -> np.ndarray:
    """Partition numbers under the database's private distribution hash."""
    _check(num_partitions)
    return (_mix(keys, _DB_MULT) % np.uint64(num_partitions)).astype(np.int64)
