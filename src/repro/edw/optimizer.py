"""The database optimizer's join-strategy choice.

The DB-side join hands the optimizer two inputs: the locally filtered
T′ partitions (distributed on the table's distribution key, *not* the
join key) and the HDFS rows that arrived from JEN (grouped arbitrarily
by the ingest topology).  DB2 then picks one of three physical plans
(paper Section 4.3):

* broadcast the database side when T′ is much smaller,
* broadcast the HDFS side when L″ is much smaller,
* otherwise repartition both sides on the join key.

The choice is a simple cost comparison over the bytes each plan moves
across the database interconnect, which is exactly the information the
paper says it passes to DB2 as a cardinality hint on ``read_hdfs``.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class DbJoinStrategy(enum.Enum):
    """Physical in-database join strategies."""

    BROADCAST_DB_SIDE = "broadcast_db_side"
    BROADCAST_HDFS_SIDE = "broadcast_hdfs_side"
    REPARTITION_BOTH = "repartition_both"


@dataclass(frozen=True)
class DbJoinChoice:
    """The selected strategy plus the bytes it will move internally."""

    strategy: DbJoinStrategy
    internal_bytes: float


def choose_db_join_strategy(
    db_bytes: float,
    hdfs_bytes: float,
    num_workers: int,
) -> DbJoinChoice:
    """Pick the cheapest in-database plan by bytes moved.

    Broadcasting side X costs ``bytes(X) * workers``; repartitioning
    moves each side once.  Equal-cost ties resolve to repartitioning,
    the robust default.
    """
    broadcast_db = db_bytes * num_workers
    broadcast_hdfs = hdfs_bytes * num_workers
    repartition = db_bytes + hdfs_bytes
    cheapest = min(broadcast_db, broadcast_hdfs, repartition)
    if cheapest == repartition:
        return DbJoinChoice(DbJoinStrategy.REPARTITION_BOTH, repartition)
    if cheapest == broadcast_hdfs:
        return DbJoinChoice(DbJoinStrategy.BROADCAST_HDFS_SIDE, broadcast_hdfs)
    return DbJoinChoice(DbJoinStrategy.BROADCAST_DB_SIDE, broadcast_db)
