"""The UDF registry: the paper's C-UDF surface as Python callables.

The paper drives every algorithm from a single SQL statement whose UDFs
do the cross-system work (Section 4.1.1):

* ``cal_filter`` / ``get_filter`` — build a Bloom filter over a worker's
  local join keys;
* ``combine_filter`` — OR local filters into the global one;
* ``read_hdfs`` — contact the JEN coordinator, push predicates,
  projection and the Bloom filter to the JEN workers, and stream the
  filtered HDFS rows back;
* ``extract_group`` — the scalar grouping UDF of the example query.

The registry reproduces that surface so the examples can be written in
the paper's vocabulary; the join algorithms call the same underlying
objects directly.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Sequence

import numpy as np

from repro.core.bloom import BloomFilter
from repro.errors import UdfError


class UdfRegistry:
    """Named user-defined functions, looked up at call sites by name."""

    def __init__(self):
        self._functions: Dict[str, Callable] = {}

    def register(self, name: str, function: Callable) -> None:
        """Register a UDF, rejecting duplicates."""
        if name in self._functions:
            raise UdfError(f"UDF already registered: {name!r}")
        self._functions[name] = function

    def call(self, name: str, *args, **kwargs):
        """Invoke a UDF by name."""
        try:
            function = self._functions[name]
        except KeyError:
            raise UdfError(
                f"unknown UDF {name!r}; have {sorted(self._functions)}"
            ) from None
        return function(*args, **kwargs)

    def names(self) -> List[str]:
        """Registered UDF names."""
        return sorted(self._functions)


def _cal_filter(keys: np.ndarray, num_bits: int, num_hashes: int = 2,
                seed: int = 7) -> BloomFilter:
    """Build a local Bloom filter over one worker's keys."""
    bloom = BloomFilter(num_bits, num_hashes, seed)
    bloom.add(np.asarray(keys))
    return bloom


def _get_filter(bloom: BloomFilter) -> BloomFilter:
    """Finalize a local filter (identity here; kept for SQL parity)."""
    return bloom


def _combine_filter(filters: Sequence[BloomFilter]) -> BloomFilter:
    """OR local filters into the global filter."""
    return BloomFilter.combine(list(filters))


def _extract_group(url: str) -> str:
    """Default grouping UDF: the URL prefix (scheme + host).

    Matches the example query's intent of counting views per
    ``url_prefix``.
    """
    head, separator, _tail = url.partition("://")
    if not separator:
        return url.split("/", 1)[0]
    host = head + "://" + _tail.split("/", 1)[0]
    return host


def default_udf_registry() -> UdfRegistry:
    """Registry with the paper's UDFs pre-registered."""
    registry = UdfRegistry()
    registry.register("cal_filter", _cal_filter)
    registry.register("get_filter", _get_filter)
    registry.register("combine_filter", _combine_filter)
    registry.register("extract_group", _extract_group)
    return registry
