"""Late materialization: thin wire tables + deferred payload stitching.

The paper's algorithms all exist to shrink what crosses the EDW<->HDFS
boundary, yet a classic row-shipping execution still moves *full
payload rows* through every shuffle and export even though only the
join keys decide matches.  This package adds the late-materialization
discipline on top of the existing engines:

1. **Thin** — just before a transfer edge (the agreed-hash shuffle, a
   DB export, a broadcast), the full wire tables are swapped for thin
   ``(join_key, origin_rowid)`` tables.  The full rows stay behind in a
   :class:`PayloadStore` on the producing side, addressable by a
   store-global row id.
2. **Prune** — on the receiving side each worker slot drops thin rows
   whose key cannot match the other side of its local join (an exact
   semi-join against the co-partitioned keys), so only *surviving*
   rows pay for payload.
3. **Stitch** — surviving row ids are batched back to the payload
   store and the full rows are fetched (``Table.take`` — a real
   rowid-indexed gather, run on the process pool's shared-memory
   segments when the parallel backend is selected).  The stitched full
   tables then flow through the unchanged local-join machinery, so
   results are row-identical to the classic path by construction:
   pruned rows could never have produced join output, and the final
   aggregates are order-insensitive.

On the time plane the stitch is priced honestly as ``payload_fetch``
phases over the same NICs the shuffle/export used, inflated by the
fetch-amplification model below: scattered row ids touch whole pages
(:data:`PAGE_ROWS` rows) on the store side, so a sparse fetch reads
more bytes than it returns.

Everything is gated behind :func:`set_late_materialization_enabled`,
mirroring the kernels/skew toggles, so before/after comparisons run
genuinely identical code paths with only the wire discipline swapped.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.relational.schema import Column, DataType, Schema
from repro.relational.table import Table

_ENABLED = False

#: Name of the synthetic origin-rowid column thin wire tables carry.
ROWID_COLUMN = "__rowid__"

#: Store-side fetch granularity: a batched payload fetch reads whole
#: pages of this many rows, so scattered row ids amplify the fetched
#: volume (see :func:`fetch_amplification`).
PAGE_ROWS = 64

#: Wire width of the rowid component of a thin row (int64).
ROWID_BYTES = 8


def late_materialization_enabled() -> bool:
    """Whether thin shuffles/exports + payload stitching are active."""
    return _ENABLED


def set_late_materialization_enabled(enabled: bool) -> bool:
    """Toggle late materialization (benchmark/testkit switch).

    Returns the previous setting so callers can restore it.
    """
    global _ENABLED
    previous = _ENABLED
    _ENABLED = bool(enabled)
    return previous


def fetch_amplification(rowids: np.ndarray) -> float:
    """Fetched-bytes inflation for a batch of scattered row ids.

    The store serves fetches in pages of :data:`PAGE_ROWS` rows, so a
    batch touching ``p`` distinct pages reads ``p * PAGE_ROWS`` rows to
    return ``len(rowids)`` of them.  Dense batches (every page fully
    used) cost 1.0; a fully scattered batch degrades to
    :data:`PAGE_ROWS`.
    """
    rowids = np.asarray(rowids)
    if rowids.size == 0:
        return 1.0
    pages = np.unique(rowids // PAGE_ROWS)
    touched = pages.size * PAGE_ROWS
    return float(min(PAGE_ROWS, max(1.0, touched / rowids.size)))


class PayloadStore:
    """Origin-side full wire tables, addressable by a global row id.

    ``tables`` are the per-producer full wire tables (one per scan
    worker, or the single broadcast table); row ids are global offsets
    into their concatenation, so a thin row can name its payload row no
    matter which worker slot it lands on after the shuffle.
    """

    def __init__(self, tables: Sequence[Table], key: str):
        self.tables: List[Table] = list(tables)
        self.key = key
        counts = [table.num_rows for table in self.tables]
        self._offsets = np.concatenate(
            [[0], np.cumsum(counts)]).astype(np.int64)
        self.num_rows = int(self._offsets[-1])
        self._concat: Optional[Table] = None

    @property
    def schema(self) -> Schema:
        """Schema of the stored full rows."""
        return self.tables[0].schema

    def payload_names(self) -> List[str]:
        """The columns a fetch ships (everything but the key)."""
        return [name for name in self.schema.names if name != self.key]

    def payload_row_bytes(self) -> float:
        """Wire bytes of one fetched payload row.

        The fetch ships the payload columns (dictionary columns travel
        as ids — the compact wire codec's passthrough) plus the rowid
        needed to align the row with its thin twin.
        """
        return (self.tables[0].wire_row_bytes(self.payload_names())
                + ROWID_BYTES)

    def thin_tables(self) -> List[Table]:
        """One ``(key, rowid)`` thin table per stored producer table."""
        thin = []
        for index, table in enumerate(self.tables):
            base = int(self._offsets[index])
            rowids = np.arange(
                base, base + table.num_rows, dtype=np.int64)
            thin.append(thin_table(table, self.key, rowids))
        return thin

    def payload_table(self) -> Table:
        """All stored rows as one table (cached).

        The producer tables are splits of one scan/filter output, so
        their dictionary arrays are identical and
        :meth:`Table.concat` applies.
        """
        if self._concat is None:
            self._concat = Table.concat(self.tables) if self.tables \
                else Table.empty(self.schema)
        return self._concat

    def fetch(self, rowids: np.ndarray) -> Table:
        """Gather the full rows for ``rowids`` (in the given order)."""
        return self.payload_table().take(np.asarray(rowids,
                                                    dtype=np.int64))


def thin_table(table: Table, key: str, rowids: np.ndarray) -> Table:
    """The ``(key, rowid)`` thin twin of ``table``."""
    key_column = table.schema.column(key)
    schema = Schema([key_column, Column(ROWID_COLUMN, DataType.INT64)])
    columns = {key: table.column(key), ROWID_COLUMN: rowids}
    dictionaries = {}
    if key_column.dtype is DataType.DICT_STRING:
        dictionaries[key] = table.dictionary(key)
    return Table(schema, columns, dictionaries)


def is_thin(table: Table) -> bool:
    """Whether ``table`` is a thin ``(key, rowid)`` wire table."""
    return table.schema.has_column(ROWID_COLUMN)


def thin_for_transfer(tables: Sequence[Table], key: str,
                      needed: Optional[Sequence[str]] = None,
                      ) -> Optional[PayloadStore]:
    """A :class:`PayloadStore` for ``tables``, or ``None`` to pass.

    ``needed`` (from :func:`repro.query.plan.needed_wire_columns`) is
    the set of columns the downstream pipeline provably reads; columns
    outside it are dropped from the store before anything travels, so
    dead payload never crosses the network even during the stitch.

    Thinning is declined when the mode is off, the tables are already
    thin, the key is missing, or the (needed) payload is so narrow that
    a ``(key, rowid)`` row would not be smaller than the full row — the
    toggle then degrades to a no-op rather than a pessimisation.
    """
    if not late_materialization_enabled():
        return None
    tables = list(tables)
    if not tables:
        return None
    schema = tables[0].schema
    if not schema.has_column(key) or schema.has_column(ROWID_COLUMN):
        return None
    if needed is not None:
        kept = [
            name for name in schema.names
            if name == key or name in set(needed)
        ]
        if len(kept) < len(schema.names):
            tables = [table.project(kept) for table in tables]
            schema = tables[0].schema
    payload_names = [name for name in schema.names if name != key]
    if not payload_names:
        return None
    thin_bytes = tables[0].wire_row_bytes([key]) + ROWID_BYTES
    if tables[0].wire_row_bytes() <= thin_bytes:
        return None
    return PayloadStore(tables, key)


@dataclass
class StitchStats:
    """Volume accounting of one stitch (filled by the engine)."""

    #: Thin rows that arrived at the join (before pruning), per side.
    l_thin_tuples: int = 0
    t_thin_tuples: int = 0
    #: Surviving rows whose payloads were fetched, per side.
    l_fetched_tuples: int = 0
    t_fetched_tuples: int = 0
    #: Tuple-weighted fetch amplification actually measured, per side.
    l_amplification: float = 1.0
    t_amplification: float = 1.0
    #: Whether the fetch gathers ran on the process pool.
    parallel_fetch: bool = False
    #: Real encoded bytes the stitched fetches moved (wire codec).
    fetched_wire_bytes: int = 0

    def merge_side(self, side: str, thin: int, fetched: int,
                   touched_rows: int) -> None:
        """Accumulate one slot's prune/fetch numbers for ``side``."""
        if side == "l":
            self.l_thin_tuples += thin
            self.l_fetched_tuples += fetched
            self._l_touched = getattr(self, "_l_touched", 0) + touched_rows
            if self.l_fetched_tuples:
                self.l_amplification = float(min(PAGE_ROWS, max(
                    1.0, self._l_touched / self.l_fetched_tuples)))
        else:
            self.t_thin_tuples += thin
            self.t_fetched_tuples += fetched
            self._t_touched = getattr(self, "_t_touched", 0) + touched_rows
            if self.t_fetched_tuples:
                self.t_amplification = float(min(PAGE_ROWS, max(
                    1.0, self._t_touched / self.t_fetched_tuples)))


@dataclass
class LateMatPlan:
    """What :meth:`repro.jen.engine.Jen.join_and_aggregate` needs to
    stitch thin worker parts back into full rows before joining.

    Either side may be ``None`` (that side travelled full-width — e.g.
    the broadcast join only thins T').
    """

    l_store: Optional[PayloadStore] = None
    t_store: Optional[PayloadStore] = None
    stats: StitchStats = field(default_factory=StitchStats)

    def active(self) -> bool:
        """Whether any side needs stitching."""
        return self.l_store is not None or self.t_store is not None

    # ------------------------------------------------------------------
    def stitch(self, l_parts: List[Table], t_parts: List[Table],
               l_key: str, t_key: str,
               ) -> Tuple[List[Table], List[Table]]:
        """Prune + fetch every worker slot; returns full-row parts.

        Per slot the thin side is pruned by an exact semi-join against
        the co-partitioned other side (a pruned row's key appears
        nowhere it could probe or be probed, so it cannot contribute
        join output), then the survivors' payloads are gathered from
        the stores.  Gathers run on the process pool when the parallel
        backend is selected (see :func:`_parallel_fetch`); any reason
        they cannot falls back to coordinator-side gathers, recorded as
        a ``latemat-stitch`` fallback event.
        """
        l_rowid_batches: List[Optional[np.ndarray]] = []
        t_rowid_batches: List[Optional[np.ndarray]] = []
        for l_part, t_part in zip(l_parts, t_parts):
            l_rowid_batches.append(self._surviving_rowids(
                self.l_store, l_part, l_key, t_part, t_key, "l"))
            t_rowid_batches.append(self._surviving_rowids(
                self.t_store, t_part, t_key, l_part, l_key, "t"))
        l_fetched = self._fetch_side(self.l_store, l_rowid_batches)
        t_fetched = self._fetch_side(self.t_store, t_rowid_batches)
        stitched_l = [
            fetched if fetched is not None else part
            for fetched, part in zip(l_fetched, l_parts)
        ]
        stitched_t = [
            fetched if fetched is not None else part
            for fetched, part in zip(t_fetched, t_parts)
        ]
        return stitched_l, stitched_t

    def _surviving_rowids(self, store: Optional[PayloadStore],
                          part: Table, key: str, other: Table,
                          other_key: str, side: str
                          ) -> Optional[np.ndarray]:
        """This slot's surviving row ids, or ``None`` (side not thin)."""
        if store is None or not is_thin(part):
            return None
        keep = np.isin(part.column(key), other.column(other_key))
        # Sorted batches keep the sequential and parallel fetch paths
        # byte-identical (the wire codec delta-encodes sorted ids) and
        # make the store-side access pattern sequential.
        rowids = np.sort(part.column(ROWID_COLUMN)[keep])
        touched = int(np.unique(rowids // PAGE_ROWS).size * PAGE_ROWS) \
            if rowids.size else 0
        self.stats.merge_side(side, part.num_rows, int(rowids.size),
                              touched)
        return rowids

    def _fetch_side(self, store: Optional[PayloadStore],
                    rowid_batches: List[Optional[np.ndarray]]
                    ) -> List[Optional[Table]]:
        """Gather payload rows for every slot of one side."""
        return fetch_batches(store, rowid_batches, self.stats)


def fetch_batches(store: Optional[PayloadStore],
                  rowid_batches: List[Optional[np.ndarray]],
                  stats: StitchStats) -> List[Optional[Table]]:
    """Gather payload rows for every slot's surviving row-id batch.

    ``None`` batches (side/slot not thin) come back as ``None``.
    Gathers run on the process pool when the parallel backend is
    selected; otherwise the coordinator fetches sequentially.
    """
    live = [batch for batch in rowid_batches if batch is not None]
    if store is None or not live:
        return [None] * len(rowid_batches)
    fetched = _parallel_fetch(store, live, stats)
    if fetched is None:
        fetched = [store.fetch(batch) for batch in live]
    stats.fetched_wire_bytes += _encoded_fetch_bytes(fetched)
    results: List[Optional[Table]] = []
    cursor = iter(fetched)
    for batch in rowid_batches:
        results.append(next(cursor) if batch is not None else None)
    return results


def stitch_parts(store: Optional[PayloadStore], parts: List[Table],
                 key: str, other_keys: np.ndarray, stats: StitchStats,
                 side: str = "l") -> List[Table]:
    """Prune thin ``parts`` against an exact key set, fetch payloads.

    The DB-side joins use this: the other side of the join is not
    co-partitioned with the ingested thin parts (grouped ingest has no
    hash alignment, and the database may reshuffle internally), so each
    part is pruned against the *global* key set of the other side —
    exact and safe no matter which internal strategy the database
    optimizer picks.  Returns full-row parts; non-thin parts pass
    through untouched.
    """
    other_keys = np.asarray(other_keys)
    rowid_batches: List[Optional[np.ndarray]] = []
    for part in parts:
        if store is None or not is_thin(part):
            rowid_batches.append(None)
            continue
        keep = np.isin(part.column(key), other_keys)
        rowids = np.sort(part.column(ROWID_COLUMN)[keep])
        touched = int(np.unique(rowids // PAGE_ROWS).size * PAGE_ROWS) \
            if rowids.size else 0
        stats.merge_side(side, part.num_rows, int(rowids.size), touched)
        rowid_batches.append(rowids)
    fetched = fetch_batches(store, rowid_batches, stats)
    return [
        table if table is not None else part
        for table, part in zip(fetched, parts)
    ]


def _encoded_fetch_bytes(tables: Sequence[Table]) -> int:
    """Real wire-codec bytes of the fetched payload tables."""
    from repro.net.transfer import encoded_transfer_volume

    return encoded_transfer_volume(tables)


def _parallel_fetch(store: PayloadStore,
                    rowid_batches: List[np.ndarray],
                    stats: StitchStats) -> Optional[List[Table]]:
    """Run the stitch gathers on the process pool, or ``None``.

    Returns ``None`` (sequential fallback) when the parallel backend is
    not selected or the payload cannot cross the process boundary; the
    reason is recorded like every other sequential fallback.
    """
    from repro import parallel

    if not parallel.parallel_enabled():
        return None
    from repro.parallel.join import parallel_stitch

    try:
        fetched = parallel_stitch(
            store.payload_table(), rowid_batches,
            parallel.get_backend(parallel.pool_workers()),
        )
    except parallel.ParallelUnsupported:
        parallel.record_fallback("latemat.stitch", "unsupported-payload")
        return None
    stats.parallel_fetch = True
    return fetched


__all__ = [
    "LateMatPlan",
    "PAGE_ROWS",
    "PayloadStore",
    "ROWID_BYTES",
    "ROWID_COLUMN",
    "StitchStats",
    "fetch_amplification",
    "is_thin",
    "late_materialization_enabled",
    "set_late_materialization_enabled",
    "thin_for_transfer",
    "thin_table",
]
