"""``AdaptiveJoin``: run the advised plan, switch it mid-query if wrong.

The algorithm advises an initial plan from the (possibly wrong) workload
estimate, then executes it with the runtime-statistics hooks armed.
When a decision checkpoint's re-costing votes to switch, the in-flight
segment is abandoned via :class:`~repro.adaptive.hooks.SwitchSignal`
(the engines' ``finally`` blocks drain cleanly), its materialised
artifacts are banked, and the target plan runs from the top — reusing
the banked BF(T′) and T′ partitions where legal.  The final trace
carries the abandoned segment's priced phases (``abandoned_`` prefix), a
``switch`` latency phase for the drain/re-plan overhead, and the full
post-switch plan, so the simulated makespan honestly pays for being
wrong first.

With a fault plan armed the run is *collect-only*: statistics flow but
checkpoints never fire, because abandoning a half-recovered scan has no
defined semantics (and the fault machinery already guarantees the
result).
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional, Tuple

from repro.core.advisor import JoinAdvisor, WorkloadEstimate
from repro.sim.trace import Trace
from repro.adaptive import hooks
from repro.adaptive.collector import (
    AdaptiveContext,
    ArtifactBank,
    RuntimeStatsCollector,
)
from repro.adaptive.reoptimizer import AdaptiveConfig, ReOptimizer
from repro.core.joins.base import (
    JoinAlgorithm,
    JoinResult,
    algorithm_by_name,
    register_algorithm,
)
from repro.query.query import HybridQuery


@dataclasses.dataclass
class _AbandonedSegment:
    """One plan segment that ran partway before a switch."""

    algorithm: str
    collector: RuntimeStatsCollector
    decision: object  # SwitchDecision


def _clamped(value: float) -> float:
    return min(1.0, max(value, 1e-5))


@register_algorithm
class AdaptiveJoin(JoinAlgorithm):
    """Mid-query re-optimizing wrapper around the advised algorithm."""

    name = "adaptive"

    def __init__(self, estimate: Optional[WorkloadEstimate] = None,
                 estimate_errors: Optional[Tuple[float, float]] = None,
                 config: Optional[AdaptiveConfig] = None):
        #: Planner estimate to start from; sampled when ``None``.
        self.estimate = estimate
        #: Injected estimate error ``(sigma_t_factor, sigma_l_factor)``
        #: multiplying the initial estimate's selectivities — the
        #: testkit's deterministic way to force a mispick (0.1 on σ_L
        #: is the paper-style "10x underestimate").
        self.estimate_errors = estimate_errors
        self.config = config or AdaptiveConfig()

    # ------------------------------------------------------------------
    def run(self, warehouse, query: HybridQuery) -> JoinResult:
        advisor = JoinAdvisor(warehouse.config)
        estimate = self.estimate
        if estimate is None:
            from repro.query.stats import sample_workload_estimate

            estimate = sample_workload_estimate(warehouse, query)
        if self.estimate_errors is not None:
            t_factor, l_factor = self.estimate_errors
            estimate = dataclasses.replace(
                estimate,
                sigma_t=_clamped(estimate.sigma_t * t_factor),
                sigma_l=_clamped(estimate.sigma_l * l_factor),
            )
        incumbent = advisor.decide(estimate).best
        initial = incumbent

        injector = getattr(warehouse.jen, "injector", None)
        fault_run = injector is not None and injector.armed

        bank = ArtifactBank()
        abandoned: List[_AbandonedSegment] = []
        reoptimizers: List[ReOptimizer] = []
        db_carry = (0, 0)
        while True:
            collector = RuntimeStatsCollector()
            # The database filter's observation survives a switch (the
            # reused banked T' re-runs nothing to re-observe).
            collector.db_rows_scanned, collector.db_rows_out = db_carry
            collect_only = (
                fault_run or len(abandoned) >= self.config.max_switches
            )
            reoptimizer = None
            if not collect_only:
                reoptimizer = ReOptimizer(
                    advisor, incumbent, estimate,
                    config=self.config,
                    exclude=frozenset(
                        segment.algorithm for segment in abandoned
                    ),
                    bank=bank,
                )
                reoptimizers.append(reoptimizer)
            context = AdaptiveContext(collector, reoptimizer, bank)
            inner = algorithm_by_name(incumbent)
            try:
                with hooks.adapting(context):
                    inner_result = inner.run(warehouse, query)
            except hooks.SwitchSignal as signal:
                abandoned.append(_AbandonedSegment(
                    algorithm=incumbent,
                    collector=collector,
                    decision=signal.decision,
                ))
                db_carry = (collector.db_rows_scanned,
                            collector.db_rows_out)
                # Later segments re-plan from the observation-refined
                # estimate, not the original (possibly wrong) one.
                estimate = collector.observed_estimate(estimate)
                incumbent = signal.decision.target
                continue
            break

        report = self._report(initial, incumbent, abandoned, collector,
                              bank, reoptimizers)
        if not abandoned:
            inner_result.trace.metadata["adaptive"] = report
            return JoinResult(
                algorithm=f"adaptive[{incumbent}]",
                result=inner_result.result,
                stats=inner_result.stats,
                trace=inner_result.trace,
                timing=inner_result.timing,
                scale_up=inner_result.scale_up,
            )
        return self._assemble_switched(
            warehouse, query, abandoned, incumbent, inner_result, report
        )

    # ------------------------------------------------------------------
    def _assemble_switched(self, warehouse, query: HybridQuery,
                           abandoned: List[_AbandonedSegment],
                           final_name: str, final_result: JoinResult,
                           report: dict) -> JoinResult:
        """One trace carrying the abandoned work, the switch overhead
        and the full post-switch plan."""
        costing = self._costing(warehouse)
        meta = warehouse.hdfs.table_meta(query.hdfs_table)
        path = [segment.algorithm for segment in abandoned] + [final_name]
        label = f"adaptive[{'->'.join(path)}]"
        trace = Trace(label=label)
        gate = None  # previous segment's switch phase
        for index, segment in enumerate(abandoned):
            prefix = (
                "abandoned_" if len(abandoned) == 1
                else f"abandoned{index + 1}_"
            )
            segment_phases = []
            for phase in segment.collector.phases:
                after = [prefix + name for name in phase.after]
                if not after and gate is not None:
                    after = [gate]
                trace.add(
                    prefix + phase.name, phase.kind, phase.seconds,
                    after=after,
                    streams_from=[
                        prefix + name for name in phase.streams_from
                    ],
                    description=phase.description,
                    volume_bytes=phase.volume_bytes,
                    tuples=phase.tuples,
                )
                segment_phases.append(prefix + phase.name)
            # The in-flight scan never reached its trace.add; price the
            # scanned-so-far fraction from the collector's raw counts.
            if segment.collector.rows_scanned > 0:
                scan_gate = (
                    [prefix + "bf_db_send"]
                    if prefix + "bf_db_send" in segment_phases
                    else [prefix + "startup"]
                )
                trace.add(
                    prefix + "hdfs_scan", "hdfs_scan",
                    costing.hdfs_scan_seconds(
                        segment.collector.stored_bytes_scanned,
                        segment.collector.rows_scanned,
                        meta.format_name,
                        remote_fraction=0.0,
                    ),
                    after=scan_gate,
                    description=(
                        f"partial scan abandoned at "
                        f"{segment.decision.at_progress:.0%}"
                    ),
                    volume_bytes=segment.collector.stored_bytes_scanned,
                    tuples=segment.collector.rows_scanned,
                )
                segment_phases.append(prefix + "hdfs_scan")
            switch_name = (
                "switch" if len(abandoned) == 1 else f"switch{index + 1}"
            )
            trace.add(
                switch_name, "latency",
                self.config.switch_penalty_seconds,
                after=segment_phases,
                description=(
                    f"drain {segment.algorithm!r}, re-plan as "
                    f"{segment.decision.target!r}"
                ),
            )
            gate = switch_name
        # The post-switch plan replaces its own startup with the switch
        # phase: coordination is already up, the penalty covers re-plan.
        trace.graft(final_result.trace, drop=("startup",),
                    remap={"startup": gate})
        trace.metadata.update(final_result.trace.metadata)
        trace.metadata["adaptive"] = report

        stats = final_result.stats
        stats.hdfs_rows_discarded += sum(
            segment.collector.rows_scanned for segment in abandoned
        )
        result = self._finish(
            warehouse, query, final_result.result, stats, trace
        )
        result.algorithm = label
        return result

    # ------------------------------------------------------------------
    @staticmethod
    def _report(initial: str, final: str,
                abandoned: List[_AbandonedSegment],
                final_collector: RuntimeStatsCollector,
                bank: ArtifactBank,
                reoptimizers: List[ReOptimizer]) -> dict:
        """The adaptive run's full story, for ``trace.metadata``."""
        return {
            "initial_algorithm": initial,
            "final_algorithm": final,
            "path": [seg.algorithm for seg in abandoned] + [final],
            "switched": bool(abandoned),
            "switches": [
                {
                    "from": segment.algorithm,
                    "to": segment.decision.target,
                    "at_progress": segment.decision.at_progress,
                    "reason": segment.decision.reason,
                    "projected_remaining":
                        segment.decision.projected_remaining,
                    "target_seconds": segment.decision.target_seconds,
                    "observed_sigma_t": segment.decision.observed_sigma_t,
                    "observed_sigma_l": segment.decision.observed_sigma_l,
                    "observed_bloom_hit_rate":
                        segment.decision.observed_bloom_hit_rate,
                }
                for segment in abandoned
            ],
            "segments": [
                segment.collector.report() for segment in abandoned
            ] + [final_collector.report()],
            "bank": bank.report(),
            "evaluations": [
                record
                for reoptimizer in reoptimizers
                for record in reoptimizer.evaluations
            ],
        }
