"""Runtime statistics collected while one plan segment executes.

:class:`RuntimeStatsCollector` accumulates what the hooks see — the
database filter's observed σ_T, per-block scan counts (observed σ_L so
far, BF(T′) hit rate), shuffle partition sizes, and every priced phase
the segment added to its trace.  :meth:`RuntimeStatsCollector.
observed_estimate` folds the observations into a fresh
:class:`~repro.core.advisor.WorkloadEstimate`, extrapolating the
observed-so-far rates to the whole table — the input the re-optimizer
feeds back through the advisor's cost model.

:class:`ArtifactBank` keeps materialised artifacts that stay legal
across a plan switch: the merged BF(T′) (bit-identical reuse, shadow
sets and all) and the filtered T′ partitions.  One bank outlives every
segment of one adaptive run.

:class:`AdaptiveContext` is the object :func:`repro.adaptive.hooks.
adapting` arms: it owns one collector, the shared bank, and (unless
the run is collect-only) the re-optimizer consulted at checkpoints.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Tuple

from repro.core.advisor import WorkloadEstimate
from repro.adaptive.hooks import SwitchSignal

#: Observed selectivities are clamped to the advisor's legal floor.
_SIGMA_FLOOR = 1e-5


class RuntimeStatsCollector:
    """Observed-so-far statistics of one executing plan segment."""

    def __init__(self):
        # Database side (observed sigma_T).
        self.db_rows_scanned = 0
        self.db_rows_out = 0
        # HDFS scan progress.
        self.total_blocks = 0
        self.blocks_done = 0
        self.rows_scanned = 0
        self.stored_bytes_scanned = 0.0
        self.rows_after_predicates = 0
        self.rows_after_bloom = 0
        self.bloom_applied = False
        # Shuffle partition growth (per-destination sizes, per shuffle).
        self.shuffle_partitions: List[List[int]] = []
        # Priced phases the segment's trace accumulated, in order.
        self.phases: List[object] = []

    # ------------------------------------------------------------------
    # Derived observations
    # ------------------------------------------------------------------
    def scan_progress(self) -> float:
        """Fraction of assigned blocks fully scanned."""
        if self.total_blocks <= 0:
            return 0.0
        return min(1.0, self.blocks_done / self.total_blocks)

    def observed_sigma_t(self) -> Optional[float]:
        """σ_T from the completed database filter, if it ran."""
        if self.db_rows_scanned <= 0:
            return None
        return max(self.db_rows_out / self.db_rows_scanned, _SIGMA_FLOOR)

    def observed_sigma_l(self) -> Optional[float]:
        """σ_L over the rows scanned so far, if any block finished."""
        if self.rows_scanned <= 0:
            return None
        return max(self.rows_after_predicates / self.rows_scanned,
                   _SIGMA_FLOOR)

    def bloom_hit_rate(self) -> Optional[float]:
        """BF(T′) pass rate over predicate survivors, when it applied."""
        if not self.bloom_applied or self.rows_after_predicates <= 0:
            return None
        return self.rows_after_bloom / self.rows_after_predicates

    def observed_estimate(self, base: WorkloadEstimate) -> WorkloadEstimate:
        """``base`` with every observed statistic extrapolated in.

        The scanned prefix of L is assumed representative (blocks are
        written in load order from a uniformly shuffled workload), so
        observed-so-far rates stand in for whole-table rates; the
        database filter runs to completion before any checkpoint, so
        its σ_T is exact.  An observed BF(T′) pass rate sharpens
        ``s_l`` (pass rate ≈ S_L′ + false-positive rate).
        """
        replacements: Dict[str, float] = {}
        sigma_t = self.observed_sigma_t()
        if sigma_t is not None:
            replacements["sigma_t"] = min(1.0, sigma_t)
        sigma_l = self.observed_sigma_l()
        if sigma_l is not None:
            replacements["sigma_l"] = min(1.0, sigma_l)
        hit_rate = self.bloom_hit_rate()
        if hit_rate is not None:
            replacements["s_l"] = min(
                1.0, max(hit_rate - base.bloom_fpr, 1e-4)
            )
        if not replacements:
            return base
        return dataclasses.replace(base, **replacements)

    def report(self) -> Dict[str, object]:
        """Everything observed, for the trace metadata."""
        return {
            "scan_progress": round(self.scan_progress(), 4),
            "blocks_done": self.blocks_done,
            "total_blocks": self.total_blocks,
            "rows_scanned": self.rows_scanned,
            "sigma_t": self.observed_sigma_t(),
            "sigma_l": self.observed_sigma_l(),
            "bloom_hit_rate": self.bloom_hit_rate(),
            "shuffle_partition_sizes": [
                list(sizes) for sizes in self.shuffle_partitions
            ],
        }


class ArtifactBank:
    """Materialised artifacts that survive a plan switch legally.

    Reuse is legal because the data plane is deterministic and the
    query is unchanged within one adaptive run: the filtered T′
    partitions and the merged BF(T′) a new segment would build are
    bit-identical to the banked ones.  Banked Bloom filters are reused
    *by object*, so the testkit's shadow key sets stay attached.
    """

    def __init__(self):
        self._blooms: Dict[Tuple, object] = {}
        self._db_filters: Dict[str, Tuple[List[object], int]] = {}
        self.bloom_reuses = 0
        self.db_filter_reuses = 0

    # -- BF(T') --------------------------------------------------------
    def bank_bloom(self, key: Tuple, result) -> None:
        self._blooms.setdefault(key, result)

    def banked_bloom(self, key: Tuple):
        result = self._blooms.get(key)
        if result is not None:
            self.bloom_reuses += 1
        return result

    @property
    def has_bloom(self) -> bool:
        return bool(self._blooms)

    # -- filtered T' partitions ----------------------------------------
    def bank_db_filter(self, key: str, parts, matched: int) -> None:
        self._db_filters.setdefault(key, (parts, matched))

    def banked_db_filter(self, key: str):
        entry = self._db_filters.get(key)
        if entry is not None:
            self.db_filter_reuses += 1
        return entry

    @property
    def has_db_filter(self) -> bool:
        return bool(self._db_filters)

    def report(self) -> Dict[str, int]:
        """Reuse counters for the trace metadata."""
        return {
            "bloom_reuses": self.bloom_reuses,
            "db_filter_reuses": self.db_filter_reuses,
        }


class AdaptiveContext:
    """What :func:`repro.adaptive.hooks.adapting` arms for one segment.

    ``reoptimizer`` is ``None`` for collect-only segments (statistics
    flow, checkpoints never fire) — the mode used when a fault plan is
    armed, where abandoning a half-recovered scan has no defined
    semantics, and for the final segment after the switch budget is
    spent.
    """

    def __init__(self, collector: RuntimeStatsCollector,
                 reoptimizer=None,
                 bank: Optional[ArtifactBank] = None):
        self.collector = collector
        self.reoptimizer = reoptimizer
        self.bank = bank if bank is not None else ArtifactBank()
        #: Fractional checkpoints already evaluated (fire each once).
        self._fired: set = set()

    # -- hook plumbing -------------------------------------------------
    def on_db_filter(self, rows_scanned: int, rows_out: int) -> None:
        self.collector.db_rows_scanned += rows_scanned
        self.collector.db_rows_out += rows_out

    def on_scan_begin(self, total_blocks: int) -> None:
        self.collector.total_blocks += total_blocks

    def on_scan_block(self, rows_scanned: int, stored_bytes: float,
                      rows_after_predicates: int, rows_after_bloom: int,
                      bloom_applied: bool) -> None:
        collector = self.collector
        collector.blocks_done += 1
        collector.rows_scanned += rows_scanned
        collector.stored_bytes_scanned += stored_bytes
        collector.rows_after_predicates += rows_after_predicates
        collector.rows_after_bloom += rows_after_bloom
        collector.bloom_applied = collector.bloom_applied or bloom_applied
        if self.reoptimizer is None:
            return
        progress = collector.scan_progress()
        for mark in self.reoptimizer.config.checkpoints:
            if progress >= mark > 0 and mark not in self._fired \
                    and progress < 1.0:
                self._fired.add(mark)
                decision = self.reoptimizer.evaluate(collector, progress)
                if decision is not None:
                    raise SwitchSignal(decision)

    def on_shuffle(self, sizes: List[int]) -> None:
        self.collector.shuffle_partitions.append(sizes)

    def on_phase(self, phase) -> None:
        self.collector.phases.append(phase)

    def on_checkpoint(self, label: str) -> None:
        """A named (non-fractional) checkpoint, e.g. after T′ build."""
        if self.reoptimizer is None or label in self._fired:
            return
        self._fired.add(label)
        decision = self.reoptimizer.evaluate(
            self.collector, self.collector.scan_progress()
        )
        if decision is not None:
            raise SwitchSignal(decision)

    # -- bank plumbing -------------------------------------------------
    def banked_bloom(self, key):
        return self.bank.banked_bloom(key)

    def bank_bloom(self, key, result) -> None:
        self.bank.bank_bloom(key, result)

    def banked_db_filter(self, key):
        return self.bank.banked_db_filter(key)

    def bank_db_filter(self, key, parts, matched: int) -> None:
        self.bank.bank_db_filter(key, parts, matched)
