"""repro.adaptive — mid-query re-optimization with runtime statistics.

The advisor (:mod:`repro.core.advisor`) commits to one join algorithm
up front from planner estimates; a bad cardinality estimate rides to
completion.  This package makes join-site choice a *runtime* property,
in the spirit of runtime join-location optimisation (Chandra &
Sudarshan, arXiv:1703.01148) and the source paper's own Section 5.5
conclusion that the right side to join on depends on data the planner
can only guess at:

* :mod:`repro.adaptive.hooks` — the observation seam the engines call
  into (gated, one ``if`` per call site when inactive), plus
  :class:`~repro.adaptive.hooks.SwitchSignal`;
* :mod:`repro.adaptive.collector` — the runtime-statistics collector
  (observed σ_T / σ_L so far, BF(T′) hit rate, scan progress, shuffle
  partition growth) and the artifact bank for legal cross-switch reuse;
* :mod:`repro.adaptive.reoptimizer` — decision checkpoints: re-runs the
  advisor's cost model with observed-so-far statistics extrapolated and
  votes to switch when the incumbent's projected remaining cost exceeds
  an alternative's full cost plus the switch penalty;
* :mod:`repro.adaptive.algorithm` — :class:`~repro.adaptive.algorithm.
  AdaptiveJoin` (registered as ``"adaptive"``): runs the advised
  algorithm under the hooks, executes switches (drain, reuse banked
  artifacts, re-plan), and charges abandoned work plus switch overhead
  on the trace plane.

The engine modules import :mod:`~repro.adaptive.hooks` at load time, so
this package must stay import-light: only the hooks (dependency-free)
load eagerly; everything else resolves lazily on first attribute
access.
"""

from __future__ import annotations

from repro.adaptive.hooks import SwitchSignal, adapting, adaptive_active

_LAZY_MODULES = ("algorithm", "collector", "hooks", "reoptimizer")
_LAZY_ATTRS = {
    "AdaptiveConfig": "reoptimizer",
    "AdaptiveContext": "collector",
    "AdaptiveJoin": "algorithm",
    "ArtifactBank": "collector",
    "ReOptimizer": "reoptimizer",
    "RuntimeStatsCollector": "collector",
}

__all__ = [
    "AdaptiveConfig",
    "AdaptiveContext",
    "AdaptiveJoin",
    "ArtifactBank",
    "ReOptimizer",
    "RuntimeStatsCollector",
    "SwitchSignal",
    "adapting",
    "adaptive_active",
    "algorithm",
    "collector",
    "hooks",
    "reoptimizer",
]


def __getattr__(name: str):
    import importlib

    if name in _LAZY_MODULES:
        return importlib.import_module(f"repro.adaptive.{name}")
    if name in _LAZY_ATTRS:
        module = importlib.import_module(
            f"repro.adaptive.{_LAZY_ATTRS[name]}"
        )
        return getattr(module, name)
    raise AttributeError(
        f"module 'repro.adaptive' has no attribute {name!r}"
    )
