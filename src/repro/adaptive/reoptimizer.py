"""Decision checkpoints: re-cost the plan with observed statistics.

At each checkpoint the :class:`ReOptimizer` folds the collector's
observed-so-far statistics into the original workload estimate
(:meth:`~repro.adaptive.collector.RuntimeStatsCollector.
observed_estimate`), re-runs the advisor's cost model, and compares

* the incumbent's *projected remaining* cost — its full re-costed
  estimate minus the work already behind us (the completed database
  filter and ``progress`` of the scan), against
* each alternative's *full* cost, credited for banked artifacts it can
  reuse (the T′ partitions, and with them the already-paid db filter)
  and charged the fixed switch penalty (drain + re-plan + restart).

A switch fires only when the best alternative beats the projection by
the hysteresis margin — re-costing with observed statistics is itself
an estimate, and thrashing between near-ties would pay the penalty for
nothing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Optional, Tuple

from repro.core.advisor import JoinAdvisor, WorkloadEstimate
from repro.adaptive.collector import ArtifactBank, RuntimeStatsCollector


@dataclass(frozen=True)
class AdaptiveConfig:
    """Tuning knobs for the adaptive plane."""

    #: Fractional scan-progress marks where the re-optimizer runs (the
    #: named ``t_prime_built`` checkpoint always runs in addition).
    checkpoints: Tuple[float, ...] = (0.25, 0.5, 0.75)
    #: Below this scan progress the observed σ_L sample is too small to
    #: trust for a switch (the T′ checkpoint, at progress 0, relies on
    #: the exact observed σ_T instead and is exempt).
    min_progress: float = 0.05
    #: Fixed cost of a switch: drain in-flight stages, re-plan, restart
    #: coordination (charged as a latency phase on the final trace).
    switch_penalty_seconds: float = 5.0
    #: Switch only when the alternative beats the incumbent's projected
    #: remaining cost by this factor.
    hysteresis: float = 0.9
    #: Most switches allowed in one run (regret is bounded; after the
    #: budget is spent the run continues collect-only).
    max_switches: int = 1


@dataclass(frozen=True)
class SwitchDecision:
    """One checkpoint's vote to abandon the incumbent plan."""

    target: str
    reason: str
    at_progress: float
    projected_remaining: float
    target_seconds: float
    #: Full re-costed estimates (every algorithm, uncredited).
    estimates: Dict[str, float] = field(default_factory=dict)
    observed_sigma_t: Optional[float] = None
    observed_sigma_l: Optional[float] = None
    observed_bloom_hit_rate: Optional[float] = None


class ReOptimizer:
    """Re-runs the advisor's cost model at decision checkpoints."""

    def __init__(self, advisor: JoinAdvisor, incumbent: str,
                 base_estimate: WorkloadEstimate,
                 config: Optional[AdaptiveConfig] = None,
                 exclude: FrozenSet[str] = frozenset(),
                 bank: Optional[ArtifactBank] = None):
        self.advisor = advisor
        self.incumbent = incumbent
        self.base_estimate = base_estimate
        self.config = config or AdaptiveConfig()
        #: Algorithms already tried this run — never switch back.
        self.exclude = frozenset(exclude) | {incumbent}
        self.bank = bank
        #: Every evaluation, for the trace metadata.
        self.evaluations: list = []

    def evaluate(self, collector: RuntimeStatsCollector,
                 progress: float) -> Optional[SwitchDecision]:
        """Re-cost with observations; a decision means *switch now*."""
        if 0.0 < progress < self.config.min_progress:
            return None
        observed = collector.observed_estimate(self.base_estimate)
        estimates = self.advisor.estimate_all(observed)
        if self.incumbent not in estimates:
            # Incumbent outside the advisor's costed set (e.g. an
            # explicitly requested variant): nothing to project against.
            return None

        # Work already behind the incumbent: the completed db filter
        # and `progress` of the scan.  Both overlap other phases in the
        # full estimates, so this projection errs toward keeping the
        # incumbent — exactly the conservative direction we want.
        db_filter = self.advisor.db_filter_seconds(observed)
        scan = self.advisor.scan_seconds(observed)
        sunk = 0.0
        if collector.db_rows_scanned > 0:
            sunk += db_filter
        sunk += progress * scan
        remaining = max(0.0, estimates[self.incumbent] - sunk)

        # Alternatives pay from scratch, minus banked-artifact credits.
        t_prime_banked = self.bank is not None and self.bank.has_db_filter
        best_name, best_cost = None, None
        for name, full in estimates.items():
            if name in self.exclude:
                continue
            cost = full + self.config.switch_penalty_seconds
            if t_prime_banked:
                cost -= db_filter
            if best_cost is None or (cost, name) < (best_cost, best_name):
                best_name, best_cost = name, cost

        record = {
            "progress": round(progress, 4),
            "incumbent": self.incumbent,
            "projected_remaining": remaining,
            "best_alternative": best_name,
            "alternative_cost": best_cost,
            "estimates": dict(estimates),
        }
        self.evaluations.append(record)
        if best_name is None or best_cost >= self.config.hysteresis * remaining:
            return None
        return SwitchDecision(
            target=best_name,
            reason=(
                f"projected remaining {remaining:.1f}s on "
                f"{self.incumbent!r} vs {best_cost:.1f}s full re-run of "
                f"{best_name!r} (switch penalty and banked-artifact "
                "credits included)"
            ),
            at_progress=progress,
            projected_remaining=remaining,
            target_seconds=best_cost,
            estimates=dict(estimates),
            observed_sigma_t=collector.observed_sigma_t(),
            observed_sigma_l=collector.observed_sigma_l(),
            observed_bloom_hit_rate=collector.bloom_hit_rate(),
        )
