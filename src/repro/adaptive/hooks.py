"""Runtime-statistics hooks, active only inside :func:`adapting`.

The adaptive plane needs to see what the engines observe *while a query
runs*: rows surviving the database filter, per-block scan progress,
Bloom-filter hit rates, shuffle partition growth, and every priced phase
added to the trace so far.  This module threads cheap observation hooks
into those hot spots, mirroring the gating style of
:mod:`repro.testkit.invariants` — production runs pay a single ``if``
per call site, and the engine modules can import this module at load
time because it depends on nothing else.

Two hooks are *active* rather than observational:

* :func:`checkpoint` (and the per-block check inside
  :func:`record_scan_block`) may raise :class:`SwitchSignal` when the
  re-optimizer decides the incumbent plan should be abandoned;
* :func:`banked_bloom` / :func:`banked_db_filter` let the shared join
  plumbing reuse artifacts materialised by an abandoned plan segment
  (the Bloom filter BF(T′) and the filtered T′ partitions), so a
  mid-query switch does not repeat work that is still legal to keep.

Arm the hooks with::

    from repro.adaptive import hooks

    with hooks.adapting(context):
        algorithm_by_name("db(BF)").run(warehouse, query)

where ``context`` is an :class:`repro.adaptive.collector.AdaptiveContext`.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator, Optional, Sequence

#: The active adaptive context; flip only through :func:`adapting`.
_CONTEXT = None

#: The active heavy-hitter detector (skew plane); flip only through
#: :func:`detecting_skew`.  Shares this module's observation seam so
#: skew detection rides the same per-block hooks as the adaptive plane
#: instead of adding a second pass over the scan.
_SKEW_DETECTOR = None

#: The active per-block scan observer (approx plane); flip only through
#: :func:`observing_blocks`.  The approximate tier arms this so the
#: engine's own per-block seam — not a parallel bookkeeping path — is
#: the single source of truth for how many rows/bytes a sampled scan
#: actually touched.
_BLOCK_OBSERVER = None


class SwitchSignal(Exception):
    """Raised out of an engine hot loop to abandon the incumbent plan.

    Carries the re-optimizer's :class:`~repro.adaptive.reoptimizer.
    SwitchDecision`.  Only :class:`~repro.adaptive.algorithm.AdaptiveJoin`
    raises and catches it; the engines treat it like any other abort
    (their ``finally`` blocks restore scan depth and toggles).
    """

    def __init__(self, decision):
        super().__init__(
            f"switch to {decision.target!r} at "
            f"{decision.at_progress:.0%} scan progress"
        )
        self.decision = decision


def adaptive_active() -> bool:
    """True while an adaptive run is collecting statistics."""
    return _CONTEXT is not None


@contextmanager
def adapting(context) -> Iterator[None]:
    """Arm every runtime-statistics hook for the duration of the block."""
    global _CONTEXT
    previous = _CONTEXT
    _CONTEXT = context
    try:
        yield
    finally:
        _CONTEXT = previous


def skew_detection_active() -> bool:
    """True while a scan is feeding a heavy-hitter detector."""
    return _SKEW_DETECTOR is not None


@contextmanager
def detecting_skew(detector) -> Iterator[None]:
    """Arm the skew-detection hook for the duration of the block.

    ``detector`` is a :class:`repro.skew.detector.HeavyHitterDetector`
    (anything with an ``observe(keys)`` method); ``None`` makes the
    context a no-op so call sites need no conditional.
    """
    global _SKEW_DETECTOR
    previous = _SKEW_DETECTOR
    _SKEW_DETECTOR = detector
    try:
        yield
    finally:
        _SKEW_DETECTOR = previous


def block_observer_active() -> bool:
    """True while a scan is feeding a per-block observer."""
    return _BLOCK_OBSERVER is not None


@contextmanager
def observing_blocks(observer) -> Iterator[None]:
    """Arm a per-block scan observer for the duration of the block.

    ``observer`` is any callable with :func:`record_scan_block`'s
    signature; it fires for every scanned block *before* the adaptive
    context (if any) sees it, and regardless of whether one is armed.
    """
    global _BLOCK_OBSERVER
    previous = _BLOCK_OBSERVER
    _BLOCK_OBSERVER = observer
    try:
        yield
    finally:
        _BLOCK_OBSERVER = previous


def record_scan_keys(keys) -> None:
    """One scanned block's surviving join keys (called from the JEN
    worker loop, right next to :func:`record_scan_block`)."""
    if _SKEW_DETECTOR is None:
        return
    _SKEW_DETECTOR.observe(keys)


# ----------------------------------------------------------------------
# Observation hooks (engine call sites)
# ----------------------------------------------------------------------
def record_db_filter(rows_scanned: int, rows_out: int) -> None:
    """Observed σ_T: the database filter's input and output counts
    (called from :meth:`repro.edw.database.ParallelDatabase.
    filter_project`)."""
    if _CONTEXT is None:
        return
    _CONTEXT.on_db_filter(rows_scanned, rows_out)


def scan_begin(total_blocks: int) -> None:
    """The distributed scan announces its block count (progress
    denominator); called from the JEN scan work queue."""
    if _CONTEXT is None:
        return
    _CONTEXT.on_scan_begin(total_blocks)


def record_scan_block(rows_scanned: int, stored_bytes: float,
                      rows_after_predicates: int, rows_after_bloom: int,
                      bloom_applied: bool) -> None:
    """One scanned block's counts (called from the JEN worker loop).

    May raise :class:`SwitchSignal` when a fractional-progress decision
    checkpoint is crossed and the re-optimizer votes to switch.
    """
    if _BLOCK_OBSERVER is not None:
        _BLOCK_OBSERVER(rows_scanned, stored_bytes,
                        rows_after_predicates, rows_after_bloom,
                        bloom_applied)
    if _CONTEXT is None:
        return
    _CONTEXT.on_scan_block(rows_scanned, stored_bytes,
                           rows_after_predicates, rows_after_bloom,
                           bloom_applied)


def record_shuffle_partitions(sizes: Sequence[int]) -> None:
    """Per-destination partition sizes of a JEN shuffle (growth/skew
    observability; called from :func:`repro.jen.exchange.shuffle`)."""
    if _CONTEXT is None:
        return
    _CONTEXT.on_shuffle(list(sizes))


def record_phase(phase) -> None:
    """Every phase added to any trace while adapting (called from
    :meth:`repro.sim.trace.Trace.add`), so an abandoned segment's
    already-priced work can be charged on the final trace."""
    if _CONTEXT is None:
        return
    _CONTEXT.on_phase(phase)


def checkpoint(label: str) -> None:
    """A named decision checkpoint (e.g. ``"t_prime_built"``); may raise
    :class:`SwitchSignal`."""
    if _CONTEXT is None:
        return
    _CONTEXT.on_checkpoint(label)


# ----------------------------------------------------------------------
# Artifact bank (legal reuse across a switch)
# ----------------------------------------------------------------------
def banked_bloom(key):
    """A banked ``GlobalBloomResult`` for ``key``, or ``None``."""
    if _CONTEXT is None:
        return None
    return _CONTEXT.banked_bloom(key)


def bank_bloom(key, result) -> None:
    """Bank a freshly built ``GlobalBloomResult`` under ``key``."""
    if _CONTEXT is None:
        return
    _CONTEXT.bank_bloom(key, result)


def banked_db_filter(key) -> Optional[tuple]:
    """Banked ``(t_parts, matched)`` for a db filter, or ``None``."""
    if _CONTEXT is None:
        return None
    return _CONTEXT.banked_db_filter(key)


def bank_db_filter(key, parts, matched: int) -> None:
    """Bank the filtered T′ partitions under ``key``."""
    if _CONTEXT is None:
        return
    _CONTEXT.bank_db_filter(key, parts, matched)
