"""Execution traces: the contract between the data plane and time plane.

A join algorithm run produces a :class:`Trace` — an ordered set of
:class:`Phase` records.  Each phase carries its *duration* (already priced
by the cost layer from measured volumes) plus two kinds of dependencies:

``after``
    Hard barriers: the phase cannot start before these finish.  Example:
    the zigzag join's second database access cannot start before the HDFS
    Bloom filter has been fully built and shipped.

``streams_from``
    Pipelined producers: the phase starts as soon as the producer starts
    and consumes its output chunk by chunk, so it cannot *finish* before
    the producer does but overlaps with it otherwise.  Example: JEN
    shuffles filtered records while the scan is still running
    (paper Section 4.4, Figure 7).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.adaptive import hooks as adaptive_hooks
from repro.errors import SimulationError


@dataclass(frozen=True)
class Phase:
    """One priced step of an algorithm's execution."""

    name: str
    kind: str
    seconds: float
    after: Tuple[str, ...] = ()
    streams_from: Tuple[str, ...] = ()
    description: str = ""
    volume_bytes: float = 0.0
    tuples: float = 0.0

    def __post_init__(self):
        if self.seconds < 0:
            raise SimulationError(
                f"phase {self.name!r} has negative duration {self.seconds}"
            )


class Trace:
    """An ordered, validated collection of phases for one execution."""

    def __init__(self, label: str = ""):
        self.label = label
        self._phases: Dict[str, Phase] = {}
        self.metadata: Dict[str, object] = {}

    def add(
        self,
        name: str,
        kind: str,
        seconds: float,
        after: Sequence[str] = (),
        streams_from: Sequence[str] = (),
        description: str = "",
        volume_bytes: float = 0.0,
        tuples: float = 0.0,
    ) -> Phase:
        """Append a phase; dependency names must already exist."""
        if name in self._phases:
            raise SimulationError(f"duplicate phase name {name!r}")
        for dependency in tuple(after) + tuple(streams_from):
            if dependency not in self._phases:
                raise SimulationError(
                    f"phase {name!r} depends on unknown phase {dependency!r}"
                )
        phase = Phase(
            name=name,
            kind=kind,
            seconds=float(seconds),
            after=tuple(after),
            streams_from=tuple(streams_from),
            description=description,
            volume_bytes=float(volume_bytes),
            tuples=float(tuples),
        )
        self._phases[name] = phase
        # The adaptive plane (when armed) sees every priced phase, so an
        # abandoned plan segment's already-charged work can be replayed
        # onto the final trace.
        adaptive_hooks.record_phase(phase)
        return phase

    def graft(self, other: "Trace", drop: Sequence[str] = (),
              remap: Optional[Dict[str, str]] = None) -> None:
        """Append every phase of ``other``, rewiring dependencies.

        ``drop`` names phases of ``other`` to omit; ``remap`` redirects
        dependency references (typically from a dropped phase to an
        existing phase of this trace).  Dependencies on dropped,
        unremapped phases are removed.  Used by the adaptive plane to
        stitch the post-switch run onto the trace that already carries
        the abandoned segment's phases.
        """
        remap = dict(remap or {})
        dropped = set(drop)

        def rewire(deps: Tuple[str, ...]) -> List[str]:
            rewired = []
            for dep in deps:
                dep = remap.get(dep, dep)
                if dep in dropped:
                    continue
                rewired.append(dep)
            return rewired

        for phase in other:
            if phase.name in dropped:
                continue
            self.add(
                phase.name, phase.kind, phase.seconds,
                after=rewire(phase.after),
                streams_from=rewire(phase.streams_from),
                description=phase.description,
                volume_bytes=phase.volume_bytes,
                tuples=phase.tuples,
            )

    def splice_after(
        self,
        anchor_name: str,
        name: str,
        kind: str,
        seconds: float,
        description: str = "",
        tuples: float = 0.0,
    ) -> Phase:
        """Insert a phase between ``anchor_name`` and its dependents.

        The new phase waits on the anchor, and every phase that depended
        on the anchor additionally depends on the new phase — through
        ``after`` if it was a barrier, through ``streams_from`` if it was
        pipelined — so the inserted work lands on the critical path
        instead of dangling off it.  This is how injected-fault recovery
        (re-scans, retries, speculation) is charged retroactively: the
        phases downstream of a delayed producer genuinely waited for the
        recovery to finish.
        """
        anchor = self.phase(anchor_name)
        if name in self._phases:
            raise SimulationError(f"duplicate phase name {name!r}")
        spliced = Phase(
            name=name,
            kind=kind,
            seconds=float(seconds),
            after=(anchor.name,),
            description=description,
            tuples=float(tuples),
        )
        rebuilt: Dict[str, Phase] = {}
        for existing_name, phase in self._phases.items():
            updated = phase
            if anchor_name in phase.after:
                updated = replace(updated, after=phase.after + (name,))
            if anchor_name in phase.streams_from:
                updated = replace(
                    updated, streams_from=phase.streams_from + (name,)
                )
            rebuilt[existing_name] = updated
            if existing_name == anchor_name:
                rebuilt[name] = spliced
        self._phases = rebuilt
        return spliced

    def __iter__(self) -> Iterator[Phase]:
        return iter(self._phases.values())

    def __len__(self) -> int:
        return len(self._phases)

    def phase(self, name: str) -> Phase:
        """Look up a phase by name."""
        try:
            return self._phases[name]
        except KeyError:
            raise SimulationError(f"unknown phase {name!r}") from None

    def names(self) -> List[str]:
        """Phase names in insertion order."""
        return list(self._phases)

    def total_work_seconds(self) -> float:
        """Sum of phase durations (an upper bound on the critical path)."""
        return sum(phase.seconds for phase in self)

    def describe(self) -> str:
        """Human-readable multi-line summary of the trace."""
        lines = [f"Trace {self.label or '(unlabelled)'}:"]
        for phase in self:
            dependencies = []
            if phase.after:
                dependencies.append("after " + ",".join(phase.after))
            if phase.streams_from:
                dependencies.append("streams " + ",".join(phase.streams_from))
            suffix = f" [{'; '.join(dependencies)}]" if dependencies else ""
            lines.append(
                f"  {phase.name:<28s} {phase.kind:<12s} "
                f"{phase.seconds:9.2f}s{suffix}"
            )
        return "\n".join(lines)
