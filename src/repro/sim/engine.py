"""A small discrete-event simulation kernel.

The kernel is deliberately simpy-like: *processes* are Python generators
that yield the things they wait on — :class:`Timeout` for simulated time,
:class:`Event` for synchronisation, :class:`AllOf` for barriers, or a
:class:`Request` obtained from a :class:`Resource` for capacity.  The
engine drives everything from a single event heap, so simulated time is
deterministic and completely decoupled from wall-clock time.

This is the substrate the trace replayer (:mod:`repro.sim.replay`) builds
on; it is also used directly by tests and by the pipelining ablation
benchmark, which is why it is a general kernel rather than something
specialised to join traces.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable, Deque, Generator, List, Optional, Tuple

from collections import deque

from repro.errors import SimulationError


class Event:
    """A one-shot synchronisation point carrying an optional value."""

    def __init__(self, engine: "SimEngine", name: str = ""):
        self._engine = engine
        self.name = name
        self._callbacks: List[Callable[["Event"], None]] = []
        self.triggered = False
        self.value = None

    def succeed(self, value=None) -> "Event":
        """Trigger the event now; waiting processes resume immediately."""
        if self.triggered:
            raise SimulationError(f"event {self.name!r} triggered twice")
        self.triggered = True
        self.value = value
        callbacks, self._callbacks = self._callbacks, []
        for callback in callbacks:
            self._engine._schedule(self._engine.now, callback, self)
        return self

    def add_callback(self, callback: Callable[["Event"], None]) -> None:
        """Run ``callback(event)`` when triggered (immediately if already)."""
        if self.triggered:
            self._engine._schedule(self._engine.now, callback, self)
        else:
            self._callbacks.append(callback)


class Timeout:
    """Yielded by a process to advance simulated time by ``delay``."""

    def __init__(self, delay: float):
        if delay < 0:
            raise SimulationError(f"negative timeout: {delay}")
        self.delay = float(delay)


class AllOf:
    """Yielded by a process to wait until every event has triggered."""

    def __init__(self, events: List[Event]):
        self.events = list(events)


class Request:
    """A pending acquisition of :class:`Resource` capacity.

    Yield it from a process to block until granted; call
    :meth:`Resource.release` when done.
    """

    def __init__(self, resource: "Resource", amount: float):
        self.resource = resource
        self.amount = float(amount)
        self.event = Event(resource._engine, name="resource-grant")


class Resource:
    """Counted capacity with FIFO granting (disks, NICs, worker slots)."""

    def __init__(self, engine: "SimEngine", capacity: float, name: str = ""):
        if capacity <= 0:
            raise SimulationError("resource capacity must be positive")
        self._engine = engine
        self.capacity = float(capacity)
        self.name = name
        self.in_use = 0.0
        self._waiting: Deque[Request] = deque()

    def request(self, amount: float = 1.0) -> Request:
        """Ask for ``amount`` of capacity; yield the request to wait."""
        if amount > self.capacity:
            raise SimulationError(
                f"request {amount} exceeds capacity {self.capacity} "
                f"of resource {self.name!r}"
            )
        request = Request(self, amount)
        self._waiting.append(request)
        self._grant()
        return request

    def release(self, request: Request) -> None:
        """Return previously granted capacity."""
        self.in_use -= request.amount
        if self.in_use < -1e-9:
            raise SimulationError(f"resource {self.name!r} over-released")
        self._grant()

    def _grant(self) -> None:
        while self._waiting:
            head = self._waiting[0]
            if self.in_use + head.amount > self.capacity + 1e-12:
                break
            self._waiting.popleft()
            self.in_use += head.amount
            head.event.succeed(head)


class _Process:
    """Drives one generator, resuming it as its awaited things complete."""

    def __init__(self, engine: "SimEngine",
                 generator: Generator, name: str = ""):
        self.engine = engine
        self.generator = generator
        self.name = name
        self.done = Event(engine, name=f"{name}-done")

    def _start(self) -> None:
        self._step(None)

    def _step(self, value) -> None:
        try:
            yielded = self.generator.send(value)
        except StopIteration as stop:
            self.done.succeed(getattr(stop, "value", None))
            return
        self._wait_on(yielded)

    def _wait_on(self, yielded) -> None:
        if isinstance(yielded, Timeout):
            self.engine._schedule(
                self.engine.now + yielded.delay, self._step, None
            )
        elif isinstance(yielded, Event):
            yielded.add_callback(lambda event: self._step(event.value))
        elif isinstance(yielded, Request):
            yielded.event.add_callback(lambda event: self._step(yielded))
        elif isinstance(yielded, AllOf):
            self._wait_all(yielded.events)
        elif isinstance(yielded, _Process):
            yielded.done.add_callback(lambda event: self._step(event.value))
        else:
            raise SimulationError(
                f"process {self.name!r} yielded unsupported {yielded!r}"
            )

    def _wait_all(self, events: List[Event]) -> None:
        pending = [event for event in events if not event.triggered]
        if not pending:
            self.engine._schedule(self.engine.now, self._step, None)
            return
        remaining = {"count": len(pending)}

        def on_trigger(_event: Event) -> None:
            remaining["count"] -= 1
            if remaining["count"] == 0:
                self._step(None)

        for event in pending:
            event.add_callback(on_trigger)


class SimEngine:
    """The event loop: a heap of (time, sequence, callback) entries."""

    def __init__(self):
        self.now = 0.0
        self._heap: List[Tuple[float, int, Callable, object]] = []
        self._sequence = itertools.count()
        self._active_processes = 0

    def event(self, name: str = "") -> Event:
        """Create an untriggered event bound to this engine."""
        return Event(self, name=name)

    def timeout(self, delay: float) -> Timeout:
        """Convenience constructor for :class:`Timeout`."""
        return Timeout(delay)

    def resource(self, capacity: float, name: str = "") -> Resource:
        """Create a FIFO capacity resource bound to this engine."""
        return Resource(self, capacity, name=name)

    def call_at(self, when: float, callback: Callable[[], None]) -> None:
        """Run ``callback()`` at simulated time ``when`` (>= now).

        The scheduling primitive components outside the process model
        need — e.g. admission-queue timeout timers, which must fire even
        though no process is waiting on them.  The callback runs in
        event order like any process step.
        """
        if when < self.now - 1e-12:
            raise SimulationError(
                f"call_at({when}) is in the past (now={self.now})"
            )
        self._schedule(max(when, self.now), lambda _value: callback(), None)

    def process(self, generator: Generator, name: str = "") -> _Process:
        """Register a generator as a process; it starts at the current time."""
        process = _Process(self, generator, name=name)
        self._active_processes += 1

        def finish(_event: Event) -> None:
            self._active_processes -= 1

        process.done.add_callback(finish)
        self._schedule(self.now, lambda _value: process._start(), None)
        return process

    def _schedule(self, when: float, callback: Callable, value) -> None:
        heapq.heappush(self._heap, (when, next(self._sequence), callback, value))

    def run(self, until: Optional[float] = None) -> float:
        """Run until the heap drains (or simulated ``until``); return now.

        Raises :class:`SimulationError` if processes remain blocked with no
        scheduled events — a deadlock, typically a dependency cycle in the
        replayed trace.
        """
        while self._heap:
            when, _seq, callback, value = heapq.heappop(self._heap)
            if until is not None and when > until:
                heapq.heappush(self._heap, (when, _seq, callback, value))
                self.now = until
                return self.now
            if when < self.now - 1e-12:
                raise SimulationError("event scheduled in the past")
            self.now = when
            callback(value)
        if self._active_processes > 0 and until is None:
            raise SimulationError(
                f"deadlock: {self._active_processes} process(es) still "
                "waiting with no scheduled events"
            )
        return self.now
