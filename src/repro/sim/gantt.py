"""ASCII Gantt charts of simulated phase schedules.

Turns a :class:`~repro.sim.replay.TimingResult` into a timeline where
each phase is a bar positioned by its simulated start and end — the
quickest way to *see* the paper's pipelining (the shuffle bar sitting
under the scan bar) and the zigzag join's Bloom-filter barrier::

    zigzag — 93.9s simulated
    startup          ▕█░░░...
    db_filter        ▕·██████░...
    hdfs_scan        ▕···█████████████████...
    jen_shuffle      ▕···█████████████████...
"""

from __future__ import annotations

from typing import List

from repro.errors import SimulationError
from repro.sim.replay import TimingResult

#: Characters used for the chart.
BAR = "#"
GAP = "."

#: Default chart width in characters.
DEFAULT_WIDTH = 64


def render_gantt(timing: TimingResult, width: int = DEFAULT_WIDTH) -> str:
    """Render the phase schedule as an ASCII Gantt chart."""
    if width <= 0:
        raise SimulationError("width must be positive")
    if not timing.phases:
        raise SimulationError("no phases to render")
    total = max(timing.total_seconds, 1e-9)
    phases = sorted(timing.phases.values(), key=lambda p: (p.start, p.end))
    label_width = max(len(p.name) for p in phases)

    lines: List[str] = [
        f"{timing.label or 'schedule'} — {timing.total_seconds:.1f}s "
        "simulated"
    ]
    for phase in phases:
        start_col = int(round(phase.start / total * width))
        end_col = int(round(phase.end / total * width))
        start_col = min(start_col, width - 1)
        end_col = max(min(end_col, width), start_col + 1)
        bar = GAP * start_col + BAR * (end_col - start_col) \
            + GAP * (width - end_col)
        lines.append(
            f"{phase.name:<{label_width}}  |{bar}| "
            f"{phase.start:7.1f} -> {phase.end:7.1f}"
        )
    axis = f"{'':<{label_width}}  |{'-' * width}|"
    lines.append(axis)
    lines.append(
        f"{'':<{label_width}}   0{'':>{max(0, width - 12)}}"
        f"{timing.total_seconds:10.1f}s"
    )
    return "\n".join(lines)
