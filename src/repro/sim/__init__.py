"""Time plane: discrete-event simulation of the hybrid warehouse.

The data plane (real numpy execution) emits a :class:`~repro.sim.trace.Trace`
of phases with measured volumes; :mod:`repro.sim.replay` replays the trace
on the event-driven kernel in :mod:`repro.sim.engine`, honouring the
pipelining and barriers the paper describes (e.g. JEN overlaps shuffling
with scanning, while the zigzag join's HDFS Bloom filter is a hard barrier
before the second database access).
"""

from repro.sim.engine import AllOf, Event, Resource, SimEngine, Timeout
from repro.sim.trace import Phase, Trace
from repro.sim.replay import PhaseTiming, TimingResult, replay_trace

__all__ = [
    "AllOf",
    "Event",
    "Phase",
    "PhaseTiming",
    "Resource",
    "SimEngine",
    "Timeout",
    "TimingResult",
    "Trace",
    "replay_trace",
]
