"""Replaying an execution trace on the discrete-event kernel.

Every phase becomes a process that:

1. waits for all ``after`` dependencies to finish and all
   ``streams_from`` producers to *start*;
2. works through its duration in fixed-size chunks, where chunk ``i`` may
   only be processed once every streaming producer has emitted its own
   chunk ``i`` — which is exactly how JEN's send/receive threads overlap
   a shuffle with the scan that feeds it (paper Section 4.4);
3. signals completion, releasing phases barriered on it.

The result records per-phase start and end times plus the makespan; the
difference between the makespan and :meth:`Trace.total_work_seconds` is
precisely the time saved by pipelining, which the pipelining ablation
benchmark measures directly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.errors import SimulationError
from repro.sim.engine import AllOf, SimEngine, Timeout
from repro.sim.trace import Phase, Trace

#: Number of chunks a streamed phase is divided into.  Larger values make
#: the pipelining approximation finer at linear simulation cost; 64 keeps
#: the discretisation error under 2%.
DEFAULT_CHUNKS = 64


@dataclass(frozen=True)
class PhaseTiming:
    """Simulated start and end of one phase."""

    name: str
    kind: str
    start: float
    end: float

    @property
    def elapsed(self) -> float:
        """Wall-clock the phase occupied (including stalls on producers)."""
        return self.end - self.start


@dataclass
class TimingResult:
    """Outcome of replaying one trace."""

    label: str
    total_seconds: float
    phases: Dict[str, PhaseTiming]

    def phase(self, name: str) -> PhaseTiming:
        """Timing of one phase."""
        try:
            return self.phases[name]
        except KeyError:
            raise SimulationError(f"no timing for phase {name!r}") from None

    def critical_path(self, trace: Optional[Trace] = None) -> List[str]:
        """The chain of phases that determined the makespan, in execution
        order.

        With the originating :class:`Trace` supplied, walks backward from
        the last-finishing phase through whichever dependency or
        streaming producer finished latest — the chain to attack when
        explaining why an algorithm lost.  Without the trace only the
        terminal phase is known.
        """
        if not self.phases:
            return []
        last = max(self.phases.values(), key=lambda timing: timing.end)
        if trace is None:
            return [last.name]
        return compute_critical_path(trace, self)

    def breakdown(self) -> str:
        """Multi-line report of the phase schedule."""
        lines = [f"{self.label}: {self.total_seconds:.1f}s simulated"]
        for timing in sorted(self.phases.values(), key=lambda t: t.start):
            lines.append(
                f"  {timing.name:<28s} {timing.kind:<12s} "
                f"{timing.start:8.1f} -> {timing.end:8.1f} "
                f"({timing.elapsed:7.1f}s)"
            )
        return "\n".join(lines)


def compute_critical_path(trace: Trace, timing: TimingResult) -> List[str]:
    """Backward walk from the makespan phase through its gating inputs.

    At each step the walk moves to the dependency (``after``) or
    streaming producer whose *end* time is largest — the input that
    actually held the phase (or its completion) back.  Predecessors that
    finished well before the phase started cannot be the gate and are
    ignored when an alternative exists.
    """
    if len(timing.phases) == 0:
        return []
    current = max(timing.phases.values(), key=lambda t: t.end).name
    path = [current]
    while True:
        phase = trace.phase(current)
        predecessors = tuple(phase.after) + tuple(phase.streams_from)
        candidates = [
            name for name in predecessors if name in timing.phases
        ]
        if not candidates:
            break
        gate = max(candidates, key=lambda name: timing.phases[name].end)
        # If every predecessor finished before this phase began, the
        # phase started on time: its own duration was the constraint.
        if timing.phases[gate].end + 1e-9 < timing.phases[current].start:
            break
        path.append(gate)
        current = gate
    path.reverse()
    return path


def replay_trace(
    trace: Trace,
    chunks: int = DEFAULT_CHUNKS,
    pipelining: bool = True,
) -> TimingResult:
    """Simulate ``trace`` and return the phase schedule.

    With ``pipelining=False`` every ``streams_from`` edge is treated as a
    hard barrier instead, modelling a materialising engine (the
    MapReduce-era behaviour the paper's JEN engine improves on); the
    pipelining ablation benchmark compares the two.
    """
    if chunks <= 0:
        raise SimulationError("chunks must be positive")
    engine = SimEngine()
    started = {phase.name: engine.event(f"{phase.name}-start")
               for phase in trace}
    finished = {phase.name: engine.event(f"{phase.name}-finish")
                for phase in trace}
    chunk_events = {
        phase.name: [engine.event(f"{phase.name}-chunk{i}")
                     for i in range(chunks)]
        for phase in trace
    }
    timings: Dict[str, PhaseTiming] = {}

    def run_phase(phase: Phase):
        barriers = [finished[name] for name in phase.after]
        stream_producers = list(phase.streams_from)
        if pipelining:
            barriers += [started[name] for name in stream_producers]
        else:
            barriers += [finished[name] for name in stream_producers]
        if barriers:
            yield AllOf(barriers)
        start_time = engine.now
        started[phase.name].succeed()

        slice_seconds = phase.seconds / chunks
        for index in range(chunks):
            if pipelining and stream_producers:
                yield AllOf(
                    [chunk_events[name][index] for name in stream_producers]
                )
            if slice_seconds > 0:
                yield Timeout(slice_seconds)
            chunk_events[phase.name][index].succeed()
        finished[phase.name].succeed()
        timings[phase.name] = PhaseTiming(
            name=phase.name,
            kind=phase.kind,
            start=start_time,
            end=engine.now,
        )

    for phase in trace:
        engine.process(run_phase(phase), name=phase.name)
    total = engine.run()
    return TimingResult(label=trace.label, total_seconds=total, phases=timings)
