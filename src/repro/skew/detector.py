"""Streaming heavy-hitter detection over the scan's join-key batches.

The detector wraps the count-min sketch + top-k heap kernel and adds
the one piece of policy the kernels cannot know: *what counts as hot*.
A key is hot when routing all of its rows to one worker would leave
that worker with more than its fair share of the shuffle — the default
threshold is half a worker's fair share, ``1 / (2 * num_workers)`` of
the stream, below which even a perfectly colliding key cannot create a
meaningful straggler.

The no-false-negative guarantee is inherited from the sketch: its
estimates never underestimate and only grow, so a key whose final
frequency clears the threshold survives every prune from its last
observation onward and is present in :meth:`hot_keys`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.kernels.sketch import CountMinSketch, TopKHeap


@dataclass(frozen=True)
class SkewPolicy:
    """Tuning knobs of the skew plane (defaults match the benchmarks)."""

    #: Count-min sketch geometry; 1024 x 4 bounds overestimation to
    #: ~e*N/1024 per key, far below the hot threshold at any tested N.
    sketch_width: int = 1024
    sketch_depth: int = 4
    #: At most this many keys are treated as hot (broadcast has a cost).
    top_k: int = 64
    #: Minimum share of the scanned stream a hot key must carry; None
    #: means half a worker's fair share, ``1 / (2 * num_workers)``.
    hot_fraction: Optional[float] = None
    #: Work stealing triggers when max load > threshold * mean load.
    #: Stealing is the backstop for what the hybrid split missed: below
    #: ~2x residual imbalance, moving key-aligned fragments across the
    #: 1 Gbit HDFS NICs costs more wall clock than the build/probe skew
    #: it removes (the transfer is priced honestly on the trace).
    steal_threshold: float = 2.0
    #: Seed for the sketch hashes (detection is fully deterministic).
    seed: int = 11

    def fraction_for(self, num_workers: int) -> float:
        """The hot-key frequency threshold as a stream fraction."""
        if self.hot_fraction is not None:
            return self.hot_fraction
        return 1.0 / (2.0 * max(2, num_workers))


@dataclass(frozen=True)
class HotKeySet:
    """Detected heavy hitters plus each key's spread fan-out.

    ``fanouts[i]`` is how many consecutive workers — starting at the
    key's agreed-hash home — share ``keys[i]``'s build rows; the
    matching probe rows are duplicated to exactly those workers (not
    broadcast cluster-wide), which bounds the duplication cost to the
    key's actual weight.  Only keys with fan-out >= 2 appear: a fan-out
    of 1 is byte-identical to the plain agreed hash, so such keys stay
    on the cold path.
    """

    keys: np.ndarray
    fanouts: np.ndarray

    def __len__(self) -> int:
        return int(self.keys.size)

    def destination_lists(self, num_workers: int, hash_fn):
        """Per-key destination arrays under the agreed hash."""
        homes = hash_fn(self.keys, num_workers)
        return [
            (int(home) + np.arange(int(fanout), dtype=np.int64))
            % num_workers
            for home, fanout in zip(homes, self.fanouts)
        ]


class HeavyHitterDetector:
    """Accumulates join-key batches; reports the final hot-key set."""

    def __init__(self, num_workers: int, policy: SkewPolicy = None):
        self.policy = policy or SkewPolicy()
        self.num_workers = int(num_workers)
        self.sketch = CountMinSketch(
            width=self.policy.sketch_width,
            depth=self.policy.sketch_depth,
            seed=self.policy.seed,
        )
        self.candidates = TopKHeap(self.policy.top_k)
        self.fraction = self.policy.fraction_for(self.num_workers)

    @property
    def total(self) -> int:
        """Join keys observed so far."""
        return self.sketch.total

    def threshold(self) -> int:
        """Current absolute hot-key count threshold (grows with N)."""
        return max(1, math.ceil(self.fraction * self.sketch.total))

    def observe(self, keys) -> None:
        """One scanned block's join keys (called from the scan hook)."""
        keys = np.asarray(keys, dtype=np.int64)
        if keys.size == 0:
            return
        unique, counts = np.unique(keys, return_counts=True)
        self.sketch.add(unique, counts)
        self.candidates.offer(unique, self.sketch.estimate(unique))
        self.candidates.prune(self.threshold())

    def hot_keys(self) -> np.ndarray:
        """Keys whose estimated frequency clears the final threshold.

        Candidates are re-estimated against the finished sketch before
        the final cut: a key offered early carries a stale (smaller)
        estimate, and the threshold kept growing after it was admitted.
        Sorted ascending so downstream ``np.isin`` calls and the
        invariant checks see one canonical order.
        """
        candidates = self.candidates.keys()
        if candidates.size == 0 or self.sketch.total == 0:
            return np.zeros(0, dtype=np.int64)
        estimates = self.sketch.estimate(candidates)
        return candidates[estimates >= self.threshold()]

    def hot_key_set(self) -> Optional[HotKeySet]:
        """The actionable hot keys with their spread fan-outs.

        A key's fan-out is how many fair shares of the stream its
        estimated frequency occupies, ``ceil(est / (total / workers))``
        capped at the worker count — spreading wider than that buys no
        balance but multiplies the probe-side duplication.  Keys whose
        fan-out rounds to 1 are dropped: hash routing already handles
        them, and keeping them hot would duplicate probe rows for
        nothing.
        """
        keys = self.hot_keys()
        if keys.size == 0:
            return None
        estimates = self.sketch.estimate(keys).astype(np.float64)
        fair = max(1.0, self.sketch.total / float(self.num_workers))
        fanouts = np.minimum(
            self.num_workers,
            np.ceil(estimates / fair).astype(np.int64),
        )
        spread = fanouts >= 2
        if not spread.any():
            return None
        return HotKeySet(keys=keys[spread], fanouts=fanouts[spread])
