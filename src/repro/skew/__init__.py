"""The skew plane: heavy-hitter detection, hybrid shuffle, stealing.

Under power-law key distributions the agreed-hash shuffle sends every
occurrence of a hot key to one JEN worker, and the whole join waits on
it — ``benchmarks/results/ext_skew.txt`` measures the damage.  This
package coordinates the three-stage countermeasure (in the spirit of
Metwally's broadcast-hot/hash-cold hybrid split and Chakraborty's
straggler-aware redistribution):

1. **Detect** — a :class:`HeavyHitterDetector` (count-min sketch +
   top-k heap, :mod:`repro.kernels.sketch`) rides the per-block scan
   hooks of :mod:`repro.adaptive.hooks`, so detection costs no second
   pass over L.
2. **Split** — the shuffle spreads build-side (L) rows of detected hot
   keys round-robin across workers and broadcasts the matching
   probe-side (T′) rows to every worker; the cold tail keeps the
   agreed hash (:meth:`repro.jen.engine.Jen.shuffle_by_key`,
   :func:`repro.core.joins.repartition._route_db_rows`).
3. **Steal** — residual straggler partitions are fragmented and
   re-dealt across workers before the local joins run
   (:func:`repro.jen.scheduler.plan_work_stealing`), priced honestly
   as a ``work_steal`` transfer phase on the trace.

Everything is gated behind :func:`set_skew_handling_enabled`, mirroring
the kernels/backend toggles, so before/after comparisons run genuinely
identical code paths with only the skew handling swapped.
"""

from __future__ import annotations

_ENABLED = False


def skew_handling_enabled() -> bool:
    """Whether the hybrid shuffle + work stealing are active."""
    return _ENABLED


def set_skew_handling_enabled(enabled: bool) -> bool:
    """Toggle skew handling (benchmark/testkit switch).

    Returns the previous setting so callers can restore it.
    """
    global _ENABLED
    previous = _ENABLED
    _ENABLED = bool(enabled)
    return previous


from repro.skew.detector import (  # noqa: E402
    HeavyHitterDetector,
    HotKeySet,
    SkewPolicy,
)

__all__ = [
    "HeavyHitterDetector",
    "HotKeySet",
    "SkewPolicy",
    "set_skew_handling_enabled",
    "skew_handling_enabled",
]
