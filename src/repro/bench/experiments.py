"""One experiment definition per table and figure of the paper.

Each :class:`Experiment` sweeps the paper's parameter grid, runs the
relevant algorithms on the data plane, collects paper-scale rows, and
evaluates *shape checks* — the qualitative claims the paper makes about
that table or figure (who wins, where the crossover falls, what is
monotone).  Shape checks are what EXPERIMENTS.md and the regression
tests assert; absolute seconds are simulator output and are reported,
not asserted.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from repro.bench.harness import WarehouseCache, run_algorithms
from repro.bench.reporting import format_rows
from repro.errors import ReproError


@dataclass
class ShapeCheck:
    """One qualitative claim and whether the run reproduced it."""

    claim: str
    passed: bool


@dataclass
class ExperimentResult:
    """Rows plus evaluated claims for one experiment."""

    experiment_id: str
    title: str
    headers: List[str]
    rows: List[Dict]
    checks: List[ShapeCheck] = field(default_factory=list)
    notes: str = ""

    def all_passed(self) -> bool:
        """True when every shape check held."""
        return all(check.passed for check in self.checks)

    def to_table(self) -> str:
        """The rows as a fixed-width table."""
        return format_rows(self.headers, self.rows, title=self.title)

    def to_report(self) -> str:
        """Table plus the check outcomes."""
        lines = [self.to_table(), ""]
        for check in self.checks:
            status = "PASS" if check.passed else "FAIL"
            lines.append(f"  [{status}] {check.claim}")
        if self.notes:
            lines.append(f"  note: {self.notes}")
        return "\n".join(lines)


@dataclass(frozen=True)
class Experiment:
    """A runnable reproduction of one table/figure."""

    experiment_id: str
    title: str
    paper_ref: str
    runner: Callable[[WarehouseCache], ExperimentResult]

    def run(self, cache: Optional[WarehouseCache] = None) -> ExperimentResult:
        """Execute the sweep (a fresh cache is created if none given)."""
        return self.runner(cache or WarehouseCache())


EXPERIMENTS: Dict[str, Experiment] = {}


def _register(experiment_id: str, title: str, paper_ref: str):
    def decorate(runner):
        EXPERIMENTS[experiment_id] = Experiment(
            experiment_id=experiment_id,
            title=title,
            paper_ref=paper_ref,
            runner=runner,
        )
        return runner
    return decorate


def experiment_by_id(experiment_id: str) -> Experiment:
    """Look up a registered experiment."""
    try:
        return EXPERIMENTS[experiment_id]
    except KeyError:
        raise ReproError(
            f"unknown experiment {experiment_id!r}; "
            f"have {sorted(EXPERIMENTS)}"
        ) from None


def _seconds(results, name: str) -> float:
    return results[name].total_seconds


# ---------------------------------------------------------------------------
# Table 1 — tuples shuffled and DB tuples sent
# ---------------------------------------------------------------------------
@_register("table1", "Table 1: zigzag vs repartition joins — data movement",
           "Table 1 (sigma_T=0.1, sigma_L=0.4, S_L'=0.1, S_T'=0.2)")
def _table1(cache: WarehouseCache) -> ExperimentResult:
    setup = cache.setup(0.1, 0.4, s_t=0.2, s_l=0.1)
    results = run_algorithms(
        setup, ["repartition", "repartition(BF)", "zigzag"]
    )
    rows = []
    for name, result in results.items():
        paper = result.paper_stats()
        rows.append({
            "algorithm": name,
            "hdfs_tuples_shuffled_M": paper.hdfs_tuples_shuffled / 1e6,
            "db_tuples_sent_M": paper.db_tuples_sent / 1e6,
            "seconds": result.total_seconds,
        })
    shuffled = {r["algorithm"]: r["hdfs_tuples_shuffled_M"] for r in rows}
    sent = {r["algorithm"]: r["db_tuples_sent_M"] for r in rows}
    checks = [
        ShapeCheck(
            "BF cuts shuffled HDFS tuples by ~10x (paper: 5854M -> 591M)",
            7.0 <= shuffled["repartition"] / shuffled["repartition(BF)"] <= 13.0,
        ),
        ShapeCheck(
            "zigzag shuffles the same reduced volume as repartition(BF)",
            abs(shuffled["zigzag"] - shuffled["repartition(BF)"])
            <= 0.05 * shuffled["repartition(BF)"] + 1.0,
        ),
        ShapeCheck(
            "zigzag cuts DB tuples sent by ~5x (paper: 165M -> 30M)",
            3.5 <= sent["repartition"] / sent["zigzag"] <= 7.0,
        ),
    ]
    return ExperimentResult(
        experiment_id="table1",
        title="Table 1 — tuples shuffled / DB tuples sent",
        headers=["algorithm", "hdfs_tuples_shuffled_M",
                 "db_tuples_sent_M", "seconds"],
        rows=rows,
        checks=checks,
        notes="paper: 5854/591/591 M shuffled; 165/165/30 M sent",
    )


# ---------------------------------------------------------------------------
# Figure 8 — zigzag vs repartition joins: execution time
# ---------------------------------------------------------------------------
@_register("fig8", "Figure 8: zigzag vs repartition joins",
           "Fig. 8a (sigma_T=0.1, S_L'=0.1), Fig. 8b (sigma_T=0.2, S_L'=0.2)")
def _fig8(cache: WarehouseCache) -> ExperimentResult:
    panels = [
        ("a", 0.1, 0.1),
        ("b", 0.2, 0.2),
    ]
    grid = [(0.1, 0.05), (0.2, 0.1), (0.4, 0.2)]
    algorithms = ["repartition", "repartition(BF)", "zigzag"]
    rows = []
    for panel, sigma_t, s_l in panels:
        for sigma_l, s_t in grid:
            setup = cache.setup(sigma_t, sigma_l, s_t=s_t, s_l=s_l)
            results = run_algorithms(setup, algorithms)
            for name in algorithms:
                rows.append({
                    "panel": panel,
                    "sigma_L": sigma_l,
                    "S_T'": s_t,
                    "algorithm": name,
                    "seconds": _seconds(results, name),
                })
    checks = []
    for panel, _sigma_t, _s_l in panels:
        panel_rows = [r for r in rows if r["panel"] == panel]
        ordered = all(
            _point(panel_rows, sigma_l, "zigzag")
            <= _point(panel_rows, sigma_l, "repartition(BF)") + 1.0
            <= _point(panel_rows, sigma_l, "repartition") + 2.0
            for sigma_l, _s_t in grid
        )
        checks.append(ShapeCheck(
            f"panel {panel}: zigzag <= repartition(BF) <= repartition "
            "at every point", ordered,
        ))
        speedup = (_point(panel_rows, 0.4, "repartition")
                   / _point(panel_rows, 0.4, "zigzag"))
        checks.append(ShapeCheck(
            f"panel {panel}: zigzag about 2x faster than repartition at "
            f"sigma_L=0.4 (paper: up to 2.1x; measured {speedup:.2f}x)",
            speedup >= 1.5,
        ))
    return ExperimentResult(
        experiment_id="fig8",
        title="Figure 8 — zigzag vs repartition joins (seconds)",
        headers=["panel", "sigma_L", "S_T'", "algorithm", "seconds"],
        rows=rows,
        checks=checks,
    )


# ---------------------------------------------------------------------------
# Figure 9 — effect of join-key selectivities on the zigzag join
# ---------------------------------------------------------------------------
@_register("fig9", "Figure 9: join-key selectivity effect on zigzag",
           "Fig. 9 (sigma_T=0.1, sigma_L=0.4)")
def _fig9(cache: WarehouseCache) -> ExperimentResult:
    algorithms = ["repartition", "repartition(BF)", "zigzag"]
    rows = []
    for s_l in (0.8, 0.4, 0.1):
        setup = cache.setup(0.1, 0.4, s_t=0.5, s_l=s_l)
        results = run_algorithms(setup, algorithms)
        for name in algorithms:
            rows.append({
                "panel": "a", "varying": "S_L'", "value": s_l,
                "algorithm": name, "seconds": _seconds(results, name),
            })
    for s_t in (0.5, 0.35, 0.2):
        setup = cache.setup(0.1, 0.4, s_t=s_t, s_l=0.4)
        results = run_algorithms(setup, algorithms)
        for name in algorithms:
            rows.append({
                "panel": "b", "varying": "S_T'", "value": s_t,
                "algorithm": name, "seconds": _seconds(results, name),
            })
    zig_a = [r["seconds"] for r in rows
             if r["panel"] == "a" and r["algorithm"] == "zigzag"]
    zig_b = [r["seconds"] for r in rows
             if r["panel"] == "b" and r["algorithm"] == "zigzag"]
    checks = [
        ShapeCheck(
            "zigzag improves (within 5% noise) as S_L' decreases "
            "(0.8 -> 0.4 -> 0.1)",
            zig_a[0] >= 0.95 * zig_a[1] and zig_a[1] >= 0.95 * zig_a[2],
        ),
        ShapeCheck(
            "zigzag improves as S_T' decreases (0.5 -> 0.35 -> 0.2)",
            zig_b[0] >= 0.95 * zig_b[1] and zig_b[1] >= 0.95 * zig_b[2],
        ),
        ShapeCheck(
            "zigzag never slower than repartition(BF)",
            all(
                _pair(rows, r) >= -2.0
                for r in rows if r["algorithm"] == "zigzag"
            ),
        ),
    ]
    return ExperimentResult(
        experiment_id="fig9",
        title="Figure 9 — S_L'/S_T' sweeps (seconds)",
        headers=["panel", "varying", "value", "algorithm", "seconds"],
        rows=rows,
        checks=checks,
    )


def _pair(rows, zig_row) -> float:
    """repartition(BF) seconds minus zigzag seconds at the same point."""
    twin = [r for r in rows
            if r["panel"] == zig_row["panel"]
            and r["value"] == zig_row["value"]
            and r["algorithm"] == "repartition(BF)"]
    return twin[0]["seconds"] - zig_row["seconds"]


# ---------------------------------------------------------------------------
# Figure 10 — broadcast join vs repartition join
# ---------------------------------------------------------------------------
@_register("fig10", "Figure 10: broadcast vs repartition join",
           "Fig. 10a (sigma_T=0.001), Fig. 10b (sigma_T=0.01)")
def _fig10(cache: WarehouseCache) -> ExperimentResult:
    algorithms = ["broadcast", "repartition"]
    rows = []
    for panel, sigma_t in (("a", 0.001), ("b", 0.01)):
        for sigma_l in (0.001, 0.01, 0.1, 0.2):
            setup = cache.setup(sigma_t, sigma_l, s_l=0.1)
            results = run_algorithms(setup, algorithms)
            for name in algorithms:
                rows.append({
                    "panel": panel, "sigma_T": sigma_t, "sigma_L": sigma_l,
                    "algorithm": name, "seconds": _seconds(results, name),
                })
    a_rows = [r for r in rows if r["panel"] == "a"]
    b_rows = [r for r in rows if r["panel"] == "b"]
    checks = [
        ShapeCheck(
            "sigma_T=0.001: broadcast is preferable (or tied) everywhere",
            all(
                _point(a_rows, sigma_l, "broadcast")
                <= _point(a_rows, sigma_l, "repartition") + 2.0
                for sigma_l in (0.001, 0.01, 0.1, 0.2)
            ),
        ),
        ShapeCheck(
            "sigma_T=0.001: broadcast's advantage is not dramatic at "
            "small sigma_L",
            _point(a_rows, 0.001, "repartition")
            / _point(a_rows, 0.001, "broadcast") < 1.5,
        ),
        ShapeCheck(
            "sigma_T=0.01: repartition clearly wins everywhere",
            all(
                _point(b_rows, sigma_l, "repartition")
                < _point(b_rows, sigma_l, "broadcast")
                for sigma_l in (0.001, 0.01, 0.1, 0.2)
            ),
        ),
    ]
    return ExperimentResult(
        experiment_id="fig10",
        title="Figure 10 — broadcast vs repartition (seconds)",
        headers=["panel", "sigma_T", "sigma_L", "algorithm", "seconds"],
        rows=rows,
        checks=checks,
    )


# ---------------------------------------------------------------------------
# Figure 11 — DB-side join with vs without Bloom filter
# ---------------------------------------------------------------------------
@_register("fig11", "Figure 11: DB-side joins, Bloom filter effect",
           "Fig. 11a (sigma_T=0.05, S_L'=0.05), "
           "Fig. 11b (sigma_T=0.1, S_L'=0.1)")
def _fig11(cache: WarehouseCache) -> ExperimentResult:
    algorithms = ["db", "db(BF)"]
    rows = []
    for panel, sigma_t, s_l in (("a", 0.05, 0.05), ("b", 0.1, 0.1)):
        for sigma_l in (0.001, 0.01, 0.1, 0.2):
            setup = cache.setup(sigma_t, sigma_l, s_l=s_l)
            results = run_algorithms(setup, algorithms)
            for name in algorithms:
                rows.append({
                    "panel": panel, "sigma_T": sigma_t, "sigma_L": sigma_l,
                    "algorithm": name, "seconds": _seconds(results, name),
                })
    checks = []
    for panel in ("a", "b"):
        panel_rows = [r for r in rows if r["panel"] == panel]
        checks.append(ShapeCheck(
            f"panel {panel}: Bloom filter benefit grows with sigma_L "
            "(clear win by 0.1)",
            _point(panel_rows, 0.1, "db")
            > 1.5 * _point(panel_rows, 0.1, "db(BF)")
            and _point(panel_rows, 0.2, "db")
            > 2.0 * _point(panel_rows, 0.2, "db(BF)"),
        ))
        checks.append(ShapeCheck(
            f"panel {panel}: at sigma_L=0.001 the BF overhead cancels "
            "its benefit",
            _point(panel_rows, 0.001, "db(BF)")
            >= _point(panel_rows, 0.001, "db") - 1.0,
        ))
    return ExperimentResult(
        experiment_id="fig11",
        title="Figure 11 — DB-side join +/- Bloom filter (seconds)",
        headers=["panel", "sigma_T", "sigma_L", "algorithm", "seconds"],
        rows=rows,
        checks=checks,
    )


# ---------------------------------------------------------------------------
# Figure 12 — DB-side vs HDFS-side joins, no Bloom filters
# ---------------------------------------------------------------------------
@_register("fig12", "Figure 12: DB-side vs HDFS-side joins (no BF)",
           "Fig. 12a (sigma_T=0.05), Fig. 12b (sigma_T=0.1)")
def _fig12(cache: WarehouseCache) -> ExperimentResult:
    rows = []
    for panel, sigma_t in (("a", 0.05), ("b", 0.1)):
        for sigma_l in (0.001, 0.01, 0.1, 0.2):
            setup = cache.setup(sigma_t, sigma_l, s_l=0.1)
            results = run_algorithms(
                setup, ["db", "broadcast", "repartition"]
            )
            hdfs_best = min(
                results["broadcast"].total_seconds,
                results["repartition"].total_seconds,
            )
            rows.append({
                "panel": panel, "sigma_T": sigma_t, "sigma_L": sigma_l,
                "algorithm": "db", "seconds": results["db"].total_seconds,
            })
            rows.append({
                "panel": panel, "sigma_T": sigma_t, "sigma_L": sigma_l,
                "algorithm": "hdfs-best", "seconds": hdfs_best,
            })
    checks = []
    for panel in ("a", "b"):
        panel_rows = [r for r in rows if r["panel"] == panel]
        checks.append(ShapeCheck(
            f"panel {panel}: DB-side wins only for very selective "
            "sigma_L (<= 0.01)",
            _point(panel_rows, 0.001, "db")
            <= _point(panel_rows, 0.001, "hdfs-best") + 2.0
            and _point(panel_rows, 0.01, "db")
            <= _point(panel_rows, 0.01, "hdfs-best") + 2.0,
        ))
        checks.append(ShapeCheck(
            f"panel {panel}: DB-side deteriorates steeply while "
            "repartition stays robust",
            _point(panel_rows, 0.2, "db")
            > 2.0 * _point(panel_rows, 0.2, "hdfs-best"),
        ))
    return ExperimentResult(
        experiment_id="fig12",
        title="Figure 12 — DB-side vs best HDFS-side, no BF (seconds)",
        headers=["panel", "sigma_T", "sigma_L", "algorithm", "seconds"],
        rows=rows,
        checks=checks,
    )


# ---------------------------------------------------------------------------
# Figure 13 — DB-side vs HDFS-side joins, with Bloom filters
# ---------------------------------------------------------------------------
@_register("fig13", "Figure 13: DB-side vs HDFS-side joins (with BF)",
           "Fig. 13a (sigma_T=0.05), Fig. 13b (sigma_T=0.1)")
def _fig13(cache: WarehouseCache) -> ExperimentResult:
    rows = []
    for panel, sigma_t in (("a", 0.05), ("b", 0.1)):
        for sigma_l in (0.001, 0.01, 0.1, 0.2):
            setup = cache.setup(sigma_t, sigma_l, s_l=0.1)
            results = run_algorithms(setup, ["db(BF)", "zigzag"])
            rows.append({
                "panel": panel, "sigma_T": sigma_t, "sigma_L": sigma_l,
                "algorithm": "db-best",
                "seconds": results["db(BF)"].total_seconds,
            })
            rows.append({
                "panel": panel, "sigma_T": sigma_t, "sigma_L": sigma_l,
                "algorithm": "hdfs-best",
                "seconds": results["zigzag"].total_seconds,
            })
    checks = []
    for panel in ("a", "b"):
        panel_rows = [r for r in rows if r["panel"] == panel]
        zig = [_point(panel_rows, s, "hdfs-best")
               for s in (0.001, 0.01, 0.1, 0.2)]
        checks.append(ShapeCheck(
            f"panel {panel}: zigzag's execution time increases only "
            "slightly with sigma_L",
            zig[-1] <= 1.6 * zig[0],
        ))
        checks.append(ShapeCheck(
            f"panel {panel}: DB-side(BF) still wins at very selective "
            "sigma_L but deteriorates after",
            _point(panel_rows, 0.001, "db-best")
            <= _point(panel_rows, 0.001, "hdfs-best") + 2.0
            and _point(panel_rows, 0.2, "db-best")
            > _point(panel_rows, 0.2, "hdfs-best"),
        ))
    return ExperimentResult(
        experiment_id="fig13",
        title="Figure 13 — DB-side vs HDFS-side, with BF (seconds)",
        headers=["panel", "sigma_T", "sigma_L", "algorithm", "seconds"],
        rows=rows,
        checks=checks,
    )


# ---------------------------------------------------------------------------
# Figure 14 — Parquet vs text format
# ---------------------------------------------------------------------------
@_register("fig14", "Figure 14: Parquet vs text format",
           "Fig. 14a (zigzag, sigma_T=0.1), Fig. 14b (db(BF), sigma_T=0.1)")
def _fig14(cache: WarehouseCache) -> ExperimentResult:
    rows = []
    for panel, algorithm in (("a", "zigzag"), ("b", "db(BF)")):
        for sigma_l in (0.001, 0.01, 0.1, 0.2):
            for format_name in ("text", "parquet"):
                setup = cache.setup(0.1, sigma_l, s_l=0.1,
                                    format_name=format_name)
                results = run_algorithms(setup, [algorithm])
                rows.append({
                    "panel": panel, "algorithm": algorithm,
                    "sigma_L": sigma_l, "format": format_name,
                    "seconds": results[algorithm].total_seconds,
                })
    checks = []
    for panel, algorithm in (("a", "zigzag"), ("b", "db(BF)")):
        panel_rows = [r for r in rows if r["panel"] == panel]
        checks.append(ShapeCheck(
            f"{algorithm}: Parquet is significantly faster than text "
            "at every sigma_L",
            all(
                _fpoint(panel_rows, sigma_l, "text")
                > 1.8 * _fpoint(panel_rows, sigma_l, "parquet")
                for sigma_l in (0.001, 0.01, 0.1, 0.2)
            ),
        ))
    return ExperimentResult(
        experiment_id="fig14",
        title="Figure 14 — Parquet vs text (seconds)",
        headers=["panel", "algorithm", "sigma_L", "format", "seconds"],
        rows=rows,
        checks=checks,
        notes="paper: warm 1 TB text scan ~240 s vs projected Parquet ~38 s",
    )


# ---------------------------------------------------------------------------
# Figure 15 — Bloom filter effect on the text format
# ---------------------------------------------------------------------------
@_register("fig15", "Figure 15: Bloom filter effect with text format",
           "Fig. 15a (repartition family, sigma_T=0.2), "
           "Fig. 15b (db joins, sigma_T=0.1)")
def _fig15(cache: WarehouseCache) -> ExperimentResult:
    rows = []
    grid = [(0.1, 0.05), (0.2, 0.1), (0.4, 0.2)]
    for sigma_l, s_t in grid:
        setup = cache.setup(0.2, sigma_l, s_t=s_t, s_l=0.2,
                            format_name="text")
        results = run_algorithms(
            setup, ["repartition", "repartition(BF)", "zigzag"]
        )
        for name, result in results.items():
            rows.append({
                "panel": "a", "sigma_L": sigma_l,
                "algorithm": name, "seconds": result.total_seconds,
            })
    for sigma_l in (0.001, 0.01, 0.1, 0.2):
        setup = cache.setup(0.1, sigma_l, s_l=0.1, format_name="text")
        results = run_algorithms(setup, ["db", "db(BF)"])
        for name, result in results.items():
            rows.append({
                "panel": "b", "sigma_L": sigma_l,
                "algorithm": name, "seconds": result.total_seconds,
            })
    a_rows = [r for r in rows if r["panel"] == "a"]
    b_rows = [r for r in rows if r["panel"] == "b"]

    def _gain(rows_, base, improved, sigma_l):
        return (_point(rows_, sigma_l, base)
                / _point(rows_, sigma_l, improved))

    # Compare the BF gain on text against Parquet at one shared setting.
    parquet = cache.setup(0.2, 0.4, s_t=0.2, s_l=0.2)
    parquet_results = run_algorithms(
        parquet, ["repartition", "repartition(BF)"]
    )
    parquet_gain = (parquet_results["repartition"].total_seconds
                    / parquet_results["repartition(BF)"].total_seconds)
    text_gain = _gain(a_rows, "repartition", "repartition(BF)", 0.4)
    checks = [
        ShapeCheck(
            "BF improvement is less dramatic on text than on Parquet "
            f"(text {text_gain:.2f}x vs parquet {parquet_gain:.2f}x)",
            text_gain <= parquet_gain + 0.05,
        ),
        ShapeCheck(
            "zigzag remains robustly the best on text",
            all(
                _point(a_rows, sigma_l, "zigzag")
                <= _point(a_rows, sigma_l, "repartition(BF)") + 2.0
                for sigma_l, _s_t in grid
            ),
        ),
        ShapeCheck(
            "on text, db(BF) overhead can cancel its benefit at small "
            "sigma_L",
            _point(b_rows, 0.001, "db(BF)")
            >= _point(b_rows, 0.001, "db") - 1.0,
        ),
    ]
    return ExperimentResult(
        experiment_id="fig15",
        title="Figure 15 — Bloom filters on the text format (seconds)",
        headers=["panel", "sigma_L", "algorithm", "seconds"],
        rows=rows,
        checks=checks,
    )


def _point(rows: Sequence[Dict], sigma_l, algorithm: str) -> float:
    matches = [
        row["seconds"] for row in rows
        if row.get("sigma_L") == sigma_l and row["algorithm"] == algorithm
    ]
    if not matches:
        raise ReproError(
            f"no row for sigma_L={sigma_l}, algorithm={algorithm}"
        )
    return matches[0]


def _fpoint(rows: Sequence[Dict], sigma_l, format_name: str) -> float:
    matches = [
        row["seconds"] for row in rows
        if row.get("sigma_L") == sigma_l and row["format"] == format_name
    ]
    if not matches:
        raise ReproError(
            f"no row for sigma_L={sigma_l}, format={format_name}"
        )
    return matches[0]


# ---------------------------------------------------------------------------
# Ablations: design choices the paper calls out
# ---------------------------------------------------------------------------
@_register("ablation_bf_params",
           "Ablation: Bloom filter size / hash count",
           "Section 5 parameter choice (128 M bits, k=2, ~5% FPR)")
def _ablation_bf_params(cache: WarehouseCache) -> ExperimentResult:
    """Sweep the Bloom-filter configuration around the paper's choice.

    Larger/smaller filters trade transfer bytes against false-positive
    shuffle traffic; the paper notes its 16 MB / k=2 point "gave us good
    performance" and defers the sweep to Bloom's analysis — we run it.
    """
    from dataclasses import replace as dc_replace

    from repro.bench.harness import build_setup, make_spec
    from repro.config import BloomFilterConfig, default_config
    from repro.core.joins import algorithm_by_name

    rows = []
    spec = make_spec(0.1, 0.4, s_t=0.2, s_l=0.1, scale=cache.scale)
    for bits_factor, hashes in [(0.25, 2), (1.0, 1), (1.0, 2), (1.0, 4),
                                (4.0, 2)]:
        bloom = BloomFilterConfig(
            num_bits=int(128 * 1024 * 1024 * bits_factor),
            num_hashes=hashes,
        )
        config = dc_replace(default_config(scale=cache.scale), bloom=bloom)
        setup = build_setup(spec, scale=cache.scale, config=config)
        result = algorithm_by_name("zigzag").run(
            setup.warehouse, setup.query
        )
        stats = result.paper_stats()
        rows.append({
            "filter_mb": bloom.size_bytes() / (1024 * 1024),
            "hashes": hashes,
            "shuffled_M": stats.hdfs_tuples_shuffled / 1e6,
            "db_sent_M": stats.db_tuples_sent / 1e6,
            "seconds": result.total_seconds,
        })
    paper_row = [r for r in rows
                 if r["filter_mb"] == 16.0 and r["hashes"] == 2][0]
    tiny_row = [r for r in rows if r["filter_mb"] == 4.0][0]
    checks = [
        ShapeCheck(
            "a 4x smaller filter lets more false positives through "
            "(more tuples shuffled)",
            tiny_row["shuffled_M"] > paper_row["shuffled_M"],
        ),
        ShapeCheck(
            "the paper's 16 MB / k=2 point is within 10% of the best "
            "sweep time",
            paper_row["seconds"]
            <= 1.10 * min(r["seconds"] for r in rows),
        ),
    ]
    return ExperimentResult(
        experiment_id="ablation_bf_params",
        title="Ablation — Bloom filter size and hash count (zigzag)",
        headers=["filter_mb", "hashes", "shuffled_M", "db_sent_M",
                 "seconds"],
        rows=rows,
        checks=checks,
    )


@_register("ablation_pipelining",
           "Ablation: JEN pipelining on/off",
           "Section 4.4 (interleaving scan, shuffle and build)")
def _ablation_pipelining(cache: WarehouseCache) -> ExperimentResult:
    """Replay each algorithm's trace with streaming edges turned into
    barriers — a materialising engine in the MapReduce style the paper's
    JEN design explicitly moves away from."""
    from repro.core.joins import algorithm_by_name
    from repro.sim.replay import replay_trace

    setup = cache.setup(0.1, 0.4, s_t=0.2, s_l=0.1)
    rows = []
    for name in ("repartition", "repartition(BF)", "zigzag"):
        result = algorithm_by_name(name).run(setup.warehouse, setup.query)
        materialised = replay_trace(result.trace, pipelining=False)
        rows.append({
            "algorithm": name,
            "pipelined_s": result.total_seconds,
            "materialised_s": materialised.total_seconds,
            "speedup": materialised.total_seconds / result.total_seconds,
        })
    checks = [
        ShapeCheck(
            "pipelining speeds up every HDFS-side algorithm",
            all(r["speedup"] > 1.05 for r in rows),
        ),
        ShapeCheck(
            "the plain repartition join benefits most (its big shuffle "
            "is what pipelining hides)",
            max(rows, key=lambda r: r["speedup"])["algorithm"]
            == "repartition",
        ),
    ]
    return ExperimentResult(
        experiment_id="ablation_pipelining",
        title="Ablation — pipelining vs materialising execution",
        headers=["algorithm", "pipelined_s", "materialised_s", "speedup"],
        rows=rows,
        checks=checks,
    )


@_register("ablation_locality",
           "Ablation: locality-aware block assignment on/off",
           "Section 4.2 (locality-aware data ingestion)")
def _ablation_locality(cache: WarehouseCache) -> ExperimentResult:
    from repro.bench.harness import build_setup, make_spec
    from repro.config import default_config
    from repro.core.joins import algorithm_by_name
    from repro.warehouse import HybridWarehouse
    from repro.workload import build_paper_query, generate_workload

    spec = make_spec(0.1, 0.4, s_t=0.2, s_l=0.1, scale=cache.scale)
    workload = generate_workload(spec)
    query = build_paper_query(workload)
    rows = []
    for locality in (True, False):
        warehouse = HybridWarehouse(
            default_config(scale=cache.scale), jen_locality=locality
        )
        warehouse.load_db_table("T", workload.t_table, "uniqKey")
        warehouse.database.create_index(
            "T", "idx_bloom", ["corPred", "indPred", "joinKey"]
        )
        warehouse.load_hdfs_table("L", workload.l_table, "parquet")
        result = algorithm_by_name("zigzag").run(warehouse, query)
        assignment = warehouse.jen.coordinator.plan_scan("L")
        rows.append({
            "locality": "on" if locality else "off",
            "local_fraction": assignment.locality_fraction(),
            "seconds": result.total_seconds,
        })
    on_row, off_row = rows
    checks = [
        ShapeCheck(
            "locality-aware assignment reads almost everything locally",
            on_row["local_fraction"] >= 0.9,
        ),
        ShapeCheck(
            "disabling locality slows the scan-bound join down",
            off_row["seconds"] > on_row["seconds"],
        ),
    ]
    return ExperimentResult(
        experiment_id="ablation_locality",
        title="Ablation — locality-aware block assignment (zigzag)",
        headers=["locality", "local_fraction", "seconds"],
        rows=rows,
        checks=checks,
    )


@_register("ablation_broadcast_scheme",
           "Ablation: broadcast transfer scheme (direct vs relay)",
           "Section 4.3 (data transfer patterns)")
def _ablation_broadcast_scheme(cache: WarehouseCache) -> ExperimentResult:
    from repro.core.joins import BroadcastJoin
    from repro.net.transfer import TransferPattern

    setup = cache.setup(0.001, 0.1, s_l=0.1)
    rows = []
    for pattern in (TransferPattern.BROADCAST_DIRECT,
                    TransferPattern.BROADCAST_RELAY):
        result = BroadcastJoin(pattern=pattern).run(
            setup.warehouse, setup.query
        )
        rows.append({
            "scheme": pattern.value,
            "seconds": result.total_seconds,
        })
    direct, relay = rows
    checks = [
        ShapeCheck(
            "for the tiny T' where broadcast applies, the direct scheme "
            "avoids the relay's extra round (the paper's choice)",
            direct["seconds"] <= relay["seconds"] + 1.0,
        ),
    ]
    return ExperimentResult(
        experiment_id="ablation_broadcast_scheme",
        title="Ablation — broadcast transfer scheme (sigma_T=0.001)",
        headers=["scheme", "seconds"],
        rows=rows,
        checks=checks,
    )


@_register("ablation_exact_filters",
           "Ablation: Bloom filters vs exact semijoin/PERF baselines",
           "Section 6 related work (Bloom join, semijoin, PERF join)")
def _ablation_exact_filters(cache: WarehouseCache) -> ExperimentResult:
    setup = cache.setup(0.1, 0.4, s_t=0.2, s_l=0.1)
    results = run_algorithms(
        setup, ["repartition(BF)", "zigzag", "semijoin", "perf"]
    )
    rows = []
    for name, result in results.items():
        stats = result.paper_stats()
        rows.append({
            "algorithm": name,
            "S_T'": 0.2,
            "filter_bytes_MB": stats.bloom_bytes_moved / (1024 * 1024),
            "shuffled_M": stats.hdfs_tuples_shuffled / 1e6,
            "db_sent_M": stats.db_tuples_sent / 1e6,
            "seconds": result.total_seconds,
        })
    # The same point with a 4x larger JK(T') (smaller S_T'): the exact
    # key list must grow fourfold while the Bloom filter stays 16 MB.
    wide = cache.setup(0.1, 0.4, s_t=0.05, s_l=0.1)
    wide_results = run_algorithms(wide, ["repartition(BF)", "semijoin"])
    for name, result in wide_results.items():
        stats = result.paper_stats()
        rows.append({
            "algorithm": name,
            "S_T'": 0.05,
            "filter_bytes_MB": stats.bloom_bytes_moved / (1024 * 1024),
            "shuffled_M": stats.hdfs_tuples_shuffled / 1e6,
            "db_sent_M": stats.db_tuples_sent / 1e6,
            "seconds": result.total_seconds,
        })
    by_key = {(r["algorithm"], r["S_T'"]): r for r in rows}
    checks = [
        ShapeCheck(
            "exact filters prune at least as well as Bloom filters",
            by_key[("semijoin", 0.2)]["shuffled_M"]
            <= by_key[("repartition(BF)", 0.2)]["shuffled_M"]
            and by_key[("perf", 0.2)]["db_sent_M"]
            <= by_key[("zigzag", 0.2)]["db_sent_M"] + 0.5,
        ),
        ShapeCheck(
            "the exact key list grows ~4x with |JK(T')| while the Bloom "
            "filter stays 16 MB per endpoint",
            by_key[("semijoin", 0.05)]["filter_bytes_MB"]
            > 3.0 * by_key[("semijoin", 0.2)]["filter_bytes_MB"]
            and by_key[("repartition(BF)", 0.05)]["filter_bytes_MB"]
            == by_key[("repartition(BF)", 0.2)]["filter_bytes_MB"],
        ),
        ShapeCheck(
            "zigzag stays within 15% of the exact two-way PERF baseline",
            by_key[("zigzag", 0.2)]["seconds"]
            <= 1.15 * by_key[("perf", 0.2)]["seconds"] + 2.0,
        ),
    ]
    return ExperimentResult(
        experiment_id="ablation_exact_filters",
        title="Ablation — Bloom vs exact filters (Table-1 point)",
        headers=["algorithm", "S_T'", "filter_bytes_MB", "shuffled_M",
                 "db_sent_M", "seconds"],
        rows=rows,
        checks=checks,
        notes="at S_T'=0.2 JK(T') is only 3.2M keys, so the exact list "
              "(12.8 MB) undercuts the 16 MB filter; Bloom wins as key "
              "cardinality grows",
    )


@_register("ablation_spill",
           "Ablation: memory budget and Grace-hash spilling",
           "Section 4.4 future work (spill to disk)")
def _ablation_spill(cache: WarehouseCache) -> ExperimentResult:
    """Sweep the per-worker memory budget for JEN's local hash join.

    The paper's JEN requires all build data to fit in memory; this
    reproduces its stated future work and measures the price of not
    having enough memory — each halving of the budget adds a round of
    spill I/O while results stay exact.
    """
    from dataclasses import replace as dc_replace

    from repro.bench.harness import build_setup, make_spec
    from repro.config import default_config
    from repro.core.joins import algorithm_by_name

    spec = make_spec(0.1, 0.4, s_t=0.2, s_l=0.1, scale=cache.scale)
    rows = []
    reference_rows = None
    for budget in (0.0, 80e6, 20e6, 5e6):
        config = dc_replace(
            default_config(scale=cache.scale),
            jen_memory_budget_rows=budget,
        )
        setup = build_setup(spec, scale=cache.scale, config=config)
        result = algorithm_by_name("zigzag").run(
            setup.warehouse, setup.query
        )
        if reference_rows is None:
            reference_rows = result.result.to_rows()
        rows.append({
            "budget_rows_per_worker": (
                "unlimited" if budget == 0 else f"{budget / 1e6:.0f}M"
            ),
            "spilled_tuples_M": (
                result.paper_stats().spilled_tuples / 1e6
            ),
            "seconds": result.total_seconds,
            "exact": result.result.to_rows() == reference_rows,
        })
    checks = [
        ShapeCheck(
            "spilling never changes the result",
            all(r["exact"] for r in rows),
        ),
        ShapeCheck(
            "tighter budgets spill; the extra I/O is largely hidden by "
            "the wait for the database export (never a speedup)",
            rows[0]["seconds"] <= rows[-1]["seconds"] + 0.1
            and rows[0]["spilled_tuples_M"] == 0
            and rows[-1]["spilled_tuples_M"] > 0,
        ),
    ]
    return ExperimentResult(
        experiment_id="ablation_spill",
        title="Ablation — JEN memory budget and spilling (zigzag)",
        headers=["budget_rows_per_worker", "spilled_tuples_M", "seconds",
                 "exact"],
        rows=rows,
        checks=checks,
    )


@_register("ablation_process_thread",
           "Ablation: is the single process thread ever the bottleneck?",
           "Section 4.4 (Fig. 7 worker pipeline)")
def _ablation_process_thread(cache: WarehouseCache) -> ExperimentResult:
    """Reconstruct one worker's Fig. 7 pipeline and check the paper's
    claim that the lone process thread "is never the bottleneck"."""
    from repro.config import default_config
    from repro.hdfs.formats import format_by_name
    from repro.jen.pipeline import PipelineInputs, simulate_worker_pipeline
    from repro.workload.scenario import log_schema

    config = default_config()
    schema = log_schema()
    nodes = config.cluster.hdfs_nodes
    rows_per_worker = config.paper.l_rows / nodes
    projection = ["joinKey", "predAfterJoin", "groupByExtractCol"]
    rows = []
    for format_name in ("parquet", "text"):
        fmt = format_by_name(format_name)
        stored = fmt.scan_bytes_per_row(schema, projection) \
            * rows_per_worker
        # ``survival`` is the fraction of scanned rows that reach the
        # send buffers (predicates plus Bloom filter).
        for survival in (0.105, 0.4, 0.04):
            out_rows = rows_per_worker * survival
            report = simulate_worker_pipeline(
                PipelineInputs(
                    rows_scanned=rows_per_worker,
                    stored_bytes=stored,
                    rows_out=out_rows,
                    wire_row_bytes=32.0,
                    rows_in=out_rows,
                    format_name=format_name,
                ),
                config,
            )
            rows.append({
                "format": format_name,
                "survival": survival,
                "bottleneck": report.bottleneck(),
                "process_busy_s": report.stage_seconds["process"],
                "makespan_s": report.makespan,
            })
    checks = [
        ShapeCheck(
            "the single process thread is never the bottleneck "
            "(paper Section 4.4)",
            all(r["bottleneck"] != "process" for r in rows),
        ),
        ShapeCheck(
            "on text the read threads dominate; with heavy shuffles the "
            "network does",
            any(r["bottleneck"] == "read" for r in rows)
            and any(r["bottleneck"] in ("send", "receive") for r in rows),
        ),
    ]
    return ExperimentResult(
        experiment_id="ablation_process_thread",
        title="Ablation — worker pipeline bottleneck (Fig. 7 micro-model)",
        headers=["format", "survival", "bottleneck", "process_busy_s",
                 "makespan_s"],
        rows=rows,
        checks=checks,
    )


@_register("ext_cluster_scaling",
           "Extension: HDFS-side advantage vs cluster size",
           "Section 1 motivation (growing Hadoop capacity)")
def _ext_cluster_scaling(cache: WarehouseCache) -> ExperimentResult:
    """Grow the HDFS cluster while the EDW stays fixed.

    The paper's motivation: enterprises keep adding Hadoop capacity
    while the EDW is fully utilised.  The HDFS-side join should speed up
    with the cluster; the DB-side join cannot (its bottleneck is the
    warehouse itself).
    """
    from dataclasses import replace as dc_replace

    from repro.bench.harness import build_setup, make_spec
    from repro.config import ClusterConfig, default_config
    from repro.core.joins import algorithm_by_name

    spec = make_spec(0.1, 0.2, s_l=0.1, scale=cache.scale)
    rows = []
    for nodes in (15, 30, 60):
        config = dc_replace(
            default_config(scale=cache.scale),
            cluster=ClusterConfig(hdfs_nodes=nodes),
        )
        setup = build_setup(spec, scale=cache.scale, config=config)
        zigzag = algorithm_by_name("zigzag").run(
            setup.warehouse, setup.query
        )
        db = algorithm_by_name("db(BF)").run(setup.warehouse, setup.query)
        rows.append({
            "hdfs_nodes": nodes,
            "zigzag_s": zigzag.total_seconds,
            "db_bf_s": db.total_seconds,
            "hdfs_advantage": db.total_seconds / zigzag.total_seconds,
        })
    checks = [
        ShapeCheck(
            "the HDFS-side join speeds up as the Hadoop cluster grows",
            rows[0]["zigzag_s"] > rows[1]["zigzag_s"] > rows[2]["zigzag_s"],
        ),
        ShapeCheck(
            "the DB-side join barely benefits (the EDW is the bottleneck)",
            rows[2]["db_bf_s"] > 0.8 * rows[0]["db_bf_s"],
        ),
        ShapeCheck(
            "so the HDFS-side advantage grows with cluster size",
            rows[2]["hdfs_advantage"] > rows[0]["hdfs_advantage"],
        ),
    ]
    return ExperimentResult(
        experiment_id="ext_cluster_scaling",
        title="Extension — cluster scaling (sigma_T=0.1, sigma_L=0.2)",
        headers=["hdfs_nodes", "zigzag_s", "db_bf_s", "hdfs_advantage"],
        rows=rows,
        checks=checks,
    )


@_register("ablation_zigzag_site",
           "Ablation: where should the zigzag join's final join run?",
           "Section 3.4 closing argument (DB-side variant rejected)")
def _ablation_zigzag_site(cache: WarehouseCache) -> ExperimentResult:
    """Verify the paper's claim that a DB-side zigzag variant loses
    because the HDFS table must be scanned twice without indexes."""
    rows = []
    for format_name in ("parquet", "text"):
        setup = cache.setup(0.1, 0.4, s_t=0.2, s_l=0.1,
                            format_name=format_name)
        results = run_algorithms(setup, ["zigzag", "zigzag-db"])
        agree = (results["zigzag"].result.to_rows()
                 == results["zigzag-db"].result.to_rows())
        for name, result in results.items():
            paper = result.paper_stats()
            rows.append({
                "format": format_name,
                "algorithm": name,
                "hdfs_rows_scanned_B": paper.hdfs_rows_scanned / 1e9,
                "seconds": result.total_seconds,
                "same_result": agree,
            })
    by_key = {(r["format"], r["algorithm"]): r for r in rows}
    checks = [
        ShapeCheck(
            "the variants return identical results",
            all(r["same_result"] for r in rows),
        ),
        ShapeCheck(
            "the DB-side variant scans L twice",
            all(
                by_key[(fmt, "zigzag-db")]["hdfs_rows_scanned_B"]
                >= 1.9 * by_key[(fmt, "zigzag")]["hdfs_rows_scanned_B"]
                for fmt in ("parquet", "text")
            ),
        ),
        ShapeCheck(
            "and therefore loses on both formats — badly on text, where "
            "a scan costs ~240 s (paper Section 3.4)",
            all(
                by_key[(fmt, "zigzag-db")]["seconds"]
                > by_key[(fmt, "zigzag")]["seconds"]
                for fmt in ("parquet", "text")
            )
            and by_key[("text", "zigzag-db")]["seconds"]
            > by_key[("text", "zigzag")]["seconds"] + 100.0,
        ),
    ]
    return ExperimentResult(
        experiment_id="ablation_zigzag_site",
        title="Ablation — HDFS-side vs DB-side zigzag (Table-1 point)",
        headers=["format", "algorithm", "hdfs_rows_scanned_B", "seconds",
                 "same_result"],
        rows=rows,
        checks=checks,
    )


@_register("ext_skew",
           "Extension: Zipf-skewed join keys",
           "beyond the paper (Section 5 assumes uniform values)")
def _ext_skew(cache: WarehouseCache) -> ExperimentResult:
    """Replace the paper's uniform join keys with a Zipf distribution.

    The data plane executes the skewed workload for real (movement
    counts, correctness); the time plane applies the analytic
    hottest-worker factor at paper-scale key counts
    (:func:`repro.workload.generator.zipf_skew_factor`), since shuffles
    and hash builds finish only when the worker owning the hot keys
    does.
    """
    from dataclasses import replace as dc_replace

    from repro.bench.harness import build_setup, make_spec
    from repro.config import default_config
    from repro.core.joins import algorithm_by_name
    from repro.workload.generator import zipf_skew_factor

    # Hot keys join hot keys, so the join output grows quadratically
    # with skew; a smaller data plane keeps the sweep fast.
    scale = 1.0 / 100_000.0
    base_config = default_config(scale=scale)
    paper_keys = base_config.paper.unique_join_keys
    workers = base_config.cluster.jen_workers()
    rows = []
    reference_rows = {}
    for key_skew in (0.0, 0.5, 0.9):
        spec = make_spec(0.1, 0.4, s_t=0.2, s_l=0.1, scale=scale)
        spec = dc_replace(spec, key_skew=key_skew)
        factor = zipf_skew_factor(key_skew, paper_keys, workers)
        config = dc_replace(base_config, shuffle_skew=factor)
        setup = build_setup(spec, scale=scale, config=config)
        for name in ("repartition(BF)", "zigzag"):
            result = algorithm_by_name(name).run(
                setup.warehouse, setup.query
            )
            rows.append({
                "key_skew": key_skew,
                "skew_factor": factor,
                "algorithm": name,
                "shuffled_M": (
                    result.paper_stats().hdfs_tuples_shuffled / 1e6
                ),
                "seconds": result.total_seconds,
            })
            reference_rows.setdefault(key_skew, result.result.num_rows)
    zig = [r["seconds"] for r in rows if r["algorithm"] == "zigzag"]
    rep = [r["seconds"] for r in rows
           if r["algorithm"] == "repartition(BF)"]
    checks = [
        ShapeCheck(
            "skew slows both repartition-based joins (hot workers gate "
            "the shuffle and build)",
            zig[-1] > zig[0] and rep[-1] > rep[0],
        ),
        ShapeCheck(
            "zigzag stays the better algorithm under skew",
            all(z <= r + 1.0 for z, r in zip(zig, rep)),
        ),
        ShapeCheck(
            "under skew the same key-level S_L' admits far more tuples: "
            "hot keys concentrate in the joinable region, so the Bloom "
            "filter's tuple-level pruning weakens even though its "
            "key-level selectivity is unchanged",
            max(r["shuffled_M"] for r in rows)
            > 2.0 * min(r["shuffled_M"] for r in rows),
        ),
    ]
    return ExperimentResult(
        experiment_id="ext_skew",
        title="Extension — Zipf key skew (Table-1 point)",
        headers=["key_skew", "skew_factor", "algorithm", "shuffled_M",
                 "seconds"],
        rows=rows,
        checks=checks,
    )


@_register("ext_formats",
           "Extension: three-way storage-format comparison",
           "Section 5.4 extended with ORC (paper refs [29]/[31])")
def _ext_formats(cache: WarehouseCache) -> ExperimentResult:
    """Fig. 14 extended to a third format: ORC compresses a little
    harder than Parquet but decodes a little slower, so the two
    columnar formats bracket each other while text stays far behind."""
    from repro.hdfs.formats import format_by_name
    from repro.workload.scenario import log_schema

    rows = []
    stored = {
        name: format_by_name(name).table_stored_bytes(
            log_schema(), 15_000_000_000
        ) / 1e12
        for name in ("text", "parquet", "orc")
    }
    for format_name in ("text", "parquet", "orc"):
        setup = cache.setup(0.1, 0.2, s_t=0.1, s_l=0.1,
                            format_name=format_name)
        results = run_algorithms(setup, ["zigzag"])
        rows.append({
            "format": format_name,
            "stored_TB": stored[format_name],
            "seconds": results["zigzag"].total_seconds,
        })
    by_format = {r["format"]: r for r in rows}
    checks = [
        ShapeCheck(
            "both columnar formats beat text by >2x",
            by_format["text"]["seconds"]
            > 2.0 * max(by_format["parquet"]["seconds"],
                        by_format["orc"]["seconds"]),
        ),
        ShapeCheck(
            "ORC stores less but scans slightly slower than Parquet "
            "(they bracket each other within 25%)",
            by_format["orc"]["stored_TB"]
            < by_format["parquet"]["stored_TB"]
            and by_format["orc"]["seconds"]
            < 1.25 * by_format["parquet"]["seconds"]
            and by_format["parquet"]["seconds"]
            < 1.25 * by_format["orc"]["seconds"],
        ),
    ]
    return ExperimentResult(
        experiment_id="ext_formats",
        title="Extension — text vs Parquet vs ORC (zigzag, sigma_L=0.2)",
        headers=["format", "stored_TB", "seconds"],
        rows=rows,
        checks=checks,
    )
