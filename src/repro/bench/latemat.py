"""Late-materialization benchmark: bytes shipped and e2e time, on/off.

Two deterministic cells on a bandwidth-constrained hybrid link (the
25 MB/s cross-cluster switch that motivates frugal data movement in
the first place):

* **wide-selective** — both tables clustered by the join key, wide
  payload columns that the group-by and aggregates genuinely need, and
  a selective join (most shipped rows do not survive).  Thin
  ``(join_key, rowid)`` rows move first and only survivors fetch their
  payload back in whole pages, so late materialization must cut the
  cross-cluster bytes of the canonical ``db`` join by at least
  :data:`CROSS_BYTES_FLOOR` *and* win end-to-end simulated time.
* **low-selectivity counter** — the same query shape with ~90% of the
  rows surviving the join on unclustered tables.  Deferring payloads
  just adds a second, page-amplified round trip; the run is measured
  (forced on, so the loss is on the record) and the advisor must
  *decline* late materialization for this shape.

Both modes of every measured run are verified against the single-node
oracle before anything is recorded.  All times are simulated and
deterministic, so ``--check`` gates on ratios against the checked-in
baseline plus the hard floors above::

    PYTHONPATH=src python benchmarks/bench_latemat.py \
        --out benchmarks/results/BENCH_latemat.json

    # CI smoke: the gated db cell + advisor decisions only
    PYTHONPATH=src python benchmarks/bench_latemat.py --quick \
        --check benchmarks/results/BENCH_latemat.json
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import pathlib
import sys
from typing import Dict, List, Optional

import numpy as np

#: Hard acceptance floor: the gated algorithm must ship at least this
#: factor fewer cross-cluster bytes with late materialization on.
CROSS_BYTES_FLOOR = 1.5

#: The algorithm the hard gates read; the others are informational.
GATED_ALGORITHM = "db"

#: Algorithms measured in full mode.  ``db``/``db(BF)``/``zigzag-db``
#: stitch with one global key prune; ``broadcast`` exercises the
#: per-slot stitch of the HDFS-side engine.
ALGORITHMS = ("db", "db(BF)", "zigzag-db", "broadcast")

#: JEN workers (= DB workers) for the bench warehouses.
WORKERS = 8

#: Cross-cluster switch bandwidth (bytes/s) — a constrained link, so
#: transfer volume actually shows up in the end-to-end time.
SWITCH_BYTES_PER_S = 25.0 * 1024 * 1024


def _bench_query(workload):
    """The wide-payload query: every shipped column is provably needed.

    The group-by needs ``t_dummy1`` (a 30-byte dictionary string) and
    the derived ``l_urlPrefix``; the aggregates need ``t_uniqKey``
    (int64), ``t_dummy3`` and both date columns — so classic mode must
    ship every one of them for every row, while late materialization
    ships 12-byte thin rows and fetches payloads only for survivors.
    """
    from repro.relational.aggregates import AggregateSpec
    from repro.workload import build_paper_query

    query = build_paper_query(workload)
    return dataclasses.replace(
        query,
        db_projection=("joinKey", "predAfterJoin", "uniqKey", "dummy1",
                       "dummy3"),
        group_by=("l_urlPrefix", "t_dummy1"),
        aggregates=(
            AggregateSpec("count"),
            AggregateSpec("max", "t_uniqKey"),
            AggregateSpec("sum", "t_dummy3"),
            AggregateSpec("min", "t_predAfterJoin"),
        ),
    )


def _sorted_by_key(table, key: str):
    """The table clustered on the join key (stable, order-preserving)."""
    return table.take(np.argsort(table.column(key), kind="stable"))


def _make_case(name: str, sigma_t: float, sigma_l: float, s_t: float,
               s_l: float, clustered: bool):
    from repro.testkit.generator import DataCase
    from repro.workload import WorkloadSpec, generate_workload

    workload = generate_workload(WorkloadSpec(
        sigma_t=sigma_t, sigma_l=sigma_l, s_t=s_t, s_l=s_l,
        t_rows=4_000, l_rows=12_000, n_keys=400, n_urls=40, seed=77,
    ))
    t_table, l_table = workload.t_table, workload.l_table
    if clustered:
        t_table = _sorted_by_key(t_table, "joinKey")
        l_table = _sorted_by_key(l_table, "joinKey")
    return DataCase(
        name=name,
        t_table=t_table,
        l_table=l_table,
        query=_bench_query(workload),
        provenance=f"bench.latemat/{name}",
    )


def wide_selective_case():
    """Clustered tables, wide payloads, selective join: latemat wins."""
    return _make_case("wide-selective", sigma_t=0.3, sigma_l=0.1,
                      s_t=0.3, s_l=0.2, clustered=True)


def low_selectivity_case():
    """Unclustered tables where ~90% of rows survive: latemat loses."""
    return _make_case("low-selectivity", sigma_t=0.3, sigma_l=0.1,
                      s_t=0.9, s_l=0.9, clustered=False)


def _bench_warehouse(case):
    from repro.net.topology import default_topology
    from repro.testkit.generator import build_cell_warehouse

    warehouse = build_cell_warehouse(case, WORKERS, "parquet")
    cluster = dataclasses.replace(
        warehouse.config.cluster, switch_bytes_per_s=SWITCH_BYTES_PER_S,
    )
    warehouse.config = dataclasses.replace(
        warehouse.config, cluster=cluster)
    warehouse.topology = default_topology(cluster)
    return warehouse


def _run_cell(case, warehouse, reference, algorithm: str) -> Dict:
    from repro import algorithm_by_name
    from repro.latemat import set_late_materialization_enabled
    from repro.testkit import oracle

    cell: Dict[str, object] = {}
    for label, enabled in (("off", False), ("on", True)):
        previous = set_late_materialization_enabled(enabled)
        try:
            run = algorithm_by_name(algorithm).run(warehouse, case.query)
        finally:
            set_late_materialization_enabled(previous)
        diff = oracle.compare_tables(
            run.result, reference,
            label=f"{algorithm}/{case.name}/latemat-{label}",
        )
        if diff is not None:
            raise AssertionError(diff)
        shipped = run.trace.metadata["bytes_shipped"]
        cell[label] = {
            "cross_cluster_bytes": round(shipped["cross_cluster"]),
            "total_bytes": round(shipped["total"]),
            "stitch_bytes": round(shipped.get("stitch", 0.0)),
            "e2e_seconds": round(run.timing.total_seconds, 3),
            "encoded_wire_bytes": round(run.stats.encoded_wire_bytes),
            "oracle_identical": True,
        }
    off, on = cell["off"], cell["on"]
    cell["cross_bytes_ratio"] = round(
        off["cross_cluster_bytes"] / max(on["cross_cluster_bytes"], 1), 3)
    cell["total_bytes_ratio"] = round(
        off["total_bytes"] / max(on["total_bytes"], 1), 3)
    cell["e2e_speedup"] = round(
        off["e2e_seconds"] / max(on["e2e_seconds"], 1e-9), 3)
    return cell


def _advisor_decisions() -> Dict[str, Dict]:
    """The advisor's verdicts on both workload shapes (toggle armed).

    The advisor prices at paper scale with the same constrained
    cross-cluster switch the bench cells run on — on the default (fast)
    switch the per-tuple export rate dominates and deferring payloads
    never pays, which is itself the correct answer there.
    """
    from repro.config import HybridConfig
    from repro.core.advisor import JoinAdvisor, WorkloadEstimate
    from repro.latemat import set_late_materialization_enabled

    config = HybridConfig()
    cluster = dataclasses.replace(
        config.cluster, switch_bytes_per_s=SWITCH_BYTES_PER_S)
    advisor = JoinAdvisor(dataclasses.replace(config, cluster=cluster))
    estimates = {
        "wide_selective": WorkloadEstimate(
            t_rows=200e6, l_rows=600e6,
            sigma_t=0.3, sigma_l=0.1, s_t=0.3, s_l=0.2,
            t_wire_bytes=50.0, l_wire_bytes=32.0,
            t_key_clustered=True, l_key_clustered=True,
        ),
        "low_selectivity": WorkloadEstimate(
            t_rows=200e6, l_rows=600e6,
            sigma_t=0.3, sigma_l=0.1, s_t=0.9, s_l=0.9,
            t_wire_bytes=50.0, l_wire_bytes=32.0,
        ),
    }
    previous = set_late_materialization_enabled(True)
    try:
        decisions = {
            name: advisor.late_materialization_decision(est)
            for name, est in estimates.items()
        }
    finally:
        set_late_materialization_enabled(previous)
    return {
        name: {
            "use": decision.use,
            "classic_seconds": round(decision.classic_seconds, 1),
            "latemat_seconds": round(decision.latemat_seconds, 1),
            "rationale": decision.rationale,
        }
        for name, decision in decisions.items()
    }


def run_latemat_bench(quick: bool = False) -> Dict:
    algorithms = (GATED_ALGORITHM,) if quick else ALGORITHMS
    cells: Dict[str, Dict] = {}

    case = wide_selective_case()
    reference = case.oracle_rows()
    warehouse = _bench_warehouse(case)
    cells["wide-selective"] = {
        algorithm: _run_cell(case, warehouse, reference, algorithm)
        for algorithm in algorithms
    }
    if not quick:
        counter = low_selectivity_case()
        counter_reference = counter.oracle_rows()
        counter_warehouse = _bench_warehouse(counter)
        cells["low-selectivity"] = {
            algorithm: _run_cell(
                counter, counter_warehouse, counter_reference, algorithm,
            )
            for algorithm in (GATED_ALGORITHM, "repartition")
        }
    return {
        "benchmark": "latemat",
        "mode": "quick" if quick else "full",
        "workers": WORKERS,
        "switch_bytes_per_s": SWITCH_BYTES_PER_S,
        "cross_bytes_floor": CROSS_BYTES_FLOOR,
        "gated_algorithm": GATED_ALGORITHM,
        "cells": cells,
        "advisor": _advisor_decisions(),
    }


def render(payload: Dict) -> str:
    lines = [
        f"late-materialization benchmark ({payload['mode']} mode, "
        f"{payload['workers']} workers, "
        f"{payload['switch_bytes_per_s'] / (1024 * 1024):g} MB/s "
        "cross-cluster switch)",
        "",
    ]
    header = (f"{'cell':<34} {'cross off':>10} {'cross on':>10} "
              f"{'ratio':>6} {'e2e off':>8} {'e2e on':>8} {'speedup':>8}")
    lines += [header, "-" * len(header)]
    for case_name, algorithms in payload["cells"].items():
        for algorithm, cell in algorithms.items():
            off, on = cell["off"], cell["on"]
            lines.append(
                f"{case_name + ' / ' + algorithm:<34} "
                f"{off['cross_cluster_bytes']:>10d} "
                f"{on['cross_cluster_bytes']:>10d} "
                f"{cell['cross_bytes_ratio']:>5.2f}x "
                f"{off['e2e_seconds']:>7.1f}s "
                f"{on['e2e_seconds']:>7.1f}s "
                f"{cell['e2e_speedup']:>7.2f}x"
            )
    lines.append("")
    for name, decision in payload["advisor"].items():
        verdict = "USE" if decision["use"] else "DECLINE"
        lines.append(
            f"advisor[{name}]: {verdict} "
            f"(classic {decision['classic_seconds']:g}s vs latemat "
            f"{decision['latemat_seconds']:g}s) — {decision['rationale']}"
        )
    return "\n".join(lines)


def check_regression(current: Dict, baseline: Dict,
                     allowed_factor: float = 2.0) -> List[str]:
    """Hard floors plus ratio gates vs the checked-in baseline.

    The acceptance bar does not soften with the baseline: the gated
    algorithm on the wide-selective cell must cut cross-cluster bytes
    by :data:`CROSS_BYTES_FLOOR` *and* win end-to-end time, and the
    advisor must accept the selective shape while declining the
    low-selectivity one.  On top of that, ratios may not fall below
    ``baseline / allowed_factor`` — a deliberate re-pricing elsewhere
    will not trip the gate, a real latemat regression will.
    """
    failures: List[str] = []
    gated = current.get("gated_algorithm", GATED_ALGORITHM)
    for case_name, algorithms in current.get("cells", {}).items():
        for algorithm, cell in algorithms.items():
            for mode in ("off", "on"):
                if not cell[mode]["oracle_identical"]:
                    failures.append(
                        f"{case_name}/{algorithm}/{mode}: diverged "
                        "from the oracle")
            if case_name != "wide-selective" or algorithm != gated:
                continue
            ratio = float(cell["cross_bytes_ratio"])
            if ratio < CROSS_BYTES_FLOOR:
                failures.append(
                    f"{case_name}/{algorithm}: cross-cluster bytes "
                    f"ratio {ratio:.2f}x below the hard "
                    f"{CROSS_BYTES_FLOOR:g}x floor")
            speedup = float(cell["e2e_speedup"])
            if speedup < 1.0:
                failures.append(
                    f"{case_name}/{algorithm}: late materialization "
                    f"lost end-to-end time ({speedup:.2f}x)")
            if cell["on"]["stitch_bytes"] <= 0:
                failures.append(
                    f"{case_name}/{algorithm}: no stitch phase was "
                    "priced — late materialization never engaged")
            base_cell = baseline.get("cells", {}) \
                .get(case_name, {}).get(algorithm)
            if base_cell is None:
                continue
            for metric in ("cross_bytes_ratio", "e2e_speedup"):
                floor = float(base_cell[metric]) / allowed_factor
                if float(cell[metric]) < floor:
                    failures.append(
                        f"{case_name}/{algorithm}: {metric} "
                        f"{float(cell[metric]):.2f} fell below "
                        f"{floor:.2f} (baseline "
                        f"{float(base_cell[metric]):.2f} / "
                        f"{allowed_factor:g})")
    advisor = current.get("advisor", {})
    if not advisor.get("wide_selective", {}).get("use", False):
        failures.append(
            "advisor declined late materialization on the "
            "wide-selective workload")
    if advisor.get("low_selectivity", {}).get("use", True):
        failures.append(
            "advisor accepted late materialization on the "
            "low-selectivity counter-workload")
    return failures


def add_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--out", help="write the JSON payload to this path")
    parser.add_argument("--quick", action="store_true",
                        help="gated db cell + advisor checks only, for "
                             "CI smoke runs")
    parser.add_argument(
        "--check", metavar="BASELINE",
        help="gate bytes/time ratios against a baseline JSON; "
             "exit 1 on violation",
    )
    parser.add_argument("--allowed-factor", type=float, default=2.0,
                        help="regression tolerance for --check")


def run_from_args(args) -> int:
    payload = run_latemat_bench(quick=args.quick)
    print(render(payload))
    if args.out:
        out = pathlib.Path(args.out)
        out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(json.dumps(payload, indent=2) + "\n")
        print(f"\nwrote {out}")
    if args.check:
        baseline = json.loads(pathlib.Path(args.check).read_text())
        failures = check_regression(
            payload, baseline, allowed_factor=args.allowed_factor)
        if failures:
            print("\nlate-materialization regressions:", file=sys.stderr)
            for line in failures:
                print(f"  {line}", file=sys.stderr)
            return 1
        print(f"\nall latemat gates hold vs {args.check} "
              f"(tolerance {args.allowed_factor:g}x)")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench.latemat",
        description="Late materialization vs full-row shipping on a "
                    "constrained hybrid link",
    )
    add_arguments(parser)
    return run_from_args(parser.parse_args(argv))


if __name__ == "__main__":
    sys.exit(main())
