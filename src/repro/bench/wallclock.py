"""Wall-clock benchmarks of the vectorised kernel layer.

Everything else under :mod:`repro.bench` measures *simulated* seconds —
the time plane's estimate of the paper's 30-node clusters.  This module
measures the one thing the time plane cannot: how fast the data plane
itself runs on the host machine, with and without the kernels of
:mod:`repro.kernels`.

Three tiers:

* **micro** — each kernel against its naive reference implementation on
  identical inputs (single-pass partitioning vs. one boolean filter per
  destination, the word-level Bloom scatter vs. ``bitwise_or.at``, the
  fancy-indexed membership test vs. a per-hash loop, word-level popcount
  vs. ``unpackbits``, one reusable :class:`~repro.kernels.JoinBuildIndex`
  vs. re-sorting the build side per probe fragment);
* **end-to-end** — the join algorithms on the Table-1 demo workload at
  30 simulated workers, with the kernel layer globally disabled
  (``set_kernels_enabled(False)`` routes every call site through the
  naive references) and then enabled, on the same warehouse.  The two
  runs are verified row-identical before being timed;
* **backend** — the same workload on the sequential backend vs. the
  real multiprocessing pool of :mod:`repro.parallel` at several pool
  sizes, oracle-verified before timing.  Speedups here depend on host
  core count (recorded as ``cpu_count`` in the payload).

Results are emitted as JSON (``BENCH_wallclock.json``); ``--check``
compares *speedup ratios* against a checked-in baseline, so the gate is
machine-independent: it fails only when a kernel's advantage over its
own naive reference collapses by more than the allowed factor, not when
CI hardware is slower than the machine that produced the baseline.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
import time
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.kernels import set_kernels_enabled
from repro.kernels.bloomops import popcount, scatter_or, test_bits
from repro.kernels.joinindex import JoinBuildIndex
from repro.kernels.partition import partition_table
from repro.kernels.reference import (
    naive_partition_table,
    naive_popcount,
    naive_scatter_or,
    naive_sorted_join,
    naive_test_bits,
)

#: End-to-end coverage: the paper's five algorithm families, with the
#: Bloom variants that matter for the kernel layer.
E2E_ALGORITHMS = (
    "db", "db(BF)", "broadcast", "repartition", "repartition(BF)", "zigzag",
)

#: Backend-tier coverage: the algorithms whose hot stages (scan,
#: shuffle, local join) the process pool parallelises end to end.
BACKEND_ALGORITHMS = ("repartition", "repartition(BF)", "zigzag")


def _time_pair(naive_fn: Callable[[], object],
               kernel_fn: Callable[[], object],
               repeats: int) -> Tuple[float, float]:
    """Best-of-N seconds for two comparands, sampled in alternate rounds.

    On a shared machine a load spike during one side's whole
    measurement window would fabricate (or erase) a speedup.  Running
    the two sides back-to-back inside every round exposes them to the
    same interference, and each side's best comes from its calmest
    round.  Both are warmed once, untimed, first.
    """
    naive_fn()
    kernel_fn()
    best_naive = best_kernel = float("inf")
    for _ in range(max(1, repeats)):
        start = time.perf_counter()
        naive_fn()
        best_naive = min(best_naive, time.perf_counter() - start)
        start = time.perf_counter()
        kernel_fn()
        best_kernel = min(best_kernel, time.perf_counter() - start)
    return best_naive, best_kernel


def _entry(naive_seconds: float, kernel_seconds: float,
           **extra) -> Dict[str, object]:
    entry: Dict[str, object] = {
        "naive_seconds": round(naive_seconds, 6),
        "kernel_seconds": round(kernel_seconds, 6),
        "speedup": round(naive_seconds / max(kernel_seconds, 1e-12), 2),
    }
    entry.update(extra)
    return entry


# ----------------------------------------------------------------------
# Micro benchmarks
# ----------------------------------------------------------------------
def run_micro(repeats: int = 3, scale: float = 1.0) -> Dict[str, dict]:
    """Kernel-vs-reference timings on synthetic inputs.

    Full-mode sizes mirror what one engine call actually sees: a JEN
    worker partitions one scan block's wire table per shuffle call
    (paper scale: 128 M L-rows over 240 blocks, post-predicate ≈ 400 K
    rows), and builds its local Bloom filter from its whole key
    partition in one insert.  ``scale`` shrinks every input size
    proportionally (CI quick mode).
    """
    from repro.core.bloom import BloomFilter
    from repro.workload import WorkloadSpec, generate_workload

    sizes = {
        "partition_rows": max(20_000, int(400_000 * scale)),
        "partitions": 30,
        "bloom_keys": max(20_000, int(2_000_000 * scale)),
        "bloom_bits": max(1 << 16, int((1 << 23) * scale)),
        "popcount_words": max(1 << 14, int((1 << 22) * scale)),
        "join_build_rows": max(10_000, int(400_000 * scale)),
        "join_probe_fragments": 8,
    }
    rng = np.random.default_rng(7)
    results: Dict[str, dict] = {}

    # Partitioning: a realistic wide-ish table from the workload
    # generator, split 30 ways on a hashed assignment.
    workload = generate_workload(WorkloadSpec(
        sigma_t=0.1, sigma_l=0.4, s_t=0.2, s_l=0.1,
        t_rows=1000, l_rows=sizes["partition_rows"],
        n_keys=max(100, sizes["partition_rows"] // 100), seed=42,
    ))
    table = workload.l_table
    assignments = rng.integers(
        0, sizes["partitions"], size=table.num_rows
    ).astype(np.int64)
    results["partition"] = _entry(
        *_time_pair(
            lambda: naive_partition_table(
                table, assignments, sizes["partitions"]),
            lambda: partition_table(
                table, assignments, sizes["partitions"]),
            repeats,
        ),
        rows=table.num_rows, partitions=sizes["partitions"],
        columns=len(table.schema.names),
    )

    # Bloom insert: same hashed positions, scattered into fresh words.
    bloom = BloomFilter(sizes["bloom_bits"], num_hashes=2, seed=7)
    keys = rng.integers(
        0, sizes["bloom_keys"] // 4, size=sizes["bloom_keys"]
    ).astype(np.uint64)
    positions = bloom._positions(keys)
    num_words = len(bloom._words)

    def bench_naive_insert():
        naive_scatter_or(np.zeros(num_words, dtype=np.uint64), positions)

    def bench_kernel_insert():
        scatter_or(np.zeros(num_words, dtype=np.uint64), positions)

    results["bloom_insert"] = _entry(
        *_time_pair(bench_naive_insert, bench_kernel_insert, repeats),
        keys=sizes["bloom_keys"], bits=sizes["bloom_bits"],
    )

    # Bloom membership test on a populated filter.
    bloom.add(keys)
    probe_keys = rng.integers(
        0, sizes["bloom_keys"] // 2, size=sizes["bloom_keys"]
    ).astype(np.uint64)
    probe_positions = bloom._positions(probe_keys)
    words = bloom._words
    results["bloom_contains"] = _entry(
        *_time_pair(
            lambda: naive_test_bits(words, probe_positions),
            lambda: test_bits(words, probe_positions),
            repeats,
        ),
        keys=sizes["bloom_keys"],
    )

    # Popcount over a dense word array.
    dense = rng.integers(
        0, np.iinfo(np.uint64).max, size=sizes["popcount_words"],
        dtype=np.uint64,
    )
    results["popcount"] = _entry(
        *_time_pair(
            lambda: naive_popcount(dense),
            lambda: popcount(dense),
            repeats,
        ),
        words=sizes["popcount_words"],
    )

    # Join build reuse: one build side probed by many fragments.  The
    # naive path re-sorts the build keys for every fragment; the kernel
    # sorts once and only probes.
    build_keys = rng.integers(
        0, sizes["join_build_rows"] // 2, size=sizes["join_build_rows"]
    ).astype(np.int64)
    fragments = [
        rng.integers(0, sizes["join_build_rows"] // 2,
                     size=sizes["join_build_rows"] // 4).astype(np.int64)
        for _ in range(sizes["join_probe_fragments"])
    ]

    def bench_naive_join():
        for fragment in fragments:
            naive_sorted_join(build_keys, fragment)

    def bench_kernel_join():
        index = JoinBuildIndex(build_keys)
        for fragment in fragments:
            index.probe(fragment)

    results["join_index_reuse"] = _entry(
        *_time_pair(bench_naive_join, bench_kernel_join, repeats),
        build_rows=sizes["join_build_rows"],
        fragments=sizes["join_probe_fragments"],
    )
    return results


# ----------------------------------------------------------------------
# End-to-end benchmarks
# ----------------------------------------------------------------------
def _build_warehouse(scale: float):
    from repro import (
        HybridWarehouse,
        WorkloadSpec,
        default_config,
        generate_workload,
    )

    workload = generate_workload(WorkloadSpec(
        sigma_t=0.1, sigma_l=0.4, s_t=0.2, s_l=0.1,
        t_rows=max(1000, int(1.6e9 * scale)),
        l_rows=max(10_000, int(15e9 * scale)),
        n_keys=max(100, int(16e6 * scale)),
    ))
    warehouse = HybridWarehouse(default_config(scale=scale))
    warehouse.load_db_table("T", workload.t_table, distribute_on="uniqKey")
    warehouse.database.create_index("T", "idx_pred", ["corPred", "indPred"])
    warehouse.database.create_index(
        "T", "idx_bloom", ["corPred", "indPred", "joinKey"]
    )
    warehouse.load_hdfs_table("L", workload.l_table, "parquet")
    return warehouse, workload


def run_end_to_end(repeats: int = 2, scale: float = 1 / 25_000,
                   algorithms=E2E_ALGORITHMS) -> Dict[str, dict]:
    """Whole-algorithm wall clock, kernels disabled vs. enabled.

    Both modes run the *same* engine code on the *same* warehouse; only
    the kernel dispatch flag differs.  Before timing, both modes are
    checked against the single-node oracle
    (:mod:`repro.testkit.oracle`), so a speedup can never come from
    computing something different — or from both modes sharing the same
    wrong answer.
    """
    from repro import algorithm_by_name
    from repro.testkit import oracle
    from repro.workload import build_paper_query

    warehouse, workload = _build_warehouse(scale)
    query = build_paper_query(workload)
    expected = oracle.oracle_execute(
        workload.t_table, workload.l_table, query
    )
    results: Dict[str, dict] = {}
    for name in algorithms:
        algorithm = algorithm_by_name(name)

        def run_naive():
            previous = set_kernels_enabled(False)
            try:
                return algorithm.run(warehouse, query)
            finally:
                set_kernels_enabled(previous)

        for mode, run in (("naive", run_naive()),
                          ("kernels", algorithm.run(warehouse, query))):
            diff = oracle.compare_tables(
                run.result, expected, label=f"{name} ({mode})"
            )
            if diff is not None:
                raise AssertionError(diff)
        naive_seconds, kernel_seconds = _time_pair(
            run_naive, lambda: algorithm.run(warehouse, query), repeats)
        results[name] = _entry(
            naive_seconds, kernel_seconds,
            identical=True, result_rows=expected.num_rows,
        )
    return results


# ----------------------------------------------------------------------
# Execution-backend tier
# ----------------------------------------------------------------------
def run_backend_tier(repeats: int = 2, scale: float = 1 / 25_000,
                     algorithms=BACKEND_ALGORITHMS,
                     pool_sizes: Optional[List[int]] = None
                     ) -> Dict[str, object]:
    """Whole-algorithm wall clock, sequential vs. the process pool.

    For each algorithm the sequential backend and the process backend at
    every pool size are first verified row-identical against the
    single-node oracle, then timed best-of-N.  A speedup here is real
    concurrency (the :mod:`repro.parallel` pool), not a simulated
    number — which also means it only materialises on multi-core hosts;
    ``cpu_count`` is recorded so a 1-core CI reading is not mistaken
    for a regression.
    """
    import os

    from repro import algorithm_by_name, parallel
    from repro.testkit import oracle
    from repro.workload import build_paper_query

    cpu_count = os.cpu_count() or 1
    if pool_sizes is None:
        pool_sizes = sorted({1, 4, parallel.default_pool_workers()})
    warehouse, workload = _build_warehouse(scale)
    query = build_paper_query(workload)
    expected = oracle.oracle_execute(
        workload.t_table, workload.l_table, query
    )
    section: Dict[str, object] = {
        "cpu_count": cpu_count,
        "pool_sizes": list(pool_sizes),
        # The machine-independent gate contract: ``--check`` only
        # enforces process-backend speedups when the *current* host can
        # express them.  On a 1-core runner the tier still measures and
        # reports, but the gate records itself as skipped — honest <1x
        # single-core numbers are a property of the host, not the code.
        "check_gate": {
            "applicable": cpu_count >= 2,
            "skip_reason": (
                None if cpu_count >= 2 else
                f"host has {cpu_count} CPU core(s); process-backend "
                "speedup gates need >= 2"
            ),
        },
        "algorithms": {},
    }
    try:
        for name in algorithms:
            algorithm = algorithm_by_name(name)

            def run_on(backend: str, workers: Optional[int] = None):
                previous = parallel.set_execution_backend(
                    backend, workers=workers)
                try:
                    return algorithm.run(warehouse, query)
                finally:
                    parallel.set_execution_backend(previous)

            modes: List[Tuple[str, Callable[[], object]]] = [
                ("sequential", lambda: run_on("sequential"))
            ]
            for size in pool_sizes:
                modes.append((
                    f"process@{size}",
                    lambda size=size: run_on("process", workers=size),
                ))
            best: Dict[str, float] = {}
            for mode, run in modes:
                # The verification run doubles as the warm-up (for the
                # process modes it also forks the pool, so pool start-up
                # never pollutes the timings).
                diff = oracle.compare_tables(
                    run().result, expected, label=f"{name} ({mode})"
                )
                if diff is not None:
                    raise AssertionError(diff)
                best[mode] = float("inf")
                for _ in range(max(1, repeats)):
                    start = time.perf_counter()
                    run()
                    best[mode] = min(
                        best[mode], time.perf_counter() - start)
            sequential = best["sequential"]
            entry: Dict[str, object] = {
                "sequential_seconds": round(sequential, 6),
                "identical": True,
                "result_rows": expected.num_rows,
                "process": {},
            }
            for size in pool_sizes:
                seconds = best[f"process@{size}"]
                entry["process"][str(size)] = {
                    "seconds": round(seconds, 6),
                    "speedup": round(sequential / max(seconds, 1e-12), 2),
                }
            section["algorithms"][name] = entry
    finally:
        parallel.shutdown_backend()
    section["leaked_segments"] = parallel.leaked_segments()
    return section


# ----------------------------------------------------------------------
# Dispatch-overhead tier
# ----------------------------------------------------------------------
def run_dispatch_tier(repeats: int = 3, workers: int = 2
                      ) -> Dict[str, object]:
    """Fixed costs of the process backend, isolated from any query.

    Two figures make a backend-tier reading attributable:

    * ``per_task_overhead_us`` — round-tripping no-op descriptors
      through the pool: header pack, queue hops, worker-side dispatch,
      result pickle.  This is what the adaptive morsel sizer amortises.
    * ``shm_roundtrip_mb_s`` — exporting a table into a pooled segment
      and materialising it back (one ``memcpy`` each way), the
      transport cost every morsel input/result pays.

    ``segment_pool`` shows the pool reusing segments across the loop —
    in steady state ``created`` stays flat while ``reused`` climbs.
    """
    import os

    from repro.parallel.pool import ProcessBackend
    from repro.parallel.shm import AttachedTable
    from repro.relational.schema import Column, DataType, Schema
    from repro.relational.table import Table

    backend = ProcessBackend(workers=workers)
    try:
        best_overhead = float("inf")
        for _ in range(max(1, repeats)):
            backend._dispatch_overhead = None  # re-measure each round
            best_overhead = min(
                best_overhead, backend.dispatch_overhead_seconds(tasks=16))

        rows = 1_000_000
        table = Table(
            Schema([Column("k", DataType.INT64),
                    Column("v", DataType.INT64)]),
            {"k": np.arange(rows, dtype=np.int64),
             "v": np.arange(rows, dtype=np.int64)},
        )
        nbytes = 2 * rows * 8
        best_roundtrip = float("inf")
        for _ in range(max(1, repeats) + 1):  # first round warms the pool
            start = time.perf_counter()
            handle = backend.export_transient(table)
            with AttachedTable(handle) as attached:
                attached.materialize()
            backend.release(handle)
            best_roundtrip = min(
                best_roundtrip, time.perf_counter() - start)
        return {
            "cpu_count": os.cpu_count() or 1,
            "pool_workers": workers,
            "per_task_overhead_us": round(best_overhead * 1e6, 1),
            "shm_roundtrip_mb_s": round(
                2 * nbytes / best_roundtrip / 1e6, 1),
            "roundtrip_payload_mb": round(nbytes / 1e6, 1),
            "segment_pool": dict(backend.pool.stats),
        }
    finally:
        backend.shutdown()


# ----------------------------------------------------------------------
# Shared multi-query pool tier
# ----------------------------------------------------------------------
def run_shared_pool_tier(repeats: int = 2, scale: float = 1 / 25_000,
                         streams: int = 2, queries_per_stream: int = 2,
                         workers: int = 2) -> Dict[str, object]:
    """Concurrent query streams on one shared pool vs. the same
    queries run back to back.

    Each stream is a thread with its *own* warehouse (engine state is
    per-query-stream), all submitting morsels into one
    :class:`~repro.parallel.sharedpool.SharedProcessPool` under
    distinct tenants.  The serial baseline runs the identical
    stream×query matrix one query at a time on the same pool, so the
    ratio isolates what cross-query work stealing buys.  Every
    concurrent result is verified row-identical to its stream's serial
    result before timing.  Like the backend tier, the gate is recorded
    as skipped on hosts without ≥ 2 cores.
    """
    import os
    import threading

    from repro import algorithm_by_name, parallel
    from repro.parallel.sharedpool import SharedProcessPool
    from repro.testkit import oracle
    from repro.workload import build_paper_query

    cpu_count = os.cpu_count() or 1
    fixtures = []
    for _ in range(streams):
        warehouse, workload = _build_warehouse(scale)
        fixtures.append((warehouse, build_paper_query(workload)))
    algorithm = algorithm_by_name("repartition")
    pool = SharedProcessPool(workers=workers)
    previous_installed = parallel.install_backend(pool)
    previous_backend = parallel.set_execution_backend("process")
    try:
        def run_stream(index: int, out: List[Optional[object]]):
            warehouse, query = fixtures[index]
            with parallel.task_origin(f"tenant{index}", f"s{index}", 0):
                for _ in range(queries_per_stream):
                    out[index] = algorithm.run(warehouse, query).result

        # Warm + verify: serial pass, then a concurrent pass checked
        # row-identical against it per stream.
        serial_results: List[Optional[object]] = [None] * streams
        for index in range(streams):
            run_stream(index, serial_results)
        concurrent_results: List[Optional[object]] = [None] * streams
        threads = [
            threading.Thread(target=run_stream,
                             args=(index, concurrent_results))
            for index in range(streams)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        for index in range(streams):
            diff = oracle.compare_tables(
                concurrent_results[index], serial_results[index],
                label=f"stream {index} (concurrent vs serial)",
            )
            if diff is not None:
                raise AssertionError(diff)

        best_serial = best_concurrent = float("inf")
        scratch: List[Optional[object]] = [None] * streams
        for _ in range(max(1, repeats)):
            start = time.perf_counter()
            for index in range(streams):
                run_stream(index, scratch)
            best_serial = min(best_serial, time.perf_counter() - start)
            threads = [
                threading.Thread(target=run_stream, args=(index, scratch))
                for index in range(streams)
            ]
            start = time.perf_counter()
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            best_concurrent = min(
                best_concurrent, time.perf_counter() - start)
    finally:
        parallel.set_execution_backend(previous_backend)
        parallel.install_backend(previous_installed)
        pool.shutdown()
    return {
        "cpu_count": cpu_count,
        "pool_workers": workers,
        "streams": streams,
        "queries_per_stream": queries_per_stream,
        "identical": True,
        "serial_seconds": round(best_serial, 6),
        "concurrent_seconds": round(best_concurrent, 6),
        "throughput_ratio": round(
            best_serial / max(best_concurrent, 1e-12), 2),
        "check_gate": {
            "applicable": cpu_count >= 2,
            "skip_reason": (
                None if cpu_count >= 2 else
                f"host has {cpu_count} CPU core(s); concurrent-stream "
                "throughput gates need >= 2"
            ),
        },
        "leaked_segments": parallel.leaked_segments(),
    }


# ----------------------------------------------------------------------
# Harness
# ----------------------------------------------------------------------
def run_wallclock(quick: bool = False, repeats: Optional[int] = None,
                  skip_e2e: bool = False, skip_parallel: bool = False,
                  pool_sizes: Optional[List[int]] = None
                  ) -> Dict[str, object]:
    """The full benchmark payload."""
    from repro import default_config

    micro_scale = 0.1 if quick else 1.0
    e2e_scale = 1 / 100_000 if quick else 1 / 25_000
    if repeats is None:
        # Micro timings are a few ms each; a generous best-of-N is
        # cheap and is what keeps the CI regression gate stable.
        repeats = 7 if quick else 9
    cluster = default_config(scale=e2e_scale).cluster
    payload: Dict[str, object] = {
        "benchmark": "wallclock",
        "mode": "quick" if quick else "full",
        "repeats": repeats,
        "workers": {
            "jen": cluster.jen_workers(),
            "db": cluster.db_workers,
        },
        "micro": run_micro(repeats=repeats, scale=micro_scale),
    }
    if not skip_e2e:
        payload["end_to_end"] = run_end_to_end(
            repeats=max(1, repeats - 1), scale=e2e_scale)
    if not skip_parallel:
        payload["backend"] = run_backend_tier(
            repeats=max(1, repeats - 1) if quick else max(2, repeats - 1),
            scale=e2e_scale, pool_sizes=pool_sizes)
        payload["dispatch"] = run_dispatch_tier(
            repeats=2 if quick else 3)
        payload["shared_pool"] = run_shared_pool_tier(
            repeats=1 if quick else 2, scale=e2e_scale)
    return payload


def run_parallel_payload(quick: bool = False,
                         pool_sizes: Optional[List[int]] = None
                         ) -> Dict[str, object]:
    """The ``BENCH_parallel.json`` payload: backend, dispatch and
    shared-pool tiers only (no kernel tiers)."""
    scale = 1 / 100_000 if quick else 1 / 25_000
    return {
        "benchmark": "parallel-backend",
        "note": (
            "Sequential vs process-pool execution backend, "
            "oracle-verified row-identical before timing; plus the "
            "pool's isolated fixed costs (dispatch tier) and "
            "concurrent-stream throughput on the shared multi-query "
            "pool.  Interpret speedups against cpu_count: the "
            "check_gate blocks record whether this host can express "
            "them; on 1-core hosts --check skips those gates instead "
            "of failing."
        ),
        "backend": run_backend_tier(
            repeats=1 if quick else 2, scale=scale,
            pool_sizes=pool_sizes),
        "dispatch": run_dispatch_tier(repeats=2 if quick else 3),
        "shared_pool": run_shared_pool_tier(
            repeats=1 if quick else 2, scale=scale),
    }


def check_regression(current: Dict[str, object],
                     baseline: Dict[str, object],
                     allowed_factor: float = 2.0,
                     notes: Optional[List[str]] = None) -> List[str]:
    """Speedup-ratio regressions of ``current`` vs. ``baseline``.

    Every gate compares *ratios of two measurements taken on the same
    machine* (kernel vs naive, process vs sequential, concurrent vs
    serial), so it is machine-independent: a slower CI runner shifts
    both sides.  Tiers gate as follows:

    * **micro** — kernel speedup must stay within ``allowed_factor`` of
      the baseline's.
    * **backend** — the process backend must reach >= 1x sequential at
      2 pool workers *when the current host has >= 2 cores*; on fewer
      cores the gate is skipped (recorded in ``notes``), never failed —
      the tier's own ``check_gate.skip_reason`` says why.
    * **shared_pool** — concurrent streams on the shared pool must not
      fall below serial throughput (ratio >= 1.0), same core-count
      skip rule.
    * **dispatch** — report-only: its figures are absolute host costs,
      which a ratio gate cannot normalise.

    Returns human-readable failure lines; skip explanations are
    appended to ``notes`` when given.
    """
    failures: List[str] = []
    if notes is None:
        notes = []
    baseline_micro = baseline.get("micro", {})
    current_micro = current.get("micro", {})
    for name, base_entry in sorted(baseline_micro.items()):
        if name not in current_micro:
            failures.append(f"micro/{name}: missing from current run")
            continue
        base_speedup = float(base_entry["speedup"])
        now_speedup = float(current_micro[name]["speedup"])
        floor = base_speedup / allowed_factor
        if now_speedup < floor:
            failures.append(
                f"micro/{name}: speedup {now_speedup:.2f}x fell below "
                f"{floor:.2f}x (baseline {base_speedup:.2f}x / "
                f"{allowed_factor:g})"
            )

    backend = current.get("backend")
    if baseline.get("backend") is not None and backend is not None:
        gate = backend.get("check_gate", {})
        if not gate.get("applicable", False):
            notes.append(
                f"backend: gate skipped — "
                f"{gate.get('skip_reason', 'not applicable')}")
        else:
            for name, entry in sorted(backend["algorithms"].items()):
                timing = entry["process"].get("2")
                if timing is None:
                    continue
                if float(timing["speedup"]) < 1.0:
                    failures.append(
                        f"backend/{name}: process@2 is "
                        f"{timing['speedup']:.2f}x sequential on a "
                        f"{backend['cpu_count']}-core host (need >= 1x)"
                    )

    shared = current.get("shared_pool")
    if baseline.get("shared_pool") is not None and shared is not None:
        gate = shared.get("check_gate", {})
        if not gate.get("applicable", False):
            notes.append(
                f"shared_pool: gate skipped — "
                f"{gate.get('skip_reason', 'not applicable')}")
        elif float(shared["throughput_ratio"]) < 1.0:
            failures.append(
                f"shared_pool: concurrent streams ran at "
                f"{shared['throughput_ratio']:.2f}x serial throughput "
                f"on a {shared['cpu_count']}-core host (need >= 1x)"
            )
    return failures


def render(payload: Dict[str, object]) -> str:
    """One-line-per-bench summary for the terminal."""
    if "micro" in payload:
        lines = [
            f"wall-clock benchmarks ({payload['mode']} mode, "
            f"best of {payload['repeats']}, "
            f"{payload['workers']['jen']} JEN / "
            f"{payload['workers']['db']} DB workers)",
            "",
            "micro kernels (naive -> kernel):",
        ]
        for name, entry in payload["micro"].items():
            lines.append(
                f"  {name:<18s} {entry['naive_seconds'] * 1e3:9.2f}ms -> "
                f"{entry['kernel_seconds'] * 1e3:9.2f}ms   "
                f"{entry['speedup']:6.2f}x"
            )
    else:
        lines = ["parallel-backend benchmarks:"]
    if "end_to_end" in payload:
        lines += ["", "end-to-end algorithms (kernels off -> on):"]
        for name, entry in payload["end_to_end"].items():
            lines.append(
                f"  {name:<18s} {entry['naive_seconds'] * 1e3:9.2f}ms -> "
                f"{entry['kernel_seconds'] * 1e3:9.2f}ms   "
                f"{entry['speedup']:6.2f}x"
            )
    if "backend" in payload:
        backend = payload["backend"]
        lines += [
            "",
            f"execution backends (sequential -> process pool, "
            f"{backend['cpu_count']} host core(s)):",
        ]
        for name, entry in backend["algorithms"].items():
            parts = [f"  {name:<18s} "
                     f"{entry['sequential_seconds'] * 1e3:9.2f}ms seq"]
            for size, timing in entry["process"].items():
                parts.append(
                    f" | {size}w {timing['seconds'] * 1e3:9.2f}ms "
                    f"{timing['speedup']:5.2f}x"
                )
            lines.append("".join(parts))
        if backend.get("leaked_segments"):
            lines.append(
                f"  WARNING: leaked shm segments: "
                f"{backend['leaked_segments']}"
            )
    if "dispatch" in payload:
        dispatch = payload["dispatch"]
        pool = dispatch["segment_pool"]
        lines += [
            "",
            f"dispatch overhead ({dispatch['pool_workers']} pool "
            f"workers): {dispatch['per_task_overhead_us']:.0f}us/task, "
            f"shm round trip {dispatch['shm_roundtrip_mb_s']:.0f}MB/s "
            f"({dispatch['roundtrip_payload_mb']:g}MB payload); "
            f"segments created={pool['created']} reused={pool['reused']}",
        ]
    if "shared_pool" in payload:
        shared = payload["shared_pool"]
        lines += [
            "",
            f"shared pool ({shared['streams']} streams x "
            f"{shared['queries_per_stream']} queries, "
            f"{shared['pool_workers']} workers): serial "
            f"{shared['serial_seconds'] * 1e3:.0f}ms -> concurrent "
            f"{shared['concurrent_seconds'] * 1e3:.0f}ms   "
            f"{shared['throughput_ratio']:.2f}x",
        ]
        if shared.get("leaked_segments"):
            lines.append(
                f"  WARNING: leaked shm segments: "
                f"{shared['leaked_segments']}"
            )
    return "\n".join(lines)


def add_arguments(parser: argparse.ArgumentParser) -> None:
    """CLI options (shared by ``python -m repro bench`` and the script)."""
    parser.add_argument("--out", help="write the JSON payload to this path")
    parser.add_argument("--quick", action="store_true",
                        help="reduced sizes for CI smoke runs")
    parser.add_argument("--repeats", type=int, default=None,
                        help="best-of repeats (default: 3, quick: 1)")
    parser.add_argument("--skip-e2e", action="store_true",
                        help="micro kernels only")
    parser.add_argument("--skip-parallel", action="store_true",
                        help="skip the execution-backend, dispatch and "
                             "shared-pool tiers")
    parser.add_argument("--only-parallel", action="store_true",
                        help="run only the backend/dispatch/shared-pool "
                             "tiers (the BENCH_parallel.json payload)")
    parser.add_argument("--pool-workers", type=int, nargs="+",
                        default=None,
                        help="process-pool sizes for the backend tier "
                             "(default: 1, 4 and the host core count)")
    parser.add_argument("--backend", default=None,
                        choices=["sequential", "process"],
                        help="global execution backend while the "
                             "benchmarks run (default: leave unchanged)")
    parser.add_argument(
        "--check", metavar="BASELINE",
        help="compare speedups against a baseline JSON; exit 1 on a "
             ">2x regression",
    )
    parser.add_argument("--allowed-factor", type=float, default=2.0,
                        help="regression tolerance for --check")


def run_from_args(args) -> int:
    """Execute the harness for parsed ``args``; returns an exit code."""
    from repro import parallel

    previous_backend = None
    if getattr(args, "backend", None):
        previous_backend = parallel.set_execution_backend(args.backend)
    try:
        if getattr(args, "only_parallel", False):
            payload = run_parallel_payload(
                quick=args.quick,
                pool_sizes=getattr(args, "pool_workers", None),
            )
        else:
            payload = run_wallclock(
                quick=args.quick, repeats=args.repeats,
                skip_e2e=args.skip_e2e,
                skip_parallel=getattr(args, "skip_parallel", False),
                pool_sizes=getattr(args, "pool_workers", None),
            )
    finally:
        if previous_backend is not None:
            parallel.set_execution_backend(previous_backend)
    print(render(payload))
    if args.out:
        out = pathlib.Path(args.out)
        out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(json.dumps(payload, indent=2) + "\n")
        print(f"\nwrote {out}")
    if args.check:
        baseline = json.loads(pathlib.Path(args.check).read_text())
        notes: List[str] = []
        failures = check_regression(
            payload, baseline, allowed_factor=args.allowed_factor,
            notes=notes)
        for line in notes:
            print(f"  note: {line}")
        if failures:
            print("\nperformance regressions:", file=sys.stderr)
            for line in failures:
                print(f"  {line}", file=sys.stderr)
            return 1
        print(f"\nno regressions vs {args.check} "
              f"(tolerance {args.allowed_factor:g}x)")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench.wallclock",
        description="Wall-clock benchmarks of the vectorised kernels",
    )
    add_arguments(parser)
    return run_from_args(parser.parse_args(argv))


if __name__ == "__main__":
    sys.exit(main())
