"""Command-line entry point: regenerate the paper's tables and figures.

Usage::

    python -m repro.bench                 # run every experiment, print
    python -m repro.bench table1 fig8     # run a subset
    python -m repro.bench --list          # list experiment ids
    python -m repro.bench --scale 50000   # 1/50000 data-plane scale
    python -m repro.bench --output DIR    # also write one report per id
"""

from __future__ import annotations

import argparse
import pathlib
import sys
import time

from repro.bench.experiments import EXPERIMENTS, experiment_by_id
from repro.bench.harness import WarehouseCache


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Reproduce the tables and figures of 'Joins for "
                    "Hybrid Warehouses' (EDBT 2015).",
    )
    parser.add_argument("experiments", nargs="*",
                        help="experiment ids (default: all)")
    parser.add_argument("--list", action="store_true",
                        help="list available experiments and exit")
    parser.add_argument("--scale", type=float, default=25_000,
                        help="data-plane scale divisor (default 25000, "
                             "i.e. 1/25000 of the paper's table sizes)")
    parser.add_argument("--output", type=pathlib.Path, default=None,
                        help="directory to write per-experiment reports")
    args = parser.parse_args(argv)

    if args.list:
        for experiment_id, experiment in EXPERIMENTS.items():
            print(f"{experiment_id:<28s} {experiment.title}")
        return 0

    ids = args.experiments or list(EXPERIMENTS)
    cache = WarehouseCache(scale=1.0 / args.scale)
    failures = 0
    for experiment_id in ids:
        experiment = experiment_by_id(experiment_id)
        started = time.time()
        result = experiment.run(cache)
        elapsed = time.time() - started
        print(f"\n=== {experiment.title} ===")
        print(f"    ({experiment.paper_ref}; ran in {elapsed:.1f}s wall)")
        print(result.to_report())
        if not result.all_passed():
            failures += 1
        if args.output:
            args.output.mkdir(parents=True, exist_ok=True)
            path = args.output / f"{experiment_id}.txt"
            path.write_text(result.to_report() + "\n")
    if failures:
        print(f"\n{failures} experiment(s) had failing shape checks",
              file=sys.stderr)
        return 1
    print(f"\nall {len(ids)} experiments reproduced their paper claims")
    return 0


if __name__ == "__main__":
    sys.exit(main())
