"""Benchmark harness: regenerate every table and figure of the paper.

:mod:`repro.bench.experiments` defines one experiment per table/figure
of the paper's Section 5; :mod:`repro.bench.harness` builds (and caches)
the warehouses they run on; :mod:`repro.bench.reporting` prints the rows
in the paper's layout.  The ``benchmarks/`` directory wraps these in
pytest-benchmark entry points.
"""

from repro.bench.harness import BenchSetup, WarehouseCache, run_algorithms
from repro.bench.experiments import (
    EXPERIMENTS,
    Experiment,
    ExperimentResult,
    experiment_by_id,
)
from repro.bench.reporting import format_rows, format_series
from repro.bench.figures import render_experiment, render_grouped_bars
from repro.bench.serialization import (
    diff_results,
    load_result,
    save_result,
)
from repro.bench.sweep import SweepPoint, SweepResult, grid, run_sweep

__all__ = [
    "BenchSetup",
    "EXPERIMENTS",
    "Experiment",
    "ExperimentResult",
    "WarehouseCache",
    "experiment_by_id",
    "diff_results",
    "format_rows",
    "format_series",
    "grid",
    "load_result",
    "render_experiment",
    "render_grouped_bars",
    "run_sweep",
    "save_result",
    "SweepPoint",
    "SweepResult",
    "run_algorithms",
]
