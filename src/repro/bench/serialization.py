"""JSON persistence for experiment results.

Lets CI store every run's rows and shape-check outcomes as structured
data (for regression diffing or external plotting) and load them back
into :class:`~repro.bench.experiments.ExperimentResult` objects.
"""

from __future__ import annotations

import json
import pathlib
from typing import Union

from repro.bench.experiments import ExperimentResult, ShapeCheck
from repro.errors import ReproError

#: Format marker for forwards compatibility.
SCHEMA_VERSION = 1


def result_to_dict(result: ExperimentResult) -> dict:
    """A JSON-serialisable representation of one result."""
    return {
        "schema_version": SCHEMA_VERSION,
        "experiment_id": result.experiment_id,
        "title": result.title,
        "headers": list(result.headers),
        "rows": [dict(row) for row in result.rows],
        "checks": [
            {"claim": check.claim, "passed": check.passed}
            for check in result.checks
        ],
        "notes": result.notes,
        "all_passed": result.all_passed(),
    }


def result_from_dict(payload: dict) -> ExperimentResult:
    """Rebuild a result object from :func:`result_to_dict` output."""
    if payload.get("schema_version") != SCHEMA_VERSION:
        raise ReproError(
            f"unsupported result schema {payload.get('schema_version')!r}"
        )
    return ExperimentResult(
        experiment_id=payload["experiment_id"],
        title=payload["title"],
        headers=list(payload["headers"]),
        rows=[dict(row) for row in payload["rows"]],
        checks=[
            ShapeCheck(claim=check["claim"], passed=check["passed"])
            for check in payload["checks"]
        ],
        notes=payload.get("notes", ""),
    )


def save_result(result: ExperimentResult,
                path: Union[str, pathlib.Path]) -> pathlib.Path:
    """Write one result as pretty-printed JSON."""
    path = pathlib.Path(path)
    path.write_text(json.dumps(result_to_dict(result), indent=2,
                               sort_keys=True) + "\n")
    return path


def load_result(path: Union[str, pathlib.Path]) -> ExperimentResult:
    """Load a result previously written by :func:`save_result`."""
    payload = json.loads(pathlib.Path(path).read_text())
    return result_from_dict(payload)


def diff_results(before: ExperimentResult, after: ExperimentResult,
                 value_key: str = "seconds",
                 tolerance: float = 0.10) -> list:
    """Rows whose ``value_key`` moved by more than ``tolerance`` (rel).

    A small regression-checking helper: pair rows positionally (the
    experiments emit deterministic row orders) and report drifts.
    """
    if before.experiment_id != after.experiment_id:
        raise ReproError(
            "cannot diff results of different experiments: "
            f"{before.experiment_id!r} vs {after.experiment_id!r}"
        )
    drifts = []
    for index, (old, new) in enumerate(zip(before.rows, after.rows)):
        old_value = old.get(value_key)
        new_value = new.get(value_key)
        if old_value is None or new_value is None:
            continue
        base = max(abs(float(old_value)), 1e-12)
        drift = abs(float(new_value) - float(old_value)) / base
        if drift > tolerance:
            drifts.append({
                "row": index,
                "old": old_value,
                "new": new_value,
                "drift": drift,
            })
    return drifts
